//! Offline, API-compatible subset of the `rand` crate.
//!
//! The workspace runs in environments without access to crates.io, so
//! this vendored stub provides exactly the surface the repo uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is SplitMix64 — statistically solid for simulation
//! workloads and fully deterministic from its 64-bit seed, which is all
//! the deterministic discrete-event simulator requires. It is **not**
//! cryptographically secure.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

signed_sample_range!(i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Unlike the real `rand::rngs::StdRng` this is not ChaCha-based;
    /// the simulator only needs determinism and decent statistics.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Slice utilities.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(5usize..=7);
            assert!((5..=7).contains(&y));
            let z = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn shuffle_preserves_membership() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
