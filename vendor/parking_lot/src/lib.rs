//! Offline, API-compatible subset of `parking_lot`.
//!
//! Provides a poison-free [`Mutex`] (and [`RwLock`]) on top of the
//! standard library primitives: `lock()` returns the guard directly, and
//! a panicked holder does not poison the lock for everyone else.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// A mutex whose `lock` never fails (poisoning is ignored).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock still usable after holder panicked");
    }
}
