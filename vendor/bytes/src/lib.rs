//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply clonable, immutable, refcounted byte
//! buffer with zero-copy [`Bytes::slice`] — the pieces of the real
//! crate this workspace uses. A `Bytes` is a `(Arc<Vec<u8>>, start,
//! end)` view: cloning and slicing bump a refcount and adjust the
//! window, never copying payload bytes. `From<Vec<u8>>` moves the
//! vector behind the `Arc` without copying its contents, and
//! [`Bytes::try_reclaim`] hands the vector back once no other view is
//! alive — together these let a network receive path freeze a frame
//! buffer, decode zero-copy slices out of it, and recycle the
//! allocation when the decoded messages are done with it.

#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// A cheaply clonable immutable byte buffer (refcounted view into a
/// shared allocation).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

/// Shared empty backing so `Bytes::new()`/`default()` never allocate.
fn empty_backing() -> &'static Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new()))
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes {
            data: empty_backing().clone(),
            start: 0,
            end: 0,
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// View as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A zero-copy sub-view of this buffer: shares the backing
    /// allocation (refcount bump, no payload copy). `range` indexes
    /// into this view, like slice indexing; panics when out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n.checked_add(1).expect("slice end overflows"),
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice range {begin}..{end} out of bounds for Bytes of length {len}"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Take the backing vector back, if this is the only live view of
    /// it (`Err(self)` otherwise). The vector comes back whole —
    /// including bytes outside this view's window — so a receive loop
    /// that froze its read buffer into `Bytes` can recycle the full
    /// allocation once every decoded slice has been dropped.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        match Arc::try_unwrap(self.data) {
            Ok(v) => Ok(v),
            Err(data) => Err(Bytes {
                data,
                start: self.start,
                end: self.end,
            }),
        }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Moves the vector behind the `Arc` — one refcount allocation, no
    /// copy of the contents.
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

// Equality, ordering, and hashing are over the viewed contents, not
// the backing allocation: two views of different buffers with the same
// bytes are equal.
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::copy_from_slice(&[9; 64]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 64);
    }

    #[test]
    fn slice_is_zero_copy_and_windows_correctly() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let mid = b.slice(2..6);
        assert_eq!(&mid[..], &[2, 3, 4, 5]);
        // Nested slices index into the view, not the backing buffer.
        let inner = mid.slice(1..=2);
        assert_eq!(&inner[..], &[3, 4]);
        assert_eq!(b.slice(..).len(), 8);
        assert_eq!(b.slice(8..).len(), 0);
        // Equality is by content across different backings.
        assert_eq!(inner, Bytes::copy_from_slice(&[3, 4]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1, 2, 3]).slice(2..5);
    }

    #[test]
    fn try_reclaim_needs_unique_ownership() {
        let b = Bytes::from(vec![7; 16]);
        let s = b.slice(4..8);
        // Two views alive: reclaim fails and hands the view back.
        let s = s.try_reclaim().expect_err("b still holds the backing");
        assert_eq!(&s[..], &[7; 4]);
        drop(b);
        // Sole view: the full backing vector comes back.
        let v = s.try_reclaim().expect("sole owner reclaims");
        assert_eq!(v.len(), 16);
    }

    #[test]
    fn empty_is_shared_and_contents_hash_equal() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Bytes::from(vec![1, 2]));
        assert!(set.contains(&Bytes::from(vec![0, 1, 2, 3]).slice(1..3)));
        assert_eq!(Bytes::new(), Bytes::default());
        assert!(Bytes::from(vec![1]) > Bytes::new());
    }
}
