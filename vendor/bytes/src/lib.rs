//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply clonable, immutable, refcounted byte
//! buffer — the only piece of the real crate this workspace uses.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer (refcounted).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// View as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_len() {
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
    }

    #[test]
    fn clone_is_shallow_and_equal() {
        let a = Bytes::copy_from_slice(&[9; 64]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 64);
    }
}
