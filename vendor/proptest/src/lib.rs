//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use:
//!
//! - the [`proptest!`] macro with `arg in strategy` parameter lists and
//!   an optional `#![proptest_config(...)]` header,
//! - range strategies (`0u32..100`, `0u64..=9`), tuple strategies,
//!   [`collection::vec`], [`bool::ANY`], and [`any`] for primitives,
//! - combinators: [`Strategy::prop_map`], [`Strategy::prop_flat_map`],
//!   [`Strategy::boxed`], [`prop_oneof!`], and [`option::of`],
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs unshrunk. Generation is deterministic — the
//! RNG seed derives from the test function's name, so failures reproduce
//! exactly across runs.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic RNG driving generation.
pub type TestRng = StdRng;

/// Seed a [`TestRng`] from a test name (deterministic across runs).
pub fn rng_for(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A value generator.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Build a dependent strategy from each generated value — `f`
    /// returns the strategy for the second stage.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }

    /// Type-erase this strategy (enables heterogeneous [`prop_oneof!`]
    /// arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy mapping another strategy's values ([`Strategy::prop_map`]).
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.base.generate(rng))
    }
}

/// Two-stage dependent strategy ([`Strategy::prop_flat_map`]).
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Uniform choice over boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Uniform choice between strategies producing the same value type.
///
/// ```ignore
/// let op = prop_oneof![0u64..10, Just(7u64)];
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Values drawable uniformly from a type's whole domain (the subset of
/// real proptest's `Arbitrary` that primitives need).
pub trait ArbitraryValue {
    /// Draw one value covering the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl ArbitraryValue for core::primitive::bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy over a type's full domain ([`any`]).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — uniform over `T`'s whole domain (primitives only).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<T>` ([`of`]).
    pub struct OptionStrategy<S>(S);

    /// `Some(value)` half the time, `None` the other half.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.5) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

/// `Just`-style constant strategy (generates clones of one value).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy generating uniform booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with the given element strategy and length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assert inside a property test (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current generated case when a precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_prop(x in 0u32..100, flip in prop::bool::ANY) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __case_runner = || $body;
                __case_runner();
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_within_bounds(x in 0u32..50, y in 10u64..=20) {
            prop_assert!(x < 50);
            prop_assert!((10..=20).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..10, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn fixed_len_vec(v in prop::collection::vec(prop::bool::ANY, 7)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..10, 0u32..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        #[test]
        fn config_header_accepted(x in 0usize..3) {
            prop_assert!(x < 3);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::Strategy;
        let strat = (0u64..1000, crate::bool::ANY);
        let mut a = crate::rng_for("determinism");
        let mut b = crate::rng_for("determinism");
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
