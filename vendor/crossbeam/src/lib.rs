//! Offline, API-compatible subset of `crossbeam`.
//!
//! Only the [`channel`] module is provided, implemented over
//! `std::sync::mpsc`. Capacity hints passed to [`channel::bounded`] are
//! accepted but not enforced — the workspace uses bounded channels only
//! for completion signalling, never for backpressure.

#![warn(missing_docs)]

/// Multi-producer channels (subset of `crossbeam-channel`).
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of a channel. Clonable across threads.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send a value; fails only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Block with a timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    /// A "bounded" channel. The capacity is a hint only in this stub;
    /// sends never block.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(41).unwrap();
        tx.clone().send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn disconnection_reported() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || tx.send(7).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        h.join().unwrap();
    }
}
