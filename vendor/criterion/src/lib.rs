//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Benches compile and run with `cargo bench` (harness = false) and
//! report mean wall-clock time per iteration, but there is no warmup
//! model, statistical analysis, or HTML report — this is a smoke-and-
//! sanity harness for environments without crates.io access.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup between iterations. Accepted for
/// API compatibility; this stub always runs setup per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup per iteration.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// Per-benchmark timing driver.
pub struct Bencher {
    sample_size: u64,
    /// Mean nanoseconds per iteration of the last `iter*` call.
    last_mean_ns: f64,
}

impl Bencher {
    fn new(sample_size: u64) -> Self {
        Bencher {
            sample_size,
            last_mean_ns: 0.0,
        }
    }

    /// Time a routine over several iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(routine());
        }
        self.record(start.elapsed(), self.sample_size);
    }

    /// Time a routine with per-iteration setup excluded from the timing.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.record(total, self.sample_size);
    }

    fn record(&mut self, total: Duration, iters: u64) {
        self.last_mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn print_result(name: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "us")
    } else {
        (mean_ns, "ns")
    };
    println!("{name:<48} time: {value:>10.3} {unit}/iter");
}

/// Named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n as u64;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        print_result(&full, b.last_mean_ns);
        self
    }

    /// Finish the group (restores the default sample size).
    pub fn finish(&mut self) {
        self.criterion.sample_size = Criterion::DEFAULT_SAMPLE_SIZE;
    }
}

/// The benchmark harness.
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    const DEFAULT_SAMPLE_SIZE: u64 = 20;

    /// Parse CLI arguments (accepted and ignored in this stub).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        print_result(id, b.last_mean_ns);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: Criterion::DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// Group benchmark functions under one runner, like real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counting", |b| b.iter(|| runs += 1));
        assert!(runs >= Criterion::DEFAULT_SAMPLE_SIZE);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        let mut setups = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::PerIteration,
            )
        });
        g.finish();
        assert_eq!(setups, 5);
    }
}
