//! Capacity planning: given *your* cluster size, sweep the relay-group
//! count and report the configuration with the best max throughput and
//! the latency each choice costs — the decision the paper's Fig. 7 and
//! §6.1 model inform. With the relay-group count as just another value
//! of the protocol axis, the sweep is a three-line loop.
//!
//! ```sh
//! cargo run --release --example tune_relay_groups -- 13
//! ```

use paxi::Experiment;
use pigpaxos::PigConfig;
use simnet::SimDuration;

fn main() {
    let quick = std::env::var_os("PIG_QUICK").is_some();
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(13);
    assert!(n >= 3, "need at least 3 replicas");

    println!("Relay-group tuning for a {n}-node PigPaxos cluster\n");
    println!(
        "{:>8} {:>16} {:>18} {:>12} {:>12}",
        "groups", "max tput(req/s)", "low-load lat(ms)", "Ml (model)", "Mf (model)"
    );

    let max_r = (n - 1).min(8);
    let mut best = (0usize, 0.0f64);
    for r in 1..=max_r {
        let pts = Experiment::lan(PigConfig::lan(r), n)
            .warmup(SimDuration::from_millis(500))
            .measure(SimDuration::from_millis(if quick { 700 } else { 2000 }))
            .load_sweep(paxi::DEFAULT_SEED, &[1, 40, 160]);
        let low_load_latency = pts[0].result.mean_latency_ms;
        let max_tput = pts.iter().map(|p| p.result.throughput).fold(0.0, f64::max);
        println!(
            "{r:>8} {max_tput:>16.0} {low_load_latency:>18.2} {:>12.1} {:>12.2}",
            analytical::leader_load(r),
            analytical::follower_load(n, r),
        );
        if max_tput > best.1 {
            best = (r, max_tput);
        }
    }
    println!(
        "\nrecommendation: {} relay groups ({:.0} req/s max).",
        best.0, best.1
    );
    println!("caveat: r=1 cannot mask even one relay-group fault; prefer r>=2 (paper §6.2).");
}
