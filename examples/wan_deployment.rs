//! Geo-replicated deployment: 15 replicas across Virginia, California,
//! and Oregon with one relay group per region (the paper's §6.4 setup),
//! compared against direct Multi-Paxos on identical topology.
//!
//! Shows the two WAN effects the paper reports:
//! 1. latency is RTT-dominated, so PigPaxos costs ~nothing extra;
//! 2. PigPaxos sends one message per remote *region* instead of one per
//!    remote *replica* — a 5x paid-traffic saving at 5 nodes/region.
//!
//! ```sh
//! cargo run --release --example wan_deployment
//! ```

use paxi::Experiment;
use paxos::PaxosConfig;
use pigpaxos::{GroupSpec, PigConfig};
use simnet::{NodeId, SimDuration};

fn main() {
    let quick = std::env::var_os("PIG_QUICK").is_some();
    let n = 15;
    let measure = SimDuration::from_secs(if quick { 1 } else { 4 });

    let paxos_exp = Experiment::wan(PaxosConfig::wan(), n)
        .clients(100)
        .warmup(SimDuration::from_secs(1))
        .measure(measure);

    println!(
        "Topology: {} nodes over {} regions; leader + clients in {}",
        n,
        paxos_exp.topology().num_regions(),
        paxos_exp.topology().region_name(0)
    );

    // One relay group per region (leader excluded from its own group).
    let groups = GroupSpec::per_region(paxos_exp.topology(), NodeId(0));

    let paxos = paxos_exp.run_sim(paxi::DEFAULT_SEED);
    let pig = Experiment::wan(PigConfig::wan(groups), n)
        .clients(100)
        .warmup(SimDuration::from_secs(1))
        .measure(measure)
        .run_sim(paxi::DEFAULT_SEED);

    for (name, r) in [("Paxos", &paxos), ("PigPaxos", &pig)] {
        assert!(r.violations.is_empty());
        println!(
            "{name:>9}: {:>6.0} req/s   mean {:>6.1} ms   cross-region msgs/op {:>5.2}",
            r.throughput, r.mean_latency_ms, r.cross_region_msgs_per_op
        );
    }
    println!(
        "\nWAN traffic saving: {:.1}x fewer cross-region messages per op",
        paxos.cross_region_msgs_per_op / pig.cross_region_msgs_per_op
    );
}
