//! Geo-replicated deployment: 15 replicas across Virginia, California,
//! and Oregon with one relay group per region (the paper's §6.4 setup),
//! compared against direct Multi-Paxos on identical topology.
//!
//! Shows the two WAN effects the paper reports:
//! 1. latency is RTT-dominated, so PigPaxos costs ~nothing extra;
//! 2. PigPaxos sends one message per remote *region* instead of one per
//!    remote *replica* — a 5x paid-traffic saving at 5 nodes/region.
//!
//! ```sh
//! cargo run --release --example wan_deployment
//! ```

use paxi::harness::{run, RunSpec};
use paxi::TargetPolicy;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, GroupSpec, PigConfig};
use simnet::{NodeId, SimDuration};

fn main() {
    let n = 15;
    let spec = RunSpec {
        n_clients: 100,
        warmup: SimDuration::from_secs(1),
        measure: SimDuration::from_secs(4),
        ..RunSpec::wan(n, 100)
    };

    println!(
        "Topology: {} nodes over {} regions; leader + clients in {}",
        n,
        spec.topology.num_regions(),
        spec.topology.region_name(0)
    );

    let paxos = run(
        &spec,
        paxos_builder(PaxosConfig::wan()),
        TargetPolicy::Fixed(NodeId(0)),
    );

    // One relay group per region (leader excluded from its own group).
    let groups: Vec<Vec<NodeId>> = (0..spec.topology.num_regions())
        .map(|region| {
            spec.topology
                .nodes_in_region(region)
                .into_iter()
                .filter(|&node| node != NodeId(0))
                .collect::<Vec<_>>()
        })
        .filter(|g: &Vec<NodeId>| !g.is_empty())
        .collect();
    let pig = run(
        &spec,
        pig_builder(PigConfig::wan(GroupSpec::Explicit(groups))),
        TargetPolicy::Fixed(NodeId(0)),
    );

    for (name, r) in [("Paxos", &paxos), ("PigPaxos", &pig)] {
        assert!(r.violations.is_empty());
        println!(
            "{name:>9}: {:>6.0} req/s   mean {:>6.1} ms   cross-region msgs/op {:>5.2}",
            r.throughput, r.mean_latency_ms, r.cross_region_msgs_per_op
        );
    }
    println!(
        "\nWAN traffic saving: {:.1}x fewer cross-region messages per op",
        paxos.cross_region_msgs_per_op / pig.cross_region_msgs_per_op
    );
}
