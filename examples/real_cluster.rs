//! The same PigPaxos replicas that power every simulated experiment,
//! running as a *real* cluster: one OS thread per node, crossbeam
//! channels as the network, wall-clock timers — no simulator anywhere.
//!
//! ```sh
//! cargo run --release --example real_cluster
//! ```

use paxi::{ClientRecorder, ClosedLoopClient, ClusterConfig, TargetPolicy, Workload};
use pig_runtime::Runtime;
use pigpaxos::{PigConfig, PigMsg, PigReplica};
use simnet::{NodeId, SimDuration};
use std::time::Duration;

fn main() {
    let n = 9;
    let n_clients = 8;
    let wall_time = Duration::from_secs(2);

    let cluster = ClusterConfig::new(n);
    let mut rt: Runtime<paxi::Envelope<PigMsg>> = Runtime::new(42);
    for i in 0..n {
        rt.add_actor(paxi::ReplicaActor(PigReplica::new(
            NodeId::from(i),
            cluster.clone(),
            PigConfig::lan(3),
        )));
    }
    let recorder = ClientRecorder::new();
    for _ in 0..n_clients {
        rt.add_actor(ClosedLoopClient::<PigMsg>::new(
            TargetPolicy::Fixed(NodeId(0)),
            Workload::paper_default(),
            recorder.clone(),
            SimDuration::from_millis(500),
        ));
    }

    println!(
        "running {n} PigPaxos replicas + {n_clients} clients on real threads for {wall_time:?}…"
    );
    let stats = rt.run_for(wall_time);

    cluster.safety.assert_safe();
    let samples = recorder.samples();
    let tput = samples.len() as f64 / wall_time.as_secs_f64();
    let mean_us = samples
        .iter()
        .map(|s| s.latency().as_micros_f64())
        .sum::<f64>()
        / samples.len().max(1) as f64;

    println!("  completed ops    {:>10}", samples.len());
    println!("  throughput       {tput:>10.0} req/s");
    println!("  mean latency     {mean_us:>10.1} µs   (in-process channels, no network)");
    println!("  slots decided    {:>10}", cluster.safety.decided_count());
    println!("  messages moved   {:>10}", stats.msgs_delivered);
    println!("  safety           {:>10}", "OK");
}
