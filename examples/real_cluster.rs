//! Substrate parity, demonstrated: the *same* `Experiment` value runs
//! once on the deterministic simulator, once as a real cluster — one
//! OS thread per node, crossbeam channels as the network, wall-clock
//! timers — and once over real loopback TCP sockets with every message
//! encoded to its wire bytes, through the same builder, with
//! machine-checked safety on all three.
//!
//! ```sh
//! cargo run --release --example real_cluster
//! ```

use paxi::Experiment;
use pigpaxos::PigConfig;
use simnet::SimDuration;
use std::time::Duration;

fn main() {
    let quick = std::env::var_os("PIG_QUICK").is_some();
    let wall = Duration::from_millis(if quick { 500 } else { 2000 });

    let experiment = Experiment::lan(PigConfig::lan(3), 9)
        .clients(8)
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_nanos(wall.as_nanos() as u64));

    println!("one experiment, three substrates (9 PigPaxos replicas, 8 clients)\n");

    let sim = experiment.run_sim(42);
    assert!(sim.violations.is_empty(), "simulator run must be safe");

    println!("running the same replicas on real threads for {wall:?}…");
    let threads = experiment.run_threads(42, wall);
    assert!(threads.violations.is_empty(), "thread run must be safe");

    println!("running the same replicas over loopback TCP for {wall:?}…");
    let net = experiment.run_net(42, wall);
    assert!(net.violations.is_empty(), "net run must be safe");

    println!(
        "\n  {:<18} {:>14} {:>14} {:>14}",
        "", "simulator", "real threads", "loopback tcp"
    );
    println!(
        "  {:<18} {:>14.0} {:>14.0} {:>14.0}",
        "throughput (req/s)", sim.throughput, threads.throughput, net.throughput
    );
    println!(
        "  {:<18} {:>14.2} {:>14.3} {:>14.3}",
        "mean latency (ms)", sim.mean_latency_ms, threads.mean_latency_ms, net.mean_latency_ms
    );
    println!(
        "  {:<18} {:>14} {:>14} {:>14}",
        "slots decided", sim.decided, threads.decided, net.decided
    );
    println!("  {:<18} {:>14} {:>14} {:>14}", "safety", "OK", "OK", "OK");
    let moved: u64 = net.node_msgs.iter().sum();
    println!(
        "\n(thread/net latencies are in-process hops — microseconds, not the \
         simulator's modeled LAN RTT; the TCP run moved {moved} wire-encoded \
         messages across {} sockets)",
        net.node_msgs.len()
    );
}
