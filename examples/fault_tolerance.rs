//! Fault tolerance walkthrough: a 25-node PigPaxos cluster survives a
//! follower crash, its recovery, and finally a leader crash with
//! re-election — with a per-second throughput timeline so the impact of
//! each event is visible.
//!
//! Unlike the paper's Fig. 13 (clients pinned to the healthy leader,
//! showing the *protocol's* ≈3% dip — regenerate with
//! `cargo run -p pigpaxos-bench --bin fig13`), clients here pick random
//! replicas, so the visible dips are dominated by *client-side* retry
//! stalls against crashed nodes. The protocol itself keeps committing
//! throughout; safety is asserted at the end.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use paxi::{Experiment, TargetPolicy};
use pigpaxos::PigConfig;
use simnet::{Control, NodeId, SimDuration, SimTime};

fn main() {
    let quick = std::env::var_os("PIG_QUICK").is_some();
    let (total, crash_t, recover_t, leader_crash_t) = if quick {
        (6u64, 1, 3, 4)
    } else {
        (12, 3, 6, 8)
    };

    let result = Experiment::lan(PigConfig::lan(3), 25)
        .clients(80)
        .warmup(SimDuration::from_secs(0))
        .measure(SimDuration::from_secs(total))
        .timeline_bucket(SimDuration::from_secs(1))
        // Clients spread over all replicas so they survive the leader
        // crash by redirecting to whoever wins the next election.
        .target(TargetPolicy::Random((0..25u32).map(NodeId).collect()))
        .retry_timeout(SimDuration::from_millis(400))
        .run_sim_with(paxi::DEFAULT_SEED, move |sim, _| {
            // One follower in relay group 0 crashes…
            sim.schedule_control(SimTime::from_secs(crash_t), Control::Crash(NodeId(5)));
            // …recovers and catches up via batched LearnReq…
            sim.schedule_control(SimTime::from_secs(recover_t), Control::Recover(NodeId(5)));
            // …then the leader itself crashes; a follower takes over.
            sim.schedule_control(
                SimTime::from_secs(leader_crash_t),
                Control::Crash(NodeId(0)),
            );
        });

    assert!(
        result.violations.is_empty(),
        "safety must hold through every fault"
    );

    println!("PigPaxos 25 nodes / 3 relay groups, 80 clients\n");
    println!("{:>7} {:>12}   event", "time(s)", "tput(req/s)");
    for (t, tput) in &result.timeline {
        let ts = *t as u64;
        let event = if ts == crash_t + 1 {
            "<- follower n5 crashed (dip = clients that picked n5 stall one retry)"
        } else if ts == recover_t + 1 {
            "<- n5 recovered, catching up via batched LearnReq"
        } else if ts == leader_crash_t + 1 {
            "<- LEADER crashed; election in progress"
        } else if ts == leader_crash_t + 2 {
            "<- new leader serving (clients keep stalling on n0 until retry redirects them)"
        } else {
            ""
        };
        println!("{t:>7.0} {tput:>12.0}   {event}");
    }
    println!(
        "\ndecided slots: {}   safety violations: {}",
        result.decided,
        result.violations.len()
    );
}
