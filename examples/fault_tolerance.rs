//! Fault tolerance walkthrough: a 25-node PigPaxos cluster survives a
//! follower crash, its recovery, and finally a leader crash with
//! re-election — with a per-second throughput timeline so the impact of
//! each event is visible.
//!
//! Unlike the paper's Fig. 13 (clients pinned to the healthy leader,
//! showing the *protocol's* ≈3% dip — regenerate with
//! `cargo run -p pigpaxos-bench --bin fig13`), clients here pick random
//! replicas, so the visible dips are dominated by *client-side* retry
//! stalls against crashed nodes. The protocol itself keeps committing
//! throughout; safety is asserted at the end.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use paxi::harness::{run_spec, RunSpec};
use paxi::TargetPolicy;
use pigpaxos::{pig_builder, PigConfig};
use simnet::{Control, NodeId, SimDuration, SimTime};

fn main() {
    let spec = RunSpec {
        n_clients: 80,
        warmup: SimDuration::from_secs(0),
        measure: SimDuration::from_secs(12),
        timeline_bucket: Some(SimDuration::from_secs(1)),
        // Clients spread over all replicas so they survive the leader
        // crash by redirecting to whoever wins the next election.
        retry_timeout: SimDuration::from_millis(400),
        ..RunSpec::lan(25, 80)
    };

    let result = run_spec(
        &spec,
        pig_builder(PigConfig::lan(3)),
        TargetPolicy::Random((0..25u32).map(NodeId).collect()),
        |sim, _| {
            // t=3s: one follower in relay group 0 crashes.
            sim.schedule_control(SimTime::from_secs(3), Control::Crash(NodeId(5)));
            // t=6s: it recovers and catches up via batched LearnReq.
            sim.schedule_control(SimTime::from_secs(6), Control::Recover(NodeId(5)));
            // t=8s: the leader itself crashes; a follower takes over.
            sim.schedule_control(SimTime::from_secs(8), Control::Crash(NodeId(0)));
        },
    );

    assert!(
        result.violations.is_empty(),
        "safety must hold through every fault"
    );

    println!("PigPaxos 25 nodes / 3 relay groups, 80 clients\n");
    println!("{:>7} {:>12}   event", "time(s)", "tput(req/s)");
    for (t, tput) in &result.timeline {
        let event = match *t as u64 {
            4 => "<- follower n5 crashed at t=3s (dip = clients that picked n5 stall one retry)",
            7 => "<- n5 recovered at t=6s, catching up via batched LearnReq",
            9 => "<- LEADER crashed at t=8s; election in progress",
            10 => "<- new leader serving (clients keep stalling on n0 until retry redirects them)",
            _ => "",
        };
        println!("{t:>7.0} {tput:>12.0}   {event}");
    }
    println!(
        "\ndecided slots: {}   safety violations: {}",
        result.decided,
        result.violations.len()
    );
}
