//! Quickstart: stand up a 9-node PigPaxos cluster on the deterministic
//! simulator, drive it with closed-loop clients, and print the numbers
//! that matter. One builder call — protocol, topology, and workload are
//! orthogonal axes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use paxi::Experiment;
use pigpaxos::PigConfig;
use simnet::SimDuration;

fn main() {
    let quick = std::env::var_os("PIG_QUICK").is_some();
    // A 9-replica LAN cluster, 16 closed-loop clients, the paper's
    // default workload (1000 keys, 50/50 read-write, 8-byte values).
    // PigPaxos with 3 relay groups; clients default to the leader.
    let result = Experiment::lan(PigConfig::lan(3), 9)
        .clients(16)
        .warmup(SimDuration::from_millis(500))
        .measure(SimDuration::from_secs(if quick { 1 } else { 2 }))
        .run_sim(paxi::DEFAULT_SEED);

    // Safety is machine-checked on every run.
    assert!(
        result.violations.is_empty(),
        "no two nodes may disagree on a slot"
    );

    println!("PigPaxos, 9 nodes, 3 relay groups, 16 clients");
    println!("  throughput      {:>8.0} req/s", result.throughput);
    println!("  mean latency    {:>8.2} ms", result.mean_latency_ms);
    println!("  p99 latency     {:>8.2} ms", result.p99_latency_ms);
    println!("  slots decided   {:>8}", result.decided);
    println!(
        "  leader load     {:>8.1} msgs/op   (model: {:.1})",
        result.leader_msgs_per_op,
        analytical::leader_load(3)
    );
    println!(
        "  follower load   {:>8.1} msgs/op   (model: {:.1})",
        result.follower_msgs_per_op,
        analytical::follower_load(9, 3)
    );
}
