//! Reproducibility: the whole stack is deterministic given a seed.

use paxi::Experiment;
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use simnet::SimDuration;

fn exp<P: paxi::ProtocolSpec>(proto: P) -> Experiment<P> {
    Experiment::lan(proto, 9)
        .clients(4)
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(600))
}

#[test]
fn same_seed_same_results_pigpaxos() {
    let a = exp(PigConfig::lan(3)).run_sim(42);
    let b = exp(PigConfig::lan(3)).run_sim(42);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.decided, b.decided);
    assert_eq!(a.node_msgs, b.node_msgs);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
}

#[test]
fn same_seed_same_results_paxos() {
    let a = exp(PaxosConfig::lan()).run_sim(7);
    let b = exp(PaxosConfig::lan()).run_sim(7);
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.node_msgs, b.node_msgs);
}

#[test]
fn same_seed_same_trace_fingerprint_with_batching() {
    // Regression for the batching subsystem: the batch flush timer and
    // the P2aBatch/P2bBatch paths must stay on the deterministic
    // schedule. Two identically-seeded runs must produce bit-identical
    // message traces, hashed by the simulator.
    let batch = || paxi::BatchConfig::new(8, SimDuration::from_micros(200));
    let run_once = |protocol: u8| match protocol {
        0 => exp(PaxosConfig::lan().with_batch(batch()))
            .capture_trace()
            .run_sim(42),
        _ => exp(PigConfig::lan(3).with_batch(batch()))
            .capture_trace()
            .run_sim(42),
    };
    for protocol in [0, 1] {
        let a = run_once(protocol);
        let b = run_once(protocol);
        let fa = a.trace_fingerprint.expect("trace captured");
        let fb = b.trace_fingerprint.expect("trace captured");
        assert_eq!(
            fa, fb,
            "batched runs must be trace-identical under one seed"
        );
        assert_ne!(
            fa, 0xcbf2_9ce4_8422_2325,
            "fingerprint of a non-empty trace"
        );
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.node_msgs, b.node_msgs);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }
}

#[test]
fn different_seeds_differ() {
    let a = exp(PigConfig::lan(3)).run_sim(1);
    let b = exp(PigConfig::lan(3)).run_sim(2);
    // Equal aggregate metrics across different seeds would suggest the
    // seed is ignored somewhere.
    assert_ne!(
        a.node_msgs, b.node_msgs,
        "different seeds should produce different message interleavings"
    );
}
