//! Reproducibility: the whole stack is deterministic given a seed.

use paxi::harness::{run, RunSpec};
use paxi::TargetPolicy;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use simnet::{NodeId, SimDuration};

fn spec(seed: u64) -> RunSpec {
    RunSpec {
        seed,
        warmup: SimDuration::from_millis(200),
        measure: SimDuration::from_millis(600),
        ..RunSpec::lan(9, 4)
    }
}

#[test]
fn same_seed_same_results_pigpaxos() {
    let a = run(&spec(42), pig_builder(PigConfig::lan(3)), TargetPolicy::Fixed(NodeId(0)));
    let b = run(&spec(42), pig_builder(PigConfig::lan(3)), TargetPolicy::Fixed(NodeId(0)));
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.decided, b.decided);
    assert_eq!(a.node_msgs, b.node_msgs);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
}

#[test]
fn same_seed_same_results_paxos() {
    let a = run(&spec(7), paxos_builder(PaxosConfig::lan()), TargetPolicy::Fixed(NodeId(0)));
    let b = run(&spec(7), paxos_builder(PaxosConfig::lan()), TargetPolicy::Fixed(NodeId(0)));
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.node_msgs, b.node_msgs);
}

#[test]
fn different_seeds_differ() {
    let a = run(&spec(1), pig_builder(PigConfig::lan(3)), TargetPolicy::Fixed(NodeId(0)));
    let b = run(&spec(2), pig_builder(PigConfig::lan(3)), TargetPolicy::Fixed(NodeId(0)));
    // Equal aggregate metrics across different seeds would suggest the
    // seed is ignored somewhere.
    assert_ne!(
        a.node_msgs, b.node_msgs,
        "different seeds should produce different message interleavings"
    );
}
