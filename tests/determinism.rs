//! Reproducibility: the whole stack is deterministic given a seed.

use paxi::harness::{run, RunSpec};
use paxi::TargetPolicy;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use simnet::{NodeId, SimDuration};

fn spec(seed: u64) -> RunSpec {
    RunSpec {
        seed,
        warmup: SimDuration::from_millis(200),
        measure: SimDuration::from_millis(600),
        ..RunSpec::lan(9, 4)
    }
}

#[test]
fn same_seed_same_results_pigpaxos() {
    let a = run(
        &spec(42),
        pig_builder(PigConfig::lan(3)),
        TargetPolicy::Fixed(NodeId(0)),
    );
    let b = run(
        &spec(42),
        pig_builder(PigConfig::lan(3)),
        TargetPolicy::Fixed(NodeId(0)),
    );
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.decided, b.decided);
    assert_eq!(a.node_msgs, b.node_msgs);
    assert_eq!(a.throughput, b.throughput);
    assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
}

#[test]
fn same_seed_same_results_paxos() {
    let a = run(
        &spec(7),
        paxos_builder(PaxosConfig::lan()),
        TargetPolicy::Fixed(NodeId(0)),
    );
    let b = run(
        &spec(7),
        paxos_builder(PaxosConfig::lan()),
        TargetPolicy::Fixed(NodeId(0)),
    );
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.node_msgs, b.node_msgs);
}

#[test]
fn same_seed_same_trace_fingerprint_with_batching() {
    // Regression for the batching subsystem: the batch flush timer and
    // the P2aBatch/P2bBatch paths must stay on the deterministic
    // schedule. Two identically-seeded runs must produce bit-identical
    // message traces, hashed by the simulator.
    let run_once = |protocol: u8| {
        let mut s = spec(42);
        s.capture_trace = true;
        let batch = paxi::BatchConfig::new(8, SimDuration::from_micros(200));
        match protocol {
            0 => {
                let mut cfg = PaxosConfig::lan();
                cfg.batch = batch;
                run(&s, paxos_builder(cfg), TargetPolicy::Fixed(NodeId(0)))
            }
            _ => {
                let mut cfg = PigConfig::lan(3);
                cfg.paxos.batch = batch;
                run(&s, pig_builder(cfg), TargetPolicy::Fixed(NodeId(0)))
            }
        }
    };
    for protocol in [0, 1] {
        let a = run_once(protocol);
        let b = run_once(protocol);
        let fa = a.trace_fingerprint.expect("trace captured");
        let fb = b.trace_fingerprint.expect("trace captured");
        assert_eq!(
            fa, fb,
            "batched runs must be trace-identical under one seed"
        );
        assert_ne!(
            fa, 0xcbf2_9ce4_8422_2325,
            "fingerprint of a non-empty trace"
        );
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.node_msgs, b.node_msgs);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
    }
}

#[test]
fn different_seeds_differ() {
    let a = run(
        &spec(1),
        pig_builder(PigConfig::lan(3)),
        TargetPolicy::Fixed(NodeId(0)),
    );
    let b = run(
        &spec(2),
        pig_builder(PigConfig::lan(3)),
        TargetPolicy::Fixed(NodeId(0)),
    );
    // Equal aggregate metrics across different seeds would suggest the
    // seed is ignored somewhere.
    assert_ne!(
        a.node_msgs, b.node_msgs,
        "different seeds should produce different message interleavings"
    );
}
