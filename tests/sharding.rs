//! End-to-end sharding tests over real protocols: aggregate commits
//! across groups, per-key linearizability spanning a live `ShardMove`,
//! read-your-writes through stale-map redirects, and exactly-once
//! decision of every client command across all shard logs.

use paxi::{
    ClientRequest, Command, Envelope, Key, Operation, ProtoMessage, RequestId, SafetyMonitor,
    ShardMap, ShardedExperiment, Value, DEFAULT_SEED,
};
use paxos::PaxosConfig;
use simnet::{Actor, Context, NodeId, SimDuration, TimerId};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Default)]
struct Report {
    completed: u64,
    redirects: u64,
    violations: Vec<String>,
}

/// Closed-loop per-key checker: `put(k, c); get(k)` rounds over keys
/// inside the moving range, asserting each get returns the immediately
/// preceding acked put. Its [`ShardMap`] copy is deliberately never
/// refreshed, so after the move every request first hits the old owner
/// and must come back as a redirect — the stale-map path under test.
struct MoveChecker<P> {
    map: ShardMap,
    leaders: Vec<NodeId>,
    keys: Vec<Key>,
    idx: usize,
    counter: u64,
    last_write: HashMap<Key, u64>,
    seq: u64,
    expecting_get: bool,
    outstanding: Option<Command>,
    retry: SimDuration,
    report: Arc<Mutex<Report>>,
    _proto: PhantomData<P>,
}

impl<P: ProtoMessage> MoveChecker<P> {
    fn new(
        map: ShardMap,
        leaders: Vec<NodeId>,
        keys: Vec<Key>,
        report: Arc<Mutex<Report>>,
    ) -> Self {
        MoveChecker {
            map,
            leaders,
            keys,
            idx: 0,
            counter: 0,
            last_write: HashMap::new(),
            seq: 0,
            expecting_get: false,
            outstanding: None,
            retry: SimDuration::from_millis(100),
            report,
            _proto: PhantomData,
        }
    }

    fn route(&self, op: &Operation) -> NodeId {
        let g = op.key().map_or(0, |k| self.map.group_for(k)) as usize;
        self.leaders[g]
    }

    fn issue(&mut self, op: Operation, ctx: &mut Context<Envelope<P>>) {
        self.seq += 1;
        let id = RequestId {
            client: ctx.node(),
            seq: self.seq,
        };
        let command = Command { id, op };
        self.outstanding = Some(command.clone());
        let to = self.route(&command.op);
        ctx.send(to, Envelope::Request(ClientRequest { command }));
        ctx.set_timer(self.retry, self.seq);
    }

    fn resend(&mut self, to: Option<NodeId>, ctx: &mut Context<Envelope<P>>) {
        if let Some(command) = self.outstanding.clone() {
            let to = to.unwrap_or_else(|| self.route(&command.op));
            ctx.send(to, Envelope::Request(ClientRequest { command }));
        }
    }

    fn start_round(&mut self, ctx: &mut Context<Envelope<P>>) {
        self.idx = (self.idx + 1) % self.keys.len();
        self.counter += 1;
        self.expecting_get = false;
        let key = self.keys[self.idx];
        self.issue(
            Operation::Put(key, Value::from(self.counter.to_be_bytes().as_slice())),
            ctx,
        );
    }
}

impl<P: ProtoMessage> Actor<Envelope<P>> for MoveChecker<P> {
    fn on_start(&mut self, ctx: &mut Context<Envelope<P>>) {
        self.start_round(ctx);
    }

    fn on_message(&mut self, _f: NodeId, msg: Envelope<P>, ctx: &mut Context<Envelope<P>>) {
        let Envelope::Reply(reply) = msg else { return };
        if reply.id.seq != self.seq {
            return; // stale reply from an earlier round
        }
        if !reply.ok {
            if reply.redirect.is_some() {
                self.report.lock().expect("report lock").redirects += 1;
            }
            self.resend(reply.redirect, ctx);
            return;
        }
        self.outstanding = None;
        let key = self.keys[self.idx];
        if self.expecting_get {
            let want = self.last_write.get(&key).copied().expect("put acked first");
            let expected = Value::from(want.to_be_bytes().as_slice());
            let mut rep = self.report.lock().expect("report lock");
            if reply.value.as_ref() != Some(&expected) {
                rep.violations.push(format!(
                    "key {key}: get saw {:?}, expected counter {want}",
                    reply.value
                ));
            }
            rep.completed += 1;
            drop(rep);
            self.start_round(ctx);
        } else {
            self.last_write.insert(key, self.counter);
            self.expecting_get = true;
            self.issue(Operation::Get(key), ctx);
        }
    }

    fn on_timer(&mut self, _i: TimerId, kind: u64, ctx: &mut Context<Envelope<P>>) {
        if self.outstanding.as_ref().map(|c| c.id.seq) == Some(kind) {
            self.resend(None, ctx);
            ctx.set_timer(self.retry, kind);
        }
    }
}

/// Every client-issued command (routers and checkers — any id from a
/// non-replica node) must appear exactly once across all shard decision
/// logs: nothing lost, nothing executed twice through redirects.
fn assert_exactly_once(safeties: &[SafetyMonitor], n_replicas: u32) {
    let mut seen: HashMap<RequestId, u64> = HashMap::new();
    for s in safeties {
        for ((_space, _slot), id) in s.decisions() {
            if id.client.0 >= n_replicas {
                *seen.entry(id).or_default() += 1;
            }
        }
    }
    assert!(!seen.is_empty(), "no client commands decided at all");
    let dups: Vec<_> = seen.iter().filter(|(_, &n)| n > 1).collect();
    assert!(dups.is_empty(), "commands decided more than once: {dups:?}");
}

fn checker_experiment(report: Arc<Mutex<Report>>) -> ShardedExperiment<PaxosConfig> {
    // 4 shards x 3 replicas over a 2000-key map (stride 500). The
    // routers' background workload only touches keys 0..1000 (shards 0
    // and 1); the range [1000, 1500) moves from shard 2 to shard 3 at
    // 600ms, mid-run, and the checker hammers keys inside that moving
    // range only — no other writer touches them, so every get must see
    // the checker's own latest acked put.
    ShardedExperiment::new(PaxosConfig::lan(), 4, 3)
        .routers(4)
        .key_space(2000)
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(1800))
        .move_range(SimDuration::from_millis(600), 1000, 3)
        .with_client(move |layout| {
            Box::new(MoveChecker::new(
                layout.map.clone(),
                layout.leaders.clone(),
                (1000..1008).collect(),
                report.clone(),
            ))
        })
}

#[test]
fn sharded_paxos_all_shards_commit() {
    let safeties = Arc::new(Mutex::new(Vec::new()));
    let captured = safeties.clone();
    let r = ShardedExperiment::new(PaxosConfig::lan(), 3, 3)
        .routers(9)
        .warmup(SimDuration::from_millis(500))
        .measure(SimDuration::from_millis(2000))
        .run_sim_with(DEFAULT_SEED, move |_, layout| {
            *captured.lock().expect("lock") = layout
                .clusters
                .iter()
                .map(|c| c.safety.clone())
                .collect::<Vec<_>>();
        });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.throughput > 100.0, "throughput {}", r.throughput);
    for (s, safety) in safeties.lock().expect("lock").iter().enumerate() {
        assert!(safety.decided_count() > 50, "shard {s} barely committed");
    }
    assert_exactly_once(&safeties.lock().expect("lock"), 9);
}

#[test]
fn per_key_linearizability_across_live_move_sim() {
    let report = Arc::new(Mutex::new(Report::default()));
    let safeties = Arc::new(Mutex::new(Vec::new()));
    let captured = safeties.clone();
    let r = checker_experiment(report.clone()).run_sim_with(DEFAULT_SEED, move |_, layout| {
        *captured.lock().expect("lock") = layout
            .clusters
            .iter()
            .map(|c| c.safety.clone())
            .collect::<Vec<_>>();
    });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    let rep = report.lock().expect("report lock");
    assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    // The checker must have kept completing rounds straight through the
    // move (600ms into a 2s run) without stalling.
    assert!(
        rep.completed > 300,
        "only {} rounds completed",
        rep.completed
    );
    // Post-move, the checker's stale map sends every request to the old
    // owner first, so redirects must actually have been exercised.
    assert!(rep.redirects > 0, "move never forced a redirect");
    assert_exactly_once(&safeties.lock().expect("lock"), 12);
}

#[test]
fn per_key_linearizability_across_live_move_threads() {
    let report = Arc::new(Mutex::new(Report::default()));
    let safeties = Arc::new(Mutex::new(Vec::new()));
    let captured = safeties.clone();
    let r = checker_experiment(report.clone()).run_threads_with(
        DEFAULT_SEED,
        Duration::from_millis(1500),
        move |layout| {
            *captured.lock().expect("lock") = layout
                .clusters
                .iter()
                .map(|c| c.safety.clone())
                .collect::<Vec<_>>();
        },
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    let rep = report.lock().expect("report lock");
    assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    // Wall-clock run: looser floor, but the loop must survive the move.
    assert!(
        rep.completed > 20,
        "only {} rounds completed",
        rep.completed
    );
    assert_exactly_once(&safeties.lock().expect("lock"), 12);
}
