//! Long-run soak tier: hours-scale steady state, compressed.
//!
//! Every protocol runs a compaction-enabled experiment long enough to
//! decide hundreds of snapshot intervals worth of operations, then the
//! suite asserts the three properties that make long-running workloads
//! viable:
//!
//! 1. **Memory boundedness** — `max_log_len` (the peak retained log /
//!    instance-table size any replica ever reported) stays at most
//!    2 × the snapshot interval. Without compaction it would equal the
//!    total decided count.
//! 2. **Safety** — zero violations from the shared [`paxi::SafetyMonitor`]
//!    across the entire run, truncation included.
//! 3. **Client semantics** — a sequential read-your-writes checker
//!    (exactly the `read_your_writes.rs` discipline) rides along on an
//!    extra client node and must observe every one of its writes, with
//!    the windowed session table still deduplicating retries.
//!
//! Sizing: the full tier (release builds, or `PIG_SOAK=full`) drives
//! ≥ 200k simulated ops per protocol. `PIG_QUICK=1` shrinks it to a CI
//! smoke run; plain debug `cargo test` uses a mid-size target so the
//! tier-1 suite stays minutes, not tens of minutes.

use paxi::{
    ClientRequest, Command, Envelope, Experiment, Operation, ProtoMessage, ProtocolSpec, RequestId,
    RunResult, SnapshotConfig, Value,
};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use simnet::{Actor, Context, NodeId, SimDuration, TimerId};
use std::cell::RefCell;
use std::rc::Rc;

fn quick() -> bool {
    std::env::var_os("PIG_QUICK").is_some()
}

/// Ops each protocol must decide. Full mode is the ≥200k-op soak; quick
/// mode is the CI smoke tier; plain debug builds use a mid-size default
/// so `cargo test` stays fast (export `PIG_SOAK=full` to force the full
/// tier in debug too).
fn target_ops() -> u64 {
    if quick() {
        5_000
    } else if cfg!(debug_assertions) && std::env::var_os("PIG_SOAK").is_none() {
        40_000
    } else {
        200_000
    }
}

/// Snapshot interval sized so the run spans many compactions while the
/// in-flight command window stays well under one interval.
fn interval() -> u64 {
    if quick() {
        500
    } else {
        1_000
    }
}

// ---- the sequential read-your-writes checker ----------------------------

/// Key reserved for the checker, outside the workload keyspace.
const CHECK_KEY: u64 = 1_000_007;

/// Issues `put(k, v_i); get(k)` pairs sequentially against a fixed
/// replica and records any read that does not return the value of the
/// immediately preceding write.
struct CheckingClient<P> {
    target: NodeId,
    rounds: u64,
    seq: u64,
    current_round: u64,
    expecting_get: bool,
    finished: bool,
    failures: Rc<RefCell<Vec<String>>>,
    completed: Rc<RefCell<u64>>,
    _proto: std::marker::PhantomData<P>,
}

impl<P: ProtoMessage> CheckingClient<P> {
    fn value_for_round(round: u64) -> Value {
        Value::from(round.to_be_bytes().as_slice())
    }

    fn issue(&mut self, op: Operation, ctx: &mut Context<Envelope<P>>) {
        self.seq += 1;
        let id = RequestId {
            client: ctx.node(),
            seq: self.seq,
        };
        ctx.send(
            self.target,
            Envelope::Request(ClientRequest {
                command: Command { id, op },
            }),
        );
        // Retry until answered: a lost reply must replay from the
        // session table (exactly-once), not hang the checker.
        ctx.set_timer(SimDuration::from_millis(100), self.seq);
    }

    fn next_round(&mut self, ctx: &mut Context<Envelope<P>>) {
        if self.current_round >= self.rounds {
            self.finished = true;
            return;
        }
        self.current_round += 1;
        self.expecting_get = false;
        // A key outside the background workload's keyspace (0..1000):
        // the checker owns it, so every read must see the checker's own
        // last write even while thousands of background commands force
        // compactions around it.
        self.issue(
            Operation::Put(CHECK_KEY, Self::value_for_round(self.current_round)),
            ctx,
        );
    }

    fn resend(&mut self, ctx: &mut Context<Envelope<P>>) {
        let op = if self.expecting_get {
            Operation::Get(CHECK_KEY)
        } else {
            Operation::Put(CHECK_KEY, Self::value_for_round(self.current_round))
        };
        let id = RequestId {
            client: ctx.node(),
            seq: self.seq,
        };
        ctx.send(
            self.target,
            Envelope::Request(ClientRequest {
                command: Command { id, op },
            }),
        );
        ctx.set_timer(SimDuration::from_millis(100), self.seq);
    }
}

impl<P: ProtoMessage> Actor<Envelope<P>> for CheckingClient<P> {
    fn on_start(&mut self, ctx: &mut Context<Envelope<P>>) {
        self.next_round(ctx);
    }

    fn on_message(&mut self, _f: NodeId, msg: Envelope<P>, ctx: &mut Context<Envelope<P>>) {
        let Envelope::Reply(reply) = msg else { return };
        if self.finished || !reply.ok || reply.id.seq != self.seq {
            return;
        }
        if self.expecting_get {
            let expected = Self::value_for_round(self.current_round);
            if reply.value.as_ref() != Some(&expected) {
                self.failures.borrow_mut().push(format!(
                    "round {}: get returned {:?}, expected {:?}",
                    self.current_round, reply.value, expected
                ));
            }
            *self.completed.borrow_mut() += 1;
            self.next_round(ctx);
        } else {
            self.expecting_get = true;
            self.issue(Operation::Get(CHECK_KEY), ctx);
        }
    }

    fn on_timer(&mut self, _i: TimerId, seq: u64, ctx: &mut Context<Envelope<P>>) {
        if !self.finished && seq == self.seq {
            self.resend(ctx);
        }
    }
}

// ---- the soak harness ----------------------------------------------------

struct Soak {
    result: RunResult,
    ryw_failures: Vec<String>,
    ryw_completed: u64,
    ryw_rounds: u64,
}

/// Run `proto` long enough for ~`target_ops()` decided operations at an
/// assumed (lowballed) rate, with the RYW checker riding along.
fn soak<P: ProtocolSpec>(proto: P, n: usize, clients: usize, pipeline: usize, rate: u64) -> Soak {
    let measure_secs = (target_ops() / rate).max(2);
    let ryw_rounds = if quick() { 100 } else { 300 };
    let failures = Rc::new(RefCell::new(Vec::new()));
    let completed = Rc::new(RefCell::new(0u64));
    let (failures2, completed2) = (failures.clone(), completed.clone());
    let result = Experiment::lan(proto, n)
        .clients(clients)
        .client_pipeline(pipeline)
        .extra_client_nodes(1)
        .warmup(SimDuration::from_millis(500))
        .measure(SimDuration::from_secs(measure_secs))
        .run_sim_with(paxi::DEFAULT_SEED, move |sim, _| {
            sim.add_actor(Box::new(CheckingClient::<P::Msg> {
                target: NodeId(0),
                rounds: ryw_rounds,
                seq: 0,
                current_round: 0,
                expecting_get: false,
                finished: false,
                failures: failures2,
                completed: completed2,
                _proto: std::marker::PhantomData,
            }));
        });
    let ryw_failures = failures.borrow().clone();
    let ryw_completed = *completed.borrow();
    Soak {
        result,
        ryw_failures,
        ryw_completed,
        ryw_rounds,
    }
}

fn assert_soak(name: &str, s: &Soak) {
    let r = &s.result;
    let target = target_ops();
    let iv = interval();
    assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
    assert!(
        r.decided >= target,
        "{name}: soak must decide >= {target} ops, got {}",
        r.decided
    );
    assert!(
        r.snapshots_taken >= r.decided / iv / 2,
        "{name}: compaction must keep firing ({} snapshots over {} ops at interval {iv})",
        r.snapshots_taken,
        r.decided
    );
    assert!(
        r.max_log_len <= 2 * iv,
        "{name}: memory must stay bounded: peak log {} > 2x interval {iv} \
         (decided {}, snapshots {})",
        r.max_log_len,
        r.decided,
        r.snapshots_taken
    );
    assert!(
        s.ryw_failures.is_empty(),
        "{name}: read-your-writes violated across compaction: {:?}",
        s.ryw_failures
    );
    assert_eq!(
        s.ryw_completed, s.ryw_rounds,
        "{name}: every checker round must complete"
    );
    eprintln!(
        "{name}: {} ops decided, peak log {} (interval {iv}), {} snapshots, {} installs",
        r.decided, r.max_log_len, r.snapshots_taken, r.snapshots_installed
    );
}

#[test]
fn paxos_soak_bounded_memory() {
    let cfg = PaxosConfig::lan()
        .with_batch(paxi::BatchConfig::adaptive(
            32,
            SimDuration::from_micros(200),
        ))
        .with_snapshots(SnapshotConfig::every_ops(interval()));
    let s = soak(cfg, 5, 16, 4, 5_000);
    assert_soak("paxos", &s);
}

#[test]
fn pigpaxos_soak_bounded_memory() {
    let cfg = PigConfig::lan(2)
        .with_batch(paxi::BatchConfig::adaptive(
            32,
            SimDuration::from_micros(200),
        ))
        .with_snapshots(SnapshotConfig::every_ops(interval()));
    let s = soak(cfg, 5, 16, 4, 5_000);
    assert_soak("pigpaxos", &s);
}

#[test]
fn epaxos_soak_bounded_memory() {
    let cfg = epaxos::EpaxosConfig::default().with_snapshots(SnapshotConfig::every_ops(interval()));
    let s = soak(cfg, 5, 12, 1, 900);
    assert_soak("epaxos", &s);
}

/// The byte-based trigger also bounds memory: same soak (shortened), a
/// byte threshold instead of an op count.
#[test]
fn byte_interval_soak_bounded_memory() {
    // Paper-default commands average ~24 payload bytes (8 B values,
    // 50/50 read mix, 20 B of id/key framing), so a 16 KiB threshold is
    // roughly 700 retained commands per compaction cycle.
    let threshold_bytes = 16 * 1024;
    let cfg = PaxosConfig::lan()
        .with_batch(paxi::BatchConfig::adaptive(
            32,
            SimDuration::from_micros(200),
        ))
        .with_snapshots(SnapshotConfig::every_bytes(threshold_bytes));
    let r = Experiment::lan(cfg, 5)
        .clients(16)
        .client_pipeline(4)
        .warmup(SimDuration::from_millis(500))
        .measure(SimDuration::from_secs(if quick() { 2 } else { 8 }))
        .run_sim(paxi::DEFAULT_SEED);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.snapshots_taken > 0, "byte trigger must fire");
    // One threshold's worth of commands (lowballing the per-command
    // size at 20 B), doubled for the in-flight window — same shape as
    // the op-count gate.
    let per_cmd = 20;
    let bound = 2 * (threshold_bytes as u64) / per_cmd;
    assert!(
        r.max_log_len <= bound,
        "byte-triggered compaction must bound the log: {} > {bound}",
        r.max_log_len
    );
}

/// Regression for the snapshot-capture staleness bug: `force_snapshot`
/// with a static executed frontier must keep the snapshot already held,
/// not recapture. A recapture at an unchanged `up_to` would freeze the
/// *current* session table under the old frontier — session entries
/// recorded since the frontier froze would claim coverage the snapshot
/// cannot justify. Runs in every tier (it is component-level and fast).
#[test]
fn snapshot_capture_skips_static_frontier() {
    use paxi::{Ballot, ClientReply, SafetyMonitor, SessionTable};
    use paxos::{accept_batch, apply_batch_votes, propose_batch, Acceptor, Leader, Phase1Outcome};
    use simnet::SimTime;

    fn decide_wave(
        leader: &mut Leader,
        acc: &mut Acceptor,
        follower: &mut Acceptor,
        sessions: &mut SessionTable,
        seq: &mut u64,
        count: usize,
    ) {
        let now = SimTime::from_micros(*seq * 10 + 10);
        let client = NodeId(42);
        let batch: Vec<(NodeId, Command)> = (0..count)
            .map(|_| {
                *seq += 1;
                let cmd = Command {
                    id: RequestId { client, seq: *seq },
                    op: Operation::Put(*seq % 8, Value::zeros(8)),
                };
                (client, cmd)
            })
            .collect();
        let p = propose_batch(leader, acc, batch, now);
        let a = accept_batch(
            follower,
            p.ballot,
            p.first_slot,
            &p.commands,
            p.commit_up_to,
        );
        follower.execute_ready();
        let wave = apply_batch_votes(leader, acc, p.ballot, a.votes).expect("wave must decide");
        assert!(wave.preempted.is_none(), "nothing contends here");
        for (_slot, id, value) in wave.executed {
            sessions.record(&ClientReply::ok(id, value));
        }
    }

    let safety = SafetyMonitor::new();
    let mut leader = Leader::new(NodeId(0), 2);
    let mut acc = Acceptor::new(NodeId(0), safety.clone());
    let mut follower = Acceptor::new(NodeId(1), safety.clone());
    let ballot = leader.start_campaign(Ballot::ZERO);
    let votes = vec![acc.on_p1a(ballot, 0), follower.on_p1a(ballot, 0)];
    match leader.on_p1b_votes(votes, 0) {
        Phase1Outcome::Won { reproposals } => assert!(reproposals.is_empty()),
        other => panic!("fresh cluster campaign must win, got {other:?}"),
    }

    let mut sessions = SessionTable::new();
    let mut seq = 0u64;
    decide_wave(
        &mut leader,
        &mut acc,
        &mut follower,
        &mut sessions,
        &mut seq,
        8,
    );
    acc.force_snapshot(&sessions);
    let snap = acc.latest_snapshot().expect("first force captures").clone();
    assert_eq!(snap.up_to, 8);
    assert_eq!(snap.sessions.latest_seq(NodeId(42)), Some(8));

    // Session activity with a static frontier — e.g. a reply cached by
    // the shared reply leg for a command that never went through this
    // log. Forcing again must NOT fold it into a snapshot still bound
    // to slot 8.
    let stray = RequestId {
        client: NodeId(99),
        seq: 1,
    };
    sessions.record(&ClientReply::ok(stray, None));
    acc.force_snapshot(&sessions);
    let snap = acc.latest_snapshot().expect("still held").clone();
    assert_eq!(snap.up_to, 8, "frontier did not move");
    assert_eq!(
        snap.sessions.latest_seq(NodeId(99)),
        None,
        "static frontier must not recapture newer session state"
    );

    // Once the frontier advances the next force recaptures everything.
    decide_wave(
        &mut leader,
        &mut acc,
        &mut follower,
        &mut sessions,
        &mut seq,
        4,
    );
    acc.force_snapshot(&sessions);
    let snap = acc.latest_snapshot().expect("recaptured").clone();
    assert_eq!(snap.up_to, 12);
    assert_eq!(snap.sessions.latest_seq(NodeId(42)), Some(12));
    assert_eq!(snap.sessions.latest_seq(NodeId(99)), Some(1));
}
