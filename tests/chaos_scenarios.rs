//! Chaos-harness integration tests: the client retry-storm regression
//! the capped-backoff bugfix exists for, plus end-to-end coverage of
//! the scenario-file → nemesis → convergence-check pipeline outside
//! the `scenario` driver binary.

use paxi::{Experiment, Nemesis, NemesisLog, TopologyKind};
use simnet::{Control, NodeId, SimDuration, SimTime};

/// Regression for the fixed-interval retry storm: with a quorum down
/// for a full 2s window, clients used to re-send every `retry_timeout`
/// (100ms), i.e. `clients * 2000/100 = 160` retries. Capped
/// exponential backoff must cut that to no more than half, without
/// giving up entirely (retries still > 0 so recovery is detected).
#[test]
fn backoff_caps_retry_storm_during_quorum_outage() {
    let clients = 8;
    let result = Experiment::lan(paxos::PaxosConfig::lan(), 3)
        .clients(clients)
        .retry_timeout(SimDuration::from_millis(100))
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(4000))
        .run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
            // Crash both followers: the leader keeps accepting requests
            // but can never reach quorum, so no client hears a reply.
            for node in [1u32, 2] {
                sim.schedule_control(SimTime::from_millis(500), Control::Crash(NodeId(node)));
                sim.schedule_control(SimTime::from_millis(2500), Control::Recover(NodeId(node)));
            }
        });

    assert!(result.violations.is_empty(), "{:?}", result.violations);
    assert!(result.samples > 0, "no committed samples after recovery");
    let fixed_interval_count = clients as u64 * 2000 / 100;
    assert!(
        result.client_retries > 0,
        "clients must keep probing during the outage"
    );
    assert!(
        result.client_retries <= fixed_interval_count / 2,
        "retry storm not suppressed: {} retries > {} (half the fixed-interval count)",
        result.client_retries,
        fixed_interval_count / 2
    );
}

const PARTITION_SCENARIO: &str = r#"
name = "inline-pig-partition"
protocol = "pigpaxos"
replicas = 5
groups = 2
clients = 6
seed = 77
warmup_ms = 300
measure_ms = 2000
drain_ms = 1500

[[faults]]
at_ms = 700
kind = "partition"
a = [0, 1, 2]
b = [3, 4]

[[faults]]
at_ms = 1500
kind = "heal"

[expect]
converged = true
min_samples = 20
"#;

/// Full pipeline: parse a scenario from text, attach a nemesis in the
/// extra client slot, run it, and check the scenario's own
/// expectations — everything the `scenario` binary does, minus the
/// file I/O, so a unit failure localizes to the library layer.
#[test]
fn scenario_text_drives_nemesis_end_to_end() {
    let sc = paxi::scenario::parse(PARTITION_SCENARIO).expect("scenario parses");
    assert_eq!(sc.topology, TopologyKind::Lan);

    let log = NemesisLog::new();
    let (faults, nemesis_log) = (sc.faults.clone(), log.clone());
    let result = Experiment::lan(pigpaxos::PigConfig::lan(sc.groups.unwrap()), sc.replicas)
        .clients(sc.clients)
        .client_pipeline(sc.pipeline)
        .workload(sc.workload.clone())
        .warmup(sc.warmup)
        .measure(sc.measure)
        .drain(sc.drain)
        .extra_client_nodes(1)
        .run_sim_with(sc.seed, move |sim, _| {
            sim.add_actor(Box::new(Nemesis::<pigpaxos::PigMsg>::new(
                faults,
                nemesis_log,
            )));
        });

    assert!(result.violations.is_empty(), "{:?}", result.violations);
    assert_eq!(
        log.len(),
        sc.faults.len(),
        "nemesis must execute every scheduled fault: {:?}",
        log.entries()
    );
    assert_eq!(
        result.converged(),
        Some(true),
        "replicas must agree on the kv fingerprint after heal + drain: {:?}",
        result.replica_digests
    );
    assert!(result.samples as u64 >= sc.expect.min_samples.unwrap());
}

/// The same scenario under the same seed must reproduce bit-for-bit —
/// the chaos layer (nemesis timers, flaky-link RNG, backoff jitter)
/// must not leak nondeterminism into the run.
#[test]
fn chaos_runs_are_deterministic() {
    let run = || {
        let sc = paxi::scenario::parse(PARTITION_SCENARIO).expect("scenario parses");
        let log = NemesisLog::new();
        let (faults, nemesis_log) = (sc.faults.clone(), log.clone());
        Experiment::lan(pigpaxos::PigConfig::lan(2), sc.replicas)
            .clients(sc.clients)
            .workload(sc.workload.clone())
            .warmup(sc.warmup)
            .measure(sc.measure)
            .drain(sc.drain)
            .extra_client_nodes(1)
            .run_sim_with(sc.seed, move |sim, _| {
                sim.add_actor(Box::new(Nemesis::<pigpaxos::PigMsg>::new(
                    faults,
                    nemesis_log,
                )));
            })
    };
    let (a, b) = (run(), run());
    assert_eq!(a.samples, b.samples);
    assert_eq!(a.decided, b.decided);
    assert_eq!(a.client_retries, b.client_retries);
    assert_eq!(a.node_msgs, b.node_msgs);
    assert_eq!(a.replica_digests, b.replica_digests);
}

/// Flaky links plus a follower crash/restart on plain Paxos: the
/// leader's per-proposal backoff (second bugfix) keeps resends bounded
/// while the cluster still converges once the schedule clears.
#[test]
fn paxos_converges_after_flaky_links_and_crash() {
    let text = r#"
name = "inline-paxos-flaky-crash"
protocol = "paxos"
replicas = 5
clients = 6
seed = 99
warmup_ms = 300
measure_ms = 2200
drain_ms = 1800

[[faults]]
at_ms = 500
kind = "flaky"
from = 0
to = 3
p = 0.3

[[faults]]
at_ms = 800
kind = "crash"
node = 4

[[faults]]
at_ms = 1600
kind = "restart"
node = 4

[[faults]]
at_ms = 1900
kind = "clear_flaky"

[expect]
converged = true
"#;
    let sc = paxi::scenario::parse(text).expect("scenario parses");
    let log = NemesisLog::new();
    let (faults, nemesis_log) = (sc.faults.clone(), log.clone());
    let result = Experiment::lan(paxos::PaxosConfig::lan(), sc.replicas)
        .clients(sc.clients)
        .workload(sc.workload.clone())
        .warmup(sc.warmup)
        .measure(sc.measure)
        .drain(sc.drain)
        .extra_client_nodes(1)
        .run_sim_with(sc.seed, move |sim, _| {
            sim.add_actor(Box::new(Nemesis::<paxos::PaxosMsg>::new(
                faults,
                nemesis_log,
            )));
        });

    assert!(result.violations.is_empty(), "{:?}", result.violations);
    assert_eq!(log.len(), sc.faults.len());
    assert_eq!(
        result.converged(),
        Some(true),
        "digests: {:?}",
        result.replica_digests
    );
}
