//! Allocation-regression tier: the counting global allocator from
//! `pigpaxos_bench::alloc` is installed for this whole test binary, and
//! the batched leader pipeline must decide commands within a recorded
//! allocation budget — at three levels:
//!
//! 1. the component-level hot path (the same harness `alloc_gate`
//!    measures, so a regression here pinpoints the protocol layer),
//! 2. a full `Experiment` on the deterministic simulator,
//! 3. the same `Experiment` on the OS-thread substrate (channel
//!    transport — adds runtime plumbing but no sockets), and
//! 4. the TCP-socket substrate, probed *differentially*: the same
//!    experiment with 8-byte and 1 KiB values. With the `Bytes`-backed
//!    decode pipeline a received payload is sliced out of its frame,
//!    never copied, so growing the value by ~1 KiB may add the client's
//!    own payload allocation and some pinned-read-buffer churn but not
//!    a per-socket-hop copy (each op's value crosses ≥ 5 sockets on a
//!    5-replica cluster — one copy per hop would add ≥ 5 KiB/op).
//!
//! The bounds are deliberately generous multiples of the measured
//! post-optimization figures (see `BENCH_alloc_baseline.json`): they
//! exist to catch the *class* of regression where a per-command clone
//! or per-vote container sneaks back into the pipeline (each such slip
//! adds ≥ 1 alloc/op), not to pin exact counts across allocator or
//! stdlib changes.
//!
//! Everything runs inside ONE `#[test]` so no parallel test thread
//! contaminates the process-global counters.

use paxi::{BatchConfig, Experiment};
use paxos::PaxosConfig;
use pigpaxos_bench::alloc::{self, CountingAllocator};
use pigpaxos_bench::hotpath::LeaderPipeline;
use simnet::SimDuration;
use std::time::Duration;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Component leader pipeline bound (measured ~1.04 allocs/op at B=16,
/// n=5; the pre-optimization tree sat at ~7.98).
const COMPONENT_BOUND: f64 = 3.0;

fn b16_experiment() -> Experiment<PaxosConfig> {
    let cfg = PaxosConfig::lan().with_batch(BatchConfig::new(16, SimDuration::from_micros(200)));
    Experiment::lan(cfg, 5).clients(8).client_pipeline(4)
}

#[test]
fn batched_pipeline_stays_within_alloc_budget() {
    // --- Component level: exactly the alloc_gate hot path. ---
    let mut pipe = LeaderPipeline::new(5, 16);
    pipe.run(8); // steady-state warmup
    let (decided, allocs) = pipe.run(1024 / 16);
    let per_op = allocs as f64 / decided as f64;
    println!("component leader pipeline: {per_op:.3} allocs/op ({decided} decided)");
    assert!(
        per_op <= COMPONENT_BOUND,
        "leader hot path regressed: {per_op:.3} allocs/op > {COMPONENT_BOUND}"
    );

    // --- Simulator substrate: a whole experiment, every layer in. ---
    let exp = b16_experiment()
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(800));
    let (r, d) = alloc::measure(|| exp.run_sim(7));
    assert!(r.violations.is_empty(), "sim: {:?}", r.violations);
    assert!(
        r.decided >= 1000,
        "sim must decide >= 1k commands: {}",
        r.decided
    );
    let sim_per_op = d.allocs as f64 / r.decided as f64;
    println!(
        "sim substrate: {sim_per_op:.1} allocs/op ({} decided, {} allocs)",
        r.decided, d.allocs
    );

    // --- Thread substrate: real threads + channel transport. ---
    let exp = b16_experiment()
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(400));
    let (r, d) = alloc::measure(|| exp.run_threads(7, Duration::from_millis(700)));
    assert!(r.violations.is_empty(), "threads: {:?}", r.violations);
    assert!(r.decided > 0, "threads must make progress");
    let thr_per_op = d.allocs as f64 / r.decided as f64;
    println!(
        "threads substrate: {thr_per_op:.1} allocs/op ({} decided, {} allocs)",
        r.decided, d.allocs
    );

    // --- Net substrate: TCP sockets + zero-copy decode, probed
    // differentially over the payload size. ---
    let run_net = |payload: usize| {
        let exp = b16_experiment()
            .workload(paxi::Workload::write_only(8).value_size(payload))
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(400));
        let (r, d) = alloc::measure(|| exp.run_net(7, Duration::from_millis(700)));
        assert!(
            r.violations.is_empty(),
            "net p={payload}: {:?}",
            r.violations
        );
        assert!(
            r.decided > 200,
            "net p={payload} must make progress: {}",
            r.decided
        );
        (d.allocs as f64 / r.decided as f64, r.decided)
    };
    let (net_small, small_decided) = run_net(8);
    let (net_large, large_decided) = run_net(1024);
    let delta = net_large - net_small;
    println!(
        "net substrate: {net_small:.1} allocs/op at 8 B values ({small_decided} decided), \
         {net_large:.1} allocs/op at 1 KiB values ({large_decided} decided), delta {delta:+.1}"
    );

    // Substrate bounds set after the printed measurements above were
    // recorded on the optimized tree: sim ~4.1/op and threads ~4.6/op
    // (event queue, workload generator, and channel transport
    // included). The threads denominator is wall-clock-sized, so both
    // bounds leave several× headroom.
    assert!(
        sim_per_op <= 25.0,
        "sim substrate regressed: {sim_per_op:.1} allocs/op"
    );
    assert!(
        thr_per_op <= 50.0,
        "thread substrate regressed: {thr_per_op:.1} allocs/op"
    );
    // The zero-copy assertion. A decode path that memcpy'd each value
    // into a fresh Vec would cost one allocation per value per
    // receiving socket (≥ 5 allocs/op here); slicing the frame costs
    // none, so the per-op allocation count must not move with the
    // payload size beyond run-to-run noise. (Allocated *bytes* do move:
    // retained value slices pin whole read buffers, ~1 KiB/op per
    // retaining hop — churn, not copies, and bounded by buffer reuse.)
    assert!(
        delta <= 2.5,
        "net substrate decode allocates per value: 1 KiB values cost \
         {delta:+.1} allocs/op over 8 B values \
         (a copy-per-hop pipeline adds >= 5; zero-copy adds ~0)"
    );
}
