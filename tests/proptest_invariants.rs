//! Property-based tests over the core data structures' invariants.

use paxi::{Ballot, Command, Log, Operation, RequestId, ShardMap, Value, VoteTracker};
use pigpaxos::{GroupSpec, RelayGroups};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::{NodeId, SimDuration};

fn cmd(seq: u64) -> Command {
    Command {
        id: RequestId {
            client: NodeId(1000),
            seq,
        },
        op: Operation::Put(seq % 16, Value::zeros(4)),
    }
}

proptest! {
    /// Ballot packing is lossless and ordering matches (round, node)
    /// lexicographic order.
    #[test]
    fn ballot_pack_round_trip(r1 in 0u32..1_000_000, n1 in 0u32..10_000,
                              r2 in 0u32..1_000_000, n2 in 0u32..10_000) {
        let a = Ballot::new(r1, NodeId(n1));
        let b = Ballot::new(r2, NodeId(n2));
        prop_assert_eq!(a.round(), r1);
        prop_assert_eq!(a.node(), NodeId(n1));
        prop_assert_eq!(a.cmp(&b), (r1, n1).cmp(&(r2, n2)));
        prop_assert!(a.next(NodeId(n2)) > a);
    }

    /// A committed slot's command never changes, no matter what later
    /// accepts or commits arrive.
    #[test]
    fn log_committed_values_are_stable(
        ops in prop::collection::vec((0u64..20, 0u32..5, 0u64..50, prop::bool::ANY), 1..200)
    ) {
        let mut log = Log::new();
        let mut decided: std::collections::HashMap<u64, Command> = Default::default();
        for (slot, round, cseq, do_commit) in ops {
            let ballot = Ballot::new(round, NodeId(0));
            if do_commit {
                log.commit(slot, ballot, cmd(cseq));
                decided.entry(slot).or_insert_with(|| {
                    log.get(slot).expect("present").command.clone()
                });
            } else {
                log.accept(slot, ballot, cmd(cseq));
            }
            // Every previously decided slot still holds its value.
            for (s, c) in &decided {
                let e = log.get(*s).expect("decided slot present");
                prop_assert!(e.committed);
                prop_assert_eq!(&e.command, c);
            }
        }
    }

    /// Execution consumes exactly the contiguous committed prefix, in
    /// order, regardless of commit order.
    #[test]
    fn log_executes_contiguous_prefix(commits in prop::collection::vec(0u64..30, 1..60)) {
        let mut log = Log::new();
        let ballot = Ballot::new(1, NodeId(0));
        let mut committed = std::collections::HashSet::new();
        for slot in commits {
            log.commit(slot, ballot, cmd(slot));
            committed.insert(slot);
        }
        let mut executed = Vec::new();
        while let Some((slot, _)) = log.next_executable() {
            log.mark_executed(slot);
            executed.push(slot);
        }
        // Expected: 0..k where k is the first missing slot.
        let mut expect = Vec::new();
        let mut s = 0;
        while committed.contains(&s) {
            expect.push(s);
            s += 1;
        }
        prop_assert_eq!(executed, expect);
    }

    /// Relay groups always exactly partition the followers, for any
    /// cluster size and any valid group count; relay picks always
    /// return one member per group, never the relay among its peers.
    #[test]
    fn relay_groups_partition(n_followers in 1usize..200, r in 1usize..20, seed in 0u64..1000) {
        prop_assume!(r <= n_followers);
        let followers: Vec<NodeId> = (1..=n_followers as u32).map(NodeId).collect();
        let groups = RelayGroups::build(&followers, &GroupSpec::Chunks(r));
        prop_assert_eq!(groups.num_groups(), r);
        let mut all: Vec<NodeId> = groups.groups().iter().flatten().copied().collect();
        all.sort();
        prop_assert_eq!(&all, &followers);
        // Sizes differ by at most one.
        let sizes: Vec<usize> = groups.groups().iter().map(|g| g.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1);

        let mut rng = StdRng::seed_from_u64(seed);
        let picks = groups.pick_relays(&mut rng);
        prop_assert_eq!(picks.len(), r);
        for (i, (relay, peers)) in picks.iter().enumerate() {
            prop_assert!(groups.groups()[i].contains(relay));
            prop_assert!(!peers.contains(relay));
            prop_assert_eq!(peers.len(), groups.groups()[i].len() - 1);
        }
    }

    /// An explicit `GroupSpec` built from any permutation of the
    /// followers, split at any cut points, is accepted and materializes
    /// verbatim as a disjoint cover of the peers.
    #[test]
    fn relay_groups_explicit_partition_round_trips(
        n_followers in 1usize..80,
        cut_fracs in prop::collection::vec(1usize..100, 0..6),
        seed in 0u64..1000
    ) {
        let followers: Vec<NodeId> = (1..=n_followers as u32).map(NodeId).collect();
        // Deterministically shuffle and cut the follower list into a
        // random partition.
        let mut shuffled = followers.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::seq::SliceRandom;
        shuffled.shuffle(&mut rng);
        let mut cuts: Vec<usize> =
            cut_fracs.iter().map(|f| f * n_followers / 100).filter(|&c| c > 0 && c < n_followers).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut explicit: Vec<Vec<NodeId>> = Vec::new();
        let mut prev = 0;
        for &c in cuts.iter().chain(std::iter::once(&n_followers)) {
            if c > prev {
                explicit.push(shuffled[prev..c].to_vec());
            }
            prev = c;
        }
        let spec = GroupSpec::Explicit(explicit.clone());
        let groups = RelayGroups::build(&followers, &spec);
        prop_assert_eq!(groups.groups(), &explicit[..], "explicit groups kept verbatim");
        prop_assert_eq!(groups.num_followers(), n_followers);
        // Disjoint cover: flattening gives each follower exactly once.
        let mut all: Vec<NodeId> = groups.groups().iter().flatten().copied().collect();
        all.sort();
        prop_assert_eq!(&all, &followers);
    }

    /// Relay rotation is membership-preserving round after round: every
    /// pick returns, per group, a (relay, peers) pair that is exactly
    /// that group — nothing lost, nothing duplicated, relay never among
    /// its peers. Holds for the rotating and the fixed (ablation) picker.
    #[test]
    fn relay_rotation_preserves_membership(
        n_followers in 2usize..80,
        r in 1usize..8,
        seed in 0u64..200,
        rounds in 1usize..20
    ) {
        prop_assume!(r <= n_followers);
        let followers: Vec<NodeId> = (1..=n_followers as u32).map(NodeId).collect();
        let groups = RelayGroups::build(&followers, &GroupSpec::Chunks(r));
        let mut rng = StdRng::seed_from_u64(seed);
        for _round in 0..rounds {
            for (picks, picker) in [
                (groups.pick_relays(&mut rng), "rotating"),
                (groups.pick_fixed_relays(), "fixed"),
            ] {
                prop_assert_eq!(picks.len(), groups.num_groups());
                for (i, (relay, peers)) in picks.iter().enumerate() {
                    prop_assert!(!peers.contains(relay), "{picker}: relay among peers");
                    let mut covered: Vec<NodeId> = peers.clone();
                    covered.push(*relay);
                    covered.sort();
                    let mut expect = groups.groups()[i].clone();
                    expect.sort();
                    prop_assert_eq!(covered, expect, "{picker}: pick must equal its group");
                }
            }
        }
    }

    /// Chains of reshuffles keep the disjoint cover and the group-size
    /// profile intact, whatever the shape.
    #[test]
    fn relay_reshuffle_chain_preserves_cover(
        n_followers in 2usize..60,
        r in 1usize..8,
        seed in 0u64..100,
        times in 1usize..8
    ) {
        prop_assume!(r <= n_followers);
        let followers: Vec<NodeId> = (1..=n_followers as u32).map(NodeId).collect();
        let mut groups = RelayGroups::build(&followers, &GroupSpec::Chunks(r));
        let sizes: Vec<usize> = groups.groups().iter().map(|g| g.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..times {
            groups.reshuffle(&mut rng);
            let now: Vec<usize> = groups.groups().iter().map(|g| g.len()).collect();
            prop_assert_eq!(&now, &sizes, "sizes stable across the chain");
            let mut all: Vec<NodeId> = groups.groups().iter().flatten().copied().collect();
            all.sort();
            prop_assert_eq!(&all, &followers, "cover stable across the chain");
        }
    }

    /// Reshuffling preserves membership and sizes for any shape.
    #[test]
    fn relay_groups_reshuffle_preserves(n_followers in 2usize..100, r in 1usize..10, seed in 0u64..100) {
        prop_assume!(r <= n_followers);
        let followers: Vec<NodeId> = (1..=n_followers as u32).map(NodeId).collect();
        let mut groups = RelayGroups::build(&followers, &GroupSpec::Chunks(r));
        let sizes_before: Vec<usize> = groups.groups().iter().map(|g| g.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        groups.reshuffle(&mut rng);
        let sizes_after: Vec<usize> = groups.groups().iter().map(|g| g.len()).collect();
        prop_assert_eq!(sizes_before, sizes_after);
        let mut all: Vec<NodeId> = groups.groups().iter().flatten().copied().collect();
        all.sort();
        prop_assert_eq!(&all, &followers);
    }

    /// A vote tracker is satisfied iff it saw >= need distinct acking
    /// nodes for the right ballot.
    #[test]
    fn vote_tracker_counts_distinct_acks(
        need in 1usize..10,
        votes in prop::collection::vec((0u32..12, prop::bool::ANY), 0..40)
    ) {
        let ballot = Ballot::new(1, NodeId(0));
        let mut t = VoteTracker::new(need, ballot);
        let mut distinct = std::collections::HashSet::new();
        for (node, right_ballot) in votes {
            let b = if right_ballot { ballot } else { Ballot::new(2, NodeId(0)) };
            t.ack(NodeId(node), b);
            if right_ballot {
                distinct.insert(node);
            }
        }
        prop_assert_eq!(t.satisfied(), distinct.len() >= need);
        prop_assert_eq!(t.ack_count(), distinct.len());
    }

    /// Wire sizes grow monotonically with payload size for client
    /// requests.
    #[test]
    fn request_wire_size_monotonic(a in 0usize..4096, b in 0usize..4096) {
        prop_assume!(a <= b);
        let req = |len: usize| paxi::ClientRequest {
            command: Command {
                id: RequestId { client: NodeId(1), seq: 1 },
                op: Operation::Put(1, Value::zeros(len)),
            },
        };
        prop_assert!(req(a).wire_size() <= req(b).wire_size());
        prop_assert_eq!(req(b).wire_size() - req(a).wire_size(), b - a);
    }

    /// SimDuration arithmetic is consistent (no panics, ordering holds).
    #[test]
    fn duration_arithmetic_consistent(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!(da.saturating_sub(db).as_nanos(), a.saturating_sub(b));
        prop_assert_eq!(da < db, a < b);
    }

    /// Any sequence of splits, local moves, and remote move
    /// installations keeps a [`ShardMap`] well-formed: the ranges stay
    /// disjoint and cover the whole key space (first start is 0, starts
    /// strictly increase, last range unbounded), the version never goes
    /// backwards and bumps exactly when a mutation reports success, and
    /// `group_for` always agrees with a linear scan of `ranges()`.
    #[test]
    fn shard_map_mutations_keep_ranges_disjoint_and_covering(
        groups in 1u32..8,
        key_space in 8u64..2_000,
        ops in prop::collection::vec(
            (0u8..3, 0u64..2_200, 0u32..8, 0u64..4),
            1..60,
        ),
        probes in prop::collection::vec(0u64..3_000, 8),
    ) {
        let mut map = ShardMap::uniform(groups, key_space);
        prop_assert!(map.is_valid());
        for (kind, key, group, bump) in ops {
            let before = map.version();
            let changed = match kind {
                0 => map.split(key),
                1 => map.move_range(key, group),
                // install_move only accepts strictly newer versions;
                // bump = 0 exercises the replay-rejection path.
                _ => map.install_move(key, group, before + bump),
            };
            prop_assert!(map.is_valid(), "invalid after op {kind} at {key}");
            if changed {
                prop_assert!(map.version() > before, "success must bump version");
            } else {
                prop_assert_eq!(map.version(), before, "no-op must not bump version");
            }

            // Disjoint + covering, spelled out from the ranges view:
            // starts at 0, each end meets the next start, open-ended tail.
            let ranges = map.ranges();
            prop_assert_eq!(ranges[0].0.start, 0);
            prop_assert_eq!(ranges[ranges.len() - 1].0.end, None);
            for w in ranges.windows(2) {
                prop_assert_eq!(w[0].0.end, Some(w[1].0.start));
            }

            // group_for is total and matches the unique containing range.
            for &k in &probes {
                let owners: Vec<_> = ranges
                    .iter()
                    .filter(|(r, _)| r.contains(k))
                    .map(|&(_, g)| g)
                    .collect();
                prop_assert_eq!(owners.len(), 1, "key {k} covered exactly once");
                prop_assert_eq!(map.group_for(k), owners[0]);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Log compaction safety, end to end at the acceptor level, over
    /// seed × snapshot interval × crash schedule:
    ///
    /// - the compaction floor never rises above the executed frontier
    ///   (undecided/unexecuted slots are never dropped), and the
    ///   retained log stays bounded by the interval;
    /// - a compacting acceptor reaches the same state-machine
    ///   fingerprint as an uncompacted reference fed the same commits;
    /// - an acceptor that crashed at a random point and recovers from
    ///   the compacting peer — via a snapshot when its missing prefix
    ///   was truncated, plain entries otherwise — also converges to the
    ///   reference fingerprint.
    #[test]
    fn compaction_respects_frontier_and_recovery_converges(
        seed in 0u64..10_000,
        interval in 1u64..40,
        n_cmds in 30u64..200,
        crash_pct in 5u64..95,
    ) {
        use paxi::{ClientReply, SafetyMonitor, SessionTable, SnapshotConfig};
        use paxos::{Acceptor, LearnAnswer};
        use rand::Rng;

        let ballot = Ballot::new(1, NodeId(0));
        let mut rng = StdRng::seed_from_u64(seed);
        let cmds: Vec<Command> = (0..n_cmds)
            .map(|s| {
                let key = rng.gen_range(0u64..8);
                let op = if rng.gen_range(0u32..10) < 3 {
                    Operation::Get(key)
                } else {
                    Operation::Put(key, Value::zeros(rng.gen_range(1usize..32)))
                };
                Command {
                    id: RequestId {
                        client: NodeId(1000 + (s % 4) as u32),
                        seq: s + 1,
                    },
                    op,
                }
            })
            .collect();

        // A compacts every `interval`; B is the uncompacted reference;
        // C crashes after `crash_at` commits and recovers from A.
        let mut a = Acceptor::new(NodeId(1), SafetyMonitor::new());
        a.set_snapshot_config(SnapshotConfig::every_ops(interval));
        let mut b = Acceptor::new(NodeId(2), SafetyMonitor::new());
        let mut c = Acceptor::new(NodeId(3), SafetyMonitor::new());
        let crash_at = n_cmds * crash_pct / 100;
        let mut sessions = SessionTable::new();

        for (s, cmd) in cmds.iter().enumerate() {
            let s = s as u64;
            a.commit(s, ballot, cmd.clone());
            for (_, id, value) in a.execute_ready() {
                sessions.record(&ClientReply::ok(id, value));
            }
            let compacted = a.maybe_compact(&sessions);
            prop_assert!(
                a.snapshot_floor() <= a.log().execute_cursor(),
                "floor above executed frontier"
            );
            if compacted {
                prop_assert_eq!(a.snapshot_floor(), a.log().execute_cursor());
                prop_assert!(a.latest_snapshot().is_some());
            }
            prop_assert!(
                (a.log().len() as u64) <= interval,
                "retained log exceeded the interval: {} > {interval}",
                a.log().len()
            );
            b.commit(s, ballot, cmd.clone());
            b.execute_ready();
            if s < crash_at {
                c.commit(s, ballot, cmd.clone());
                c.execute_ready();
            }
        }

        prop_assert_eq!(
            a.kv().fingerprint(),
            b.kv().fingerprint(),
            "compacted and uncompacted acceptors diverged"
        );
        prop_assert_eq!(a.commit_watermark(), n_cmds);

        // Recovery: C asks A for exactly its missing suffix.
        let missing: Vec<u64> = (c.commit_watermark()..n_cmds).collect();
        prop_assert!(!missing.is_empty());
        let expect_snapshot = missing[0] < a.snapshot_floor();
        match a.serve_learn(&missing) {
            Some(LearnAnswer::Snapshot(snap, entries)) => {
                prop_assert!(expect_snapshot, "snapshot only when the prefix is gone");
                prop_assert!(snap.up_to <= n_cmds);
                prop_assert!(c.install_snapshot(&snap));
                for (s, cmd) in entries {
                    c.commit(s, ballot, cmd);
                }
            }
            Some(LearnAnswer::Entries(entries)) => {
                prop_assert!(!expect_snapshot, "entries only while the prefix survives");
                for (s, cmd) in entries {
                    c.commit(s, ballot, cmd);
                }
            }
            None => prop_assert!(false, "peer with the full suffix must answer"),
        }
        c.execute_ready();
        prop_assert_eq!(
            c.kv().fingerprint(),
            b.kv().fingerprint(),
            "recovered acceptor diverged from the uncompacted reference"
        );
        prop_assert_eq!(c.commit_watermark(), n_cmds);
    }

    /// The EPaxos execution planner never executes an instance before a
    /// committed dependency, executes all-committed graphs completely,
    /// and never executes anything with an uncommitted transitive dep.
    #[test]
    fn epaxos_plan_respects_dependencies(
        edges in prop::collection::vec((0usize..30, 0usize..30), 0..120),
        tentative in prop::collection::vec(prop::bool::ANY, 30)
    ) {
        use epaxos::{plan_execution, InstStatus, InstanceId, InstanceView};
        use std::collections::HashMap;

        let inst = |i: usize| InstanceId { replica: NodeId(0), slot: i as u64 };
        let mut deps: HashMap<InstanceId, Vec<InstanceId>> = HashMap::new();
        for i in 0..30 {
            deps.entry(inst(i)).or_default();
        }
        for (a, b) in &edges {
            if a != b {
                deps.entry(inst(*a)).or_default().push(inst(*b));
            }
        }
        struct V {
            deps: HashMap<InstanceId, Vec<InstanceId>>,
            tentative: Vec<bool>,
        }
        impl InstanceView for V {
            fn status(&self, id: InstanceId) -> InstStatus {
                if self.tentative[id.slot as usize] {
                    InstStatus::Tentative
                } else {
                    InstStatus::Committed
                }
            }
            fn deps(&self, id: InstanceId) -> &[InstanceId] {
                self.deps.get(&id).map(|v| v.as_slice()).unwrap_or(&[])
            }
            fn seq(&self, id: InstanceId) -> u64 {
                id.slot
            }
        }
        let view = V { deps: deps.clone(), tentative: tentative.clone() };
        let roots: Vec<InstanceId> = (0..30).map(inst).collect();
        let plan = plan_execution(&roots, &view);

        let pos: HashMap<InstanceId, usize> =
            plan.order.iter().enumerate().map(|(i, &x)| (x, i)).collect();
        for &x in &plan.order {
            prop_assert!(!tentative[x.slot as usize], "tentative instance executed");
            for d in view.deps(x) {
                // Every dep of an executed instance is either executed
                // earlier, or in the same SCC (mutually reachable).
                if let Some(&dp) = pos.get(d) {
                    if dp > pos[&x] {
                        // Same-SCC case: d must reach x back through deps.
                        let mut stack = vec![*d];
                        let mut seen = std::collections::HashSet::new();
                        let mut reaches = false;
                        while let Some(y) = stack.pop() {
                            if y == x { reaches = true; break; }
                            if seen.insert(y) {
                                for z in view.deps(y) {
                                    stack.push(*z);
                                }
                            }
                        }
                        prop_assert!(reaches, "dep ordered later but not in same SCC");
                    }
                } else {
                    prop_assert!(
                        false,
                        "executed instance {x} has unexecuted committed dep {d}"
                    );
                }
            }
        }
        // If nothing is tentative, everything must execute.
        if tentative.iter().all(|&t| !t) {
            prop_assert_eq!(plan.order.len(), 30);
        }
    }
}

/// Expand raw fault draws into a nemesis schedule. Each draw is
/// `(at_ms, kind, x, y, p)`; `kind % 3` selects the fault family and
/// the remaining fields are reinterpreted per family (the vendored
/// proptest stub has no `prop_oneof`/`prop_map`, so the sum type is
/// decoded here instead of in a strategy):
///
/// - `0` → partition a minority of `1 + x % ((n-1)/2)` nodes, heal
///   400ms later;
/// - `1` → crash node `x % n`, restart it 400ms later;
/// - `2` → make the directional link `x % n → y % n` flaky with drop
///   probability `p`, clear it 400ms later.
///
/// A final global heal + clear sweep runs before the measure window
/// closes so the drain phase starts from a connected cluster.
fn chaos_schedule(n: u32, drawn: Vec<(u64, usize, u32, u32, f64)>) -> Vec<paxi::FaultEvent> {
    let mut events = Vec::new();
    let mut push = |at_ms: u64, fault: paxi::Fault| {
        events.push(paxi::FaultEvent {
            at: SimDuration::from_millis(at_ms),
            fault,
        });
    };
    for (at, kind, x, y, p) in drawn {
        match kind % 3 {
            0 => {
                let minority = 1 + x % ((n - 1) / 2);
                let a: Vec<u32> = (0..minority).collect();
                let b: Vec<u32> = (minority..n).collect();
                push(at, paxi::Fault::Partition { a, b });
                push(at + 400, paxi::Fault::Heal);
            }
            1 => {
                push(at, paxi::Fault::Crash(x % n));
                push(at + 400, paxi::Fault::Restart(x % n));
            }
            _ => {
                let (from, to) = (x % n, y % n);
                if from != to {
                    push(at, paxi::Fault::Flaky { from, to, p });
                    push(at + 400, paxi::Fault::ClearFlaky);
                }
            }
        }
    }
    push(1900, paxi::Fault::Heal);
    push(1900, paxi::Fault::ClearFlaky);
    events
}

/// Run one nemesis schedule against one protocol and return the result.
fn chaos_run<P: paxi::ProtocolSpec>(
    proto: P,
    seed: u64,
    schedule: Vec<paxi::FaultEvent>,
) -> paxi::RunResult {
    let log = paxi::NemesisLog::new();
    paxi::Experiment::lan(proto, 5)
        .clients(4)
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(2200))
        .drain(SimDuration::from_millis(1800))
        .extra_client_nodes(1)
        .run_sim_with(seed, move |sim, _| {
            sim.add_actor(Box::new(paxi::Nemesis::<P::Msg>::new(schedule, log)));
        })
}

proptest! {
    // Each case is a full simulated cluster run (possibly three), so
    // keep the case count far below the data-structure blocks above.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chaos-harness safety property over seed × protocol × random
    /// small fault schedules (minority partitions, crash/restart
    /// pairs, flaky links — each undone 400ms after it fires):
    ///
    /// - the machine-checked safety invariants hold for every protocol
    ///   under every schedule;
    /// - leader-based protocols (Paxos, PigPaxos) additionally reach
    ///   identical kv fingerprints on all replicas after the schedule
    ///   clears and the drain window runs. EPaxos is exempt from the
    ///   convergence check: a replica can miss a commit for an
    ///   instance it did not participate in while links drop, and
    ///   nothing re-delivers it until new traffic touches the key.
    #[test]
    fn nemesis_schedules_preserve_safety_and_convergence(
        seed in 0u64..1_000,
        proto in 0usize..3,
        drawn in prop::collection::vec(
            (500u64..1_400, 0usize..3, 0u32..8, 0u32..8, 0.05f64..0.5),
            1..4,
        ),
    ) {
        let schedule = chaos_schedule(5, drawn);
        let (result, check_convergence) = match proto {
            0 => (chaos_run(paxos::PaxosConfig::lan(), seed, schedule), true),
            1 => (chaos_run(pigpaxos::PigConfig::lan(2), seed, schedule), true),
            _ => (chaos_run(epaxos::EpaxosConfig::default(), seed, schedule), false),
        };
        prop_assert!(result.violations.is_empty(), "violations: {:?}", result.violations);
        if check_convergence {
            prop_assert_eq!(
                result.converged(),
                Some(true),
                "replicas diverged after heal+drain: {:?}",
                result.replica_digests
            );
        }
    }
}
