//! Fault-injection integration tests: crashes, partitions, message
//! loss, and recovery — safety must hold in every scenario, and
//! liveness whenever a majority is reachable.

use paxi::harness::{run_spec, RunSpec};
use paxi::TargetPolicy;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use simnet::{Control, NodeId, SimDuration, SimTime};

fn spec(n: usize, clients: usize) -> RunSpec {
    RunSpec {
        warmup: SimDuration::from_millis(300),
        measure: SimDuration::from_millis(1200),
        ..RunSpec::lan(n, clients)
    }
}

fn leader() -> TargetPolicy {
    TargetPolicy::Fixed(NodeId(0))
}

#[test]
fn pigpaxos_survives_minority_of_crashes() {
    // f = 4 crashes in a 9-node cluster (2f+1 = 9): progress must continue.
    let r = run_spec(
        &spec(9, 6),
        pig_builder(PigConfig::lan(2)),
        leader(),
        |sim, _| {
            for (i, node) in [5u32, 6, 7, 8].iter().enumerate() {
                sim.schedule_control(
                    SimTime::from_millis(400 + 100 * i as u64),
                    Control::Crash(NodeId(*node)),
                );
            }
        },
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(
        r.throughput > 50.0,
        "majority alive ⇒ progress: {}",
        r.throughput
    );
}

#[test]
fn pigpaxos_stalls_without_majority_but_stays_safe() {
    // 5 crashes of 9 leave 4 < majority: commits must stop, safety holds.
    let r = run_spec(
        &spec(9, 4),
        pig_builder(PigConfig::lan(2)),
        leader(),
        |sim, cluster| {
            for node in 5..9u32 {
                sim.schedule_control(SimTime::from_millis(600), Control::Crash(NodeId(node)));
            }
            sim.schedule_control(SimTime::from_millis(600), Control::Crash(NodeId(4)));
            // Nothing decided after the mass crash may conflict — checked
            // by the shared safety monitor automatically.
            let _ = cluster;
        },
    );
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn pigpaxos_recovers_after_majority_restored() {
    let mut s = spec(9, 4);
    s.measure = SimDuration::from_secs(3);
    let r = run_spec(&s, pig_builder(PigConfig::lan(2)), leader(), |sim, _| {
        for node in 4..9u32 {
            sim.schedule_control(SimTime::from_millis(500), Control::Crash(NodeId(node)));
        }
        for node in 4..9u32 {
            sim.schedule_control(SimTime::from_millis(1500), Control::Recover(NodeId(node)));
        }
    });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(
        r.throughput > 100.0,
        "throughput must resume after recovery: {}",
        r.throughput
    );
}

#[test]
fn safety_holds_under_random_message_loss() {
    for (name, r) in [
        (
            "paxos",
            run_spec(
                &spec(5, 4),
                paxos_builder(PaxosConfig::lan()),
                leader(),
                |sim, _| {
                    sim.set_drop_rate(0.05);
                },
            ),
        ),
        (
            "pigpaxos",
            run_spec(
                &spec(5, 4),
                pig_builder(PigConfig::lan(2)),
                leader(),
                |sim, _| {
                    sim.set_drop_rate(0.05);
                },
            ),
        ),
    ] {
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        assert!(
            r.throughput > 50.0,
            "{name} must retry through 5% loss: {}",
            r.throughput
        );
    }
}

#[test]
fn partition_heals_and_cluster_catches_up() {
    let mut s = spec(5, 4);
    s.measure = SimDuration::from_secs(3);
    let r = run_spec(&s, pig_builder(PigConfig::lan(2)), leader(), |sim, _| {
        // Cut off two followers for a second, then heal.
        let minority = [NodeId(3), NodeId(4)];
        let rest = [NodeId(0), NodeId(1), NodeId(2)];
        sim.schedule_control(
            SimTime::from_millis(500),
            Control::BlockLink(NodeId(3), NodeId(0)),
        );
        let _ = (minority, rest);
        for a in [3u32, 4] {
            for b in 0..3u32 {
                sim.schedule_control(
                    SimTime::from_millis(500),
                    Control::BlockLink(NodeId(a), NodeId(b)),
                );
                sim.schedule_control(
                    SimTime::from_millis(500),
                    Control::BlockLink(NodeId(b), NodeId(a)),
                );
            }
        }
        sim.schedule_control(SimTime::from_millis(1500), Control::HealAllLinks);
    });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(
        r.throughput > 100.0,
        "leader-side majority keeps running: {}",
        r.throughput
    );
}

#[test]
fn relay_crash_is_transient_thanks_to_rotation() {
    // Crash a node; rounds that pick it as relay lose a group, but the
    // next retry picks fresh relays (§3.4). Latency must stay bounded
    // well below the client retry timeout.
    let r = run_spec(
        &spec(25, 8),
        pig_builder(PigConfig::lan(3)),
        leader(),
        |sim, _| {
            sim.schedule_control(SimTime::from_millis(400), Control::Crash(NodeId(3)));
        },
    );
    assert!(r.violations.is_empty());
    assert!(r.throughput > 500.0);
    assert!(
        r.p99_latency_ms < 150.0,
        "stalled rounds must be recovered by relay reselection: p99 {}ms",
        r.p99_latency_ms
    );
}

#[test]
fn paxos_and_pigpaxos_handle_leader_crash_with_reelection() {
    for (name, r) in [
        (
            "paxos",
            run_spec(
                &RunSpec {
                    measure: SimDuration::from_secs(3),
                    ..spec(5, 3)
                },
                paxos_builder(PaxosConfig::lan()),
                TargetPolicy::Random((0..5u32).map(NodeId).collect()),
                |sim: &mut simnet::Simulation<_>, _: &paxi::ClusterConfig| {
                    sim.schedule_control(SimTime::from_millis(800), Control::Crash(NodeId(0)));
                },
            ),
        ),
        (
            "pigpaxos",
            run_spec(
                &RunSpec {
                    measure: SimDuration::from_secs(3),
                    ..spec(5, 3)
                },
                pig_builder(PigConfig::lan(2)),
                TargetPolicy::Random((0..5u32).map(NodeId).collect()),
                |sim: &mut simnet::Simulation<_>, _: &paxi::ClusterConfig| {
                    sim.schedule_control(SimTime::from_millis(800), Control::Crash(NodeId(0)));
                },
            ),
        ),
    ] {
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        assert!(
            r.throughput > 30.0,
            "{name}: new leader must serve: {}",
            r.throughput
        );
    }
}
