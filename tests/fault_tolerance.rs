//! Fault-injection integration tests: crashes, partitions, message
//! loss, and recovery — safety must hold in every scenario, and
//! liveness whenever a majority is reachable. Fault schedules ride the
//! `run_sim_with` hook; everything else is the standard builder.

use paxi::{Experiment, ProtocolSpec, TargetPolicy};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use simnet::{Control, NodeId, SimDuration, SimTime};

fn exp<P: ProtocolSpec>(proto: P, n: usize, clients: usize) -> Experiment<P> {
    Experiment::lan(proto, n)
        .clients(clients)
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(1200))
}

#[test]
fn pigpaxos_survives_minority_of_crashes() {
    // f = 4 crashes in a 9-node cluster (2f+1 = 9): progress must continue.
    let r = exp(PigConfig::lan(2), 9, 6).run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
        for (i, node) in [5u32, 6, 7, 8].iter().enumerate() {
            sim.schedule_control(
                SimTime::from_millis(400 + 100 * i as u64),
                Control::Crash(NodeId(*node)),
            );
        }
    });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(
        r.throughput > 50.0,
        "majority alive ⇒ progress: {}",
        r.throughput
    );
}

#[test]
fn pigpaxos_stalls_without_majority_but_stays_safe() {
    // 5 crashes of 9 leave 4 < majority: commits must stop, safety holds.
    let r = exp(PigConfig::lan(2), 9, 4).run_sim_with(paxi::DEFAULT_SEED, |sim, cluster| {
        for node in 5..9u32 {
            sim.schedule_control(SimTime::from_millis(600), Control::Crash(NodeId(node)));
        }
        sim.schedule_control(SimTime::from_millis(600), Control::Crash(NodeId(4)));
        // Nothing decided after the mass crash may conflict — checked
        // by the shared safety monitor automatically.
        let _ = cluster;
    });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn pigpaxos_recovers_after_majority_restored() {
    let r = exp(PigConfig::lan(2), 9, 4)
        .measure(SimDuration::from_secs(3))
        .run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
            for node in 4..9u32 {
                sim.schedule_control(SimTime::from_millis(500), Control::Crash(NodeId(node)));
            }
            for node in 4..9u32 {
                sim.schedule_control(SimTime::from_millis(1500), Control::Recover(NodeId(node)));
            }
        });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(
        r.throughput > 100.0,
        "throughput must resume after recovery: {}",
        r.throughput
    );
}

#[test]
fn safety_holds_under_random_message_loss() {
    // The drop-rate scenario is protocol-generic; run the identical
    // schedule for both leader-based protocols.
    fn lossy<P: ProtocolSpec>(proto: P) -> paxi::RunResult {
        exp(proto, 5, 4).run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
            sim.set_drop_rate(0.05);
        })
    }
    for (name, r) in [
        ("paxos", lossy(PaxosConfig::lan())),
        ("pigpaxos", lossy(PigConfig::lan(2))),
    ] {
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        assert!(
            r.throughput > 50.0,
            "{name} must retry through 5% loss: {}",
            r.throughput
        );
    }
}

#[test]
fn partition_heals_and_cluster_catches_up() {
    let r = exp(PigConfig::lan(2), 5, 4)
        .measure(SimDuration::from_secs(3))
        .run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
            // Cut off two followers for a second, then heal.
            for a in [3u32, 4] {
                for b in 0..3u32 {
                    sim.schedule_control(
                        SimTime::from_millis(500),
                        Control::BlockLink(NodeId(a), NodeId(b)),
                    );
                    sim.schedule_control(
                        SimTime::from_millis(500),
                        Control::BlockLink(NodeId(b), NodeId(a)),
                    );
                }
            }
            sim.schedule_control(SimTime::from_millis(1500), Control::HealAllLinks);
        });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(
        r.throughput > 100.0,
        "leader-side majority keeps running: {}",
        r.throughput
    );
}

#[test]
fn relay_crash_is_transient_thanks_to_rotation() {
    // Crash a node; rounds that pick it as relay lose a group, but the
    // next retry picks fresh relays (§3.4). Latency must stay bounded
    // well below the client retry timeout.
    let r = exp(PigConfig::lan(3), 25, 8).run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
        sim.schedule_control(SimTime::from_millis(400), Control::Crash(NodeId(3)));
    });
    assert!(r.violations.is_empty());
    assert!(r.throughput > 500.0);
    assert!(
        r.p99_latency_ms < 150.0,
        "stalled rounds must be recovered by relay reselection: p99 {}ms",
        r.p99_latency_ms
    );
}

#[test]
fn lagging_follower_rejoins_via_snapshot_after_prefix_truncated() {
    // A follower sleeps through ~1.5 s of compacting traffic; by the
    // time it recovers, every peer has truncated the slots it is
    // missing. Its gap repair (`LearnReq`) must then be answered with a
    // `SnapshotTransfer` — state, not slots — and the cluster must end
    // the run safe and fast. Run the identical schedule for both
    // leader-based protocols (the relay overlay must not change the
    // catch-up semantics).
    fn rejoin<P: ProtocolSpec>(proto: P) -> paxi::RunResult {
        exp(proto, 5, 6)
            .measure(SimDuration::from_secs(3))
            .capture_trace()
            .run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
                sim.schedule_control(SimTime::from_millis(400), Control::Crash(NodeId(4)));
                sim.schedule_control(SimTime::from_millis(1900), Control::Recover(NodeId(4)));
            })
    }
    for (name, r) in [
        (
            "paxos",
            rejoin(PaxosConfig::lan().with_snapshots(paxi::SnapshotConfig::every_ops(100))),
        ),
        (
            "pigpaxos",
            rejoin(PigConfig::lan(2).with_snapshots(paxi::SnapshotConfig::every_ops(100))),
        ),
    ] {
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        assert!(r.throughput > 100.0, "{name}: {}", r.throughput);
        assert!(
            r.snapshots_taken > 0,
            "{name}: peers must have compacted while the follower slept"
        );
        assert!(
            r.snapshots_installed >= 1,
            "{name}: the rejoining follower must catch up from a snapshot"
        );
        let transfers = r
            .label_counts
            .as_ref()
            .and_then(|c| c.get("snapshot").copied())
            .unwrap_or(0);
        assert!(
            transfers >= 1,
            "{name}: a SnapshotTransfer envelope must have crossed the wire"
        );
    }
}

#[test]
fn leader_change_after_prefix_truncated_recovers_from_peer_snapshots() {
    // The harder catch-up path: the cluster loses its *leader* while a
    // once-crashed follower is still far behind the compaction floor.
    // Whoever campaigns, the lagging replica ends up current — either
    // it wins and peers attach snapshots to their phase-1b promises, or
    // it loses and the new leader serves it a SnapshotTransfer. Safety
    // and progress must hold either way.
    let cfg = PigConfig::lan(2).with_snapshots(paxi::SnapshotConfig::every_ops(100));
    let r = exp(cfg, 5, 4)
        .measure(SimDuration::from_secs(4))
        .target(TargetPolicy::Random((0..5u32).map(NodeId).collect()))
        .run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
            sim.schedule_control(SimTime::from_millis(400), Control::Crash(NodeId(4)));
            sim.schedule_control(SimTime::from_millis(1800), Control::Recover(NodeId(4)));
            sim.schedule_control(SimTime::from_millis(1850), Control::Crash(NodeId(0)));
        });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(
        r.throughput > 30.0,
        "a new leader must emerge and serve: {}",
        r.throughput
    );
    assert!(r.snapshots_taken > 0, "compaction ran before the crash");
    assert!(
        r.snapshots_installed >= 1,
        "the lagging replica must have installed a peer snapshot"
    );
}

#[test]
fn paxos_and_pigpaxos_handle_leader_crash_with_reelection() {
    fn crash_leader<P: ProtocolSpec>(proto: P) -> paxi::RunResult {
        exp(proto, 5, 3)
            .measure(SimDuration::from_secs(3))
            .target(TargetPolicy::Random((0..5u32).map(NodeId).collect()))
            .run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
                sim.schedule_control(SimTime::from_millis(800), Control::Crash(NodeId(0)));
            })
    }
    for (name, r) in [
        ("paxos", crash_leader(PaxosConfig::lan())),
        ("pigpaxos", crash_leader(PigConfig::lan(2))),
    ] {
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        assert!(
            r.throughput > 30.0,
            "{name}: new leader must serve: {}",
            r.throughput
        );
    }
}
