//! Structural validation of the communication flows via message traces:
//! not just "does it commit", but "does the traffic have exactly the
//! shape the paper describes". Label counts come straight from
//! [`paxi::RunResult::label_counts`]; only the per-destination
//! aggregation check still drives the simulator by hand (through the
//! same `ProtocolSpec` factory the experiment uses).

use paxi::{Experiment, ProtocolSpec, RunResult};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use simnet::{NodeId, SimDuration};

fn traced<P: ProtocolSpec>(proto: P, n: usize, clients: usize) -> RunResult {
    Experiment::lan(proto, n)
        .clients(clients)
        // No warmup: per-op ratios want the whole trace window.
        .warmup(SimDuration::ZERO)
        .measure(SimDuration::from_millis(800))
        .capture_trace()
        .run_sim(paxi::DEFAULT_SEED)
}

#[test]
fn pigpaxos_leader_sends_exactly_r_relay_messages_per_round() {
    let n = 25;
    let r = 3;
    let res = traced(PigConfig::lan(r), n, 4);
    assert!(res.violations.is_empty(), "{:?}", res.violations);
    assert!(
        res.samples > 200,
        "need enough ops to average over, got {}",
        res.samples
    );
    let to_relay_per_op = res.label_per_op("to_relay").expect("trace captured");
    // One ToRelay per group per proposal (heartbeats add a small floor).
    assert!(
        (to_relay_per_op - r as f64).abs() < 0.5,
        "expected ≈{r} ToRelay per op, got {to_relay_per_op:.2}"
    );
    // Each relay forwards the P2a to its group peers: (n-1-r) direct
    // copies per proposal.
    let p2a_per_op = res.label_per_op("p2a").expect("trace captured");
    let expect_fanout = (n - 1 - r) as f64;
    assert!(
        (p2a_per_op - expect_fanout).abs() < 2.0,
        "expected ≈{expect_fanout} relayed p2a per op, got {p2a_per_op:.2}"
    );
    // Fan-in: every follower answers its relay (singleton p2b), and each
    // relay sends one aggregate to the leader: (n-1-r) + r = n-1.
    let p2b_per_op = res.label_per_op("p2b").expect("trace captured");
    assert!(
        (p2b_per_op - (n - 1) as f64).abs() < 2.0,
        "expected ≈{} p2b per op, got {p2b_per_op:.2}",
        n - 1
    );
}

#[test]
fn paxos_leader_broadcasts_to_every_follower() {
    let n = 9;
    let res = traced(PaxosConfig::lan(), n, 4);
    assert!(res.samples > 200);
    let p2a_per_op = res.label_per_op("p2a").expect("trace captured");
    let p2b_per_op = res.label_per_op("p2b").expect("trace captured");
    assert!(
        (p2a_per_op - (n - 1) as f64).abs() < 1.0,
        "direct Paxos sends n-1 p2a per op, got {p2a_per_op:.2}"
    );
    assert!(
        (p2b_per_op - (n - 1) as f64).abs() < 1.0,
        "and receives n-1 p2b per op, got {p2b_per_op:.2}"
    );
}

#[test]
fn aggregation_means_leader_receives_few_large_p2bs() {
    // The leader-facing p2b traffic in PigPaxos consists of r aggregates
    // per op; verify by counting p2b deliveries *to the leader* only,
    // which needs the raw trace — replicas still come from the same
    // `ProtocolSpec` factory the experiment uses.
    let n = 25;
    let r = 2;
    let clients = 4;
    let cfg = PigConfig::lan(r);
    let mut topo = simnet::Topology::lan(n);
    topo.add_nodes(clients, 0);
    let mut sim: simnet::Simulation<paxi::Envelope<pigpaxos::PigMsg>> =
        simnet::Simulation::new(topo, simnet::CpuCostModel::calibrated(), paxi::DEFAULT_SEED);
    let cluster = paxi::ClusterConfig::new(n);
    for i in 0..n {
        sim.add_actor(cfg.build_replica(NodeId::from(i), &cluster));
    }
    let recorder = paxi::ClientRecorder::new();
    for _ in 0..clients {
        sim.add_actor(Box::new(paxi::ClosedLoopClient::<pigpaxos::PigMsg>::new(
            paxi::TargetPolicy::Fixed(NodeId(0)),
            paxi::Workload::paper_default(),
            recorder.clone(),
            SimDuration::from_millis(100),
        )));
    }
    sim.enable_trace();
    sim.run_for(SimDuration::from_millis(800));
    cluster.safety.assert_safe();
    let ops = recorder.len().max(1);
    let to_leader_p2b = sim
        .trace()
        .expect("enabled")
        .entries()
        .iter()
        .filter(|e| !e.dropped && e.to == NodeId(0) && e.label == "p2b")
        .count();
    let per_op = to_leader_p2b as f64 / ops as f64;
    assert!(
        (per_op - r as f64).abs() < 0.3,
        "leader should receive ≈{r} aggregated p2b per op, got {per_op:.2}"
    );
}
