//! Structural validation of the communication flows via message traces:
//! not just "does it commit", but "does the traffic have exactly the
//! shape the paper describes".

use paxi::harness::RunSpec;
use paxi::TargetPolicy;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use simnet::{NodeId, SimDuration};

fn spec(n: usize, clients: usize) -> RunSpec {
    RunSpec {
        warmup: SimDuration::from_millis(200),
        measure: SimDuration::from_millis(600),
        ..RunSpec::lan(n, clients)
    }
}

/// Run with tracing and return `(ops, count_of_label)` pairs.
fn traced_counts<P, B>(s: &RunSpec, build: B, labels: &[&'static str]) -> (usize, Vec<usize>)
where
    P: paxi::ProtoMessage,
    B: Fn(NodeId, &paxi::ClusterConfig) -> Box<dyn simnet::Actor<paxi::Envelope<P>>>,
{
    let mut counts = vec![0usize; labels.len()];
    // The harness drops the sim, so capture counts by building the run
    // manually here.
    let mut topo = s.topology.clone();
    topo.add_nodes(s.n_clients, 0);
    let mut sim: simnet::Simulation<paxi::Envelope<P>> =
        simnet::Simulation::new(topo, s.cost.clone(), s.seed);
    let cluster = paxi::ClusterConfig::new(s.n_replicas);
    for i in 0..s.n_replicas {
        sim.add_actor(build(NodeId::from(i), &cluster));
    }
    let recorder = paxi::ClientRecorder::new();
    for _ in 0..s.n_clients {
        sim.add_actor(Box::new(paxi::ClosedLoopClient::<P>::new(
            TargetPolicy::Fixed(NodeId(0)),
            s.workload.clone(),
            recorder.clone(),
            s.retry_timeout,
        )));
    }
    sim.enable_trace();
    sim.run_for(s.warmup + s.measure);
    cluster.safety.assert_safe();
    let trace = sim.trace().expect("enabled");
    for (i, l) in labels.iter().enumerate() {
        counts[i] = trace.count_label(l);
    }
    (recorder.len(), counts)
}

#[test]
fn pigpaxos_leader_sends_exactly_r_relay_messages_per_round() {
    let n = 25;
    let r = 3;
    let s = spec(n, 4);
    let (ops, counts) = traced_counts(
        &s,
        pig_builder(PigConfig::lan(r)),
        &["to_relay", "p2a", "p2b"],
    );
    assert!(ops > 200, "need enough ops to average over, got {ops}");
    let to_relay_per_op = counts[0] as f64 / ops as f64;
    // One ToRelay per group per proposal (heartbeats add a small floor).
    assert!(
        (to_relay_per_op - r as f64).abs() < 0.5,
        "expected ≈{r} ToRelay per op, got {to_relay_per_op:.2}"
    );
    // Each relay forwards the P2a to its group peers: (n-1-r) direct
    // copies per proposal.
    let p2a_per_op = counts[1] as f64 / ops as f64;
    let expect_fanout = (n - 1 - r) as f64;
    assert!(
        (p2a_per_op - expect_fanout).abs() < 2.0,
        "expected ≈{expect_fanout} relayed p2a per op, got {p2a_per_op:.2}"
    );
    // Fan-in: every follower answers its relay (singleton p2b), and each
    // relay sends one aggregate to the leader: (n-1-r) + r = n-1.
    let p2b_per_op = counts[2] as f64 / ops as f64;
    assert!(
        (p2b_per_op - (n - 1) as f64).abs() < 2.0,
        "expected ≈{} p2b per op, got {p2b_per_op:.2}",
        n - 1
    );
}

#[test]
fn paxos_leader_broadcasts_to_every_follower() {
    let n = 9;
    let s = spec(n, 4);
    let (ops, counts) = traced_counts(&s, paxos_builder(PaxosConfig::lan()), &["p2a", "p2b"]);
    assert!(ops > 200);
    let p2a_per_op = counts[0] as f64 / ops as f64;
    let p2b_per_op = counts[1] as f64 / ops as f64;
    assert!(
        (p2a_per_op - (n - 1) as f64).abs() < 1.0,
        "direct Paxos sends n-1 p2a per op, got {p2a_per_op:.2}"
    );
    assert!(
        (p2b_per_op - (n - 1) as f64).abs() < 1.0,
        "and receives n-1 p2b per op, got {p2b_per_op:.2}"
    );
}

#[test]
fn aggregation_means_leader_receives_few_large_p2bs() {
    // The leader-facing p2b traffic in PigPaxos consists of r aggregates
    // per op; verify by counting p2b deliveries *to the leader* only.
    let n = 25;
    let r = 2;
    let s = spec(n, 4);
    let mut topo = s.topology.clone();
    topo.add_nodes(s.n_clients, 0);
    let mut sim: simnet::Simulation<paxi::Envelope<pigpaxos::PigMsg>> =
        simnet::Simulation::new(topo, s.cost.clone(), s.seed);
    let cluster = paxi::ClusterConfig::new(n);
    let build = pig_builder(PigConfig::lan(r));
    for i in 0..n {
        sim.add_actor(build(NodeId::from(i), &cluster));
    }
    let recorder = paxi::ClientRecorder::new();
    for _ in 0..s.n_clients {
        sim.add_actor(Box::new(paxi::ClosedLoopClient::<pigpaxos::PigMsg>::new(
            TargetPolicy::Fixed(NodeId(0)),
            s.workload.clone(),
            recorder.clone(),
            s.retry_timeout,
        )));
    }
    sim.enable_trace();
    sim.run_for(s.warmup + s.measure);
    cluster.safety.assert_safe();
    let ops = recorder.len().max(1);
    let to_leader_p2b = sim
        .trace()
        .expect("enabled")
        .entries()
        .iter()
        .filter(|e| !e.dropped && e.to == NodeId(0) && e.label == "p2b")
        .count();
    let per_op = to_leader_p2b as f64 / ops as f64;
    assert!(
        (per_op - r as f64).abs() < 0.3,
        "leader should receive ≈{r} aggregated p2b per op, got {per_op:.2}"
    );
}
