//! Leader-side command batching: safety and amortization, end to end.
//!
//! With `max_batch > 1` an accept round carries many commands, so these
//! tests pin down what batching must NOT change (per-client FIFO order,
//! read-your-writes, agreement) and what it MUST change (leader message
//! load per committed command).

use paxi::harness::{run, RunSpec};
use paxi::{
    BatchConfig, ClientRecorder, ClientRequest, ClosedLoopClient, ClusterConfig, Command, Envelope,
    Operation, ProtoMessage, RequestId, TargetPolicy, Value, Workload,
};
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use simnet::{
    Actor, Context, CpuCostModel, NodeId, SimDuration, SimTime, Simulation, TimerId, Topology,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

fn batched(max_batch: usize) -> BatchConfig {
    BatchConfig::new(max_batch, SimDuration::from_micros(200))
}

fn paxos_batched(max_batch: usize) -> PaxosConfig {
    let mut cfg = PaxosConfig::lan();
    cfg.batch = batched(max_batch);
    cfg
}

fn pig_batched(groups: usize, max_batch: usize) -> PigConfig {
    let mut cfg = PigConfig::lan(groups);
    cfg.paxos.batch = batched(max_batch);
    cfg
}

fn leader() -> TargetPolicy {
    TargetPolicy::Fixed(NodeId(0))
}

/// Hand-rolled cluster run that keeps the `ClusterConfig` (and thus the
/// safety monitor's decided log) accessible after the run.
fn run_cluster<P, B>(n: usize, clients: usize, build: B, until: SimTime) -> ClusterConfig
where
    P: ProtoMessage,
    B: Fn(NodeId, &ClusterConfig) -> Box<dyn Actor<Envelope<P>>>,
{
    let mut topo = Topology::lan(n);
    topo.add_nodes(clients, 0);
    let mut sim: Simulation<Envelope<P>> = Simulation::new(topo, CpuCostModel::calibrated(), 11);
    let cluster = ClusterConfig::new(n);
    for i in 0..n {
        sim.add_actor(build(NodeId::from(i), &cluster));
    }
    let recorder = ClientRecorder::new();
    for _ in 0..clients {
        sim.add_actor(Box::new(ClosedLoopClient::<P>::new(
            leader(),
            Workload::paper_default(),
            recorder.clone(),
            SimDuration::from_millis(100),
        )));
    }
    sim.run_until(until);
    assert!(
        recorder.len() > 100,
        "cluster must make progress, got {}",
        recorder.len()
    );
    cluster
}

/// In slot order, every client's sequence numbers must be strictly
/// increasing: a closed-loop client only issues seq n+1 after seq n
/// completed, so any batching-induced reorder or duplicate would show
/// up here.
fn assert_per_client_fifo(cluster: &ClusterConfig) {
    cluster.safety.assert_safe();
    let mut last_seq: HashMap<NodeId, u64> = HashMap::new();
    let mut checked = 0u64;
    for ((space, slot), id) in cluster.safety.decisions() {
        assert_eq!(space, 0, "single log space for (Pig)Paxos");
        if id.client == NodeId(u32::MAX) {
            continue; // noop hole filler
        }
        if let Some(&prev) = last_seq.get(&id.client) {
            assert!(
                id.seq > prev,
                "slot {slot}: client {} seq {} after seq {prev} — decided log \
                 violates per-client issue order",
                id.client,
                id.seq
            );
        }
        last_seq.insert(id.client, id.seq);
        checked += 1;
    }
    assert!(
        checked > 100,
        "expected a substantive decided log, saw {checked} commands"
    );
}

#[test]
fn paxos_batched_log_respects_client_issue_order() {
    let cluster = run_cluster(
        5,
        16,
        paxos_builder(paxos_batched(8)),
        SimTime::from_millis(1200),
    );
    assert_per_client_fifo(&cluster);
}

#[test]
fn pigpaxos_batched_log_respects_client_issue_order() {
    let cluster = run_cluster(
        5,
        16,
        pig_builder(pig_batched(2, 8)),
        SimTime::from_millis(1200),
    );
    assert_per_client_fifo(&cluster);
}

/// Sequential put-then-get client: every get must observe the
/// immediately preceding put even when both ride through the batcher.
struct RywClient<P> {
    leader: NodeId,
    rounds: u64,
    seq: u64,
    current_round: u64,
    expecting_get: bool,
    failures: Rc<RefCell<Vec<String>>>,
    completed: Rc<RefCell<u64>>,
    _proto: std::marker::PhantomData<P>,
}

impl<P: ProtoMessage> RywClient<P> {
    fn value_for_round(round: u64) -> Value {
        Value::from(round.to_be_bytes().as_slice())
    }

    fn issue(&mut self, op: Operation, ctx: &mut Context<Envelope<P>>) {
        self.seq += 1;
        let id = RequestId {
            client: ctx.node(),
            seq: self.seq,
        };
        ctx.send(
            self.leader,
            Envelope::Request(ClientRequest {
                command: Command { id, op },
            }),
        );
    }

    fn next_round(&mut self, ctx: &mut Context<Envelope<P>>) {
        if self.current_round >= self.rounds {
            return;
        }
        self.current_round += 1;
        self.expecting_get = false;
        self.issue(
            Operation::Put(7, Self::value_for_round(self.current_round)),
            ctx,
        );
    }
}

impl<P: ProtoMessage> Actor<Envelope<P>> for RywClient<P> {
    fn on_start(&mut self, ctx: &mut Context<Envelope<P>>) {
        self.next_round(ctx);
    }

    fn on_message(&mut self, _f: NodeId, msg: Envelope<P>, ctx: &mut Context<Envelope<P>>) {
        let Envelope::Reply(reply) = msg else { return };
        if !reply.ok || reply.id.seq != self.seq {
            return;
        }
        if self.expecting_get {
            let expected = Self::value_for_round(self.current_round);
            if reply.value.as_ref() != Some(&expected) {
                self.failures.borrow_mut().push(format!(
                    "round {}: get returned {:?}, expected {:?}",
                    self.current_round, reply.value, expected
                ));
            }
            *self.completed.borrow_mut() += 1;
            self.next_round(ctx);
        } else {
            self.expecting_get = true;
            self.issue(Operation::Get(7), ctx);
        }
    }

    fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Envelope<P>>) {}
}

/// A lone sequential client never fills a batch, so every one of its
/// commands rides the `max_delay` timer flush — this doubles as the
/// partial-batch-flush liveness test.
fn check_read_your_writes<P, B>(n: usize, build: B)
where
    P: ProtoMessage,
    B: Fn(NodeId, &ClusterConfig) -> Box<dyn Actor<Envelope<P>>>,
{
    let mut topo = Topology::lan(n);
    topo.add_nodes(1, 0);
    let mut sim: Simulation<Envelope<P>> = Simulation::new(topo, CpuCostModel::calibrated(), 99);
    let cluster = ClusterConfig::new(n);
    for i in 0..n {
        sim.add_actor(build(NodeId::from(i), &cluster));
    }
    let failures = Rc::new(RefCell::new(Vec::new()));
    let completed = Rc::new(RefCell::new(0u64));
    sim.add_actor(Box::new(RywClient::<P> {
        leader: NodeId(0),
        rounds: 50,
        seq: 0,
        current_round: 0,
        expecting_get: false,
        failures: failures.clone(),
        completed: completed.clone(),
        _proto: std::marker::PhantomData,
    }));
    sim.run_until(SimTime::from_secs(5));
    cluster.safety.assert_safe();
    assert!(failures.borrow().is_empty(), "{:?}", failures.borrow());
    assert_eq!(
        *completed.borrow(),
        50,
        "all rounds must complete through the batcher"
    );
}

#[test]
fn paxos_batched_read_your_writes() {
    check_read_your_writes(5, paxos_builder(paxos_batched(16)));
}

#[test]
fn pigpaxos_batched_read_your_writes() {
    check_read_your_writes(5, pig_builder(pig_batched(2, 16)));
}

/// The point of the whole subsystem: at `max_batch = 16`, leader-sent
/// protocol messages per committed command must drop by at least 4x
/// vs. unbatched (the repo's acceptance gate), for both the direct and
/// the relay-tree protocol.
#[test]
fn batching_cuts_leader_protocol_messages_4x() {
    let spec = RunSpec {
        warmup: SimDuration::from_millis(300),
        measure: SimDuration::from_millis(1200),
        capture_trace: true,
        ..RunSpec::lan(5, 32)
    };

    for (name, base, b16) in [
        (
            "paxos",
            run(&spec, paxos_builder(PaxosConfig::lan()), leader()),
            run(&spec, paxos_builder(paxos_batched(16)), leader()),
        ),
        (
            "pigpaxos",
            run(&spec, pig_builder(PigConfig::lan(2)), leader()),
            run(&spec, pig_builder(pig_batched(2, 16)), leader()),
        ),
    ] {
        assert!(
            base.violations.is_empty(),
            "{name} unbatched: {:?}",
            base.violations
        );
        assert!(
            b16.violations.is_empty(),
            "{name} batched: {:?}",
            b16.violations
        );
        let unbatched = base.leader_proto_sent_per_op.expect("trace captured");
        let batched16 = b16.leader_proto_sent_per_op.expect("trace captured");
        assert!(
            unbatched >= batched16 * 4.0,
            "{name}: leader-sent protocol msgs/cmd must drop >=4x: {unbatched:.3} vs {batched16:.3}"
        );
        // Total leader load (requests + replies included) must drop too.
        assert!(
            b16.leader_msgs_per_op < base.leader_msgs_per_op,
            "{name}: total leader msgs/op must drop: {:.2} vs {:.2}",
            base.leader_msgs_per_op,
            b16.leader_msgs_per_op
        );
        // Batching must not wreck service: same order of throughput.
        assert!(
            b16.throughput > base.throughput * 0.5,
            "{name}: batched throughput collapsed: {:.0} vs {:.0}",
            b16.throughput,
            base.throughput
        );
    }
}
