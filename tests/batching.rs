//! Leader-side command batching: safety and amortization, end to end.
//!
//! With `max_batch > 1` an accept round carries many commands, so these
//! tests pin down what batching must NOT change (per-client FIFO order,
//! read-your-writes, agreement) and what it MUST change (leader message
//! load per committed command).

use paxi::{
    BatchConfig, ClientRequest, ClusterConfig, Command, Envelope, Experiment, Operation,
    ProtoMessage, ProtocolSpec, RequestId, Value,
};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use proptest::prelude::*;
use simnet::{Actor, Context, NodeId, SimDuration, TimerId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

fn batched(max_batch: usize) -> BatchConfig {
    BatchConfig::new(max_batch, SimDuration::from_micros(200))
}

/// The full batching-v2 policy: adaptive sizing + coalesced replies.
fn adaptive_coalesced(max_batch: usize) -> BatchConfig {
    BatchConfig::adaptive(max_batch, SimDuration::from_micros(200))
        .with_reply_coalescing(SimDuration::ZERO)
}

/// Run a batched cluster and keep the `ClusterConfig` (and thus the
/// safety monitor's decided log) for post-run inspection: the hook
/// clones the shared handle out before the simulation starts.
fn run_cluster<P: ProtocolSpec>(
    proto: P,
    n: usize,
    clients: usize,
    pipeline: usize,
    seed: u64,
    measure: SimDuration,
) -> ClusterConfig {
    let mut captured = None;
    let r = Experiment::lan(proto, n)
        .clients(clients)
        .client_pipeline(pipeline)
        .warmup(SimDuration::ZERO)
        .measure(measure)
        .run_sim_with(seed, |_, cluster| captured = Some(cluster.clone()));
    assert!(
        r.samples > 100,
        "cluster must make progress, got {}",
        r.samples
    );
    captured.expect("hook ran")
}

/// In slot order, every client's sequence numbers must be strictly
/// increasing: a closed-loop client only issues seq n+1 after seq n
/// completed, so any batching-induced reorder or duplicate would show
/// up here.
fn assert_per_client_fifo(cluster: &ClusterConfig) {
    cluster.safety.assert_safe();
    let mut last_seq: HashMap<NodeId, u64> = HashMap::new();
    let mut checked = 0u64;
    for ((space, slot), id) in cluster.safety.decisions() {
        assert_eq!(space, 0, "single log space for (Pig)Paxos");
        if id.client == NodeId(u32::MAX) {
            continue; // noop hole filler
        }
        if let Some(&prev) = last_seq.get(&id.client) {
            assert!(
                id.seq > prev,
                "slot {slot}: client {} seq {} after seq {prev} — decided log \
                 violates per-client issue order",
                id.client,
                id.seq
            );
        }
        last_seq.insert(id.client, id.seq);
        checked += 1;
    }
    assert!(
        checked > 100,
        "expected a substantive decided log, saw {checked} commands"
    );
}

#[test]
fn paxos_batched_log_respects_client_issue_order() {
    let cluster = run_cluster(
        PaxosConfig::lan().with_batch(batched(8)),
        5,
        16,
        1,
        11,
        SimDuration::from_millis(1200),
    );
    assert_per_client_fifo(&cluster);
}

#[test]
fn pigpaxos_batched_log_respects_client_issue_order() {
    let cluster = run_cluster(
        PigConfig::lan(2).with_batch(batched(8)),
        5,
        16,
        1,
        11,
        SimDuration::from_millis(1200),
    );
    assert_per_client_fifo(&cluster);
}

#[test]
fn pipelined_adaptive_log_respects_client_issue_order() {
    // Pipelined clients' requests reorder under LAN jitter; the leader's
    // admission lane must restore per-client issue order even with
    // adaptive batch sizes and coalesced replies in play.
    let cluster = run_cluster(
        PigConfig::lan(2).with_batch(adaptive_coalesced(32)),
        5,
        8,
        4,
        11,
        SimDuration::from_millis(1200),
    );
    assert_per_client_fifo(&cluster);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Per-client FIFO holds in the decided log for every combination of
    /// seed, pipeline depth, and sizing mode — the property the
    /// admission lane exists to defend.
    #[test]
    fn fifo_holds_under_adaptive_sizing_and_coalesced_replies(
        seed in 1u64..1_000,
        pipeline in 1usize..=6,
        adaptive in prop::bool::ANY,
    ) {
        let batch = if adaptive {
            adaptive_coalesced(32)
        } else {
            batched(8).with_reply_coalescing(SimDuration::ZERO)
        };
        let cluster = run_cluster(
            PigConfig::lan(2).with_batch(batch),
            5,
            6,
            pipeline,
            seed,
            SimDuration::from_millis(900),
        );
        cluster.safety.assert_safe();
        let mut last_seq: HashMap<NodeId, u64> = HashMap::new();
        for ((_, _), id) in cluster.safety.decisions() {
            if id.client == NodeId(u32::MAX) {
                continue;
            }
            if let Some(&prev) = last_seq.get(&id.client) {
                prop_assert!(
                    id.seq > prev,
                    "client {} seq {} decided after seq {}",
                    id.client, id.seq, prev
                );
            }
            last_seq.insert(id.client, id.seq);
        }
    }
}

/// Sequential put-then-get client: every get must observe the
/// immediately preceding put even when both ride through the batcher.
struct RywClient<P> {
    leader: NodeId,
    rounds: u64,
    seq: u64,
    current_round: u64,
    expecting_get: bool,
    failures: Rc<RefCell<Vec<String>>>,
    completed: Rc<RefCell<u64>>,
    _proto: std::marker::PhantomData<P>,
}

impl<P: ProtoMessage> RywClient<P> {
    fn value_for_round(round: u64) -> Value {
        Value::from(round.to_be_bytes().as_slice())
    }

    fn issue(&mut self, op: Operation, ctx: &mut Context<Envelope<P>>) {
        self.seq += 1;
        let id = RequestId {
            client: ctx.node(),
            seq: self.seq,
        };
        ctx.send(
            self.leader,
            Envelope::Request(ClientRequest {
                command: Command { id, op },
            }),
        );
    }

    fn next_round(&mut self, ctx: &mut Context<Envelope<P>>) {
        if self.current_round >= self.rounds {
            return;
        }
        self.current_round += 1;
        self.expecting_get = false;
        self.issue(
            Operation::Put(7, Self::value_for_round(self.current_round)),
            ctx,
        );
    }
}

impl<P: ProtoMessage> Actor<Envelope<P>> for RywClient<P> {
    fn on_start(&mut self, ctx: &mut Context<Envelope<P>>) {
        self.next_round(ctx);
    }

    fn on_message(&mut self, _f: NodeId, msg: Envelope<P>, ctx: &mut Context<Envelope<P>>) {
        // Unpack coalesced envelopes like a real client would; a lone
        // sequential client normally gets singletons (degraded to plain
        // `Reply`), but windowed coalescing can merge across waves.
        let replies = match msg {
            Envelope::Reply(r) => vec![r],
            Envelope::ReplyBatch(rs) => rs,
            _ => return,
        };
        for reply in replies {
            if !reply.ok || reply.id.seq != self.seq {
                continue;
            }
            if self.expecting_get {
                let expected = Self::value_for_round(self.current_round);
                if reply.value.as_ref() != Some(&expected) {
                    self.failures.borrow_mut().push(format!(
                        "round {}: get returned {:?}, expected {:?}",
                        self.current_round, reply.value, expected
                    ));
                }
                *self.completed.borrow_mut() += 1;
                self.next_round(ctx);
            } else {
                self.expecting_get = true;
                self.issue(Operation::Get(7), ctx);
            }
        }
    }

    fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Envelope<P>>) {}
}

/// A lone sequential client never fills a batch, so every one of its
/// commands rides the `max_delay` timer flush — this doubles as the
/// partial-batch-flush liveness test. The checking client occupies an
/// `extra_client_nodes` slot and is injected by the setup hook.
fn check_read_your_writes<P: ProtocolSpec>(proto: P, n: usize) {
    let failures = Rc::new(RefCell::new(Vec::new()));
    let completed = Rc::new(RefCell::new(0u64));
    let (failures2, completed2) = (failures.clone(), completed.clone());
    let r = Experiment::lan(proto, n)
        .extra_client_nodes(1)
        .warmup(SimDuration::ZERO)
        .measure(SimDuration::from_secs(5))
        .run_sim_with(99, move |sim, _| {
            sim.add_actor(Box::new(RywClient::<P::Msg> {
                leader: NodeId(0),
                rounds: 50,
                seq: 0,
                current_round: 0,
                expecting_get: false,
                failures: failures2,
                completed: completed2,
                _proto: std::marker::PhantomData,
            }));
        });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(failures.borrow().is_empty(), "{:?}", failures.borrow());
    assert_eq!(
        *completed.borrow(),
        50,
        "all rounds must complete through the batcher"
    );
}

#[test]
fn paxos_batched_read_your_writes() {
    check_read_your_writes(PaxosConfig::lan().with_batch(batched(16)), 5);
}

#[test]
fn pigpaxos_batched_read_your_writes() {
    check_read_your_writes(PigConfig::lan(2).with_batch(batched(16)), 5);
}

#[test]
fn adaptive_coalesced_read_your_writes() {
    // The full v2 pipeline (adaptive sizing, reply coalescing, relay
    // round coalescing) must preserve sequential consistency for a
    // lone put-then-get client.
    check_read_your_writes(PaxosConfig::lan().with_batch(adaptive_coalesced(32)), 5);
    check_read_your_writes(PigConfig::lan(2).with_batch(adaptive_coalesced(32)), 5);
}

fn pipelined<P: ProtocolSpec>(proto: P) -> Experiment<P> {
    Experiment::lan(proto, 5)
        .clients(4)
        .client_pipeline(8)
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(1200))
        .capture_trace()
}

/// The reply-side gate: coalescing must collapse per-command reply
/// envelopes for pipelined clients, cutting total leader-sent messages
/// (protocol + replies) at least 2x versus the replies-per-command
/// baseline at the same batch size.
#[test]
fn reply_coalescing_cuts_leader_reply_envelopes() {
    let mut v1_cfg = PigConfig::lan(2).with_batch(batched(16));
    v1_cfg.relay_coalesce_window = SimDuration::ZERO; // PR-1 behaviour
    let base = pipelined(v1_cfg).run_sim(paxi::DEFAULT_SEED);
    let v2 = pipelined(
        PigConfig::lan(2).with_batch(batched(16).with_reply_coalescing(SimDuration::ZERO)),
    )
    .run_sim(paxi::DEFAULT_SEED);
    assert!(base.violations.is_empty(), "{:?}", base.violations);
    assert!(v2.violations.is_empty(), "{:?}", v2.violations);

    let base_replies = base.leader_replies_per_op.expect("trace captured");
    let v2_replies = v2.leader_replies_per_op.expect("trace captured");
    assert!(
        (base_replies - 1.0).abs() < 0.05,
        "uncoalesced baseline sends one reply envelope per command, got {base_replies:.3}"
    );
    assert!(
        v2_replies <= 0.5,
        "pipelined waves must coalesce replies >=2x, got {v2_replies:.3} envelopes/cmd"
    );

    let base_total = base.leader_sent_per_op.expect("trace captured");
    let v2_total = v2.leader_sent_per_op.expect("trace captured");
    assert!(
        base_total >= v2_total * 2.0,
        "total leader-sent messages must drop >=2x end to end: {base_total:.3} vs {v2_total:.3}"
    );
    // Coalescing must not wreck service.
    assert!(
        v2.throughput > base.throughput * 0.7,
        "throughput must hold: {:.0} vs {:.0}",
        v2.throughput,
        base.throughput
    );
}

/// Adaptive sizing must not tax an idle system: a trickle of commands
/// flushes immediately, keeping p50 within 1.2x of unbatched.
#[test]
fn adaptive_batching_keeps_low_load_latency() {
    let low = |proto: PigConfig| {
        Experiment::lan(proto, 5)
            .clients(2)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(1200))
            .run_sim(paxi::DEFAULT_SEED)
    };
    let unbatched = low(PigConfig::lan(2));
    let adaptive = low(PigConfig::lan(2).with_batch(adaptive_coalesced(32)));
    assert!(adaptive.violations.is_empty());
    assert!(
        adaptive.p50_latency_ms <= unbatched.p50_latency_ms * 1.2,
        "adaptive mode must flush immediately at low load: p50 {:.3}ms vs {:.3}ms",
        adaptive.p50_latency_ms,
        unbatched.p50_latency_ms
    );
}

/// The point of the whole subsystem: at `max_batch = 16`, leader-sent
/// protocol messages per committed command must drop by at least 4x
/// vs. unbatched (the repo's acceptance gate), for both the direct and
/// the relay-tree protocol — one generic check, two protocol configs.
#[test]
fn batching_cuts_leader_protocol_messages_4x() {
    fn saturated<P: ProtocolSpec>(proto: P) -> paxi::RunResult {
        Experiment::lan(proto, 5)
            .clients(32)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(1200))
            .capture_trace()
            .run_sim(paxi::DEFAULT_SEED)
    }

    for (name, base, b16) in [
        (
            "paxos",
            saturated(PaxosConfig::lan()),
            saturated(PaxosConfig::lan().with_batch(batched(16))),
        ),
        (
            "pigpaxos",
            saturated(PigConfig::lan(2)),
            saturated(PigConfig::lan(2).with_batch(batched(16))),
        ),
    ] {
        assert!(
            base.violations.is_empty(),
            "{name} unbatched: {:?}",
            base.violations
        );
        assert!(
            b16.violations.is_empty(),
            "{name} batched: {:?}",
            b16.violations
        );
        let unbatched = base.leader_proto_sent_per_op.expect("trace captured");
        let batched16 = b16.leader_proto_sent_per_op.expect("trace captured");
        assert!(
            unbatched >= batched16 * 4.0,
            "{name}: leader-sent protocol msgs/cmd must drop >=4x: {unbatched:.3} vs {batched16:.3}"
        );
        // Total leader load (requests + replies included) must drop too.
        assert!(
            b16.leader_msgs_per_op < base.leader_msgs_per_op,
            "{name}: total leader msgs/op must drop: {:.2} vs {:.2}",
            base.leader_msgs_per_op,
            b16.leader_msgs_per_op
        );
        // Batching must not wreck service: same order of throughput.
        assert!(
            b16.throughput > base.throughput * 0.5,
            "{name}: batched throughput collapsed: {:.0} vs {:.0}",
            b16.throughput,
            base.throughput
        );
    }
}
