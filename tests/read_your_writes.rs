//! End-to-end state-machine correctness: a sequential client that
//! writes distinct values and reads them back, asserting every read
//! observes the latest completed write (read-your-writes through the
//! serialized log — the linearizability the paper's single conflict
//! domain provides). The checking client occupies an
//! `extra_client_nodes` slot of the unified experiment and is injected
//! by the setup hook.

use paxi::{
    ClientRequest, Command, Envelope, Experiment, Operation, ProtoMessage, ProtocolSpec, RequestId,
    Value,
};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use simnet::{Actor, Context, NodeId, SimDuration, TimerId};
use std::cell::RefCell;
use std::rc::Rc;

/// Issues `put(k, v_i); get(k)` pairs sequentially and checks that each
/// get returns the value of the immediately preceding put.
struct CheckingClient<P> {
    leader: NodeId,
    rounds: u64,
    seq: u64,
    current_round: u64,
    expecting_get: bool,
    failures: Rc<RefCell<Vec<String>>>,
    completed: Rc<RefCell<u64>>,
    _proto: std::marker::PhantomData<P>,
}

impl<P: ProtoMessage> CheckingClient<P> {
    fn value_for_round(round: u64) -> Value {
        Value::from(round.to_be_bytes().as_slice())
    }

    fn issue(&mut self, op: Operation, ctx: &mut Context<Envelope<P>>) {
        self.seq += 1;
        let id = RequestId {
            client: ctx.node(),
            seq: self.seq,
        };
        ctx.send(
            self.leader,
            Envelope::Request(ClientRequest {
                command: Command { id, op },
            }),
        );
    }

    fn next_round(&mut self, ctx: &mut Context<Envelope<P>>) {
        if self.current_round >= self.rounds {
            return;
        }
        self.current_round += 1;
        self.expecting_get = false;
        self.issue(
            Operation::Put(7, Self::value_for_round(self.current_round)),
            ctx,
        );
    }
}

impl<P: ProtoMessage> Actor<Envelope<P>> for CheckingClient<P> {
    fn on_start(&mut self, ctx: &mut Context<Envelope<P>>) {
        self.next_round(ctx);
    }

    fn on_message(&mut self, _f: NodeId, msg: Envelope<P>, ctx: &mut Context<Envelope<P>>) {
        let Envelope::Reply(reply) = msg else { return };
        if !reply.ok || reply.id.seq != self.seq {
            return;
        }
        if self.expecting_get {
            let expected = Self::value_for_round(self.current_round);
            if reply.value.as_ref() != Some(&expected) {
                self.failures.borrow_mut().push(format!(
                    "round {}: get returned {:?}, expected {:?}",
                    self.current_round, reply.value, expected
                ));
            }
            *self.completed.borrow_mut() += 1;
            self.next_round(ctx);
        } else {
            self.expecting_get = true;
            self.issue(Operation::Get(7), ctx);
        }
    }

    fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Envelope<P>>) {}
}

fn check_protocol<P: ProtocolSpec>(proto: P, n: usize) {
    let failures = Rc::new(RefCell::new(Vec::new()));
    let completed = Rc::new(RefCell::new(0u64));
    let (failures2, completed2) = (failures.clone(), completed.clone());
    let r = Experiment::lan(proto, n)
        .extra_client_nodes(1)
        .warmup(SimDuration::ZERO)
        .measure(SimDuration::from_secs(5))
        .run_sim_with(99, move |sim, _| {
            sim.add_actor(Box::new(CheckingClient::<P::Msg> {
                leader: NodeId(0),
                rounds: 50,
                seq: 0,
                current_round: 0,
                expecting_get: false,
                failures: failures2,
                completed: completed2,
                _proto: std::marker::PhantomData,
            }));
        });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(failures.borrow().is_empty(), "{:?}", failures.borrow());
    assert_eq!(*completed.borrow(), 50, "all rounds must complete");
}

#[test]
fn paxos_read_your_writes() {
    check_protocol(PaxosConfig::lan(), 5);
}

#[test]
fn pigpaxos_read_your_writes() {
    check_protocol(PigConfig::lan(3), 9);
}

#[test]
fn pigpaxos_two_groups_read_your_writes() {
    check_protocol(PigConfig::lan(2), 5);
}
