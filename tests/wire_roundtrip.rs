//! Property tests for the wire schema: for every message type of every
//! protocol, `encode` → `decode` reproduces the original value AND the
//! encoded length equals `wire_size()` — the arithmetic the simulator's
//! CPU cost model charges. The second half is the load-bearing one: it
//! pins the declared sizes (which drive every simulated benchmark
//! number) to the real bytes the TCP substrate puts on a socket.
//!
//! A second family of properties drives the decoders with *hostile*
//! frames — truncated at arbitrary byte offsets, or with arbitrary
//! byte corruption — and requires a clean [`WireError`] (never a
//! panic), since the TCP substrate feeds decoders whatever the socket
//! produced.
//!
//! Strategies stay inside each field's packing caps on purpose — the
//! encoders assert them (`u48` slots, 14-bit entry values, 13-bit
//! batched-reply values, 15-bit vote slot deltas) — and the boundary
//! unit tests at the bottom pin the caps themselves.

use epaxos::{Attrs, EpaxosMsg, InstanceId};
use paxi::{
    Ballot, ClientReply, ClientRequest, Command, Envelope, KvStore, Operation, ProtoMessage,
    RequestId, SessionTable, Snapshot, Value,
};
use paxos::{P1bVote, P2bVote, PaxosMsg, QrProbe, QrProbeVote, QrVoteEntry};
use pigpaxos::{PigMsg, RelayPlan};
use proptest::prelude::*;
use simnet::{Bytes, Message, NodeId, Wire};

/// Encode, check the length against the declared size, decode, compare.
fn check<M: Wire + PartialEq + std::fmt::Debug>(msg: &M, declared: usize) {
    let bytes = msg.encode();
    assert_eq!(
        bytes.len(),
        declared,
        "wire_size() must equal encoded length for {msg:?}"
    );
    let frame = Bytes::from(bytes);
    let back = M::decode_frame(&frame).expect("decode what we encoded");
    assert_eq!(&back, msg, "decode(encode(msg)) must reproduce msg");
}

/// Decode the frame cut at byte `cut`: either a clean [`WireError`] or
/// — for the messages whose last field is delimited by the frame end —
/// an `Ok` that is a faithful parse of exactly the truncated bytes.
/// Never a panic.
fn check_truncated<M: Wire + std::fmt::Debug>(msg: &M, cut: usize) {
    let bytes = msg.encode();
    let cut = cut % bytes.len().max(1);
    let frame = Bytes::from(bytes[..cut].to_vec());
    if let Ok(m) = M::decode_frame(&frame) {
        assert_eq!(
            m.encode().as_slice(),
            &frame[..],
            "an Ok parse of a truncated frame must re-encode to it"
        );
    }
}

/// Decode the frame with byte `pos` xored by `flip`: any `Ok` or
/// `Err(WireError)` is acceptable, a panic is not.
fn check_corrupted<M: Wire + std::fmt::Debug>(msg: &M, pos: usize, flip: u8) {
    let mut bytes = msg.encode();
    if bytes.is_empty() {
        return;
    }
    let pos = pos % bytes.len();
    bytes[pos] ^= flip;
    let _ = M::decode_frame(&Bytes::from(bytes));
}

// ---- shared strategies ---------------------------------------------------

/// Arbitrary-content values up to `max` bytes.
fn value(max: usize) -> impl Strategy<Value = Value> {
    proptest::collection::vec(any::<u8>(), 0..=max).prop_map(|v| Value::from(&v[..]))
}

fn rid() -> impl Strategy<Value = RequestId> {
    (any::<u32>(), any::<u64>()).prop_map(|(c, s)| RequestId {
        client: NodeId(c),
        seq: s,
    })
}

fn operation(max: usize) -> impl Strategy<Value = Operation> {
    prop_oneof![
        any::<u64>().prop_map(Operation::Get),
        (any::<u64>(), value(max)).prop_map(|(k, v)| Operation::Put(k, v)),
        Just(Operation::Noop),
    ]
}

fn command(max: usize) -> impl Strategy<Value = Command> {
    (rid(), operation(max)).prop_map(|(id, op)| Command { id, op })
}

fn ballot() -> impl Strategy<Value = Ballot> {
    (any::<u32>(), any::<u32>()).prop_map(|(r, n)| Ballot::new(r, NodeId(n)))
}

/// Slots travel as u48 in repeated log entries.
fn slot48() -> impl Strategy<Value = u64> {
    0u64..(1u64 << 48)
}

/// Replies valid in any position, including the 13-bit packed metas of
/// `ReplyBatch` and `SessionTable` (value len and redirect id < 8192).
fn client_reply(max_value: usize) -> impl Strategy<Value = ClientReply> {
    prop_oneof![
        (rid(), proptest::option::of(value(max_value))).prop_map(|(id, v)| ClientReply::ok(id, v)),
        (rid(), proptest::option::of(0u32..8192))
            .prop_map(|(id, n)| ClientReply::redirect(id, n.map(NodeId))),
    ]
}

fn kv_store() -> impl Strategy<Value = KvStore> {
    proptest::collection::vec((any::<u64>(), value(64)), 0..4).prop_map(|puts| {
        let mut kv = KvStore::new();
        for (k, v) in puts {
            kv.apply(&Operation::Put(k, v));
        }
        kv
    })
}

fn session_table() -> impl Strategy<Value = SessionTable> {
    (1usize..4, proptest::collection::vec(client_reply(64), 0..6)).prop_map(|(w, replies)| {
        let mut t = SessionTable::with_window(w);
        for r in &replies {
            t.record(r);
        }
        t
    })
}

fn snapshot() -> impl Strategy<Value = Snapshot> {
    (
        any::<u64>(),
        kv_store(),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..4),
        session_table(),
    )
        .prop_map(|(up_to, kv, last_write_slots, sessions)| Snapshot {
            up_to,
            kv,
            last_write_slots,
            sessions,
        })
}

// ---- paxos ---------------------------------------------------------------

/// Accepted-entry commands ride a 14-bit value-length meta.
const ENTRY_VALUE_MAX: usize = 300;

fn p1b_vote() -> impl Strategy<Value = P1bVote> {
    (
        any::<u32>(),
        ballot(),
        any::<bool>(),
        proptest::collection::vec((slot48(), ballot(), command(ENTRY_VALUE_MAX)), 0..4),
        proptest::option::of(snapshot()),
    )
        .prop_map(|(n, b, ok, accepted, snap)| P1bVote {
            node: NodeId(n),
            ballot: b,
            ok,
            accepted,
            snapshot: snap.map(Box::new),
        })
}

/// P2b votes answer slots within a 15-bit delta of the message base.
fn p2b_votes(base: u64) -> impl Strategy<Value = Vec<P2bVote>> {
    proptest::collection::vec(
        (any::<u32>(), ballot(), 0u64..(1 << 15), any::<bool>()),
        0..5,
    )
    .prop_map(move |vs| {
        vs.into_iter()
            .map(|(n, b, delta, ok)| P2bVote {
                node: NodeId(n),
                ballot: b,
                slot: base + delta,
                ok,
            })
            .collect()
    })
}

fn qr_entry() -> impl Strategy<Value = QrVoteEntry> {
    (
        any::<u32>(),
        slot48(),
        proptest::option::of(value(ENTRY_VALUE_MAX)),
        any::<bool>(),
    )
        .prop_map(|(n, vs, v, p)| QrVoteEntry {
            node: NodeId(n),
            value_slot: vs,
            value: v,
            pending_write: p,
        })
}

fn qr_probe() -> impl Strategy<Value = QrProbe> {
    (any::<u64>(), any::<u32>(), any::<u64>()).prop_map(|(id, attempt, key)| QrProbe {
        id,
        attempt,
        key,
    })
}

fn qr_probe_vote() -> impl Strategy<Value = QrProbeVote> {
    (any::<u64>(), any::<u32>(), qr_entry()).prop_map(|(id, attempt, entry)| QrProbeVote {
        id,
        attempt,
        entry,
    })
}

fn learn_entries() -> impl Strategy<Value = Vec<(u64, Command)>> {
    proptest::collection::vec((slot48(), command(ENTRY_VALUE_MAX)), 0..4)
}

fn paxos_msg() -> impl Strategy<Value = PaxosMsg> {
    let base = || 0u64..(1u64 << 47);
    prop_oneof![
        (ballot(), any::<u64>()).prop_map(|(ballot, from)| PaxosMsg::P1a { ballot, from }),
        (ballot(), proptest::collection::vec(p1b_vote(), 0..3))
            .prop_map(|(ballot, votes)| PaxosMsg::P1b { ballot, votes }),
        (ballot(), any::<u64>(), command(600), any::<u64>()).prop_map(
            |(ballot, slot, command, commit_up_to)| PaxosMsg::P2a {
                ballot,
                slot,
                command,
                commit_up_to,
            }
        ),
        (ballot(), base()).prop_flat_map(|(ballot, slot)| {
            p2b_votes(slot).prop_map(move |votes| PaxosMsg::P2b {
                ballot,
                slot,
                votes,
            })
        }),
        (
            ballot(),
            any::<u64>(),
            proptest::collection::vec(command(600), 0..4),
            any::<u64>(),
        )
            .prop_map(|(ballot, first_slot, commands, commit_up_to)| {
                PaxosMsg::P2aBatch {
                    ballot,
                    first_slot,
                    commands: commands.into(),
                    commit_up_to,
                }
            }),
        (ballot(), base(), 0u64..(1 << 15)).prop_flat_map(|(ballot, first_slot, span)| {
            p2b_votes(first_slot).prop_map(move |votes| PaxosMsg::P2bBatch {
                ballot,
                first_slot,
                last_slot: first_slot + span,
                votes,
            })
        }),
        (ballot(), any::<u64>()).prop_map(|(ballot, commit_up_to)| PaxosMsg::Heartbeat {
            ballot,
            commit_up_to
        }),
        proptest::collection::vec(any::<u64>(), 0..6)
            .prop_map(|slots| PaxosMsg::LearnReq { slots }),
        (ballot(), learn_entries())
            .prop_map(|(ballot, entries)| PaxosMsg::LearnRep { ballot, entries }),
        (ballot(), snapshot(), learn_entries()).prop_map(|(ballot, snapshot, entries)| {
            PaxosMsg::SnapshotTransfer {
                ballot,
                snapshot: Box::new(snapshot),
                entries,
            }
        }),
        (any::<u32>(), any::<u64>(), any::<u32>(), any::<u64>()).prop_map(
            |(reader, id, attempt, key)| PaxosMsg::QrRead {
                reader: NodeId(reader),
                id,
                attempt,
                key,
            }
        ),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u32>(),
            proptest::collection::vec(qr_entry(), 0..4),
        )
            .prop_map(|(reader, id, attempt, votes)| PaxosMsg::QrVote {
                reader: NodeId(reader),
                id,
                attempt,
                votes,
            }),
        (
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec(qr_probe(), 0..5),
        )
            .prop_map(|(reader, wave, probes)| PaxosMsg::QrReadBatch {
                reader: NodeId(reader),
                wave,
                probes,
            }),
        (
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec(qr_probe_vote(), 0..4),
        )
            .prop_map(|(reader, wave, votes)| PaxosMsg::QrVoteBatch {
                reader: NodeId(reader),
                wave,
                votes,
            }),
    ]
}

// ---- pigpaxos ------------------------------------------------------------

/// Leaf plan: peers only, no sub-relays.
fn flat_plan() -> impl Strategy<Value = RelayPlan> {
    proptest::collection::vec(any::<u32>(), 0..5)
        .prop_map(|ps| RelayPlan::flat(ps.into_iter().map(NodeId).collect()))
}

/// Two-level plans: direct peers plus sub-relays that each carry a flat
/// plan — enough depth to exercise the recursive encoding.
fn relay_plan() -> impl Strategy<Value = RelayPlan> {
    (
        proptest::collection::vec(any::<u32>(), 0..4),
        proptest::collection::vec((any::<u32>(), flat_plan()), 0..3),
    )
        .prop_map(|(peers, sub)| RelayPlan {
            peers: peers.into_iter().map(NodeId).collect(),
            sub: sub.into_iter().map(|(n, p)| (NodeId(n), p)).collect(),
        })
}

fn pig_msg() -> impl Strategy<Value = PigMsg> {
    prop_oneof![
        paxos_msg().prop_map(PigMsg::Direct),
        (any::<u32>(), relay_plan(), paxos_msg(), 0usize..64).prop_map(
            |(reply_to, plan, inner, threshold)| PigMsg::ToRelay {
                reply_to: NodeId(reply_to),
                plan,
                inner,
                threshold,
            }
        ),
    ]
}

// ---- epaxos --------------------------------------------------------------

fn attrs() -> impl Strategy<Value = Attrs> {
    (
        any::<u64>(),
        proptest::collection::vec((any::<u32>(), any::<u64>()), 0..5),
    )
        .prop_map(|(seq, deps)| Attrs {
            seq,
            deps: deps
                .into_iter()
                .map(|(r, s)| InstanceId {
                    replica: NodeId(r),
                    slot: s,
                })
                .collect(),
        })
}

fn instance() -> impl Strategy<Value = InstanceId> {
    (any::<u32>(), any::<u64>()).prop_map(|(r, s)| InstanceId {
        replica: NodeId(r),
        slot: s,
    })
}

fn epaxos_msg() -> impl Strategy<Value = EpaxosMsg> {
    prop_oneof![
        (instance(), ballot(), command(600), attrs()).prop_map(|(inst, ballot, command, attrs)| {
            EpaxosMsg::PreAccept {
                inst,
                ballot,
                command,
                attrs,
            }
        }),
        (instance(), any::<u32>(), attrs(), any::<bool>()).prop_map(
            |(inst, node, attrs, changed)| EpaxosMsg::PreAcceptOk {
                inst,
                node: NodeId(node),
                attrs,
                changed,
            }
        ),
        (instance(), ballot(), command(600), attrs()).prop_map(|(inst, ballot, command, attrs)| {
            EpaxosMsg::Accept {
                inst,
                ballot,
                command,
                attrs,
            }
        }),
        (instance(), any::<u32>()).prop_map(|(inst, node)| EpaxosMsg::AcceptOk {
            inst,
            node: NodeId(node),
        }),
        (instance(), command(600), attrs()).prop_map(|(inst, command, attrs)| {
            EpaxosMsg::Commit {
                inst,
                command,
                attrs,
            }
        }),
    ]
}

// ---- the properties ------------------------------------------------------

proptest! {
    #[test]
    fn paxos_messages_roundtrip_at_declared_size(msg in paxos_msg()) {
        check(&msg, msg.wire_size());
    }

    #[test]
    fn pigpaxos_messages_roundtrip_at_declared_size(msg in pig_msg()) {
        check(&msg, msg.wire_size());
    }

    #[test]
    fn epaxos_messages_roundtrip_at_declared_size(msg in epaxos_msg()) {
        check(&msg, msg.wire_size());
    }

    #[test]
    fn client_envelopes_roundtrip_at_declared_size(
        env in prop_oneof![
            command(600).prop_map(|command| Envelope::<PaxosMsg>::Request(ClientRequest { command })),
            client_reply(600).prop_map(Envelope::<PaxosMsg>::Reply),
            proptest::collection::vec(client_reply(600), 0..5)
                .prop_map(Envelope::<PaxosMsg>::ReplyBatch),
            paxos_msg().prop_map(Envelope::<PaxosMsg>::Proto),
        ]
    ) {
        check(&env, Message::wire_size(&env));
    }

    #[test]
    fn snapshots_roundtrip_at_declared_size(snap in snapshot()) {
        check(&snap, snap.wire_bytes());
    }

    #[test]
    fn truncated_paxos_frames_reject_cleanly(msg in paxos_msg(), cut in any::<usize>()) {
        check_truncated(&msg, cut);
    }

    #[test]
    fn truncated_pigpaxos_frames_reject_cleanly(msg in pig_msg(), cut in any::<usize>()) {
        check_truncated(&msg, cut);
    }

    #[test]
    fn truncated_epaxos_frames_reject_cleanly(msg in epaxos_msg(), cut in any::<usize>()) {
        check_truncated(&msg, cut);
    }

    #[test]
    fn truncated_client_envelopes_reject_cleanly(
        env in prop_oneof![
            command(600).prop_map(|command| Envelope::<PaxosMsg>::Request(ClientRequest { command })),
            client_reply(600).prop_map(Envelope::<PaxosMsg>::Reply),
            proptest::collection::vec(client_reply(600), 0..5)
                .prop_map(Envelope::<PaxosMsg>::ReplyBatch),
            paxos_msg().prop_map(Envelope::<PaxosMsg>::Proto),
        ],
        cut in any::<usize>(),
    ) {
        check_truncated(&env, cut);
    }

    #[test]
    fn truncated_snapshots_reject_cleanly(snap in snapshot(), cut in any::<usize>()) {
        check_truncated(&snap, cut);
    }

    #[test]
    fn corrupted_paxos_frames_never_panic(
        msg in paxos_msg(), pos in any::<usize>(), flip in 1u8..=255,
    ) {
        check_corrupted(&msg, pos, flip);
    }

    #[test]
    fn corrupted_pigpaxos_frames_never_panic(
        msg in pig_msg(), pos in any::<usize>(), flip in 1u8..=255,
    ) {
        check_corrupted(&msg, pos, flip);
    }

    #[test]
    fn corrupted_epaxos_frames_never_panic(
        msg in epaxos_msg(), pos in any::<usize>(), flip in 1u8..=255,
    ) {
        check_corrupted(&msg, pos, flip);
    }

    #[test]
    fn corrupted_snapshots_never_panic(
        snap in snapshot(), pos in any::<usize>(), flip in 1u8..=255,
    ) {
        check_corrupted(&snap, pos, flip);
    }
}

// ---- boundary cases the strategies stay clear of -------------------------

fn put(len: usize) -> Command {
    Command {
        id: RequestId {
            client: NodeId(1),
            seq: 1,
        },
        op: Operation::Put(9, Value::zeros(len)),
    }
}

/// A promise reporting ≥255 accepted entries escapes the u8 count to an
/// extra u32 — and `wire_size()` accounts for those 4 bytes.
#[test]
fn p1b_with_255_plus_accepted_entries_uses_the_count_escape() {
    for n in [254usize, 255, 300] {
        let vote = P1bVote {
            node: NodeId(2),
            ballot: Ballot::new(3, NodeId(2)),
            ok: true,
            accepted: (0..n as u64)
                .map(|s| (s, Ballot::new(1, NodeId(0)), put(0)))
                .collect(),
            snapshot: None,
        };
        let msg = PaxosMsg::P1b {
            ballot: Ballot::new(3, NodeId(2)),
            votes: vec![vote],
        };
        check(&msg, msg.wire_size());
    }
}

/// Entry metas pack the value length into 14 bits; the cap itself must
/// survive a round trip.
#[test]
fn learn_entry_value_at_the_14_bit_cap() {
    let msg = PaxosMsg::LearnRep {
        ballot: Ballot::new(1, NodeId(0)),
        entries: vec![(7, put(16383))],
    };
    check(&msg, msg.wire_size());
}

/// Batched-reply metas pack the value length into 13 bits.
#[test]
fn reply_batch_value_at_the_13_bit_cap() {
    let env: Envelope<PaxosMsg> = Envelope::ReplyBatch(vec![
        ClientReply::ok(
            RequestId {
                client: NodeId(4),
                seq: 9,
            },
            Some(Value::zeros(8191)),
        ),
        ClientReply::redirect(
            RequestId {
                client: NodeId(4),
                seq: 10,
            },
            Some(NodeId(8191)),
        ),
    ]);
    check(&env, Message::wire_size(&env));
}

/// P2b votes pack `slot - base` into 15 bits alongside the ok bit.
#[test]
fn p2b_vote_slot_delta_at_the_15_bit_cap() {
    let base = 1u64 << 40;
    let msg = PaxosMsg::P2bBatch {
        ballot: Ballot::new(2, NodeId(1)),
        first_slot: base,
        last_slot: base + 32767,
        votes: vec![P2bVote {
            node: NodeId(3),
            ballot: Ballot::new(2, NodeId(1)),
            slot: base + 32767,
            ok: false,
        }],
    };
    check(&msg, msg.wire_size());
}
