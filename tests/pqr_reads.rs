//! End-to-end tests of Paxos Quorum Reads over relay trees (§4.3):
//! linearizable reads served by follower proxies without touching the
//! leader — with and without probe batching
//! ([`PigConfig::with_probe_batch`]), plus the attempt-tag regression
//! (stale rinse-attempt votes must never complete a newer attempt) and
//! the `PendingReads` leak guards.

use paxi::{
    BatchConfig, ClientRequest, ClusterConfig, Command, Envelope, Experiment, Operation,
    ProtocolSpec, RequestId, Value, Workload,
};
use paxos::PaxosMsg;
use pigpaxos::{PigConfig, PigMsg};
use simnet::{Actor, Context, Control, NodeId, SimDuration, SimTime, TimerId};
use std::cell::RefCell;
use std::rc::Rc;

fn read_heavy() -> Workload {
    Workload {
        read_ratio: 0.9,
        ..Workload::paper_default()
    }
}

fn probe_batch() -> BatchConfig {
    BatchConfig::adaptive(16, SimDuration::from_micros(2500))
}

#[test]
fn pqr_cluster_serves_reads_from_followers() {
    // `with_pqr` flips the default client target to a random spread, so
    // 90% of ops are reads answered by proxies; writes redirect to the
    // leader.
    let r = Experiment::lan(PigConfig::lan(2).with_pqr(), 9)
        .clients(8)
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(900))
        .workload(read_heavy())
        .run_sim(paxi::DEFAULT_SEED);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.throughput > 500.0, "PQR throughput: {}", r.throughput);
    // The run stops mid-traffic, so up to one read per client may be in
    // flight — anything beyond that is a PendingReads leak.
    assert!(
        r.pqr_reads_inflight <= 8,
        "pending-read table leaked: {} reads in flight at cutoff",
        r.pqr_reads_inflight
    );
}

#[test]
fn pqr_offloads_the_leader_on_read_heavy_workloads() {
    let run = |cfg: PigConfig| {
        Experiment::lan(cfg, 25)
            .clients(80)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(900))
            .workload(read_heavy())
            .run_sim(paxi::DEFAULT_SEED)
    };
    let leader_reads = run(PigConfig::lan(3));
    let pqr = run(PigConfig::lan(3).with_pqr());
    assert!(pqr.violations.is_empty());
    assert!(
        pqr.throughput > leader_reads.throughput * 1.5,
        "PQR must scale reads past the leader: {} vs {}",
        pqr.throughput,
        leader_reads.throughput
    );
    assert!(
        pqr.leader_msgs_per_op < leader_reads.leader_msgs_per_op * 0.6,
        "leader per-op load must drop: {} vs {}",
        pqr.leader_msgs_per_op,
        leader_reads.leader_msgs_per_op
    );
}

/// Writes through the leader, then reads the same key through a
/// follower proxy; every read must observe the latest completed write.
struct PqrChecker {
    leader: NodeId,
    proxy: NodeId,
    rounds: u64,
    round: u64,
    seq: u64,
    awaiting_get: bool,
    failures: Rc<RefCell<Vec<String>>>,
    completed: Rc<RefCell<u64>>,
}

impl PqrChecker {
    fn val(round: u64) -> Value {
        Value::from(round.to_be_bytes().as_slice())
    }
    fn issue(&mut self, to: NodeId, op: Operation, ctx: &mut Context<Envelope<PigMsg>>) {
        self.seq += 1;
        let id = RequestId {
            client: ctx.node(),
            seq: self.seq,
        };
        ctx.send(
            to,
            Envelope::Request(ClientRequest {
                command: Command { id, op },
            }),
        );
    }
}

impl Actor<Envelope<PigMsg>> for PqrChecker {
    fn on_start(&mut self, ctx: &mut Context<Envelope<PigMsg>>) {
        self.round = 1;
        self.awaiting_get = false;
        self.issue(self.leader, Operation::Put(3, Self::val(1)), ctx);
    }
    fn on_message(
        &mut self,
        _f: NodeId,
        msg: Envelope<PigMsg>,
        ctx: &mut Context<Envelope<PigMsg>>,
    ) {
        let Envelope::Reply(reply) = msg else { return };
        if reply.id.seq != self.seq {
            return;
        }
        if !reply.ok {
            // PQR gave up (e.g. rinse limit) and redirected: follow it.
            let to = reply.redirect.unwrap_or(self.leader);
            let op = if self.awaiting_get {
                Operation::Get(3)
            } else {
                Operation::Put(3, Self::val(self.round))
            };
            self.issue(to, op, ctx);
            return;
        }
        if self.awaiting_get {
            let expect = Self::val(self.round);
            if reply.value.as_ref() != Some(&expect) {
                self.failures.borrow_mut().push(format!(
                    "round {}: quorum read returned {:?}, expected {:?}",
                    self.round, reply.value, expect
                ));
            }
            *self.completed.borrow_mut() += 1;
            if self.round < self.rounds {
                self.round += 1;
                self.awaiting_get = false;
                self.issue(self.leader, Operation::Put(3, Self::val(self.round)), ctx);
            }
        } else {
            self.awaiting_get = true;
            self.issue(self.proxy, Operation::Get(3), ctx);
        }
    }
    fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Envelope<PigMsg>>) {}
}

/// Run the writer/reader round-trip checker against `cfg` and assert
/// every read observed the latest completed write — and that the
/// quiesced run left no read stuck in any proxy's pending table.
fn check_linearizable(cfg: PigConfig) {
    let failures = Rc::new(RefCell::new(Vec::new()));
    let completed = Rc::new(RefCell::new(0u64));
    let (failures2, completed2) = (failures.clone(), completed.clone());
    let r = Experiment::lan(cfg, 9)
        .extra_client_nodes(1)
        .warmup(SimDuration::ZERO)
        .measure(SimDuration::from_secs(10))
        .run_sim_with(5, move |sim, _| {
            sim.add_actor(Box::new(PqrChecker {
                leader: NodeId(0),
                proxy: NodeId(4), // a follower acting as the read proxy
                rounds: 40,
                round: 0,
                seq: 0,
                awaiting_get: false,
                failures: failures2,
                completed: completed2,
            }));
        });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(failures.borrow().is_empty(), "{:?}", failures.borrow());
    assert_eq!(*completed.borrow(), 40, "all rounds must complete");
    // The checker quiesced long before the deadline: every quorum read
    // must have left the pending table (PendingReads::is_empty()).
    assert_eq!(
        r.pqr_reads_inflight, 0,
        "quiesced run must leave no pending quorum reads"
    );
    assert!(r.pqr_reads_started > 0, "reads must have used the PQR path");
}

#[test]
fn pqr_reads_are_linearizable_with_writer() {
    check_linearizable(PigConfig::lan(2).with_pqr());
}

#[test]
fn pqr_reads_stay_linearizable_with_probe_batching() {
    // The same checker over batched probe waves: coalescing keys into
    // QrReadBatch/QrVoteBatch must not change what any read observes.
    check_linearizable(PigConfig::lan(2).with_pqr().with_probe_batch(probe_batch()));
}

#[test]
fn probe_batching_cuts_probe_traffic_on_the_read_heavy_scenario() {
    // Integration-tier version of the bench gate: 9 nodes / 2 groups /
    // 90% reads / 40 clients, probe batching off vs on. The wave
    // coalescing must cut probe messages per operation sharply without
    // costing meaningful throughput.
    let run = |cfg: PigConfig| {
        Experiment::lan(cfg, 9)
            .clients(40)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(700))
            .workload(read_heavy())
            .capture_trace()
            .run_sim(paxi::DEFAULT_SEED)
    };
    use paxos::QR_PROBE_LABELS as PROBE_LABELS;
    let off = run(PigConfig::lan(2).with_pqr());
    let on = run(PigConfig::lan(2).with_pqr().with_probe_batch(probe_batch()));
    assert!(off.violations.is_empty(), "{:?}", off.violations);
    assert!(on.violations.is_empty(), "{:?}", on.violations);
    let off_per_op = off.labels_per_op(PROBE_LABELS).expect("trace captured");
    let on_per_op = on.labels_per_op(PROBE_LABELS).expect("trace captured");
    assert!(
        off_per_op >= on_per_op * 2.5,
        "probe waves must amortize probe traffic: {off_per_op:.2} vs {on_per_op:.2} msgs/op"
    );
    assert!(
        on.labels_per_op(&["qr_read_batch"]).unwrap() > 0.0,
        "batched probes must actually ride QrReadBatch waves"
    );
    assert!(
        on.throughput > off.throughput * 0.7,
        "probe batching must not collapse throughput: {} vs {}",
        on.throughput,
        off.throughput
    );
    assert!(
        on.pqr_reads_inflight <= 40,
        "pending-read table leaked under probe batching: {}",
        on.pqr_reads_inflight
    );
}

// ---- attempt-tag regression & rinse-abort accounting (scripted) --------

/// Sends a fixed schedule of messages into the simulation and records
/// every reply it receives — a deterministic driver for the proxy's
/// vote-handling edge cases that workload traffic cannot reproduce on
/// purpose (delayed cross-attempt votes, forced rinse aborts).
struct ScriptedActor {
    /// `(when, to, message)` — sent exactly once each.
    script: Vec<(SimDuration, NodeId, Envelope<PigMsg>)>,
    replies: Rc<RefCell<Vec<paxi::ClientReply>>>,
}

impl Actor<Envelope<PigMsg>> for ScriptedActor {
    fn on_start(&mut self, ctx: &mut Context<Envelope<PigMsg>>) {
        for (i, (when, _, _)) in self.script.iter().enumerate() {
            ctx.set_timer(*when, i as u64);
        }
    }
    fn on_message(
        &mut self,
        _from: NodeId,
        msg: Envelope<PigMsg>,
        _ctx: &mut Context<Envelope<PigMsg>>,
    ) {
        if let Envelope::Reply(r) = msg {
            self.replies.borrow_mut().push(r);
        }
    }
    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Context<Envelope<PigMsg>>) {
        let (_, to, msg) = self.script[kind as usize].clone();
        ctx.send(to, msg);
    }
}

/// A node that absorbs everything (stands in for replicas whose answers
/// the script injects by hand).
struct Mute;
impl Actor<Envelope<PigMsg>> for Mute {
    fn on_message(&mut self, _f: NodeId, _m: Envelope<PigMsg>, _c: &mut Context<Envelope<PigMsg>>) {
    }
    fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Envelope<PigMsg>>) {}
}

fn qr_vote(reader: u32, id: u64, attempt: u32, node: u32, slot: u64, pending: bool) -> PigMsg {
    PigMsg::Direct(PaxosMsg::QrVote {
        reader: NodeId(reader),
        id,
        attempt,
        votes: vec![paxos::QrVoteEntry {
            node: NodeId(node),
            value_slot: slot,
            value: if slot == 0 {
                None
            } else {
                Some(Value::zeros(slot as usize))
            },
            pending_write: pending,
        }],
    })
}

/// Build a 3-replica sim where only node 1 is a real `PigReplica`
/// (PQR-enabled proxy under test); nodes 0 and 2 are mute and the
/// script (node 3, also the client) injects their probe answers by
/// hand. Returns the replies the client collected, plus the shared
/// stats hub for pending-read accounting.
fn scripted_proxy_run(
    cfg: PigConfig,
    script: Vec<(SimDuration, NodeId, Envelope<PigMsg>)>,
    run_for: SimDuration,
) -> (Vec<paxi::ClientReply>, paxi::CompactionStats) {
    let cluster = ClusterConfig::new(3);
    let stats = cluster.stats.clone();
    let replies = Rc::new(RefCell::new(Vec::new()));
    let replies2 = replies.clone();
    let mut sim: simnet::Simulation<Envelope<PigMsg>> = simnet::Simulation::new(
        simnet::Topology::lan(4),
        simnet::CpuCostModel::free(),
        paxi::DEFAULT_SEED,
    );
    sim.add_actor(Box::new(Mute)); // node 0: the configured (absent) leader
    sim.add_actor(cfg.build_replica(NodeId(1), &cluster)); // the proxy
    sim.add_actor(Box::new(Mute)); // node 2
    sim.add_actor(Box::new(ScriptedActor {
        script,
        replies: replies2,
    })); // node 3: client + vote injector
    sim.run_until(SimTime::ZERO + run_for);
    let out = replies.borrow().clone();
    (out, stats)
}

fn get_request(seq: u64, key: u64) -> Envelope<PigMsg> {
    Envelope::Request(ClientRequest {
        command: Command {
            id: RequestId {
                client: NodeId(3),
                seq,
            },
            op: Operation::Get(key),
        },
    })
}

/// THE headline regression (pre-fix code fails this): after a rinse
/// restart, a delayed vote from the *previous* attempt must not count
/// toward the new attempt. Without the attempt tag, the stale vote
/// reached the majority threshold right after the restart cleared
/// `pending_write_seen`, completing the read with the pre-write value —
/// the exact stale read the rinse loop exists to prevent.
#[test]
fn stale_attempt_vote_must_not_complete_restarted_read() {
    let at = SimDuration::from_millis;
    let proxy = NodeId(1);
    let script = vec![
        // t=1ms: client read of key 7 → proxy opens read id 1,
        // attempt 1, needs 2 of 3 votes; its own vote is (slot 0, ∅).
        (at(1), proxy, get_request(1, 7)),
        // t=2ms: node 2 answers attempt 1 with an in-flight write to
        // the key → majority + pending write → rinse (restart fires at
        // t≈5ms, bumping to attempt 2 and re-probing).
        (at(2), proxy, Envelope::Proto(qr_vote(1, 1, 1, 2, 5, true))),
        // t=8ms: a DELAYED attempt-1 answer from node 0, sampled before
        // the write resolved (slot 0, no pending flag). On pre-fix code
        // this is the 2nd voter of attempt 2 → Done(None) → stale read.
        (at(8), proxy, Envelope::Proto(qr_vote(1, 1, 1, 0, 0, false))),
        // t=12ms: the genuine attempt-2 answer: the write resolved at
        // slot 6.
        (
            at(12),
            proxy,
            Envelope::Proto(qr_vote(1, 1, 2, 2, 6, false)),
        ),
    ];
    let (replies, stats) = scripted_proxy_run(
        PigConfig::lan(1).with_pqr(),
        script,
        SimDuration::from_millis(40),
    );
    assert_eq!(replies.len(), 1, "exactly one read completion: {replies:?}");
    let reply = &replies[0];
    assert!(reply.ok, "read must complete, not redirect: {reply:?}");
    assert_eq!(
        reply.value.as_ref().map(|v| v.len()),
        Some(6),
        "the read must return the post-write value (slot 6), not the \
         stale pre-write state a delayed attempt-1 vote carried"
    );
    assert_eq!(stats.pqr_inflight(), 0, "pending table must drain");
}

/// Exceeding `pqr_max_attempts` must abort the read, redirect the
/// client to the leader, and leave nothing behind in the pending table
/// (the rinse-abort → leader-redirect path).
#[test]
fn rinse_abort_redirects_client_and_leaves_no_pending_read() {
    let at = SimDuration::from_millis;
    let proxy = NodeId(1);
    let mut cfg = PigConfig::lan(1).with_pqr();
    cfg.pqr_max_attempts = 2;
    // Every attempt sees the same unresolved in-flight write, so the
    // read rinses until the attempt cap and must then give up.
    let script = vec![
        (at(1), proxy, get_request(1, 7)),
        // attempt 1 → rinse (restart ≈ t=5ms → attempt 2)
        (at(2), proxy, Envelope::Proto(qr_vote(1, 1, 1, 2, 5, true))),
        // attempt 2 → rinse again (restart ≈ t=9ms → attempt 3 > cap)
        (at(6), proxy, Envelope::Proto(qr_vote(1, 1, 2, 2, 5, true))),
    ];
    let (replies, stats) = scripted_proxy_run(cfg, script, SimDuration::from_millis(40));
    assert_eq!(replies.len(), 1, "one redirect reply: {replies:?}");
    let reply = &replies[0];
    assert!(!reply.ok, "aborted read must not report a value");
    assert_eq!(
        reply.redirect,
        Some(NodeId(0)),
        "client must be handed to the known leader"
    );
    assert_eq!(stats.pqr_started(), 1);
    assert_eq!(
        stats.pqr_inflight(),
        0,
        "aborting must remove the read from the pending table"
    );
}

// ---- PQR × snapshots (log compaction interaction) ----------------------

/// A replica that installs a `SnapshotTransfer` must answer quorum-read
/// probes for compacted keys correctly: the snapshot's last-write index
/// is what keeps `value_slot` truthful after the log entries are gone.
#[test]
fn snapshot_install_restores_quorum_read_freshness_index() {
    use paxi::SessionTable;
    let ballot = paxi::Ballot::new(1, NodeId(0));
    let mk_cmd = |seq: u64, key: u64, len: usize| Command {
        id: RequestId {
            client: NodeId(9),
            seq,
        },
        op: Operation::Put(key, Value::zeros(len)),
    };
    // Writer replica: commit + execute writes to keys 1 and 2, then
    // compact them away.
    let mut writer = paxos::Acceptor::new(NodeId(0), paxi::SafetyMonitor::new());
    let mut executed = 0;
    for (slot, key, len) in [(0, 1, 3), (1, 2, 4), (2, 1, 5)] {
        let (_, adv) = writer.on_p2a(ballot, slot, mk_cmd(slot + 1, key, len), 0);
        executed += adv.executed.len();
        writer.commit(slot, ballot, mk_cmd(slot + 1, key, len));
    }
    executed += writer.execute_ready().len();
    assert_eq!(executed, 3);
    let sessions = SessionTable::new();
    writer.force_snapshot(&sessions);
    let snap = writer.read_state(1);
    assert_eq!(snap.value_slot, 2, "key 1 last written at slot 2");

    // Lagging replica: installs the snapshot instead of replaying the
    // (now truncated) slots.
    let mut lagger = paxos::Acceptor::new(NodeId(1), paxi::SafetyMonitor::new());
    let before = lagger.read_state(1);
    assert_eq!(before.value_slot, 0, "nothing executed yet");
    let transferred = writer.latest_snapshot().expect("snapshot taken").clone();
    assert!(lagger.install_snapshot(&transferred));

    // Probes for the compacted keys must answer from the installed
    // index — same slot, same value, no phantom pending write.
    for key in [1u64, 2] {
        let a = writer.read_state(key);
        let b = lagger.read_state(key);
        assert_eq!(a.value_slot, b.value_slot, "key {key}: freshness index");
        assert_eq!(a.value, b.value, "key {key}: value");
        assert!(
            !b.pending_write,
            "key {key}: no pending write after install"
        );
    }
}

/// End-to-end: a PQR cluster running log compaction, with a follower
/// that sleeps through enough traffic to need a `SnapshotTransfer` on
/// rejoin. Quorum reads must stay linearizable throughout — including
/// probes answered by the freshly installed replica.
#[test]
fn pqr_reads_stay_linearizable_across_snapshot_catch_up() {
    let failures = Rc::new(RefCell::new(Vec::new()));
    let completed = Rc::new(RefCell::new(0u64));
    let (failures2, completed2) = (failures.clone(), completed.clone());
    let cfg = PigConfig::lan(2)
        .with_pqr()
        .with_probe_batch(probe_batch())
        .with_snapshots(paxi::SnapshotConfig::every_ops(100));
    let r = Experiment::lan(cfg, 9)
        .clients(8)
        .extra_client_nodes(1)
        .warmup(SimDuration::ZERO)
        .measure(SimDuration::from_secs(6))
        .run_sim_with(paxi::DEFAULT_SEED, move |sim, _| {
            sim.add_actor(Box::new(PqrChecker {
                leader: NodeId(0),
                proxy: NodeId(4),
                rounds: 40,
                round: 0,
                seq: 0,
                awaiting_get: false,
                failures: failures2,
                completed: completed2,
            }));
            // Node 7 sleeps through ~2s of compacting traffic; its gap
            // repair must come back as state, not slots.
            sim.schedule_control(SimTime::from_millis(400), Control::Crash(NodeId(7)));
            sim.schedule_control(SimTime::from_millis(2400), Control::Recover(NodeId(7)));
        });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(failures.borrow().is_empty(), "{:?}", failures.borrow());
    assert_eq!(*completed.borrow(), 40, "all rounds must complete");
    assert!(r.snapshots_taken > 0, "compaction must have run");
    assert!(
        r.snapshots_installed >= 1,
        "the rejoining follower must have installed a peer snapshot"
    );
}
