//! End-to-end tests of Paxos Quorum Reads over relay trees (§4.3):
//! linearizable reads served by follower proxies without touching the
//! leader.

use paxi::{ClientRequest, Command, Envelope, Experiment, Operation, RequestId, Value, Workload};
use pigpaxos::{PigConfig, PigMsg};
use simnet::{Actor, Context, NodeId, SimDuration, TimerId};
use std::cell::RefCell;
use std::rc::Rc;

fn read_heavy() -> Workload {
    Workload {
        read_ratio: 0.9,
        ..Workload::paper_default()
    }
}

#[test]
fn pqr_cluster_serves_reads_from_followers() {
    // `with_pqr` flips the default client target to a random spread, so
    // 90% of ops are reads answered by proxies; writes redirect to the
    // leader.
    let r = Experiment::lan(PigConfig::lan(2).with_pqr(), 9)
        .clients(8)
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(900))
        .workload(read_heavy())
        .run_sim(paxi::DEFAULT_SEED);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.throughput > 500.0, "PQR throughput: {}", r.throughput);
}

#[test]
fn pqr_offloads_the_leader_on_read_heavy_workloads() {
    let run = |cfg: PigConfig| {
        Experiment::lan(cfg, 25)
            .clients(80)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(900))
            .workload(read_heavy())
            .run_sim(paxi::DEFAULT_SEED)
    };
    let leader_reads = run(PigConfig::lan(3));
    let pqr = run(PigConfig::lan(3).with_pqr());
    assert!(pqr.violations.is_empty());
    assert!(
        pqr.throughput > leader_reads.throughput * 1.5,
        "PQR must scale reads past the leader: {} vs {}",
        pqr.throughput,
        leader_reads.throughput
    );
    assert!(
        pqr.leader_msgs_per_op < leader_reads.leader_msgs_per_op * 0.6,
        "leader per-op load must drop: {} vs {}",
        pqr.leader_msgs_per_op,
        leader_reads.leader_msgs_per_op
    );
}

/// Writes through the leader, then reads the same key through a
/// follower proxy; every read must observe the latest completed write.
struct PqrChecker {
    leader: NodeId,
    proxy: NodeId,
    rounds: u64,
    round: u64,
    seq: u64,
    awaiting_get: bool,
    failures: Rc<RefCell<Vec<String>>>,
    completed: Rc<RefCell<u64>>,
}

impl PqrChecker {
    fn val(round: u64) -> Value {
        Value::from(round.to_be_bytes().as_slice())
    }
    fn issue(&mut self, to: NodeId, op: Operation, ctx: &mut Context<Envelope<PigMsg>>) {
        self.seq += 1;
        let id = RequestId {
            client: ctx.node(),
            seq: self.seq,
        };
        ctx.send(
            to,
            Envelope::Request(ClientRequest {
                command: Command { id, op },
            }),
        );
    }
}

impl Actor<Envelope<PigMsg>> for PqrChecker {
    fn on_start(&mut self, ctx: &mut Context<Envelope<PigMsg>>) {
        self.round = 1;
        self.awaiting_get = false;
        self.issue(self.leader, Operation::Put(3, Self::val(1)), ctx);
    }
    fn on_message(
        &mut self,
        _f: NodeId,
        msg: Envelope<PigMsg>,
        ctx: &mut Context<Envelope<PigMsg>>,
    ) {
        let Envelope::Reply(reply) = msg else { return };
        if reply.id.seq != self.seq {
            return;
        }
        if !reply.ok {
            // PQR gave up (e.g. rinse limit) and redirected: follow it.
            let to = reply.redirect.unwrap_or(self.leader);
            let op = if self.awaiting_get {
                Operation::Get(3)
            } else {
                Operation::Put(3, Self::val(self.round))
            };
            self.issue(to, op, ctx);
            return;
        }
        if self.awaiting_get {
            let expect = Self::val(self.round);
            if reply.value.as_ref() != Some(&expect) {
                self.failures.borrow_mut().push(format!(
                    "round {}: quorum read returned {:?}, expected {:?}",
                    self.round, reply.value, expect
                ));
            }
            *self.completed.borrow_mut() += 1;
            if self.round < self.rounds {
                self.round += 1;
                self.awaiting_get = false;
                self.issue(self.leader, Operation::Put(3, Self::val(self.round)), ctx);
            }
        } else {
            self.awaiting_get = true;
            self.issue(self.proxy, Operation::Get(3), ctx);
        }
    }
    fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Envelope<PigMsg>>) {}
}

#[test]
fn pqr_reads_are_linearizable_with_writer() {
    let failures = Rc::new(RefCell::new(Vec::new()));
    let completed = Rc::new(RefCell::new(0u64));
    let (failures2, completed2) = (failures.clone(), completed.clone());
    let r = Experiment::lan(PigConfig::lan(2).with_pqr(), 9)
        .extra_client_nodes(1)
        .warmup(SimDuration::ZERO)
        .measure(SimDuration::from_secs(10))
        .run_sim_with(5, move |sim, _| {
            sim.add_actor(Box::new(PqrChecker {
                leader: NodeId(0),
                proxy: NodeId(4), // a follower acting as the read proxy
                rounds: 40,
                round: 0,
                seq: 0,
                awaiting_get: false,
                failures: failures2,
                completed: completed2,
            }));
        });
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(failures.borrow().is_empty(), "{:?}", failures.borrow());
    assert_eq!(*completed.borrow(), 40, "all rounds must complete");
}
