//! Substrate parity as a first-class API property: the *same*
//! `Experiment` value — same protocol config, topology, workload, and
//! client population — runs on the deterministic simulator, on real OS
//! threads with channel transport (`run_threads`), and over real TCP
//! loopback sockets with full wire encoding (`run_net`), and must make
//! progress with zero safety violations on all three. The replica
//! actors are byte-for-byte the same code; only the run method differs.

use epaxos::EpaxosConfig;
use paxi::{Experiment, ProtocolSpec, ShardedExperiment};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use simnet::SimDuration;
use std::time::Duration;

fn assert_parity<P: ProtocolSpec>(proto: P, n: usize, min_thread_ops: usize)
where
    P::Msg: simnet::Wire,
{
    let experiment = Experiment::lan(proto, n)
        .clients(4)
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(600));
    let name = experiment.protocol().protocol_name();

    let sim = experiment.run_sim(7);
    assert!(
        sim.violations.is_empty(),
        "{name} sim: {:?}",
        sim.violations
    );
    assert!(
        sim.samples > 100,
        "{name} sim made progress: {}",
        sim.samples
    );
    assert!(
        sim.decided > 50,
        "{name} sim decided slots: {}",
        sim.decided
    );

    let threads = experiment.run_threads(7, Duration::from_millis(500));
    assert!(
        threads.violations.is_empty(),
        "{name} threads: {:?}",
        threads.violations
    );
    assert!(
        threads.samples > min_thread_ops,
        "{name} threads made progress: {}",
        threads.samples
    );
    assert!(
        threads.decided > 0,
        "{name} threads decided slots: {}",
        threads.decided
    );

    // Third axis: every cross-node message encoded to its wire bytes,
    // shipped over a loopback TCP socket, and decoded on arrival. A
    // protocol only passes if its entire message vocabulary survives a
    // real network round trip under load.
    let net = experiment.run_net(7, Duration::from_millis(500));
    assert!(
        net.violations.is_empty(),
        "{name} net: {:?}",
        net.violations
    );
    assert!(
        net.samples > min_thread_ops,
        "{name} net made progress: {}",
        net.samples
    );
    assert!(net.decided > 0, "{name} net decided slots: {}", net.decided);
    // The transport counts real traffic: every node participated.
    assert_eq!(net.node_msgs.len(), n + 4, "{name}: replicas + clients");
    assert!(
        net.node_msgs.iter().all(|&m| m > 0),
        "{name} net: every node moved messages: {:?}",
        net.node_msgs
    );
    assert!(
        net.label_counts.is_some(),
        "{name} net: label counts populated"
    );
}

#[test]
fn pigpaxos_runs_identically_shaped_on_all_three_substrates() {
    assert_parity(PigConfig::lan(2), 5, 50);
}

#[test]
fn paxos_runs_identically_shaped_on_all_three_substrates() {
    assert_parity(PaxosConfig::lan(), 5, 50);
}

#[test]
fn epaxos_runs_identically_shaped_on_all_three_substrates() {
    // EPaxos is leaderless; its default random-target policy carries
    // over to the thread substrate unchanged.
    assert_parity(EpaxosConfig::default(), 5, 20);
}

/// The same compaction-enabled `Experiment` value must bound memory on
/// both substrates: snapshots fire, the retained log stays near the
/// interval, and safety holds — on the deterministic simulator and on
/// wall-clock threads alike (compaction triggers are execution-driven,
/// not simulated-time-driven).
fn assert_compaction_parity<P: ProtocolSpec>(proto: P, n: usize, interval: u64) {
    let experiment = Experiment::lan(proto, n)
        .clients(4)
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(800));
    let name = experiment.protocol().protocol_name();

    let sim = experiment.run_sim(7);
    assert!(
        sim.violations.is_empty(),
        "{name} sim: {:?}",
        sim.violations
    );
    assert!(
        sim.snapshots_taken > 0,
        "{name} sim: compaction must fire ({} decided)",
        sim.decided
    );
    assert!(
        sim.max_log_len <= 2 * interval,
        "{name} sim: peak log {} > 2x interval {interval}",
        sim.max_log_len
    );

    let threads = experiment.run_threads(7, Duration::from_millis(600));
    assert!(
        threads.violations.is_empty(),
        "{name} threads: {:?}",
        threads.violations
    );
    assert!(
        threads.decided > interval,
        "{name} threads made progress: {}",
        threads.decided
    );
    assert!(
        threads.snapshots_taken > 0,
        "{name} threads: compaction must fire ({} decided)",
        threads.decided
    );
    // Wall-clock substrate: a scheduler stall of a few tens of ms on a
    // loaded box lets the pipelined clients run the log a few hundred
    // slots past the trigger before the executor catches up, so the
    // peak gets more headroom than the deterministic sim bound above.
    // Broken compaction still fails loudly — the peak then tracks the
    // full decided count (thousands), not a handful of intervals.
    assert!(
        threads.max_log_len <= 8 * interval,
        "{name} threads: peak log {} > 8x interval {interval} ({} decided)",
        threads.max_log_len,
        threads.decided
    );
}

#[test]
fn compacting_pigpaxos_bounds_memory_on_both_substrates() {
    assert_compaction_parity(
        PigConfig::lan(2).with_snapshots(paxi::SnapshotConfig::every_ops(50)),
        5,
        50,
    );
}

#[test]
fn compacting_paxos_bounds_memory_on_both_substrates() {
    assert_compaction_parity(
        PaxosConfig::lan().with_snapshots(paxi::SnapshotConfig::every_ops(50)),
        5,
        50,
    );
}

#[test]
fn compacting_epaxos_bounds_memory_on_both_substrates() {
    assert_compaction_parity(
        EpaxosConfig::default().with_snapshots(paxi::SnapshotConfig::every_ops(50)),
        5,
        50,
    );
}

/// The sharded deployment is substrate-agnostic the same way: one
/// `ShardedExperiment` value — four consensus groups multiplexed over
/// one node-id space, routed by key — must commit with zero violations
/// on the simulator, on OS threads, and over TCP loopback with every
/// message (client, protocol, and shard-control) as wire bytes.
#[test]
fn sharded_experiment_runs_on_all_three_substrates() {
    let experiment = ShardedExperiment::new(PaxosConfig::lan(), 4, 1)
        .routers(4)
        .warmup(SimDuration::from_millis(200))
        .measure(SimDuration::from_millis(600));

    let sim = experiment.run_sim(7);
    assert!(sim.violations.is_empty(), "sim: {:?}", sim.violations);
    assert!(sim.samples > 100, "sim made progress: {}", sim.samples);
    assert!(sim.decided > 50, "sim decided slots: {}", sim.decided);

    let threads = experiment.run_threads(7, Duration::from_millis(500));
    assert!(
        threads.violations.is_empty(),
        "threads: {:?}",
        threads.violations
    );
    assert!(
        threads.samples > 50,
        "threads made progress: {}",
        threads.samples
    );

    let net = experiment.run_net(7, Duration::from_millis(500));
    assert!(net.violations.is_empty(), "net: {:?}", net.violations);
    assert!(net.samples > 50, "net made progress: {}", net.samples);
    // 4 shard replicas + 4 routers all moved real TCP traffic.
    assert_eq!(net.node_msgs.len(), 8, "replicas + routers");
    assert!(
        net.node_msgs.iter().all(|&m| m > 0),
        "net: every node moved messages: {:?}",
        net.node_msgs
    );
    assert!(net.label_counts.is_some(), "net: label counts populated");
}

#[test]
fn batched_pigpaxos_safe_on_threads() {
    // The whole batching-v2 pipeline on wall-clock timers: flush
    // timers, reply coalescing, and relay round coalescing must not
    // depend on simulated time to stay safe.
    let cfg = PigConfig::lan(2).with_batch(
        paxi::BatchConfig::adaptive(16, SimDuration::from_micros(200))
            .with_reply_coalescing(SimDuration::ZERO),
    );
    let r = Experiment::lan(cfg, 5)
        .clients(4)
        .client_pipeline(4)
        .run_threads(11, Duration::from_millis(400));
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.samples > 50, "batched threads progressed: {}", r.samples);
}
