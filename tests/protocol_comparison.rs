//! Cross-protocol integration tests: the paper's headline comparisons,
//! asserted as invariants rather than eyeballed from figures.
//!
//! The suite is generic over [`paxi::ProtocolSpec`]: every protocol
//! passes the *identical* invariant/safety battery through the unified
//! [`Experiment`] entry point — no per-protocol copies — and the
//! comparative tests differ only in which config value they pass.

use epaxos::EpaxosConfig;
use paxi::{Experiment, ProtocolSpec};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use simnet::SimDuration;

fn exp<P: ProtocolSpec>(proto: P, n: usize) -> Experiment<P> {
    Experiment::lan(proto, n)
        .warmup(SimDuration::from_millis(300))
        .measure(SimDuration::from_millis(900))
}

const SWEEP: &[usize] = &[40, 160];

/// The protocol-generic invariant/safety suite: agreement is
/// machine-checked, the cluster makes real progress, latency
/// percentiles are ordered, and a fixed seed reproduces the run
/// bit-for-bit. Every protocol must pass it unchanged.
fn invariant_suite<P: ProtocolSpec>(proto: P, n: usize) {
    let e = exp(proto, n).clients(6);
    let r = e.run_sim(paxi::DEFAULT_SEED);
    let name = e.protocol().protocol_name();
    assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
    assert!(r.throughput > 100.0, "{name}: {}", r.throughput);
    assert!(r.samples > 50, "{name}: {}", r.samples);
    assert!(r.decided > 50, "{name}: {}", r.decided);
    assert!(
        r.p99_latency_ms >= r.p50_latency_ms && r.p50_latency_ms > 0.0,
        "{name}: percentiles out of order"
    );
    // Determinism is part of the contract, per protocol.
    let again = e.run_sim(paxi::DEFAULT_SEED);
    assert_eq!(r.samples, again.samples, "{name}: nondeterministic");
    assert_eq!(r.node_msgs, again.node_msgs, "{name}: nondeterministic");
}

#[test]
fn invariants_paxos() {
    invariant_suite(PaxosConfig::lan(), 9);
}

#[test]
fn invariants_pigpaxos() {
    invariant_suite(PigConfig::lan(3), 9);
}

#[test]
fn invariants_epaxos() {
    invariant_suite(EpaxosConfig::default(), 9);
}

#[test]
fn pigpaxos_beats_paxos_by_3x_at_25_nodes() {
    let paxos = exp(PaxosConfig::lan(), 25).max_throughput(paxi::DEFAULT_SEED, SWEEP);
    let pig = exp(PigConfig::lan(3), 25).max_throughput(paxi::DEFAULT_SEED, SWEEP);
    assert!(
        pig > paxos * 3.0,
        "paper claims >3x: PigPaxos {pig:.0} vs Paxos {paxos:.0}"
    );
}

#[test]
fn epaxos_saturates_below_paxos_at_25_nodes() {
    let paxos = exp(PaxosConfig::lan(), 25).max_throughput(paxi::DEFAULT_SEED, SWEEP);
    let ep = exp(EpaxosConfig::default(), 25).max_throughput(paxi::DEFAULT_SEED, SWEEP);
    assert!(
        ep < paxos,
        "paper Fig 8 ordering: EPaxos ({ep:.0}) below Paxos ({paxos:.0})"
    );
}

#[test]
fn paxos_has_lower_latency_at_low_load() {
    // Paper: PigPaxos pays ~30% extra latency at low load (the relay hop).
    let paxos = exp(PaxosConfig::lan(), 25)
        .clients(1)
        .run_sim(paxi::DEFAULT_SEED);
    let pig = exp(PigConfig::lan(3), 25)
        .clients(1)
        .run_sim(paxi::DEFAULT_SEED);
    assert!(
        pig.mean_latency_ms > paxos.mean_latency_ms * 1.1,
        "relay hop must cost latency: pig {:.2}ms vs paxos {:.2}ms",
        pig.mean_latency_ms,
        paxos.mean_latency_ms
    );
    assert!(
        pig.mean_latency_ms < paxos.mean_latency_ms * 2.0,
        "but not more than ~2x at low load: pig {:.2}ms vs paxos {:.2}ms",
        pig.mean_latency_ms,
        paxos.mean_latency_ms
    );
}

#[test]
fn fewer_relay_groups_higher_throughput() {
    // Fig 7's monotone shape, spot-checked at the extremes. The sweep
    // over the relay-group axis is a loop, not two binaries.
    let tput = |r: usize| exp(PigConfig::lan(r), 25).max_throughput(paxi::DEFAULT_SEED, SWEEP);
    let (r2, r6) = (tput(2), tput(6));
    assert!(
        r2 > r6 * 1.4,
        "r=2 ({r2:.0}) must clearly beat r=6 ({r6:.0})"
    );
}

#[test]
fn pigpaxos_benefits_extend_to_small_clusters() {
    // Paper §5.5 / Fig 10-11.
    let paxos = exp(PaxosConfig::lan(), 5).max_throughput(paxi::DEFAULT_SEED, SWEEP);
    let pig = exp(PigConfig::lan(2), 5).max_throughput(paxi::DEFAULT_SEED, SWEEP);
    assert!(
        pig > paxos * 1.2,
        "PigPaxos must win even at 5 nodes: {pig:.0} vs {paxos:.0}"
    );
}

#[test]
fn paxos_throughput_decays_with_cluster_size_pigpaxos_does_not() {
    let paxos = |n| exp(PaxosConfig::lan(), n).max_throughput(paxi::DEFAULT_SEED, SWEEP);
    let pig = |n| exp(PigConfig::lan(2), n).max_throughput(paxi::DEFAULT_SEED, SWEEP);
    let (paxos9, paxos25) = (paxos(9), paxos(25));
    let (pig9, pig25) = (pig(9), pig(25));
    assert!(
        paxos9 > paxos25 * 1.8,
        "Paxos decays ~1/N: {paxos9:.0} vs {paxos25:.0}"
    );
    assert!(
        pig25 > pig9 * 0.85,
        "PigPaxos stays nearly flat: {pig9:.0} vs {pig25:.0}"
    );
}

#[test]
fn measured_message_loads_match_analytical_model() {
    // §6.1: the simulator's counters must agree with Eq. 1 and Eq. 3.
    for r in [2usize, 4] {
        let res = exp(PigConfig::lan(r), 25)
            .clients(10)
            .run_sim(paxi::DEFAULT_SEED);
        let ml = analytical::leader_load(r);
        let mf = analytical::follower_load(25, r);
        assert!(
            (res.leader_msgs_per_op - ml).abs() < 0.8,
            "r={r}: measured Ml {:.2} vs model {ml:.2}",
            res.leader_msgs_per_op
        );
        assert!(
            (res.follower_msgs_per_op - mf).abs() < 0.5,
            "r={r}: measured Mf {:.2} vs model {mf:.2}",
            res.follower_msgs_per_op
        );
    }
}
