//! Cross-protocol integration tests: the paper's headline comparisons,
//! asserted as invariants rather than eyeballed from figures.

use epaxos::{epaxos_builder, EpaxosConfig};
use paxi::harness::{max_throughput, run, RunSpec};
use paxi::TargetPolicy;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use simnet::{NodeId, SimDuration};

fn spec(n: usize, clients: usize) -> RunSpec {
    RunSpec {
        warmup: SimDuration::from_millis(300),
        measure: SimDuration::from_millis(900),
        ..RunSpec::lan(n, clients)
    }
}

fn leader() -> TargetPolicy {
    TargetPolicy::Fixed(NodeId(0))
}

fn random(n: usize) -> TargetPolicy {
    TargetPolicy::Random((0..n).map(NodeId::from).collect())
}

const SWEEP: &[usize] = &[40, 160];

#[test]
fn pigpaxos_beats_paxos_by_3x_at_25_nodes() {
    let base = spec(25, 0);
    let paxos = max_throughput(&base, SWEEP, paxos_builder(PaxosConfig::lan()), leader());
    let pig = max_throughput(&base, SWEEP, pig_builder(PigConfig::lan(3)), leader());
    assert!(
        pig > paxos * 3.0,
        "paper claims >3x: PigPaxos {pig:.0} vs Paxos {paxos:.0}"
    );
}

#[test]
fn epaxos_saturates_below_paxos_at_25_nodes() {
    let base = spec(25, 0);
    let paxos = max_throughput(&base, SWEEP, paxos_builder(PaxosConfig::lan()), leader());
    let ep = max_throughput(
        &base,
        SWEEP,
        epaxos_builder(EpaxosConfig::default()),
        random(25),
    );
    assert!(
        ep < paxos,
        "paper Fig 8 ordering: EPaxos ({ep:.0}) below Paxos ({paxos:.0})"
    );
}

#[test]
fn paxos_has_lower_latency_at_low_load() {
    // Paper: PigPaxos pays ~30% extra latency at low load (the relay hop).
    let paxos = run(&spec(25, 1), paxos_builder(PaxosConfig::lan()), leader());
    let pig = run(&spec(25, 1), pig_builder(PigConfig::lan(3)), leader());
    assert!(
        pig.mean_latency_ms > paxos.mean_latency_ms * 1.1,
        "relay hop must cost latency: pig {:.2}ms vs paxos {:.2}ms",
        pig.mean_latency_ms,
        paxos.mean_latency_ms
    );
    assert!(
        pig.mean_latency_ms < paxos.mean_latency_ms * 2.0,
        "but not more than ~2x at low load: pig {:.2}ms vs paxos {:.2}ms",
        pig.mean_latency_ms,
        paxos.mean_latency_ms
    );
}

#[test]
fn fewer_relay_groups_higher_throughput() {
    // Fig 7's monotone shape, spot-checked at the extremes.
    let base = spec(25, 0);
    let r2 = max_throughput(&base, SWEEP, pig_builder(PigConfig::lan(2)), leader());
    let r6 = max_throughput(&base, SWEEP, pig_builder(PigConfig::lan(6)), leader());
    assert!(
        r2 > r6 * 1.4,
        "r=2 ({r2:.0}) must clearly beat r=6 ({r6:.0})"
    );
}

#[test]
fn pigpaxos_benefits_extend_to_small_clusters() {
    // Paper §5.5 / Fig 10-11.
    let base = spec(5, 0);
    let paxos = max_throughput(&base, SWEEP, paxos_builder(PaxosConfig::lan()), leader());
    let pig = max_throughput(&base, SWEEP, pig_builder(PigConfig::lan(2)), leader());
    assert!(
        pig > paxos * 1.2,
        "PigPaxos must win even at 5 nodes: {pig:.0} vs {paxos:.0}"
    );
}

#[test]
fn paxos_throughput_decays_with_cluster_size_pigpaxos_does_not() {
    let paxos9 = max_throughput(
        &spec(9, 0),
        SWEEP,
        paxos_builder(PaxosConfig::lan()),
        leader(),
    );
    let paxos25 = max_throughput(
        &spec(25, 0),
        SWEEP,
        paxos_builder(PaxosConfig::lan()),
        leader(),
    );
    let pig9 = max_throughput(&spec(9, 0), SWEEP, pig_builder(PigConfig::lan(2)), leader());
    let pig25 = max_throughput(
        &spec(25, 0),
        SWEEP,
        pig_builder(PigConfig::lan(2)),
        leader(),
    );
    assert!(
        paxos9 > paxos25 * 1.8,
        "Paxos decays ~1/N: {paxos9:.0} vs {paxos25:.0}"
    );
    assert!(
        pig25 > pig9 * 0.85,
        "PigPaxos stays nearly flat: {pig9:.0} vs {pig25:.0}"
    );
}

#[test]
fn measured_message_loads_match_analytical_model() {
    // §6.1: the simulator's counters must agree with Eq. 1 and Eq. 3.
    let s = RunSpec {
        n_clients: 10,
        ..spec(25, 10)
    };
    for r in [2usize, 4] {
        let res = run(&s, pig_builder(PigConfig::lan(r)), leader());
        let ml = analytical::leader_load(r);
        let mf = analytical::follower_load(25, r);
        assert!(
            (res.leader_msgs_per_op - ml).abs() < 0.8,
            "r={r}: measured Ml {:.2} vs model {ml:.2}",
            res.leader_msgs_per_op
        );
        assert!(
            (res.follower_msgs_per_op - mf).abs() < 0.5,
            "r={r}: measured Mf {:.2} vs model {mf:.2}",
            res.follower_msgs_per_op
        );
    }
}

#[test]
fn all_protocols_agree_and_commit_under_identical_workload() {
    let n = 9;
    let s = spec(n, 6);
    let paxos = run(&s, paxos_builder(PaxosConfig::lan()), leader());
    let pig = run(&s, pig_builder(PigConfig::lan(3)), leader());
    let ep = run(&s, epaxos_builder(EpaxosConfig::default()), random(n));
    for (name, r) in [("paxos", &paxos), ("pigpaxos", &pig), ("epaxos", &ep)] {
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        assert!(r.throughput > 100.0, "{name}: {}", r.throughput);
        assert!(r.samples > 50, "{name}: {}", r.samples);
    }
}
