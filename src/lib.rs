//! Umbrella crate for the PigPaxos reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library
//! code lives in the member crates:
//!
//! - [`simnet`] — deterministic discrete-event network simulator
//! - [`paxi`] — consensus framework substrate (log, ballots, quorums, KV,
//!   workloads, measurement harness)
//! - [`paxos`] — Multi-Paxos baseline
//! - [`pigpaxos`] — the paper's contribution: relay/aggregate communication
//! - [`epaxos`] — Egalitarian Paxos baseline
//! - [`analytical`] — closed-form message-load model from the paper's §6

pub use analytical;
pub use epaxos;
pub use paxi;
pub use paxos;
pub use pigpaxos;
pub use simnet;
