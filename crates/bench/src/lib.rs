//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts:
//! - `--quick` (or env `PIG_QUICK=1`): much shorter simulated windows,
//!   for CI smoke runs; numbers are noisier.
//! - `--csv`: machine-readable output instead of the aligned table.

use paxi::{Experiment, LoadPoint, ProtocolSpec};
use simnet::SimDuration;

pub mod alloc;
pub mod hotpath;

/// Client-count ladder used by the latency/throughput figures.
pub const CURVE_CLIENTS: &[usize] = &[1, 2, 5, 10, 20, 40, 80, 160];

/// Client-count ladder used by max-throughput searches.
pub const MAX_TPUT_CLIENTS: &[usize] = &[20, 40, 80, 160];

/// Client ladder for WAN curves: at ~65 ms RTT a closed-loop client
/// offers only ~15 req/s, so saturating the cluster needs far more
/// clients than on a LAN.
pub const WAN_CURVE_CLIENTS: &[usize] = &[20, 80, 160, 320, 640, 1280];

/// True when the binary should run in quick (smoke) mode.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("PIG_QUICK").is_some()
}

/// True when CSV output was requested.
pub fn csv_mode() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Path given via `--json <path>`: the binary writes its headline
/// metrics there as a flat JSON object (the CI perf-gate artifact).
pub fn json_path() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return args.next();
        }
    }
    None
}

/// Flat `{"key": number}` JSON read/write for bench artifacts. The
/// container vendors no serde, so this hand-rolls exactly the subset
/// the perf gate needs: string keys mapped to finite f64 values.
pub mod json {
    /// Serialize entries as a flat JSON object (stable order). Panics
    /// on non-finite values — `parse` would reject them, and a NaN in a
    /// metric means the producing run is broken and must fail loudly at
    /// the source, not in the perf gate.
    pub fn render(entries: &[(String, f64)]) -> String {
        let body: Vec<String> = entries
            .iter()
            .map(|(k, v)| {
                assert!(v.is_finite(), "metric {k} is not finite: {v}");
                format!("  \"{k}\": {v:.6}")
            })
            .collect();
        format!("{{\n{}\n}}\n", body.join(",\n"))
    }

    /// Parse a flat JSON object of numeric values. Returns `None` on
    /// anything that is not `{"key": number, ...}`.
    pub fn parse(text: &str) -> Option<Vec<(String, f64)>> {
        let inner = text.trim().strip_prefix('{')?.strip_suffix('}')?;
        let mut out = Vec::new();
        for pair in inner.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair.split_once(':')?;
            let key = key.trim().strip_prefix('"')?.strip_suffix('"')?;
            let value: f64 = value.trim().parse().ok()?;
            if !value.is_finite() {
                return None;
            }
            out.push((key.to_string(), value));
        }
        Some(out)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip() {
            let entries = vec![
                ("a_per_op".to_string(), 1.25),
                ("b_tput".to_string(), 10_000.0),
            ];
            let text = render(&entries);
            let parsed = parse(&text).expect("own output parses");
            assert_eq!(parsed.len(), 2);
            assert_eq!(parsed[0].0, "a_per_op");
            assert!((parsed[0].1 - 1.25).abs() < 1e-9);
            assert!((parsed[1].1 - 10_000.0).abs() < 1e-3);
        }

        #[test]
        fn rejects_garbage() {
            assert!(parse("not json").is_none());
            assert!(parse("{\"k\": \"string\"}").is_none());
        }
    }
}

/// Master seed every figure binary runs under (re-exported so call
/// sites read `bench::SEED` rather than importing two crates).
pub const SEED: u64 = paxi::DEFAULT_SEED;

/// Standard LAN experiment for a figure run (shorter measurement
/// windows under `--quick`). Protocol and cluster size are the caller's
/// two axes; everything else is the paper default.
pub fn lan_experiment<P: ProtocolSpec>(proto: P, n_replicas: usize) -> Experiment<P> {
    let exp = Experiment::lan(proto, n_replicas);
    if quick_mode() {
        exp.warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(700))
    } else {
        exp.warmup(SimDuration::from_secs(1))
            .measure(SimDuration::from_secs(3))
    }
}

/// Standard WAN experiment (Virginia/California/Oregon).
pub fn wan_experiment<P: ProtocolSpec>(proto: P, n_replicas: usize) -> Experiment<P> {
    let exp = Experiment::wan(proto, n_replicas);
    if quick_mode() {
        exp.warmup(SimDuration::from_millis(500))
            .measure(SimDuration::from_secs(1))
    } else {
        exp.warmup(SimDuration::from_secs(2))
            .measure(SimDuration::from_secs(6))
    }
}

/// Print one latency/throughput curve in the format the paper's figures
/// plot (one row per offered-load point).
pub fn print_curve(name: &str, points: &[LoadPoint]) {
    if csv_mode() {
        for p in points {
            println!(
                "{name},{},{:.1},{:.3},{:.3},{:.3}",
                p.clients,
                p.result.throughput,
                p.result.mean_latency_ms,
                p.result.p50_latency_ms,
                p.result.p99_latency_ms
            );
        }
        return;
    }
    println!("\n── {name} ──");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "clients", "tput(req/s)", "mean(ms)", "p50(ms)", "p99(ms)"
    );
    for p in points {
        println!(
            "{:>8} {:>12.0} {:>12.2} {:>12.2} {:>12.2}",
            p.clients,
            p.result.throughput,
            p.result.mean_latency_ms,
            p.result.p50_latency_ms,
            p.result.p99_latency_ms
        );
    }
}

/// CSV header matching [`print_curve`]'s CSV rows.
pub fn print_csv_header() {
    if csv_mode() {
        println!("series,clients,throughput,mean_ms,p50_ms,p99_ms");
    }
}

/// Print a `key = value` style scalar result row.
pub fn print_scalar(name: &str, value: f64, unit: &str) {
    if csv_mode() {
        println!("{name},{value}");
    } else {
        println!("{name:<42} {value:>10.1} {unit}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiments_are_consistent() {
        let e = lan_experiment(paxos::PaxosConfig::lan(), 25);
        assert_eq!(e.n_replicas(), 25);
        assert_eq!(e.topology().num_nodes(), 25);
        let w = wan_experiment(paxos::PaxosConfig::wan(), 15);
        assert_eq!(w.topology().num_regions(), 3);
    }
}
