//! A counting global allocator for allocation-budget measurements.
//!
//! The profiling story for the leader hot path needs a number, not a
//! vibe: *allocations per decided command*. This module provides a
//! [`CountingAllocator`] that wraps the system allocator and bumps
//! process-wide atomic counters on every `alloc`/`realloc`. Binaries
//! that want the counters install it as their `#[global_allocator]`
//! (the `alloc_gate` bin, the `hotpath` criterion bench, and the
//! allocation-regression integration test each do); library code and
//! the ordinary test suite keep the plain system allocator.
//!
//! Counting is process-global, so precise measurements should run the
//! measured region on a single thread (or accept that concurrent
//! threads inflate the count — the thread-substrate regression test
//! does, with a correspondingly generous bound).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` wrapper around [`System`] that counts every
/// allocation and reallocation. Deallocations are pass-through: the
/// metric of interest is churn (how often we go to the allocator), not
/// live bytes.
pub struct CountingAllocator;

// SAFETY: defers all actual memory management to `System`; the counter
// updates are lock-free atomics and allocate nothing themselves.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is one trip to the allocator; count the grown size
        // so byte totals reflect the high-water copy.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations (+ reallocations) since process start. Always
/// available; stays at 0 unless [`CountingAllocator`] is installed as
/// the global allocator of the running binary.
pub fn allocation_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Total bytes requested since process start (see [`allocation_count`]).
pub fn allocated_bytes() -> u64 {
    BYTES.load(Ordering::Relaxed)
}

/// Allocation activity observed across a measured region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocDelta {
    /// Number of `alloc`/`alloc_zeroed`/`realloc` calls.
    pub allocs: u64,
    /// Bytes requested by those calls.
    pub bytes: u64,
}

/// Run `f` and report the allocation delta it produced. Only meaningful
/// in binaries that install [`CountingAllocator`]; elsewhere the delta
/// is always zero.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, AllocDelta) {
    let a0 = allocation_count();
    let b0 = allocated_bytes();
    let r = f();
    (
        r,
        AllocDelta {
            allocs: allocation_count() - a0,
            bytes: allocated_bytes() - b0,
        },
    )
}
