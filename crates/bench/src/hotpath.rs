//! Component-level drivers for the profiled hot paths.
//!
//! Three paths dominate a loaded leader's CPU budget (the paper's whole
//! argument is that this budget is the scalability ceiling): the leader
//! decide/execute pipeline (`propose_batch` → per-peer fan-out →
//! `accept_batch` → vote counting → execution → replies), the relay
//! aggregation path (PigPaxos `RelayTable`), and `Wire` encode/decode.
//! This module drives each one directly — no simulator, no actors, no
//! timers — over the same public APIs the replicas use, so criterion
//! benches, the `alloc_gate` binary, and the allocation-regression test
//! all measure identical work.
//!
//! [`LeaderPipeline::drive_wave`] separates *leader-side* work from
//! *follower-side* work with the counting allocator (see
//! [`crate::alloc`]): the reported `leader_allocs` covers exactly the
//! segments a real leader executes per wave, which is the number the
//! `≥25%` allocation-reduction claim is gated on.

use crate::alloc;
use paxi::{
    Ballot, ClientReply, Command, Operation, RequestId, SafetyMonitor, SessionTable, Value,
};
use paxos::{
    accept_batch, apply_batch_votes, propose_batch, Acceptor, Leader, P2bVote, PaxosMsg,
    Phase1Outcome,
};
use pigpaxos::relay::{AggKey, Flush, RelayTable, VoteSet};
use simnet::{Bytes, NodeId, SimTime, Wire};
use std::collections::HashSet;

/// Payload bytes per benched `Put` value (matches the default workload).
pub const VALUE_BYTES: usize = 64;

/// One decided wave's measurements.
#[derive(Debug, Clone, Copy)]
pub struct WaveReport {
    /// Commands decided and executed by this wave.
    pub decided: usize,
    /// Allocations charged to the leader-side segments of the wave.
    pub leader_allocs: u64,
}

/// A self-contained n-replica cluster driven wave-by-wave through the
/// batched leader pipeline: exactly the per-wave work a loaded
/// `PaxosReplica` leader performs, minus the substrate.
pub struct LeaderPipeline {
    leader: Leader,
    leader_acc: Acceptor,
    followers: Vec<Acceptor>,
    sessions: SessionTable,
    now: SimTime,
    seq: u64,
    batch: usize,
    // Reused across waves so container capacity amortizes, mirroring a
    // long-lived replica rather than a cold start.
    fanout: Vec<PaxosMsg>,
    replies: Vec<ClientReply>,
}

impl LeaderPipeline {
    /// Build an `n`-replica cluster (node 0 leads) deciding `batch`
    /// commands per wave. The campaign is completed here so every
    /// subsequent [`Self::drive_wave`] measures steady state.
    pub fn new(n: usize, batch: usize) -> Self {
        assert!(n >= 2, "pipeline needs at least one follower");
        assert!(batch >= 1, "empty waves decide nothing");
        let safety = SafetyMonitor::new();
        let mut leader = Leader::new(NodeId(0), n);
        let mut leader_acc = Acceptor::new(NodeId(0), safety.clone());
        let mut followers: Vec<Acceptor> = (1..n)
            .map(|i| Acceptor::new(NodeId(i as u32), safety.clone()))
            .collect();
        let ballot = leader.start_campaign(Ballot::ZERO);
        let mut votes = vec![leader_acc.on_p1a(ballot, 0)];
        votes.extend(followers.iter_mut().map(|f| f.on_p1a(ballot, 0)));
        match leader.on_p1b_votes(votes, 0) {
            Phase1Outcome::Won { reproposals } => assert!(reproposals.is_empty()),
            other => panic!("campaign on a fresh cluster must win, got {other:?}"),
        }
        LeaderPipeline {
            leader,
            leader_acc,
            followers,
            sessions: SessionTable::new(),
            now: SimTime::ZERO,
            seq: 0,
            batch,
            fanout: Vec::new(),
            replies: Vec::new(),
        }
    }

    fn next_batch(&mut self) -> Vec<(NodeId, Command)> {
        let mut batch = Vec::with_capacity(self.batch);
        for _ in 0..self.batch {
            self.seq += 1;
            let client = NodeId(100 + (self.seq % 8) as u32);
            let cmd = Command {
                id: RequestId {
                    client,
                    seq: self.seq,
                },
                op: Operation::Put(self.seq % 1024, Value::zeros(VALUE_BYTES)),
            };
            batch.push((client, cmd));
        }
        batch
    }

    /// Run one full wave: propose a batch, fan the `P2aBatch` out to
    /// every follower, accept it at each, count the returning vote
    /// batches at the leader, execute the decided prefix, and build the
    /// client replies. Returns what was decided and the allocations the
    /// *leader-side* segments performed (zero unless the binary installs
    /// [`crate::alloc::CountingAllocator`]).
    pub fn drive_wave(&mut self) -> WaveReport {
        self.now += simnet::SimDuration::from_micros(200);
        let batch = self.next_batch();
        let now = self.now;
        let mut leader_allocs = 0u64;

        // Leader: allocate slots, self-accept, build the wave message,
        // and clone it per peer exactly as `fanout` does.
        let ((), d) = alloc::measure(|| {
            let proposal = propose_batch(&mut self.leader, &mut self.leader_acc, batch, now);
            let msg = PaxosMsg::P2aBatch {
                ballot: proposal.ballot,
                first_slot: proposal.first_slot,
                commands: proposal.commands,
                commit_up_to: proposal.commit_up_to,
            };
            self.fanout.clear();
            for _ in 0..self.followers.len() {
                self.fanout.push(msg.clone());
            }
        });
        leader_allocs += d.allocs;

        // Followers: accept the batch and vote (not leader work — kept
        // outside the measured segments).
        let mut vote_batches: Vec<Vec<P2bVote>> = Vec::with_capacity(self.followers.len());
        for (i, follower) in self.followers.iter_mut().enumerate() {
            let Some(PaxosMsg::P2aBatch {
                ballot,
                first_slot,
                commands,
                commit_up_to,
            }) = self.fanout.get(i).cloned()
            else {
                unreachable!("fanout holds one P2aBatch per follower")
            };
            let acc = accept_batch(follower, ballot, first_slot, &commands, commit_up_to);
            follower.execute_ready();
            vote_batches.push(acc.votes);
        }

        // Leader: count each follower's vote batch, execute the ready
        // prefix, record and build replies — the decide/execute path.
        let ballot = self.leader.ballot();
        let (decided, d) = alloc::measure(|| {
            let mut decided = 0usize;
            self.replies.clear();
            for votes in vote_batches.drain(..) {
                let Some(wave) =
                    apply_batch_votes(&mut self.leader, &mut self.leader_acc, ballot, votes)
                else {
                    continue;
                };
                assert!(wave.preempted.is_none(), "nothing contends in the harness");
                for (_slot, id, value) in wave.executed {
                    let reply = ClientReply::ok(id, value);
                    self.sessions.record(&reply);
                    self.replies.push(reply);
                    decided += 1;
                }
            }
            decided
        });
        leader_allocs += d.allocs;

        assert_eq!(decided, self.batch, "every wave must fully decide");
        WaveReport {
            decided,
            leader_allocs,
        }
    }

    /// Drive `waves` waves and return total (decided, leader allocations).
    pub fn run(&mut self, waves: usize) -> (u64, u64) {
        let mut decided = 0u64;
        let mut allocs = 0u64;
        for _ in 0..waves {
            let r = self.drive_wave();
            decided += r.decided as u64;
            allocs += r.leader_allocs;
        }
        (decided, allocs)
    }
}

/// Drive one PigPaxos relay aggregation round: open a `P2Span` round
/// seeded with the relay's own `batch`-slot vote block, then add each
/// group peer's block until the round flushes. Returns the flush (the
/// aggregate the relay uplinks to the leader).
pub fn relay_aggregate_round(ballot: Ballot, first_slot: u64, batch: usize, group: usize) -> Flush {
    let last_slot = first_slot + batch as u64 - 1;
    let key = AggKey::P2Span(ballot, first_slot, last_slot);
    let votes_of = |node: u32| -> Vec<P2bVote> {
        (first_slot..=last_slot)
            .map(|slot| P2bVote {
                node: NodeId(node),
                ballot,
                slot,
                ok: true,
            })
            .collect()
    };
    let mut table = RelayTable::new();
    let expect: HashSet<NodeId> = (2..=group as u32).map(NodeId).collect();
    let deadline = SimTime::from_millis(10);
    if let Some(flush) = table.open(
        key,
        NodeId(0),
        expect,
        VoteSet::P2(votes_of(1)),
        0,
        deadline,
    ) {
        return flush;
    }
    for node in 2..=group as u32 {
        if let Some(flush) = table.add(key, NodeId(node), VoteSet::P2(votes_of(node))) {
            return flush;
        }
    }
    panic!("aggregation over the full group must flush");
}

/// A representative `P2aBatch` wave message with `batch` commands.
pub fn sample_p2a_batch(batch: usize) -> PaxosMsg {
    sample_p2a_batch_with_values(batch, VALUE_BYTES)
}

/// A `P2aBatch` wave message with `batch` commands of `value_bytes`
/// payload each — the large-value variant drives the zero-copy decode
/// gates.
pub fn sample_p2a_batch_with_values(batch: usize, value_bytes: usize) -> PaxosMsg {
    let commands: Vec<Command> = (0..batch as u64)
        .map(|i| Command {
            id: RequestId {
                client: NodeId(100 + (i % 8) as u32),
                seq: i + 1,
            },
            op: Operation::Put(i % 1024, Value::zeros(value_bytes)),
        })
        .collect();
    PaxosMsg::P2aBatch {
        ballot: Ballot::new(1, NodeId(0)),
        first_slot: 42,
        commands: commands.into(),
        commit_up_to: 42,
    }
}

/// Encode `msg` into a fresh buffer (the per-send cost pre-pooling).
pub fn encode_message(msg: &PaxosMsg) -> Vec<u8> {
    msg.encode()
}

/// Decode a frame back into a message (the per-receive cost). The frame
/// arrives as [`Bytes`] — the form the net substrate hands decoders —
/// so every value inside the result is a zero-copy slice of it.
pub fn decode_message(frame: &Bytes) -> PaxosMsg {
    PaxosMsg::decode_frame(frame).expect("harness frames are valid")
}
