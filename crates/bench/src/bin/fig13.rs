//! Figure 13: throughput timeline of a saturated 25-node / 3-relay-group
//! PigPaxos cluster while one relay group is faulty (one member crashed)
//! for a 20-second window; relay timeout 50 ms; throughput sampled over
//! 1-second intervals.
//!
//! Paper result: the two healthy relay groups still deliver a majority,
//! so max throughput declines only ≈3% during the fault.

use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, quick_mode, SEED};
use simnet::{Control, NodeId, SimDuration, SimTime};

fn main() {
    let (total_secs, fault_start, fault_end) = if quick_mode() {
        (15u64, 5u64, 10u64)
    } else {
        (60, 20, 40)
    };

    // Node 5 is a member (and 1-in-8 rounds, the relay) of group 0.
    let faulty = NodeId(5);
    let result = lan_experiment(PigConfig::lan(3), 25)
        .clients(160) // saturation, as in the paper
        .warmup(SimDuration::from_secs(0))
        .measure(SimDuration::from_secs(total_secs))
        .timeline_bucket(SimDuration::from_secs(1))
        .run_sim_with(SEED, move |sim, _cluster| {
            sim.schedule_control(SimTime::from_secs(fault_start), Control::Crash(faulty));
            sim.schedule_control(SimTime::from_secs(fault_end), Control::Recover(faulty));
        });

    assert!(
        result.violations.is_empty(),
        "safety violated: {:?}",
        result.violations
    );

    if csv_mode() {
        println!("time_s,throughput");
        for (t, tput) in &result.timeline {
            println!("{t:.0},{tput:.0}");
        }
    } else {
        println!(
            "Figure 13: PigPaxos 25 nodes / 3 groups, node {faulty} crashed in \
             [{fault_start}s, {fault_end}s), relay timeout 50ms"
        );
        println!("{:>7} {:>12}", "time(s)", "tput(req/s)");
        for (t, tput) in &result.timeline {
            let marker = if (*t > fault_start as f64) && (*t <= fault_end as f64) {
                "  <- fault window"
            } else {
                ""
            };
            println!("{t:>7.0} {tput:>12.0}{marker}");
        }
    }

    // Quantify the dip like the paper does.
    let healthy: Vec<f64> = result
        .timeline
        .iter()
        .filter(|&&(t, _)| t > 2.0 && (t <= fault_start as f64 || t > fault_end as f64 + 2.0))
        .map(|&(_, v)| v)
        .collect();
    let faulted: Vec<f64> = result
        .timeline
        .iter()
        .filter(|&&(t, _)| t > fault_start as f64 + 1.0 && t <= fault_end as f64)
        .map(|&(_, v)| v)
        .collect();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let decline = 100.0 * (1.0 - avg(&faulted) / avg(&healthy));
    if csv_mode() {
        println!("decline_pct,{decline:.1}");
    } else {
        println!(
            "\nhealthy avg {:.0} req/s, faulted avg {:.0} req/s, decline {:.1}% (paper: ≈3%)",
            avg(&healthy),
            avg(&faulted),
            decline
        );
    }
}
