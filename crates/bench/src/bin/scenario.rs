//! Scenario-matrix chaos driver: run the checked-in corpus of chaos
//! scenarios (`scenarios/*.toml`) with a nemesis executing each fault
//! schedule and the safety checkers riding every run.
//!
//! ```text
//! scenario [--check] [--quick] [--csv] [paths...]
//! ```
//!
//! - With no paths, runs every `*.toml` under `scenarios/` (sorted).
//! - `--check` lints the corpus: parse + validate only, no runs.
//! - `--quick` / `PIG_QUICK=1` skips scenarios marked `quick = false`.
//! - Exit code is non-zero if any scenario fails to parse, violates
//!   safety, or misses its `[expect]` block.

use paxi::{
    Experiment, Fault, Nemesis, NemesisLog, ProtocolSpec, RunResult, Scenario, ShardedExperiment,
    TopologyKind,
};
use pigpaxos_bench as bench;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

fn corpus_paths() -> Vec<PathBuf> {
    let explicit: Vec<PathBuf> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .map(PathBuf::from)
        .collect();
    if !explicit.is_empty() {
        return explicit;
    }
    let mut found = Vec::new();
    if let Ok(dir) = std::fs::read_dir("scenarios") {
        for entry in dir.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "toml") {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

fn load(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
    paxi::scenario::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Run one scenario under any protocol: attach the nemesis into the
/// extra client slot and execute on the simulator.
fn run_with<P: ProtocolSpec>(proto: P, sc: &Scenario) -> (RunResult, NemesisLog) {
    let mut exp = match sc.topology {
        TopologyKind::Lan => Experiment::lan(proto, sc.replicas),
        TopologyKind::Wan => Experiment::wan(proto, sc.replicas),
    }
    .clients(sc.clients)
    .client_pipeline(sc.pipeline)
    .workload(sc.workload.clone())
    .warmup(sc.warmup)
    .measure(sc.measure)
    .drain(sc.drain)
    .extra_client_nodes(1);
    if let Some(t) = sc.retry_timeout {
        exp = exp.retry_timeout(t);
    }
    let log = NemesisLog::new();
    let (faults, nemesis_log) = (sc.faults.clone(), log.clone());
    let result = exp.run_sim_with(sc.seed, move |sim, _| {
        sim.add_actor(Box::new(Nemesis::<P::Msg>::new(faults, nemesis_log)));
    });
    (result, log)
}

/// Per-shard observations from a sharded run, for `min_shard_decided`
/// judging: decided commands per shard, and whether any scheduled
/// fault touched one of the shard's replicas.
struct ShardInfo {
    decided: Vec<u64>,
    affected: Vec<bool>,
}

/// Replica nodes a fault acts on (for the affected-shard computation;
/// cluster-wide faults like `drop_rate` return none and are treated as
/// affecting every shard by the caller).
fn fault_nodes(f: &Fault) -> Vec<u32> {
    match f {
        Fault::Partition { a, b } | Fault::AsymmetricPartition { a, b } => {
            a.iter().chain(b).copied().collect()
        }
        Fault::Crash(n) | Fault::Restart(n) => vec![*n],
        Fault::CrashLoop { node, .. } | Fault::Slow { node, .. } => vec![*node],
        Fault::Flaky { from, to, .. } => vec![*from, *to],
        Fault::Storm { target, .. } => vec![*target],
        Fault::Heal | Fault::ClearFlaky | Fault::ClearSlow | Fault::DropRate(_) => vec![],
    }
}

/// Run one sharded scenario: replicas-per-shard comes from `replicas`,
/// clients become routers, and the nemesis rides the extra client slot
/// exactly as in the flat path.
fn run_sharded<P: ProtocolSpec>(
    proto: P,
    sc: &Scenario,
    shards: usize,
) -> (RunResult, NemesisLog, Option<ShardInfo>) {
    let mut exp = ShardedExperiment::new(proto, shards, sc.replicas)
        .routers(sc.clients)
        .pipeline(sc.pipeline)
        .workload(sc.workload.clone())
        .warmup(sc.warmup)
        .measure(sc.measure)
        .extra_client_nodes(1);
    if let Some(t) = sc.retry_timeout {
        exp = exp.retry_timeout(t);
    }
    let log = NemesisLog::new();
    let (faults, nemesis_log) = (sc.faults.clone(), log.clone());
    let safeties = Arc::new(Mutex::new(Vec::new()));
    let captured = safeties.clone();
    let result = exp.run_sim_with(sc.seed, move |sim, layout| {
        *captured.lock().expect("capture lock") = layout
            .clusters
            .iter()
            .map(|c| c.safety.clone())
            .collect::<Vec<_>>();
        sim.add_actor(Box::new(Nemesis::<P::Msg>::new(faults, nemesis_log)));
    });
    let decided: Vec<u64> = safeties
        .lock()
        .expect("capture lock")
        .iter()
        .map(|s| s.decided_count())
        .collect();
    let replicas_per_shard = sc.replicas as u32;
    let mut affected = vec![false; shards];
    for ev in &sc.faults {
        let nodes = fault_nodes(&ev.fault);
        if nodes.is_empty() && !matches!(ev.fault, Fault::Heal) {
            // Cluster-wide fault: no shard is exempt.
            affected.iter_mut().for_each(|a| *a = true);
            continue;
        }
        for n in nodes {
            let s = (n / replicas_per_shard) as usize;
            if s < shards {
                affected[s] = true;
            }
        }
    }
    (result, log, Some(ShardInfo { decided, affected }))
}

fn dispatch(sc: &Scenario) -> (RunResult, NemesisLog, Option<ShardInfo>) {
    if let Some(shards) = sc.shards {
        // Validation already pinned sharded scenarios to LAN.
        return match sc.protocol.as_str() {
            "paxos" => run_sharded(paxos::PaxosConfig::lan(), sc, shards),
            "pigpaxos" => {
                let groups = sc
                    .groups
                    .unwrap_or_else(|| (sc.replicas as f64).sqrt() as usize);
                run_sharded(pigpaxos::PigConfig::lan(groups), sc, shards)
            }
            "epaxos" => run_sharded(epaxos::EpaxosConfig::default(), sc, shards),
            other => unreachable!("parser admits only known protocols, got {other}"),
        };
    }
    let (result, log) = match sc.protocol.as_str() {
        "paxos" => match sc.topology {
            TopologyKind::Lan => run_with(paxos::PaxosConfig::lan(), sc),
            TopologyKind::Wan => run_with(paxos::PaxosConfig::wan(), sc),
        },
        "pigpaxos" => {
            let groups = sc
                .groups
                .unwrap_or_else(|| (sc.replicas as f64).sqrt() as usize);
            match sc.topology {
                TopologyKind::Lan => run_with(pigpaxos::PigConfig::lan(groups), sc),
                TopologyKind::Wan => run_with(
                    pigpaxos::PigConfig::wan(pigpaxos::GroupSpec::Chunks(groups)),
                    sc,
                ),
            }
        }
        "epaxos" => run_with(epaxos::EpaxosConfig::default(), sc),
        other => unreachable!("parser admits only known protocols, got {other}"),
    };
    (result, log, None)
}

/// Judge one result against the scenario's expectations. Returns the
/// list of failures (empty = pass).
fn judge(sc: &Scenario, r: &RunResult, log: &NemesisLog, shard: Option<&ShardInfo>) -> Vec<String> {
    let mut fails = Vec::new();
    if !r.violations.is_empty() {
        fails.push(format!("SAFETY VIOLATIONS: {:?}", r.violations));
    }
    if log.len() != sc.faults.len() {
        fails.push(format!(
            "nemesis executed {}/{} faults",
            log.len(),
            sc.faults.len()
        ));
    }
    if let Some(want) = sc.expect.converged {
        match r.converged() {
            Some(got) if got == want => {}
            Some(got) => fails.push(format!("converged = {got}, expected {want}")),
            None => fails.push("no digests collected (drain too short?)".to_string()),
        }
    }
    if let Some(min) = sc.expect.min_throughput {
        if r.throughput < min {
            fails.push(format!(
                "throughput {:.1} < required {min:.1}",
                r.throughput
            ));
        }
    }
    if let Some(max) = sc.expect.max_client_retries {
        if r.client_retries > max {
            fails.push(format!(
                "client retries {} > allowed {max}",
                r.client_retries
            ));
        }
    }
    if let Some(min) = sc.expect.min_samples {
        if (r.samples as u64) < min {
            fails.push(format!("samples {} < required {min}", r.samples));
        }
    }
    if let Some(min) = sc.expect.min_shard_decided {
        match shard {
            Some(info) => {
                for (s, (&decided, &hit)) in
                    info.decided.iter().zip(info.affected.iter()).enumerate()
                {
                    if !hit && decided < min {
                        fails.push(format!(
                            "unaffected shard {s} decided {decided} < required {min}"
                        ));
                    }
                }
                if info.affected.iter().all(|&a| a) {
                    fails.push(
                        "min_shard_decided set but every shard is touched by a fault".to_string(),
                    );
                }
            }
            None => fails.push("min_shard_decided set but run was not sharded".to_string()),
        }
    }
    fails
}

fn main() -> ExitCode {
    let check_only = std::env::args().any(|a| a == "--check");
    let quick = bench::quick_mode();
    let paths = corpus_paths();
    if paths.is_empty() {
        eprintln!("scenario: no scenario files found (looked in scenarios/)");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    let mut scenarios = Vec::new();
    for path in &paths {
        match load(path) {
            Ok(sc) => {
                if check_only {
                    println!("OK   {} ({})", path.display(), sc.name);
                }
                scenarios.push(sc);
            }
            Err(e) => {
                eprintln!("FAIL {e}");
                failures += 1;
            }
        }
    }
    if check_only {
        println!(
            "checked {} scenario file(s), {} invalid",
            paths.len(),
            failures
        );
        return if failures == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    if bench::csv_mode() {
        println!("scenario,protocol,tput,p99_ms,retries,faults,converged,status");
    } else {
        println!(
            "{:<28} {:>9} {:>9} {:>9} {:>8} {:>7} {:>10}  status",
            "scenario", "protocol", "tput", "p99(ms)", "retries", "faults", "converged"
        );
    }
    let mut ran = 0usize;
    for sc in &scenarios {
        if quick && !sc.quick {
            continue;
        }
        let (result, log, shard) = dispatch(sc);
        let fails = judge(sc, &result, &log, shard.as_ref());
        let converged = match result.converged() {
            Some(true) => "yes",
            Some(false) => "NO",
            None => "-",
        };
        let status = if fails.is_empty() { "pass" } else { "FAIL" };
        if bench::csv_mode() {
            println!(
                "{},{},{:.1},{:.3},{},{},{},{}",
                sc.name,
                sc.protocol,
                result.throughput,
                result.p99_latency_ms,
                result.client_retries,
                log.len(),
                converged,
                status
            );
        } else {
            println!(
                "{:<28} {:>9} {:>9.0} {:>9.2} {:>8} {:>7} {:>10}  {}",
                sc.name,
                sc.protocol,
                result.throughput,
                result.p99_latency_ms,
                result.client_retries,
                log.len(),
                converged,
                status
            );
        }
        for f in &fails {
            eprintln!("  {}: {f}", sc.name);
        }
        if !fails.is_empty() {
            failures += 1;
        }
        ran += 1;
    }
    println!(
        "\n{} scenario(s) ran, {} failed{}",
        ran,
        failures,
        if quick { " (quick mode)" } else { "" }
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
