//! Figure 12: maximum throughput vs. payload size (8–1280 bytes) on a
//! 25-node cluster under a write-only workload — Paxos vs. PigPaxos
//! with 3 relay groups. Prints absolute (12a) and normalized (12b)
//! series.
//!
//! Paper result: both protocols degrade similarly in relative terms
//! (neither dips below 0.9 of its own peak across this payload range),
//! while PigPaxos's absolute advantage persists at every size.
//!
//! With protocol and workload as orthogonal `Experiment` axes, the two
//! series are one generic sweep instead of near-identical branches.

use paxi::{ProtocolSpec, Workload};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, MAX_TPUT_CLIENTS, SEED};

const PAYLOADS: &[usize] = &[8, 80, 160, 320, 640, 1024, 1280];

fn sweep<P: ProtocolSpec>(proto: P) -> Vec<(usize, f64)> {
    PAYLOADS
        .iter()
        .map(|&payload| {
            let t = lan_experiment(proto.clone(), 25)
                .workload(Workload::write_only(payload))
                .max_throughput(SEED, MAX_TPUT_CLIENTS);
            (payload, t)
        })
        .collect()
}

fn print_series(name: &str, series: &[(usize, f64)]) {
    let peak = series.iter().map(|&(_, t)| t).fold(0.0, f64::max);
    if csv_mode() {
        for &(p, t) in series {
            println!("{name},{p},{t:.0},{:.4}", t / peak);
        }
        return;
    }
    println!("\n── {name} ──");
    println!(
        "{:>10} {:>14} {:>12}",
        "payload(B)", "max tput(req/s)", "normalized"
    );
    for &(p, t) in series {
        println!("{p:>10} {t:>14.0} {:>12.3}", t / peak);
    }
}

fn main() {
    if csv_mode() {
        println!("series,payload_bytes,max_throughput,normalized");
    } else {
        println!("Figure 12: max throughput vs payload size (25 nodes, write-only)");
    }
    print_series("Paxos", &sweep(PaxosConfig::lan()));
    print_series("PigPaxos (3 groups)", &sweep(PigConfig::lan(3)));
}
