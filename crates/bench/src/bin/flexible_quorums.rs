//! §2.2 reproduction: flexible quorums and the thrifty optimization.
//!
//! The paper's argument for why neither obviates PigPaxos:
//! 1. A small Q2 cuts commit latency (dramatically so on a WAN where the
//!    Q2 fits in the leader's region) but the leader still exchanges
//!    messages with all N−1 followers, so max throughput is unchanged.
//! 2. Thrifty *does* cut leader messages (contact only |Q2| nodes) but a
//!    single crashed or sluggish member of that set stalls every commit
//!    until the retry path widens the fan-out.

use paxos::PaxosConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, wan_experiment, MAX_TPUT_CLIENTS, SEED};
use simnet::{Control, NodeId, SimTime};

fn main() {
    // Part 1: N=10 LAN, the paper's Q1=8/Q2=3 example.
    let lat = |cfg: PaxosConfig| lan_experiment(cfg, 10).clients(2).run_sim(SEED);
    let m = lat(PaxosConfig::lan());
    let mut fq = PaxosConfig::lan();
    fq.flexible_quorums = Some((8, 3));
    let f = lat(fq.clone());
    let m_max = lan_experiment(PaxosConfig::lan(), 10).max_throughput(SEED, MAX_TPUT_CLIENTS);
    let f_max = lan_experiment(fq, 10).max_throughput(SEED, MAX_TPUT_CLIENTS);

    // Part 2: 15-node WAN — Q2=5 fits in the leader's region.
    let wlat = |cfg: PaxosConfig| wan_experiment(cfg, 15).clients(4).run_sim(SEED);
    let wm = wlat(PaxosConfig::wan());
    let mut wfq = PaxosConfig::wan();
    wfq.flexible_quorums = Some((11, 5));
    let wf = wlat(wfq);

    // Part 3: thrifty under a single crash (9-node LAN).
    let mut thr = PaxosConfig::lan();
    thr.thrifty = true;
    let thrifty9 = lan_experiment(thr, 9).clients(4);
    let t_ok = thrifty9.run_sim(SEED);
    let t_crash = thrifty9.run_sim_with(SEED, |sim, _| {
        sim.schedule_control(SimTime::from_millis(200), Control::Crash(NodeId(1)));
    });

    if csv_mode() {
        println!("metric,majority,flexible");
        println!(
            "lan10_low_load_latency_ms,{:.3},{:.3}",
            m.mean_latency_ms, f.mean_latency_ms
        );
        println!("lan10_max_throughput,{m_max:.0},{f_max:.0}");
        println!(
            "wan15_low_load_latency_ms,{:.3},{:.3}",
            wm.mean_latency_ms, wf.mean_latency_ms
        );
        println!(
            "thrifty9_latency_ms_healthy_vs_crashed,{:.3},{:.3}",
            t_ok.mean_latency_ms, t_crash.mean_latency_ms
        );
    } else {
        println!("Flexible quorums & thrifty (paper §2.2)\n");
        println!("N=10 LAN, majority (6,6) vs flexible (Q1=8, Q2=3):");
        println!(
            "  low-load latency   {:>7.2} ms vs {:>7.2} ms",
            m.mean_latency_ms, f.mean_latency_ms
        );
        println!("  max throughput     {m_max:>7.0}    vs {f_max:>7.0}    req/s  <- Q2 does NOT fix the leader");
        println!("\nN=15 WAN, majority (8,8) vs flexible (Q1=11, Q2=5, Q2 ⊂ leader region):");
        println!(
            "  low-load latency   {:>7.2} ms vs {:>7.2} ms",
            wm.mean_latency_ms, wf.mean_latency_ms
        );
        println!(
            "  leader msgs/op     {:>7.1}    vs {:>7.1}       <- unchanged bottleneck",
            wm.leader_msgs_per_op, wf.leader_msgs_per_op
        );
        println!("\nN=9 LAN thrifty (contact only Q2-1 followers):");
        println!(
            "  leader msgs/op {:.1}; healthy latency {:.2} ms; one crashed quorum member: {:.2} ms",
            t_ok.leader_msgs_per_op, t_ok.mean_latency_ms, t_crash.mean_latency_ms
        );
        println!("  <- a single faulty node in Q2 stalls thrifty Paxos (paper §2.2)");
    }
}
