//! §6.4 validation: cross-region (paid WAN) messages per operation in a
//! 3-region × 3-node deployment — Paxos vs. PigPaxos with one relay
//! group per region.
//!
//! Paper claim: 2 vs. 6 leader-side cross-WAN messages per write (3×
//! saving); measured numbers include the response direction, so the
//! expected measured ratio is the same 3× at 4 vs. 12 total crossings.

use analytical::{paxos_wan_msgs_per_op, pigpaxos_wan_msgs_per_op};
use paxi::harness::{run, RunSpec};
use paxi::Workload;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, GroupSpec, PigConfig};
use pigpaxos_bench::{csv_mode, leader_target, wan_spec};
use simnet::NodeId;

fn main() {
    let n = 9; // 3 regions × 3 nodes
    let spec = RunSpec {
        n_clients: 10,
        workload: Workload::write_only(8),
        ..wan_spec(n)
    };

    let paxos = run(&spec, paxos_builder(PaxosConfig::wan()), leader_target());

    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    for region in 0..spec.topology.num_regions() {
        let members: Vec<NodeId> = spec
            .topology
            .nodes_in_region(region)
            .into_iter()
            .filter(|&node| node != NodeId(0))
            .collect();
        if !members.is_empty() {
            groups.push(members);
        }
    }
    let pig = run(
        &spec,
        pig_builder(PigConfig::wan(GroupSpec::Explicit(groups))),
        leader_target(),
    );

    let model_paxos = paxos_wan_msgs_per_op(3, 3) as f64;
    let model_pig = pigpaxos_wan_msgs_per_op(3) as f64;

    if csv_mode() {
        println!("protocol,measured_cross_region_per_op,model_one_way_per_op");
        println!("paxos,{:.2},{model_paxos}", paxos.cross_region_msgs_per_op);
        println!("pigpaxos,{:.2},{model_pig}", pig.cross_region_msgs_per_op);
    } else {
        println!("WAN traffic per operation (3 regions x 3 nodes, write-only):");
        println!(
            "  Paxos    measured {:>6.2} cross-region msgs/op  (model one-way: {model_paxos})",
            paxos.cross_region_msgs_per_op
        );
        println!(
            "  PigPaxos measured {:>6.2} cross-region msgs/op  (model one-way: {model_pig})",
            pig.cross_region_msgs_per_op
        );
        println!(
            "  measured saving: {:.1}x (paper: 3x)",
            paxos.cross_region_msgs_per_op / pig.cross_region_msgs_per_op
        );
    }
}
