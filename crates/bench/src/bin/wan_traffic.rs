//! §6.4 validation: cross-region (paid WAN) messages per operation in a
//! 3-region × 3-node deployment — Paxos vs. PigPaxos with one relay
//! group per region.
//!
//! Paper claim: 2 vs. 6 leader-side cross-WAN messages per write (3×
//! saving); measured numbers include the response direction, so the
//! expected measured ratio is the same 3× at 4 vs. 12 total crossings.
//!
//! The second section measures the ROADMAP open item "cross-wave reply
//! windows": on a WAN, reply envelopes are expensive, so a small
//! positive `ReplyCoalesce::Window` that merges replies *across*
//! execution waves might amortize further than the zero-latency
//! per-wave mode — at the cost of added client latency.

use analytical::{paxos_wan_msgs_per_op, pigpaxos_wan_msgs_per_op};
use paxi::{BatchConfig, ReplyCoalesce, Workload};
use paxos::PaxosConfig;
use pigpaxos::{GroupSpec, PigConfig};
use pigpaxos_bench::{csv_mode, wan_experiment, SEED};
use simnet::{NodeId, SimDuration};

fn main() {
    let n = 9; // 3 regions × 3 nodes
    let paxos_exp = wan_experiment(PaxosConfig::wan(), n)
        .clients(10)
        .workload(Workload::write_only(8));
    let groups = GroupSpec::per_region(paxos_exp.topology(), NodeId(0));
    let paxos = paxos_exp.run_sim(SEED);

    let pig = wan_experiment(PigConfig::wan(groups.clone()), n)
        .clients(10)
        .workload(Workload::write_only(8))
        .run_sim(SEED);

    let model_paxos = paxos_wan_msgs_per_op(3, 3) as f64;
    let model_pig = pigpaxos_wan_msgs_per_op(3) as f64;

    if csv_mode() {
        println!("protocol,measured_cross_region_per_op,model_one_way_per_op");
        println!("paxos,{:.2},{model_paxos}", paxos.cross_region_msgs_per_op);
        println!("pigpaxos,{:.2},{model_pig}", pig.cross_region_msgs_per_op);
    } else {
        println!("WAN traffic per operation (3 regions x 3 nodes, write-only):");
        println!(
            "  Paxos    measured {:>6.2} cross-region msgs/op  (model one-way: {model_paxos})",
            paxos.cross_region_msgs_per_op
        );
        println!(
            "  PigPaxos measured {:>6.2} cross-region msgs/op  (model one-way: {model_pig})",
            pig.cross_region_msgs_per_op
        );
        println!(
            "  measured saving: {:.1}x (paper: 3x)",
            paxos.cross_region_msgs_per_op / pig.cross_region_msgs_per_op
        );
    }

    // ── Cross-wave reply windows (ROADMAP open item) ──────────────────
    // Pipelined clients near the leader, batched writes, and a sweep of
    // the reply-coalescing window: does merging replies across waves
    // pay on a WAN?
    if csv_mode() {
        println!("reply_window,window_us,replies_per_op,p50_ms,p99_ms,tput");
    } else {
        println!("\n── cross-wave reply windows (batched writes, 8 clients x pipeline 8) ──");
        println!(
            "{:>12} {:>14} {:>10} {:>10} {:>12}",
            "window", "replies/op", "p50(ms)", "p99(ms)", "tput(req/s)"
        );
    }
    for (label, window_us) in [
        ("per-wave", 0u64),
        ("500us", 500),
        ("2ms", 2_000),
        ("8ms", 8_000),
    ] {
        let mut batch = BatchConfig::new(16, SimDuration::from_micros(200));
        batch.replies = ReplyCoalesce::Window(SimDuration::from_micros(window_us));
        let r = wan_experiment(PigConfig::wan(groups.clone()).with_batch(batch), n)
            .clients(8)
            .client_pipeline(8)
            .workload(Workload::write_only(8))
            .capture_trace()
            .run_sim(SEED);
        assert!(r.violations.is_empty(), "{label}: {:?}", r.violations);
        let replies = r.leader_replies_per_op.expect("trace captured");
        if csv_mode() {
            println!(
                "reply_window,{window_us},{replies:.3},{:.3},{:.3},{:.0}",
                r.p50_latency_ms, r.p99_latency_ms, r.throughput
            );
        } else {
            println!(
                "{label:>12} {replies:>14.3} {:>10.2} {:>10.2} {:>12.0}",
                r.p50_latency_ms, r.p99_latency_ms, r.throughput
            );
        }
    }
}
