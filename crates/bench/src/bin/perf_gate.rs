//! CI perf-regression gate.
//!
//! Usage: `perf_gate <current.json>... <baseline.json>`
//!
//! The last path is the baseline; every preceding path is a current-run
//! metrics file and the set is merged (duplicate keys are an error —
//! two producers claiming the same metric would make the gate
//! ambiguous). All files are flat JSON objects as produced by
//! `batch_sweep --json`, `alloc_gate --json`, or `net_throughput
//! --json`. The gate compares every key present in the baseline:
//!
//! - `*_per_op` / `*_ms` (lower is better): fail when the current value
//!   exceeds the baseline by more than 10%.
//! - `*_reduction` / `*_tput` (higher is better): fail when the current
//!   value falls more than 10% below the baseline.
//!
//! Keys present only in the current run are informational (new metrics
//! do not need a baseline to land); keys missing from the current run
//! fail the gate — a silently dropped metric would otherwise disable
//! its regression check forever.

use pigpaxos_bench::json;
use std::collections::HashMap;
use std::process::ExitCode;

const TOLERANCE: f64 = 0.10;

enum Direction {
    LowerIsBetter,
    HigherIsBetter,
    Ignore,
}

fn direction(key: &str) -> Direction {
    if key.ends_with("_per_op") || key.ends_with("_ms") {
        Direction::LowerIsBetter
    } else if key.ends_with("_reduction") || key.ends_with("_tput") {
        Direction::HigherIsBetter
    } else {
        Direction::Ignore
    }
}

fn load(path: &str) -> Vec<(String, f64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("perf_gate: cannot read {path}: {e}"));
    json::parse(&text).unwrap_or_else(|| panic!("perf_gate: {path} is not a flat numeric JSON"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: perf_gate <current.json>... <baseline.json>");
        return ExitCode::from(2);
    }
    let mut current: HashMap<String, f64> = HashMap::new();
    for path in &args[1..args.len() - 1] {
        for (key, value) in load(path) {
            if current.insert(key.clone(), value).is_some() {
                eprintln!("perf_gate: metric `{key}` appears in more than one current file");
                return ExitCode::from(2);
            }
        }
    }
    let baseline = load(&args[args.len() - 1]);

    let mut failures = 0usize;
    println!(
        "{:<34} {:>12} {:>12} {:>8}  verdict",
        "metric", "baseline", "current", "delta"
    );
    for (key, base) in &baseline {
        let Some(&cur) = current.get(key) else {
            println!(
                "{key:<34} {base:>12.3} {:>12} {:>8}  FAIL (metric missing)",
                "-", "-"
            );
            failures += 1;
            continue;
        };
        let delta_pct = if *base != 0.0 {
            (cur - base) / base * 100.0
        } else {
            0.0
        };
        let ok = match direction(key) {
            Direction::LowerIsBetter => cur <= base * (1.0 + TOLERANCE),
            Direction::HigherIsBetter => cur >= base * (1.0 - TOLERANCE),
            Direction::Ignore => true,
        };
        let verdict = match (ok, matches!(direction(key), Direction::Ignore)) {
            (_, true) => "info",
            (true, _) => "ok",
            (false, _) => {
                failures += 1;
                "FAIL"
            }
        };
        println!("{key:<34} {base:>12.3} {cur:>12.3} {delta_pct:>+7.1}%  {verdict}");
    }

    if failures > 0 {
        eprintln!(
            "\nperf_gate: {failures} metric(s) regressed beyond {:.0}%",
            TOLERANCE * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "\nperf_gate: all metrics within {:.0}% of baseline",
            TOLERANCE * 100.0
        );
        ExitCode::SUCCESS
    }
}
