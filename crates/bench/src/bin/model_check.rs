//! §6.1 validation: the analytical message-load model (Eqs. 1–3) vs.
//! message counts measured by the simulator.
//!
//! For each relay-group count, runs a moderately loaded 25-node PigPaxos
//! cluster and compares the leader's and followers' measured messages
//! per committed operation against `Ml = 2r + 2` and
//! `Mf = 2(N−r−1)/(N−1) + 2`, plus the direct-Paxos row.

use analytical::{follower_load, leader_load, paxos_follower_load, paxos_leader_load};
use paxi::harness::{run, RunSpec};
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use pigpaxos_bench::{csv_mode, lan_spec, leader_target};

fn main() {
    let n = 25;
    // Moderate load: batching-free region where per-op accounting is
    // clean (heartbeats add a small constant background).
    let spec = RunSpec {
        n_clients: 10,
        ..lan_spec(n)
    };

    if csv_mode() {
        println!("config,measured_leader,model_leader,measured_follower,model_follower");
    } else {
        println!("Model check: measured vs analytical msgs/op (25 nodes)");
        println!(
            "{:>10} {:>14} {:>10} {:>16} {:>10}",
            "config", "leader(meas)", "Ml(model)", "follower(meas)", "Mf(model)"
        );
    }

    for r in 2..=6 {
        let res = run(&spec, pig_builder(PigConfig::lan(r)), leader_target());
        report(
            &format!("pig r={r}"),
            res.leader_msgs_per_op,
            leader_load(r),
            res.follower_msgs_per_op,
            follower_load(n, r),
        );
    }
    let res = run(&spec, paxos_builder(PaxosConfig::lan()), leader_target());
    report(
        "paxos",
        res.leader_msgs_per_op,
        paxos_leader_load(n),
        res.follower_msgs_per_op,
        paxos_follower_load(),
    );
}

fn report(config: &str, ml_meas: f64, ml_model: f64, mf_meas: f64, mf_model: f64) {
    if csv_mode() {
        println!("{config},{ml_meas:.2},{ml_model:.2},{mf_meas:.2},{mf_model:.2}");
    } else {
        println!("{config:>10} {ml_meas:>14.2} {ml_model:>10.2} {mf_meas:>16.2} {mf_model:>10.2}");
    }
}
