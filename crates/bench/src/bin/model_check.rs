//! §6.1 validation: the analytical message-load model (Eqs. 1–3) vs.
//! message counts measured by the simulator.
//!
//! For each relay-group count, runs a moderately loaded 25-node PigPaxos
//! cluster and compares the leader's and followers' measured messages
//! per committed operation against `Ml = 2r + 2` and
//! `Mf = 2(N−r−1)/(N−1) + 2`, plus the direct-Paxos row.

use analytical::{follower_load, leader_load, paxos_follower_load, paxos_leader_load};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, SEED};

fn main() {
    let n = 25;

    if csv_mode() {
        println!("config,measured_leader,model_leader,measured_follower,model_follower");
    } else {
        println!("Model check: measured vs analytical msgs/op (25 nodes)");
        println!(
            "{:>10} {:>14} {:>10} {:>16} {:>10}",
            "config", "leader(meas)", "Ml(model)", "follower(meas)", "Mf(model)"
        );
    }

    // Moderate load (10 clients): batching-free region where per-op
    // accounting is clean (heartbeats add a small constant background).
    for r in 2..=6 {
        let res = lan_experiment(PigConfig::lan(r), n)
            .clients(10)
            .run_sim(SEED);
        report(
            &format!("pig r={r}"),
            res.leader_msgs_per_op,
            leader_load(r),
            res.follower_msgs_per_op,
            follower_load(n, r),
        );
    }
    let res = lan_experiment(PaxosConfig::lan(), n)
        .clients(10)
        .run_sim(SEED);
    report(
        "paxos",
        res.leader_msgs_per_op,
        paxos_leader_load(n),
        res.follower_msgs_per_op,
        paxos_follower_load(),
    );
}

fn report(config: &str, ml_meas: f64, ml_model: f64, mf_meas: f64, mf_model: f64) {
    if csv_mode() {
        println!("{config},{ml_meas:.2},{ml_model:.2},{mf_meas:.2},{mf_model:.2}");
    } else {
        println!("{config:>10} {ml_meas:>14.2} {ml_model:>10.2} {mf_meas:>16.2} {mf_model:>10.2}");
    }
}
