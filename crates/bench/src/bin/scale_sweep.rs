//! Scaling sweep (the paper's future-work direction, §7): max
//! throughput of Paxos vs. PigPaxos as the cluster grows from 5 to 101
//! nodes within a single conflict domain.
//!
//! Expected: Paxos decays roughly as `1/N` (leader handles `2N` msgs
//! per op); PigPaxos stays nearly flat because the leader talks to a
//! constant number of relays — until follower-side group work slowly
//! grows with group size.

use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, MAX_TPUT_CLIENTS, SEED};

fn main() {
    if csv_mode() {
        println!("nodes,paxos,pigpaxos_r2,pigpaxos_r3");
    } else {
        println!("Scaling sweep: max throughput vs cluster size");
        println!(
            "{:>7} {:>14} {:>16} {:>16}",
            "nodes", "Paxos(req/s)", "PigPaxos r=2", "PigPaxos r=3"
        );
    }
    for &n in &[5usize, 9, 15, 25, 49, 75, 101] {
        let paxos = lan_experiment(PaxosConfig::lan(), n).max_throughput(SEED, MAX_TPUT_CLIENTS);
        let pig2 = lan_experiment(PigConfig::lan(2), n).max_throughput(SEED, MAX_TPUT_CLIENTS);
        let pig3 = lan_experiment(PigConfig::lan(3), n).max_throughput(SEED, MAX_TPUT_CLIENTS);
        if csv_mode() {
            println!("{n},{paxos:.0},{pig2:.0},{pig3:.0}");
        } else {
            println!("{n:>7} {paxos:>14.0} {pig2:>16.0} {pig3:>16.0}");
        }
    }
}
