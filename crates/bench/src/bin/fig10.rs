//! Figure 10: latency vs. throughput on a 5-node cluster — EPaxos,
//! Paxos, and PigPaxos with 2 relay groups.
//!
//! Paper result: PigPaxos wins even at 5 nodes (it talks to 2 relays —
//! exactly a majority's worth of followers — while Paxos still sends 4
//! messages per round); EPaxos again suffers from conflicts.

use epaxos::{epaxos_builder, EpaxosConfig};
use paxi::harness::load_sweep;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use pigpaxos_bench::{
    lan_spec, leader_target, print_csv_header, print_curve, random_target, CURVE_CLIENTS,
};

fn main() {
    let n = 5;
    let spec = lan_spec(n);
    print_csv_header();

    let epaxos_pts = load_sweep(
        &spec,
        CURVE_CLIENTS,
        epaxos_builder(EpaxosConfig::default()),
        random_target(n),
    );
    print_curve("EPaxos 5 nodes", &epaxos_pts);

    let paxos_pts = load_sweep(
        &spec,
        CURVE_CLIENTS,
        paxos_builder(PaxosConfig::lan()),
        leader_target(),
    );
    print_curve("Paxos 5 nodes", &paxos_pts);

    let pig_pts = load_sweep(
        &spec,
        CURVE_CLIENTS,
        pig_builder(PigConfig::lan(2)),
        leader_target(),
    );
    print_curve("PigPaxos 5 nodes (2 groups)", &pig_pts);
}
