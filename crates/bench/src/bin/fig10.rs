//! Figure 10: latency vs. throughput on a 5-node cluster — EPaxos,
//! Paxos, and PigPaxos with 2 relay groups.
//!
//! Paper result: PigPaxos wins even at 5 nodes (it talks to 2 relays —
//! exactly a majority's worth of followers — while Paxos still sends 4
//! messages per round); EPaxos again suffers from conflicts.

use epaxos::EpaxosConfig;
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use pigpaxos_bench::{lan_experiment, print_csv_header, print_curve, CURVE_CLIENTS, SEED};

fn main() {
    let n = 5;
    print_csv_header();

    let epaxos_pts = lan_experiment(EpaxosConfig::default(), n).load_sweep(SEED, CURVE_CLIENTS);
    print_curve("EPaxos 5 nodes", &epaxos_pts);

    let paxos_pts = lan_experiment(PaxosConfig::lan(), n).load_sweep(SEED, CURVE_CLIENTS);
    print_curve("Paxos 5 nodes", &paxos_pts);

    let pig_pts = lan_experiment(PigConfig::lan(2), n).load_sweep(SEED, CURVE_CLIENTS);
    print_curve("PigPaxos 5 nodes (2 groups)", &pig_pts);
}
