//! Extension experiment (§4.3): Paxos Quorum Reads over relay trees.
//!
//! Compares a 25-node PigPaxos cluster serving reads through the leader
//! (the base protocol — reads serialized in the log) against the same
//! cluster with follower proxies answering reads via quorum probes.
//! The read-heavier the workload, the more PQR shifts throughput away
//! from the leader.

use paxi::harness::{max_throughput, RunSpec};
use paxi::{TargetPolicy, Workload};
use pigpaxos::{pig_builder, PigConfig};
use pigpaxos_bench::{csv_mode, lan_spec, leader_target, MAX_TPUT_CLIENTS};
use simnet::NodeId;

fn main() {
    let n = 25;
    if csv_mode() {
        println!("read_ratio,leader_reads,pqr_reads");
    } else {
        println!("PQR extension: max throughput (25 nodes, 3 relay groups)");
        println!(
            "{:>11} {:>16} {:>14}",
            "read ratio", "leader reads", "PQR reads"
        );
    }
    for read_pct in [50u32, 75, 90, 99] {
        let spec = RunSpec {
            workload: Workload {
                read_ratio: read_pct as f64 / 100.0,
                ..Workload::paper_default()
            },
            ..lan_spec(n)
        };
        let base = max_throughput(
            &spec,
            MAX_TPUT_CLIENTS,
            pig_builder(PigConfig::lan(3)),
            leader_target(),
        );
        let mut cfg = PigConfig::lan(3);
        cfg.pqr_reads = true;
        let pqr = max_throughput(
            &spec,
            MAX_TPUT_CLIENTS,
            pig_builder(cfg),
            TargetPolicy::Random((0..n as u32).map(NodeId).collect()),
        );
        if csv_mode() {
            println!("{read_pct},{base:.0},{pqr:.0}");
        } else {
            println!("{read_pct:>10}% {base:>16.0} {pqr:>14.0}");
        }
    }
}
