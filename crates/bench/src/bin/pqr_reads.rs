//! Extension experiment (§4.3): Paxos Quorum Reads over relay trees.
//!
//! Section 1 compares a 25-node PigPaxos cluster serving reads through
//! the leader (the base protocol — reads serialized in the log) against
//! the same cluster with follower proxies answering reads via quorum
//! probes. The read-heavier the workload, the more PQR shifts
//! throughput away from the leader.
//!
//! Section 2 measures the ROADMAP open item "reply-path batching
//! interaction with PQR reads": quorum reads bypass the leader's
//! batcher entirely (probes fan out through the relay tree on arrival),
//! so command batching should amortize only the *write* traffic while
//! per-operation probe counts stay constant. The section counts
//! `qr_read`/`qr_vote` wire messages per completed operation with
//! batching off and on to check exactly that.
//!
//! Section 3 measures the fix for that open item: **probe batching**
//! (`PigConfig::with_probe_batch`). Pending read keys coalesce into
//! one `QrReadBatch` per relay wave, so the per-read probe
//! fan-out/fan-in amortizes the same way `P2aBatch` amortizes write
//! rounds. The section sweeps the same 9-node / 2-group / 90%-read /
//! 40-client scenario with probe batching off and on (probe msgs/op
//! must drop ≥ 3×), and checks the low-load guard: a lone client's
//! read latency must not regress (adaptive sizing flushes isolated
//! probes immediately).

use paxi::{BatchConfig, Workload};
use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, MAX_TPUT_CLIENTS, SEED};
use simnet::SimDuration;

fn read_heavy(read_pct: u32) -> Workload {
    Workload {
        read_ratio: read_pct as f64 / 100.0,
        ..Workload::paper_default()
    }
}

fn main() {
    let n = 25;
    if csv_mode() {
        println!("read_ratio,leader_reads,pqr_reads");
    } else {
        println!("PQR extension: max throughput (25 nodes, 3 relay groups)");
        println!(
            "{:>11} {:>16} {:>14}",
            "read ratio", "leader reads", "PQR reads"
        );
    }
    for read_pct in [50u32, 75, 90, 99] {
        let base = lan_experiment(PigConfig::lan(3), n)
            .workload(read_heavy(read_pct))
            .max_throughput(SEED, MAX_TPUT_CLIENTS);
        // `with_pqr` flips the default client target to a random spread
        // over all replicas — no per-protocol wiring at the call site.
        let pqr = lan_experiment(PigConfig::lan(3).with_pqr(), n)
            .workload(read_heavy(read_pct))
            .max_throughput(SEED, MAX_TPUT_CLIENTS);
        if csv_mode() {
            println!("{read_pct},{base:.0},{pqr:.0}");
        } else {
            println!("{read_pct:>10}% {base:>16.0} {pqr:>14.0}");
        }
    }

    // ── PQR reads × batching (ROADMAP §4.3 open item) ─────────────────
    // 9 nodes, 2 relay groups, 90% reads, 40 clients: count the probe
    // traffic itself. Batching may not change reads-per-op probe costs
    // (reads bypass the batcher); it should amortize the write rounds.
    if csv_mode() {
        println!("pqr_batching,batch,qr_read_per_op,qr_vote_per_op,leader_proto_sent_per_op,tput");
    } else {
        println!("\n── PQR reads × batching (9 nodes, 2 groups, 90% reads) ──");
        println!(
            "{:>14} {:>14} {:>14} {:>22} {:>12}",
            "batch", "qr_read/op", "qr_vote/op", "leader proto sent/op", "tput(req/s)"
        );
    }
    let mut probes = Vec::new();
    for (name, batch) in [
        ("off", BatchConfig::disabled()),
        (
            "adaptive32",
            BatchConfig::adaptive(32, SimDuration::from_micros(200))
                .with_reply_coalescing(SimDuration::ZERO),
        ),
    ] {
        let r = lan_experiment(PigConfig::lan(2).with_pqr().with_batch(batch), 9)
            .clients(40)
            .workload(read_heavy(90))
            .capture_trace()
            .run_sim(SEED);
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        let qr_read = r.label_per_op("qr_read").expect("trace captured");
        let qr_vote = r.label_per_op("qr_vote").expect("trace captured");
        let proto = r.leader_proto_sent_per_op.expect("trace captured");
        if csv_mode() {
            println!(
                "pqr_batching,{name},{qr_read:.3},{qr_vote:.3},{proto:.3},{:.0}",
                r.throughput
            );
        } else {
            println!(
                "{name:>14} {qr_read:>14.3} {qr_vote:>14.3} {proto:>22.3} {:>12.0}",
                r.throughput
            );
        }
        probes.push((qr_read, qr_vote, proto));
    }
    if !csv_mode() {
        let (read_off, vote_off, proto_off) = probes[0];
        let (read_on, vote_on, proto_on) = probes[1];
        println!(
            "\n    probe msgs/op {:.2} -> {:.2} (reads bypass the batcher); \
             leader proto sent/op {:.2} -> {:.2} (batching amortizes the write rounds)",
            read_off + vote_off,
            read_on + vote_on,
            proto_off,
            proto_on
        );
    }

    // ── 3. Probe batching over the relay tree ─────────────────────────
    // Same scenario, probe batching off vs on: pending read keys
    // coalesce into one QrReadBatch per relay wave, so probe msgs/op
    // must drop sharply while throughput holds.
    use paxos::QR_PROBE_LABELS as PROBE_LABELS;
    let probe_cfg = || BatchConfig::adaptive(16, SimDuration::from_micros(2500));
    if csv_mode() {
        println!("pqr_probe_batch,mode,probe_msgs_per_op,wave_msgs_per_op,tput");
    } else {
        println!("\n── PQR probe batching (9 nodes, 2 groups, 90% reads, 40 clients) ──");
        println!(
            "{:>14} {:>18} {:>16} {:>12}",
            "probe batch", "probe msgs/op", "wave msgs/op", "tput(req/s)"
        );
    }
    let mut per_op = Vec::new();
    for (name, cfg) in [
        ("off", PigConfig::lan(2).with_pqr()),
        (
            "adaptive16",
            PigConfig::lan(2).with_pqr().with_probe_batch(probe_cfg()),
        ),
    ] {
        let r = lan_experiment(cfg, 9)
            .clients(40)
            .workload(read_heavy(90))
            .capture_trace()
            .run_sim(SEED);
        assert!(r.violations.is_empty(), "{name}: {:?}", r.violations);
        let probe_msgs = r.labels_per_op(PROBE_LABELS).expect("trace captured");
        let wave_msgs = r
            .labels_per_op(&["qr_read_batch", "qr_vote_batch"])
            .expect("trace captured");
        if csv_mode() {
            println!(
                "pqr_probe_batch,{name},{probe_msgs:.3},{wave_msgs:.3},{:.0}",
                r.throughput
            );
        } else {
            println!(
                "{name:>14} {probe_msgs:>18.3} {wave_msgs:>16.3} {:>12.0}",
                r.throughput
            );
        }
        per_op.push(probe_msgs);
    }
    let reduction = per_op[0] / per_op[1].max(1e-9);
    if !csv_mode() {
        println!(
            "\n    probe msgs/op {:.2} -> {:.2} ({reduction:.1}x reduction riding the relay waves)",
            per_op[0], per_op[1]
        );
    }

    // Low-load guard: a single closed-loop reader must see no added
    // latency from probe batching (adaptive sizing flushes an isolated
    // probe immediately).
    let low = |cfg: PigConfig| {
        lan_experiment(cfg, 9)
            .clients(1)
            .workload(read_heavy(100))
            .run_sim(SEED)
    };
    let low_off = low(PigConfig::lan(2).with_pqr());
    let low_on = low(PigConfig::lan(2).with_pqr().with_probe_batch(probe_cfg()));
    if csv_mode() {
        println!(
            "pqr_probe_low_load,p50_ms,{:.4},{:.4},",
            low_off.p50_latency_ms, low_on.p50_latency_ms
        );
    } else {
        println!(
            "    low-load read p50: {:.3}ms off vs {:.3}ms on (must not regress)",
            low_off.p50_latency_ms, low_on.p50_latency_ms
        );
    }
    assert!(
        low_on.p50_latency_ms <= low_off.p50_latency_ms * 1.1,
        "probe batching must not add read latency at low load: {:.3}ms vs {:.3}ms",
        low_on.p50_latency_ms,
        low_off.p50_latency_ms
    );
    assert!(
        reduction >= 3.0,
        "probe batching must cut probe msgs/op by >=3x (got {reduction:.2}x)"
    );
}
