//! Figure 7: maximum throughput vs. number of relay groups on a 25-node
//! PigPaxos cluster with a single relay layer.
//!
//! Paper result: best throughput at r = 2 (~10k req/s), decreasing
//! monotonically toward r = 6 — the √N heuristic (r = 5) performs badly
//! because leader load is `2r + 2`.

use pigpaxos::PigConfig;
use pigpaxos_bench::{lan_experiment, print_scalar, MAX_TPUT_CLIENTS, SEED};

fn main() {
    if pigpaxos_bench::csv_mode() {
        println!("relay_groups,max_throughput");
    } else {
        println!("Figure 7: 25-node PigPaxos, max throughput vs relay groups");
    }
    for r in 2..=6 {
        let t = lan_experiment(PigConfig::lan(r), 25).max_throughput(SEED, MAX_TPUT_CLIENTS);
        if pigpaxos_bench::csv_mode() {
            println!("{r},{t:.0}");
        } else {
            print_scalar(&format!("PigPaxos r={r} max throughput"), t, "req/s");
        }
    }
}
