//! Ablation: partial response collection (§4.2) vs. wait-for-all.
//!
//! Setup where the optimization matters: 25 nodes in 3 relay groups
//! (8 members each) with one crashed member in *two* of the groups.
//! The one fully-healthy group plus the leader's self-vote yield only
//! 9 < 13 votes, so every commit needs votes from a faulty group.
//! Without thresholds those relays only answer at the 50 ms relay
//! timeout — commit latency collapses to the timeout. With per-group
//! thresholds `gᵢ = 5` (Σgᵢ = 15 ≥ ⌊25/2⌋+1 = 13), the faulty groups'
//! relays answer as soon as they hold 5 votes and latency stays at the
//! fault-free level.
//!
//! At full saturation the threshold costs extra leader messages (two
//! flushes per group per round), so this also reports throughput to
//! show the trade-off honestly.

use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, SEED};
use simnet::{Control, NodeId, SimTime};

fn run_one(threshold: Option<usize>) -> paxi::RunResult {
    let mut cfg = PigConfig::lan(3);
    cfg.partial_threshold = threshold;
    lan_experiment(cfg, 25)
        .clients(10) // moderate load: latency, not saturation, matters
        .run_sim_with(SEED, |sim, _| {
            // Groups of 8: g0 = nodes 1-8, g1 = 9-16, g2 = 17-24; one
            // crash in g0 and one in g1.
            sim.schedule_control(SimTime::from_millis(50), Control::Crash(NodeId(5)));
            sim.schedule_control(SimTime::from_millis(50), Control::Crash(NodeId(12)));
        })
}

fn main() {
    let waitall = run_one(None);
    let partial = run_one(Some(5));
    if csv_mode() {
        println!("config,throughput,mean_ms,p99_ms");
        println!(
            "wait_all,{:.0},{:.3},{:.3}",
            waitall.throughput, waitall.mean_latency_ms, waitall.p99_latency_ms
        );
        println!(
            "threshold5,{:.0},{:.3},{:.3}",
            partial.throughput, partial.mean_latency_ms, partial.p99_latency_ms
        );
    } else {
        println!("Ablation: partial response collection (§4.2)");
        println!("(25 nodes, 3 relay groups, one crashed member in two groups, 10 clients)\n");
        println!(
            "{:>12} {:>14} {:>10} {:>10}",
            "mode", "tput(req/s)", "mean(ms)", "p99(ms)"
        );
        println!(
            "{:>12} {:>14.0} {:>10.2} {:>10.2}",
            "wait-all", waitall.throughput, waitall.mean_latency_ms, waitall.p99_latency_ms
        );
        println!(
            "{:>12} {:>14.0} {:>10.2} {:>10.2}",
            "threshold=5", partial.throughput, partial.mean_latency_ms, partial.p99_latency_ms
        );
        println!(
            "\nthresholds cut mean latency {:.1}x when no relay group can complete",
            waitall.mean_latency_ms / partial.mean_latency_ms
        );
    }
}
