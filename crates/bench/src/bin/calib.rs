//! Calibration summary: the headline numbers every other figure builds
//! on, side by side with the paper's reported values.
//!
//! Run this first after touching `simnet::CpuCostModel` or any protocol
//! cost constant.

use epaxos::EpaxosConfig;
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, MAX_TPUT_CLIENTS, SEED};

fn main() {
    let paxos25 = lan_experiment(PaxosConfig::lan(), 25).max_throughput(SEED, MAX_TPUT_CLIENTS);
    let pig25 = lan_experiment(PigConfig::lan(3), 25).max_throughput(SEED, MAX_TPUT_CLIENTS);
    let epaxos25 =
        lan_experiment(EpaxosConfig::default(), 25).max_throughput(SEED, MAX_TPUT_CLIENTS);
    let paxos5 = lan_experiment(PaxosConfig::lan(), 5).max_throughput(SEED, MAX_TPUT_CLIENTS);
    let pig5 = lan_experiment(PigConfig::lan(2), 5).max_throughput(SEED, MAX_TPUT_CLIENTS);

    if csv_mode() {
        println!("config,measured,paper");
        println!("paxos_25n,{paxos25:.0},2000");
        println!("pigpaxos_25n_r3,{pig25:.0},7000");
        println!("epaxos_25n,{epaxos25:.0},1000");
        println!("paxos_5n,{paxos5:.0},6500");
        println!("pigpaxos_5n_r2,{pig5:.0},9500");
    } else {
        println!("Calibration summary (max throughput, req/s)");
        println!("{:<22} {:>10} {:>12}", "config", "measured", "paper(≈)");
        println!("{:<22} {paxos25:>10.0} {:>12}", "Paxos 25n", 2000);
        println!("{:<22} {pig25:>10.0} {:>12}", "PigPaxos 25n r=3", 7000);
        println!("{:<22} {epaxos25:>10.0} {:>12}", "EPaxos 25n", 1000);
        println!("{:<22} {paxos5:>10.0} {:>12}", "Paxos 5n", 6500);
        println!("{:<22} {pig5:>10.0} {:>12}", "PigPaxos 5n r=2", 9500);
        println!(
            "\nPigPaxos/Paxos at 25 nodes: {:.1}x (paper: >3x)",
            pig25 / paxos25
        );
    }
}
