//! Conflict sensitivity: the paper attributes EPaxos's poor showing to
//! the "high conflict rate (with only a 1000 items picked at random)"
//! (§5.4). This sweep varies the key-space size and the access skew to
//! show how interference drives EPaxos while leaving PigPaxos (which
//! orders everything through one leader anyway) untouched.

use epaxos::EpaxosConfig;
use paxi::{KeyDistribution, Workload};
use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, MAX_TPUT_CLIENTS, SEED};

fn run_pair(workload: &Workload) -> (f64, f64) {
    let ep = lan_experiment(EpaxosConfig::default(), 25)
        .workload(workload.clone())
        .max_throughput(SEED, MAX_TPUT_CLIENTS);
    let pig = lan_experiment(PigConfig::lan(3), 25)
        .workload(workload.clone())
        .max_throughput(SEED, MAX_TPUT_CLIENTS);
    (ep, pig)
}

fn main() {
    if csv_mode() {
        println!("workload,epaxos,pigpaxos");
    } else {
        println!("Conflict sensitivity (25 nodes, max throughput req/s)");
        println!("{:<28} {:>10} {:>10}", "workload", "EPaxos", "PigPaxos");
    }

    for &keys in &[100u64, 1000, 100_000] {
        let workload = Workload {
            num_keys: keys,
            ..Workload::paper_default()
        };
        let (ep, pig) = run_pair(&workload);
        let label = format!("uniform, {keys} keys");
        if csv_mode() {
            println!("{label},{ep:.0},{pig:.0}");
        } else {
            println!("{label:<28} {ep:>10.0} {pig:>10.0}");
        }
    }

    // Skewed access concentrates interference on hot keys.
    let workload = Workload {
        num_keys: 1000,
        distribution: KeyDistribution::Zipfian(0.99),
        ..Workload::paper_default()
    };
    let (ep, pig) = run_pair(&workload);
    let label = "zipfian(0.99), 1000 keys";
    if csv_mode() {
        println!("{label},{ep:.0},{pig:.0}");
    } else {
        println!("{label:<28} {ep:>10.0} {pig:>10.0}");
    }
}
