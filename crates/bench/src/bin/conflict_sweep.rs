//! Conflict sensitivity: the paper attributes EPaxos's poor showing to
//! the "high conflict rate (with only a 1000 items picked at random)"
//! (§5.4). This sweep varies the key-space size and the access skew to
//! show how interference drives EPaxos while leaving PigPaxos (which
//! orders everything through one leader anyway) untouched.

use epaxos::{epaxos_builder, EpaxosConfig};
use paxi::harness::{max_throughput, RunSpec};
use paxi::{KeyDistribution, Workload};
use pigpaxos::{pig_builder, PigConfig};
use pigpaxos_bench::{csv_mode, lan_spec, leader_target, random_target, MAX_TPUT_CLIENTS};

fn run_pair(spec: &RunSpec) -> (f64, f64) {
    let ep = max_throughput(
        spec,
        MAX_TPUT_CLIENTS,
        epaxos_builder(EpaxosConfig::default()),
        random_target(spec.n_replicas),
    );
    let pig = max_throughput(
        spec,
        MAX_TPUT_CLIENTS,
        pig_builder(PigConfig::lan(3)),
        leader_target(),
    );
    (ep, pig)
}

fn main() {
    let base = lan_spec(25);
    if csv_mode() {
        println!("workload,epaxos,pigpaxos");
    } else {
        println!("Conflict sensitivity (25 nodes, max throughput req/s)");
        println!("{:<28} {:>10} {:>10}", "workload", "EPaxos", "PigPaxos");
    }

    for &keys in &[100u64, 1000, 100_000] {
        let spec = RunSpec {
            workload: Workload {
                num_keys: keys,
                ..Workload::paper_default()
            },
            ..base.clone()
        };
        let (ep, pig) = run_pair(&spec);
        let label = format!("uniform, {keys} keys");
        if csv_mode() {
            println!("{label},{ep:.0},{pig:.0}");
        } else {
            println!("{label:<28} {ep:>10.0} {pig:>10.0}");
        }
    }

    // Skewed access concentrates interference on hot keys.
    let spec = RunSpec {
        workload: Workload {
            num_keys: 1000,
            distribution: KeyDistribution::Zipfian(0.99),
            ..Workload::paper_default()
        },
        ..base
    };
    let (ep, pig) = run_pair(&spec);
    let label = "zipfian(0.99), 1000 keys";
    if csv_mode() {
        println!("{label},{ep:.0},{pig:.0}");
    } else {
        println!("{label:<28} {ep:>10.0} {pig:>10.0}");
    }
}
