//! Figure 9: latency vs. throughput on a 15-node WAN cluster spread
//! over Virginia, California, and Oregon; each region is one PigPaxos
//! relay group; the leader (and clients) sit in Virginia.
//!
//! Paper result: latency is dominated by cross-region RTT so Paxos and
//! PigPaxos are indistinguishable at low load; PigPaxos sustains low
//! latency to much higher throughput.

use paxi::harness::load_sweep;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, GroupSpec, PigConfig};
use pigpaxos_bench::{leader_target, print_csv_header, print_curve, wan_spec, WAN_CURVE_CLIENTS};
use simnet::NodeId;

fn main() {
    let n = 15;
    let spec = wan_spec(n);
    print_csv_header();

    let paxos_pts = load_sweep(
        &spec,
        WAN_CURVE_CLIENTS,
        paxos_builder(PaxosConfig::wan()),
        leader_target(),
    );
    print_curve("Paxos (WAN)", &paxos_pts);

    // One relay group per region. The leader (node 0) lives in Virginia,
    // so its group is the remaining Virginia nodes.
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    for region in 0..spec.topology.num_regions() {
        let members: Vec<NodeId> = spec
            .topology
            .nodes_in_region(region)
            .into_iter()
            .filter(|&node| node != NodeId(0))
            .collect();
        if !members.is_empty() {
            groups.push(members);
        }
    }
    let pig_pts = load_sweep(
        &spec,
        WAN_CURVE_CLIENTS,
        pig_builder(PigConfig::wan(GroupSpec::Explicit(groups))),
        leader_target(),
    );
    print_curve("PigPaxos (region groups)", &pig_pts);
}
