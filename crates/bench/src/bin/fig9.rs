//! Figure 9: latency vs. throughput on a 15-node WAN cluster spread
//! over Virginia, California, and Oregon; each region is one PigPaxos
//! relay group; the leader (and clients) sit in Virginia.
//!
//! Paper result: latency is dominated by cross-region RTT so Paxos and
//! PigPaxos are indistinguishable at low load; PigPaxos sustains low
//! latency to much higher throughput.

use paxos::PaxosConfig;
use pigpaxos::{GroupSpec, PigConfig};
use pigpaxos_bench::{print_csv_header, print_curve, wan_experiment, SEED, WAN_CURVE_CLIENTS};
use simnet::NodeId;

fn main() {
    let n = 15;
    print_csv_header();

    let paxos = wan_experiment(PaxosConfig::wan(), n);
    print_curve("Paxos (WAN)", &paxos.load_sweep(SEED, WAN_CURVE_CLIENTS));

    // One relay group per region (the leader, node 0, lives in Virginia,
    // so its group is the remaining Virginia nodes).
    let groups = GroupSpec::per_region(paxos.topology(), NodeId(0));
    let pig = wan_experiment(PigConfig::wan(groups), n);
    print_curve(
        "PigPaxos (region groups)",
        &pig.load_sweep(SEED, WAN_CURVE_CLIENTS),
    );
}
