//! Figure 11: latency vs. throughput on a 9-node cluster — Paxos vs.
//! PigPaxos with 2 and 3 relay groups.
//!
//! Paper result: both PigPaxos configurations out-scale Paxos
//! (by ≈57% at 2 groups) and Paxos's low-load latency advantage
//! shrinks compared to the 5-node cluster.

use paxi::harness::load_sweep;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use pigpaxos_bench::{lan_spec, leader_target, print_csv_header, print_curve, CURVE_CLIENTS};

fn main() {
    let spec = lan_spec(9);
    print_csv_header();

    let paxos_pts = load_sweep(
        &spec,
        CURVE_CLIENTS,
        paxos_builder(PaxosConfig::lan()),
        leader_target(),
    );
    print_curve("Paxos 9 nodes", &paxos_pts);

    for groups in [2, 3] {
        let pts = load_sweep(
            &spec,
            CURVE_CLIENTS,
            pig_builder(PigConfig::lan(groups)),
            leader_target(),
        );
        print_curve(&format!("PigPaxos 9 nodes ({groups} groups)"), &pts);
    }
}
