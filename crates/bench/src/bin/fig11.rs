//! Figure 11: latency vs. throughput on a 9-node cluster — Paxos vs.
//! PigPaxos with 2 and 3 relay groups.
//!
//! Paper result: both PigPaxos configurations out-scale Paxos
//! (by ≈57% at 2 groups) and Paxos's low-load latency advantage
//! shrinks compared to the 5-node cluster.

use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use pigpaxos_bench::{lan_experiment, print_csv_header, print_curve, CURVE_CLIENTS, SEED};

fn main() {
    print_csv_header();

    let paxos_pts = lan_experiment(PaxosConfig::lan(), 9).load_sweep(SEED, CURVE_CLIENTS);
    print_curve("Paxos 9 nodes", &paxos_pts);

    for groups in [2, 3] {
        let pts = lan_experiment(PigConfig::lan(groups), 9).load_sweep(SEED, CURVE_CLIENTS);
        print_curve(&format!("PigPaxos 9 nodes ({groups} groups)"), &pts);
    }
}
