//! Ablation: random relay rotation (the paper's design, §3.2/§6.1) vs.
//! fixed relays.
//!
//! With fixed relays the two relay nodes absorb every round's relay
//! burden and become hotspots; rotation amortizes that load over the
//! whole group. Expected: rotation sustains noticeably higher maximum
//! throughput, and the busiest follower handles far more messages per
//! op in the fixed configuration.

use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, MAX_TPUT_CLIENTS, SEED};

fn run_one(n: usize, rotate: bool) -> (f64, f64) {
    let mut cfg = PigConfig::lan(2);
    cfg.rotate_relays = rotate;
    let pts = lan_experiment(cfg, n).load_sweep(SEED, MAX_TPUT_CLIENTS);
    let best = pts
        .iter()
        .max_by(|a, b| a.result.throughput.total_cmp(&b.result.throughput))
        .expect("non-empty sweep");
    let max_follower = best.result.node_msgs[1..n]
        .iter()
        .max()
        .copied()
        .unwrap_or(0) as f64
        / best.result.samples.max(1) as f64;
    (best.result.throughput, max_follower)
}

fn main() {
    let n = 25;
    let (tput_rot, hot_rot) = run_one(n, true);
    let (tput_fix, hot_fix) = run_one(n, false);
    if csv_mode() {
        println!("config,max_throughput,busiest_follower_msgs_per_op");
        println!("rotating,{tput_rot:.0},{hot_rot:.2}");
        println!("fixed,{tput_fix:.0},{hot_fix:.2}");
    } else {
        println!("Ablation: relay rotation (25 nodes, 2 relay groups)");
        println!(
            "{:>10} {:>16} {:>30}",
            "relays", "max tput(req/s)", "busiest follower msgs/op"
        );
        println!("{:>10} {tput_rot:>16.0} {hot_rot:>30.2}", "rotating");
        println!("{:>10} {tput_fix:>16.0} {hot_fix:>30.2}", "fixed");
        println!(
            "\nrotation gains {:.0}% max throughput; fixed relays concentrate {:.1}x the \
             per-follower message load",
            100.0 * (tput_rot / tput_fix - 1.0),
            hot_fix / hot_rot
        );
    }
}
