//! Ablation: single-level vs. two-level relay trees (§6.3).
//!
//! The paper argues multi-level trees are unwarranted because the leader
//! remains the bottleneck (`Ml = 2r + 2` is unchanged by extra layers,
//! while followers were never the constraint). Expected: at N = 25 the
//! 2-level tree buys nothing (or slightly hurts via the extra hop); the
//! possibility it helps is reserved for very large clusters, checked
//! here at N = 101.

use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, lan_experiment, MAX_TPUT_CLIENTS, SEED};

fn main() {
    if csv_mode() {
        println!("nodes,levels,max_throughput");
    } else {
        println!("Ablation: relay tree depth (2 relay groups)");
        println!("{:>7} {:>8} {:>16}", "nodes", "levels", "max tput(req/s)");
    }
    for &n in &[25usize, 101] {
        for levels in [1usize, 2] {
            let mut cfg = PigConfig::lan(2);
            cfg.levels = levels;
            let t = lan_experiment(cfg, n).max_throughput(SEED, MAX_TPUT_CLIENTS);
            if csv_mode() {
                println!("{n},{levels},{t:.0}");
            } else {
                println!("{n:>7} {levels:>8} {t:>16.0}");
            }
        }
    }
}
