//! Allocation gate over the profiled hot paths.
//!
//! Installs the counting global allocator and drives the component
//! harnesses in [`pigpaxos_bench::hotpath`], reporting *allocations per
//! operation* for:
//!
//! - the leader decide/execute pipeline at B=16 on a 5-replica cluster
//!   (the paper's bottleneck path — `leader_batch_allocs_per_op`),
//! - one PigPaxos relay aggregation round (`relay_aggregate_allocs_per_op`),
//! - `Wire` encode/decode of a 16-command `P2aBatch`
//!   (`wire_encode_allocs_per_op`, `wire_decode_allocs_per_op`),
//! - zero-copy decode of the same batch with 4 KiB values
//!   (`wire_decode_large_allocs_per_op`,
//!   `wire_decode_large_kb_per_op`): with `Bytes`-backed frames the
//!   payloads ride out of the decoder as slices, so allocated bytes per
//!   decode stay O(1) in the value size instead of O(batch × value).
//!
//! Two figures are additionally checked in-process: the leader number
//! against the pre-optimization figure recorded below (≥ 25%
//! reduction), and the `P2aBatch` decode against
//! [`MAX_DECODE_ALLOCS_PER_OP`] — the zero-copy pipeline's budget.
//! `--json <path>` writes the metrics for `perf_gate` (vs
//! `BENCH_alloc_baseline.json`); `--quick` shortens the run (counts are
//! per-op, so quick mode barely changes them).

use pigpaxos_bench::alloc::{self, CountingAllocator};
use pigpaxos_bench::hotpath::{self, LeaderPipeline};
use pigpaxos_bench::{json, json_path, quick_mode};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Leader-side allocations per decided command measured on the tree
/// *before* the hot-path work of this change (B=16, n=5, 8192 commands,
/// steady state), with this same binary: the `BTreeMap<slot, Vec>` vote
/// grouping, per-slot `vec![own]`, per-slot `HashSet` vote tables, and
/// per-peer command-vector clones were all still in place. The gate
/// below holds the optimized pipeline to at least a 25% reduction
/// against this figure (measured: 1.04 allocs/op, an ~87% reduction).
const LEGACY_LEADER_ALLOCS_PER_OP: f64 = 7.980;

/// Required drop vs. [`LEGACY_LEADER_ALLOCS_PER_OP`].
const REQUIRED_REDUCTION: f64 = 0.25;

/// Ceiling on allocations per decoded `P2aBatch` frame. Before the
/// `Bytes`-backed decode pipeline this path cost 18 allocs/op (one
/// `Vec` copy per value plus per-command rebuilds); zero-copy slicing
/// leaves only the command vector and its `Arc<[Command]>` conversion.
const MAX_DECODE_ALLOCS_PER_OP: f64 = 4.0;

fn main() {
    let quick = quick_mode();
    let total_cmds: u64 = if quick { 1024 } else { 8192 };
    let batch = 16usize;
    let n = 5usize;

    // Leader pipeline: warm up out of steady-state cold starts, then
    // measure the whole run.
    let mut pipe = LeaderPipeline::new(n, batch);
    pipe.run(8); // warmup: container capacities reach steady state
    let waves = (total_cmds as usize) / batch;
    let (decided, leader_allocs) = pipe.run(waves);
    let leader_per_op = leader_allocs as f64 / decided as f64;

    // Relay aggregation: one P2Span round over a 3-member group.
    let ballot = paxi::Ballot::new(1, simnet::NodeId(0));
    let rounds = 256u64;
    let ((), relay) = alloc::measure(|| {
        for r in 0..rounds {
            let f = hotpath::relay_aggregate_round(ballot, 1 + r * batch as u64, batch, 3);
            std::hint::black_box(&f);
        }
    });
    // Per aggregated command: `rounds` rounds × batch slots each.
    let relay_per_op = relay.allocs as f64 / (rounds * batch as u64) as f64;

    // Wire encode/decode of a B=16 wave message. The frame is frozen
    // into `Bytes` once, outside the loop — exactly what the net
    // substrate's reader does per receive buffer.
    let msg = hotpath::sample_p2a_batch(batch);
    let frame = simnet::Bytes::from(hotpath::encode_message(&msg));
    let iters = 512u64;
    let ((), enc) = alloc::measure(|| {
        for _ in 0..iters {
            std::hint::black_box(hotpath::encode_message(&msg));
        }
    });
    let ((), dec) = alloc::measure(|| {
        for _ in 0..iters {
            std::hint::black_box(hotpath::decode_message(&frame));
        }
    });
    let encode_per_op = enc.allocs as f64 / iters as f64;
    let decode_per_op = dec.allocs as f64 / iters as f64;

    // Same decode with 4 KiB values: allocs/op must not grow with the
    // value size, and allocated KiB/op must stay far below the 64 KiB
    // of payload in the frame — the zero-copy proof.
    let large_value = 4096usize;
    let large = hotpath::sample_p2a_batch_with_values(batch, large_value);
    let large_frame = simnet::Bytes::from(hotpath::encode_message(&large));
    let ((), dec_large) = alloc::measure(|| {
        for _ in 0..iters {
            std::hint::black_box(hotpath::decode_message(&large_frame));
        }
    });
    let decode_large_per_op = dec_large.allocs as f64 / iters as f64;
    let decode_large_kb_per_op = dec_large.bytes as f64 / iters as f64 / 1024.0;

    let reduction = 1.0 - leader_per_op / LEGACY_LEADER_ALLOCS_PER_OP;

    println!("alloc_gate (B={batch}, n={n}, {decided} commands decided)");
    println!("  leader_batch_allocs_per_op   {leader_per_op:>10.3}");
    println!(
        "  legacy (pre-optimization)    {:>10.3}",
        LEGACY_LEADER_ALLOCS_PER_OP
    );
    println!("  reduction vs legacy          {:>9.1}%", reduction * 100.0);
    println!("  relay_aggregate_allocs_per_op{relay_per_op:>10.3}");
    println!("  wire_encode_allocs_per_op    {encode_per_op:>10.3}");
    println!("  wire_decode_allocs_per_op    {decode_per_op:>10.3}");
    println!("  wire_decode_large_allocs_per_op {decode_large_per_op:>7.3}");
    println!("  wire_decode_large_kb_per_op  {decode_large_kb_per_op:>10.3}");

    if let Some(path) = json_path() {
        let rows = vec![
            ("leader_batch_allocs_per_op".to_string(), leader_per_op),
            ("leader_batch_alloc_reduction".to_string(), reduction),
            ("relay_aggregate_allocs_per_op".to_string(), relay_per_op),
            ("wire_encode_allocs_per_op".to_string(), encode_per_op),
            ("wire_decode_allocs_per_op".to_string(), decode_per_op),
            (
                "wire_decode_large_allocs_per_op".to_string(),
                decode_large_per_op,
            ),
            (
                "wire_decode_large_kb_per_op".to_string(),
                decode_large_kb_per_op,
            ),
        ];
        std::fs::write(&path, json::render(&rows)).expect("write json");
        println!("wrote {path}");
    }

    assert!(
        reduction >= REQUIRED_REDUCTION,
        "leader batch path allocs/op {leader_per_op:.3} is only {:.1}% below the \
         pre-optimization {LEGACY_LEADER_ALLOCS_PER_OP:.3} (need ≥{:.0}%)",
        reduction * 100.0,
        REQUIRED_REDUCTION * 100.0,
    );
    for (what, per_op) in [
        ("P2aBatch decode", decode_per_op),
        ("P2aBatch large-value decode", decode_large_per_op),
    ] {
        assert!(
            per_op <= MAX_DECODE_ALLOCS_PER_OP,
            "{what} costs {per_op:.3} allocs/op \
             (zero-copy budget is {MAX_DECODE_ALLOCS_PER_OP})",
        );
    }
    println!(
        "alloc_gate: OK (≥{:.0}% leader reduction held, decode ≤{MAX_DECODE_ALLOCS_PER_OP} allocs/op)",
        REQUIRED_REDUCTION * 100.0
    );
}
