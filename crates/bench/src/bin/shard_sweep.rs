//! Shard-count scaling sweep: aggregate throughput of a sharded
//! deployment as the number of consensus groups grows, at a **fixed
//! per-shard cluster size** (3 replicas per group).
//!
//! Single-group consensus serializes every command through one leader;
//! sharding multiplies that bottleneck by the number of groups, so
//! aggregate throughput should scale close to linearly in the shard
//! count while per-key ordering inside each group is untouched. The
//! closed-loop router population is scaled with the shard count (two
//! routers per shard) so the offered load grows with the capacity under
//! test rather than capping it.
//!
//! Gate (asserted in-binary and re-checked by `perf_gate` against
//! `BENCH_shard_baseline.json` in CI): 8 shards must deliver at least
//! 4x the aggregate throughput of 1 shard. The simulation is
//! deterministic, so an unchanged tree reproduces the baseline
//! bit-for-bit.
//!
//! `--quick` shortens the windows and stops at 8 shards; the full run
//! extends to 16 and 32. `--json <path>` writes `shard{N}_tput` keys
//! plus the `shard_scaling_8_over_1` ratio as a flat JSON object.

use paxi::ShardedExperiment;
use paxos::PaxosConfig;
use pigpaxos_bench::{csv_mode, json, json_path, quick_mode, SEED};
use simnet::SimDuration;

/// Fixed replica count per consensus group across the whole sweep.
const REPLICAS_PER_SHARD: usize = 3;

/// Minimum aggregate speedup required from 1 shard to 8 shards.
const MIN_SCALING_8_OVER_1: f64 = 4.0;

fn run(shards: usize) -> f64 {
    let (warmup, measure) = if quick_mode() {
        (
            SimDuration::from_millis(300),
            SimDuration::from_millis(1500),
        )
    } else {
        (
            SimDuration::from_millis(500),
            SimDuration::from_millis(4000),
        )
    };
    let r = ShardedExperiment::new(PaxosConfig::lan(), shards, REPLICAS_PER_SHARD)
        .routers(2 * shards)
        .warmup(warmup)
        .measure(measure)
        .run_sim(SEED);
    assert!(
        r.violations.is_empty(),
        "{shards}-shard run violated safety: {:?}",
        r.violations
    );
    r.throughput
}

fn main() {
    let counts: &[usize] = if quick_mode() {
        &[1, 2, 4, 8]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    if csv_mode() {
        println!("shards,tput");
    } else {
        println!(
            "Shard scaling sweep: Paxos, {REPLICAS_PER_SHARD} replicas/shard, \
             2 routers/shard"
        );
        println!("{:>7} {:>14} {:>9}", "shards", "tput(req/s)", "speedup");
    }

    let mut metrics: Vec<(String, f64)> = Vec::new();
    let mut base = 0.0f64;
    let mut tput8 = 0.0f64;
    for &s in counts {
        let tput = run(s);
        if s == 1 {
            base = tput;
        }
        if s == 8 {
            tput8 = tput;
        }
        let speedup = if base > 0.0 { tput / base } else { 0.0 };
        if csv_mode() {
            println!("{s},{tput:.0}");
        } else {
            println!("{s:>7} {tput:>14.0} {speedup:>8.2}x");
        }
        metrics.push((format!("shard{s}_tput"), tput));
    }

    let scaling = if base > 0.0 { tput8 / base } else { 0.0 };
    // Ratio key carries no perf_gate suffix on purpose: the gate treats
    // it as informational, while the absolute `_tput` keys regress-check
    // each point. The hard scaling floor lives right here instead.
    metrics.push(("shard_scaling_8_over_1".to_string(), scaling));
    if !csv_mode() {
        println!("\n8-shard scaling vs 1 shard: {scaling:.2}x (floor {MIN_SCALING_8_OVER_1:.0}x)");
    }

    if let Some(path) = json_path() {
        std::fs::write(&path, json::render(&metrics)).expect("write json metrics");
        if !csv_mode() {
            println!("wrote {path}");
        }
    }

    assert!(
        scaling >= MIN_SCALING_8_OVER_1,
        "sharding must scale: 8 shards gave {scaling:.2}x over 1 shard, \
         need >= {MIN_SCALING_8_OVER_1:.0}x"
    );
}
