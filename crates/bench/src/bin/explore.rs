//! Free-form experiment runner: pick a protocol and cluster shape from
//! the command line and get the standard metric row — handy for
//! questions the fixed figures do not answer.
//!
//! ```sh
//! cargo run --release -p pigpaxos-bench --bin explore -- \
//!     --protocol pigpaxos --nodes 25 --groups 3 --clients 40 \
//!     --read-ratio 0.5 --payload 8 --keys 1000 [--wan] [--pqr]
//! ```

use epaxos::EpaxosConfig;
use paxi::{Experiment, ProtocolSpec, RunResult, Workload};
use paxos::PaxosConfig;
use pigpaxos::{GroupSpec, PigConfig};
use simnet::{NodeId, SimDuration};

struct Args {
    protocol: String,
    nodes: usize,
    groups: usize,
    clients: usize,
    read_ratio: f64,
    payload: usize,
    keys: u64,
    wan: bool,
    pqr: bool,
    seed: u64,
}

fn parse() -> Args {
    let mut args = Args {
        protocol: "pigpaxos".into(),
        nodes: 25,
        groups: 3,
        clients: 40,
        read_ratio: 0.5,
        payload: 8,
        keys: 1000,
        wan: false,
        pqr: false,
        seed: paxi::DEFAULT_SEED,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let take = |a: &mut usize| {
            *a += 1;
            argv.get(*a).cloned().unwrap_or_else(|| {
                eprintln!("missing value for {}", argv[*a - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--protocol" => args.protocol = take(&mut i),
            "--nodes" => args.nodes = take(&mut i).parse().expect("--nodes"),
            "--groups" => args.groups = take(&mut i).parse().expect("--groups"),
            "--clients" => args.clients = take(&mut i).parse().expect("--clients"),
            "--read-ratio" => args.read_ratio = take(&mut i).parse().expect("--read-ratio"),
            "--payload" => args.payload = take(&mut i).parse().expect("--payload"),
            "--keys" => args.keys = take(&mut i).parse().expect("--keys"),
            "--seed" => args.seed = take(&mut i).parse().expect("--seed"),
            "--wan" => args.wan = true,
            "--pqr" => args.pqr = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: explore [--protocol paxos|pigpaxos|epaxos] [--nodes N] \
                     [--groups R] [--clients C] [--read-ratio F] [--payload B] \
                     [--keys K] [--seed S] [--wan] [--pqr]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Protocol choice is one orthogonal axis: build the experiment
/// generically and run whichever config the flag picked.
fn run_proto<P: ProtocolSpec>(a: &Args, proto: P) -> RunResult {
    let exp = if a.wan {
        Experiment::wan(proto, a.nodes)
    } else {
        Experiment::lan(proto, a.nodes)
    };
    exp.clients(a.clients)
        .warmup(SimDuration::from_secs(1))
        .measure(SimDuration::from_secs(3))
        .workload(Workload {
            num_keys: a.keys,
            read_ratio: a.read_ratio,
            payload_size: a.payload,
            ..Workload::paper_default()
        })
        .run_sim(a.seed)
}

fn main() {
    let a = parse();
    let result = match a.protocol.as_str() {
        "paxos" => {
            let cfg = if a.wan {
                PaxosConfig::wan()
            } else {
                PaxosConfig::lan()
            };
            run_proto(&a, cfg)
        }
        "pigpaxos" => {
            let mut cfg = if a.wan {
                // One relay group per region, leader excluded from its own.
                let topology = simnet::Topology::wan_virginia_california_oregon(a.nodes);
                PigConfig::wan(GroupSpec::per_region(&topology, NodeId(0)))
            } else {
                PigConfig::lan(a.groups)
            };
            cfg.pqr_reads = a.pqr; // default target follows automatically
            run_proto(&a, cfg)
        }
        "epaxos" => run_proto(&a, EpaxosConfig::default()),
        other => {
            eprintln!("unknown protocol {other}; use paxos | pigpaxos | epaxos");
            std::process::exit(2);
        }
    };

    assert!(
        result.violations.is_empty(),
        "safety violated: {:?}",
        result.violations
    );
    println!(
        "{} n={} groups={} clients={} reads={:.0}% payload={}B keys={}{}{}",
        a.protocol,
        a.nodes,
        a.groups,
        a.clients,
        a.read_ratio * 100.0,
        a.payload,
        a.keys,
        if a.wan { " wan" } else { "" },
        if a.pqr { " pqr" } else { "" },
    );
    println!(
        "  throughput {:>9.0} req/s   mean {:>7.2} ms   p50 {:>7.2} ms   p99 {:>7.2} ms",
        result.throughput, result.mean_latency_ms, result.p50_latency_ms, result.p99_latency_ms
    );
    println!(
        "  leader {:>6.1} msgs/op   follower {:>5.2} msgs/op   decided {}   cross-region {:.2}/op",
        result.leader_msgs_per_op,
        result.follower_msgs_per_op,
        result.decided,
        result.cross_region_msgs_per_op
    );
}
