//! Figure 8: latency vs. throughput on a 25-node cluster — EPaxos,
//! Paxos, and PigPaxos with 3 relay groups.
//!
//! Paper result: EPaxos saturates ≈1000 req/s (conflict resolution),
//! Paxos ≈2000 req/s (leader bottleneck), PigPaxos scales to ≈7000
//! req/s while paying ~30% extra latency at low load.

use epaxos::EpaxosConfig;
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use pigpaxos_bench::{lan_experiment, print_csv_header, print_curve, CURVE_CLIENTS, SEED};

fn main() {
    let n = 25;
    print_csv_header();

    // Each protocol's config brings its own client target policy
    // (EPaxos spreads over all replicas; the others hit the leader).
    let epaxos_pts = lan_experiment(EpaxosConfig::default(), n).load_sweep(SEED, CURVE_CLIENTS);
    print_curve("EPaxos", &epaxos_pts);

    let paxos_pts = lan_experiment(PaxosConfig::lan(), n).load_sweep(SEED, CURVE_CLIENTS);
    print_curve("Paxos", &paxos_pts);

    let pig_pts = lan_experiment(PigConfig::lan(3), n).load_sweep(SEED, CURVE_CLIENTS);
    print_curve("PigPaxos (3 groups)", &pig_pts);
}
