//! Figure 8: latency vs. throughput on a 25-node cluster — EPaxos,
//! Paxos, and PigPaxos with 3 relay groups.
//!
//! Paper result: EPaxos saturates ≈1000 req/s (conflict resolution),
//! Paxos ≈2000 req/s (leader bottleneck), PigPaxos scales to ≈7000
//! req/s while paying ~30% extra latency at low load.

use epaxos::{epaxos_builder, EpaxosConfig};
use paxi::harness::load_sweep;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use pigpaxos_bench::{
    lan_spec, leader_target, print_csv_header, print_curve, random_target, CURVE_CLIENTS,
};

fn main() {
    let n = 25;
    let spec = lan_spec(n);
    print_csv_header();

    let epaxos_pts = load_sweep(
        &spec,
        CURVE_CLIENTS,
        epaxos_builder(EpaxosConfig::default()),
        random_target(n),
    );
    print_curve("EPaxos", &epaxos_pts);

    let paxos_pts = load_sweep(
        &spec,
        CURVE_CLIENTS,
        paxos_builder(PaxosConfig::lan()),
        leader_target(),
    );
    print_curve("Paxos", &paxos_pts);

    let pig_pts = load_sweep(
        &spec,
        CURVE_CLIENTS,
        pig_builder(PigConfig::lan(3)),
        leader_target(),
    );
    print_curve("PigPaxos (3 groups)", &pig_pts);
}
