//! Batching pipeline sweep: throughput, latency, and per-hop leader
//! message amortization for direct Multi-Paxos and PigPaxos on a 5-node
//! LAN cluster.
//!
//! Three sections:
//!
//! 1. **Fixed sweep** (`max_batch` ∈ {1..32}, the PR-1 experiment):
//!    leader-sent *protocol* messages per committed command must drop
//!    ≥ 4× at `B = 16` vs. unbatched — the original acceptance gate.
//! 2. **Batching v2 end-to-end** (pipelined clients): compares the PR-1
//!    configuration (fixed `B = 16`, one reply envelope per command,
//!    per-round relay uplinks) against the full pipeline — reply
//!    coalescing + multi-round relay aggregate coalescing. Gate: total
//!    leader-sent messages per command (protocol **and** replies) drop
//!    ≥ 2×.
//! 3. **Adaptive sizing**: at low load the EWMA sizer must keep p50
//!    within 1.2× of unbatched; under saturation it must amortize like
//!    a large fixed batch.
//! 4. **Soak (compaction)**: a snapshot-enabled run reporting peak
//!    retained log length and snapshot counts. Every other section runs
//!    with snapshots **off** (the `SnapshotConfig` default), so the
//!    perf-gate metrics and `BENCH_baseline.json` stay bit-for-bit
//!    identical to the pre-compaction tree; the soak keys are new and
//!    therefore informational to the gate.
//! 5. **PQR probe batching**: the 9-node / 2-group / 90%-read / 40-
//!    client scenario with probe batching off vs on
//!    (`PigConfig::with_probe_batch`). Gate: probe messages per
//!    operation (`qr_read`+`qr_vote`+`qr_read_batch`+`qr_vote_batch`)
//!    drop ≥ 3×. Probe batching is off by default everywhere else, so
//!    sections 1–4 and the pre-existing baseline keys are untouched.
//!
//! `--json <path>` additionally writes the headline metrics as a flat
//! JSON object — the artifact `perf_gate` checks against
//! `BENCH_baseline.json` in CI. The simulation is deterministic, so an
//! unchanged tree reproduces the baseline bit-for-bit — which is also
//! the proof that API refactors around the harness preserve behavior.

use paxi::{BatchConfig, Experiment, RunResult};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use pigpaxos_bench::{csv_mode, json, json_path, lan_experiment, SEED};
use simnet::SimDuration;

const BATCH_SIZES: &[usize] = &[1, 2, 4, 8, 16, 32];
const NODES: usize = 5;
const CLIENTS: usize = 32;

/// The v2 client population: same 32 outstanding requests, but
/// multiplexed 8-deep over 4 connections so reply coalescing has
/// per-destination waves to merge (one connection ≈ several user
/// sessions).
fn pipelined<P: paxi::ProtocolSpec>(proto: P) -> Experiment<P> {
    lan_experiment(proto, NODES)
        .clients(4)
        .client_pipeline(8)
        .capture_trace()
}

fn saturated<P: paxi::ProtocolSpec>(proto: P) -> Experiment<P> {
    lan_experiment(proto, NODES)
        .clients(CLIENTS)
        .capture_trace()
}

fn batch_cfg(max_batch: usize) -> BatchConfig {
    if max_batch <= 1 {
        BatchConfig::disabled()
    } else {
        BatchConfig::new(max_batch, SimDuration::from_micros(200))
    }
}

/// PigPaxos with the PR-1 behaviour: fixed batching only, no reply or
/// relay-round coalescing.
fn pig_v1(max_batch: usize) -> PigConfig {
    let mut cfg = PigConfig::lan(2).with_batch(batch_cfg(max_batch));
    cfg.relay_coalesce_window = SimDuration::ZERO;
    cfg
}

/// PigPaxos with the full batching-v2 pipeline.
fn pig_v2(batch: BatchConfig) -> PigConfig {
    PigConfig::lan(2).with_batch(batch.with_reply_coalescing(SimDuration::ZERO))
}

struct Row {
    max_batch: usize,
    throughput: f64,
    mean_ms: f64,
    p99_ms: f64,
    leader_msgs_per_op: f64,
    leader_proto_sent_per_op: f64,
}

fn sweep(name: &str, out: &mut Vec<(String, f64)>, mut run_one: impl FnMut(usize) -> Row) {
    let rows: Vec<Row> = BATCH_SIZES.iter().map(|&b| run_one(b)).collect();
    if csv_mode() {
        for r in &rows {
            println!(
                "{name},{},{:.1},{:.3},{:.3},{:.3},{:.3}",
                r.max_batch,
                r.throughput,
                r.mean_ms,
                r.p99_ms,
                r.leader_msgs_per_op,
                r.leader_proto_sent_per_op
            );
        }
    } else {
        println!("\n── {name}: {NODES} nodes, {CLIENTS} closed-loop clients ──");
        println!(
            "{:>6} {:>12} {:>10} {:>10} {:>16} {:>20}",
            "batch", "tput(req/s)", "mean(ms)", "p99(ms)", "leader msgs/op", "leader proto sent/op"
        );
        for r in &rows {
            println!(
                "{:>6} {:>12.0} {:>10.2} {:>10.2} {:>16.2} {:>20.3}",
                r.max_batch,
                r.throughput,
                r.mean_ms,
                r.p99_ms,
                r.leader_msgs_per_op,
                r.leader_proto_sent_per_op
            );
        }
    }
    let base = rows.first().expect("sweep is non-empty");
    let b16 = rows
        .iter()
        .find(|r| r.max_batch == 16)
        .expect("16 in sweep");
    let reduction = base.leader_proto_sent_per_op / b16.leader_proto_sent_per_op;
    out.push((
        format!("{name}_b16_proto_sent_per_op"),
        b16.leader_proto_sent_per_op,
    ));
    out.push((format!("{name}_b16_tput"), b16.throughput));
    out.push((format!("{name}_b16_proto_reduction"), reduction));
    if csv_mode() {
        println!("{name}_b16_proto_sent_reduction,,{reduction:.2},,,,");
    } else {
        println!(
            "    B=16 vs B=1: leader-sent protocol msgs/cmd {:.3} -> {:.3}  ({reduction:.1}x reduction)",
            base.leader_proto_sent_per_op, b16.leader_proto_sent_per_op
        );
    }
    assert!(
        reduction >= 4.0,
        "{name}: batching must cut leader-sent protocol messages per command by >=4x \
         (got {reduction:.2}x)"
    );
}

fn hop_report(name: &str, r: &RunResult) {
    if csv_mode() {
        println!(
            "{name}_hops,,{:.3},{:.3},{:.3},{:.3},",
            r.leader_proto_sent_per_op.unwrap_or(0.0),
            r.leader_proto_recv_per_op.unwrap_or(0.0),
            r.leader_replies_per_op.unwrap_or(0.0),
            r.leader_sent_per_op.unwrap_or(0.0),
        );
    } else {
        println!(
            "    {name:<22} proto sent/cmd {:>6.3}  uplink recv/cmd {:>6.3}  replies/cmd {:>6.3}  total sent/cmd {:>6.3}  tput {:>7.0}  p50 {:>5.2}ms",
            r.leader_proto_sent_per_op.unwrap_or(0.0),
            r.leader_proto_recv_per_op.unwrap_or(0.0),
            r.leader_replies_per_op.unwrap_or(0.0),
            r.leader_sent_per_op.unwrap_or(0.0),
            r.throughput,
            r.p50_latency_ms,
        );
    }
}

fn main() {
    let mut metrics: Vec<(String, f64)> = Vec::new();
    if csv_mode() {
        println!("series,max_batch,throughput,mean_ms,p99_ms,leader_msgs_per_op,leader_proto_sent_per_op");
    } else {
        println!("Batching pipeline sweep (max_delay = 200us)");
    }

    // ── 1. Fixed-size sweeps (the PR-1 gate) ──────────────────────────
    sweep("paxos", &mut metrics, |b| {
        let cfg = PaxosConfig::lan().with_batch(batch_cfg(b));
        let r = saturated(cfg).run_sim(SEED);
        assert!(r.violations.is_empty(), "paxos B={b}: {:?}", r.violations);
        Row {
            max_batch: b,
            throughput: r.throughput,
            mean_ms: r.mean_latency_ms,
            p99_ms: r.p99_latency_ms,
            leader_msgs_per_op: r.leader_msgs_per_op,
            leader_proto_sent_per_op: r.leader_proto_sent_per_op.expect("trace captured"),
        }
    });

    sweep("pigpaxos_r2", &mut metrics, |b| {
        let r = saturated(pig_v1(b)).run_sim(SEED);
        assert!(
            r.violations.is_empty(),
            "pigpaxos B={b}: {:?}",
            r.violations
        );
        Row {
            max_batch: b,
            throughput: r.throughput,
            mean_ms: r.mean_latency_ms,
            p99_ms: r.p99_latency_ms,
            leader_msgs_per_op: r.leader_msgs_per_op,
            leader_proto_sent_per_op: r.leader_proto_sent_per_op.expect("trace captured"),
        }
    });

    // ── 2. Batching v2 end-to-end (reply + relay-round coalescing) ────
    if !csv_mode() {
        println!("\n── batching v2 @ B=16: 4 clients x pipeline 8, per-hop leader load ──");
    }
    let v1 = pipelined(pig_v1(16)).run_sim(SEED);
    assert!(v1.violations.is_empty(), "v1: {:?}", v1.violations);
    hop_report("pig_v1_b16", &v1);
    let v2 = pipelined(pig_v2(batch_cfg(16))).run_sim(SEED);
    assert!(v2.violations.is_empty(), "v2: {:?}", v2.violations);
    hop_report("pig_v2_b16", &v2);

    let v1_total = v1.leader_sent_per_op.expect("trace captured");
    let v2_total = v2.leader_sent_per_op.expect("trace captured");
    let total_reduction = v1_total / v2_total;
    metrics.push(("v1_total_sent_per_op".into(), v1_total));
    metrics.push(("v2_total_sent_per_op".into(), v2_total));
    metrics.push(("v2_total_reduction".into(), total_reduction));
    metrics.push(("v2_tput".into(), v2.throughput));
    metrics.push((
        "v2_uplink_recv_per_op".into(),
        v2.leader_proto_recv_per_op.expect("trace captured"),
    ));
    if csv_mode() {
        println!("v2_total_sent_reduction,,{total_reduction:.2},,,,");
    } else {
        println!(
            "    v2 vs v1 total leader-sent msgs/cmd: {v1_total:.3} -> {v2_total:.3}  ({total_reduction:.1}x reduction)"
        );
    }
    assert!(
        total_reduction >= 2.0,
        "batching v2 must cut total leader-sent messages per command >=2x vs PR-1 \
         at B=16 (got {total_reduction:.2}x)"
    );

    // ── 3. Adaptive sizing ────────────────────────────────────────────
    if !csv_mode() {
        println!("\n── adaptive sizing (max_batch 32, window 200us) ──");
    }
    let adaptive = BatchConfig::adaptive(32, SimDuration::from_micros(200));

    // Low load: 2 clients, no pipeline — adaptive must not add latency.
    let unbatched_low = saturated(pig_v1(1)).clients(2).run_sim(SEED);
    assert!(
        unbatched_low.violations.is_empty(),
        "unbatched baseline: {:?}",
        unbatched_low.violations
    );
    let adaptive_low = saturated(pig_v2(adaptive.clone())).clients(2).run_sim(SEED);
    assert!(adaptive_low.violations.is_empty());
    hop_report("pig_unbatched_low", &unbatched_low);
    hop_report("pig_adaptive_low", &adaptive_low);
    metrics.push(("adaptive_low_p50_ms".into(), adaptive_low.p50_latency_ms));
    metrics.push(("unbatched_low_p50_ms".into(), unbatched_low.p50_latency_ms));
    assert!(
        adaptive_low.p50_latency_ms <= unbatched_low.p50_latency_ms * 1.2,
        "adaptive batching must keep low-load p50 within 1.2x of unbatched: \
         {:.3}ms vs {:.3}ms",
        adaptive_low.p50_latency_ms,
        unbatched_low.p50_latency_ms
    );

    // Saturation: the sizer must amortize like a large fixed batch.
    let adaptive_sat = pipelined(pig_v2(adaptive)).run_sim(SEED);
    assert!(adaptive_sat.violations.is_empty());
    hop_report("pig_adaptive_sat", &adaptive_sat);
    let unbatched_proto = unbatched_low
        .leader_proto_sent_per_op
        .expect("trace captured");
    let adaptive_proto = adaptive_sat
        .leader_proto_sent_per_op
        .expect("trace captured");
    metrics.push(("adaptive_sat_proto_sent_per_op".into(), adaptive_proto));
    metrics.push(("adaptive_sat_tput".into(), adaptive_sat.throughput));
    assert!(
        unbatched_proto >= adaptive_proto * 2.0,
        "adaptive batching must amortize under saturation: {unbatched_proto:.3} vs {adaptive_proto:.3} proto msgs/cmd"
    );
    if !csv_mode() {
        println!(
            "    adaptive under saturation: {:.3} proto msgs/cmd ({:.1}x vs unbatched)",
            adaptive_proto,
            unbatched_proto / adaptive_proto
        );
    }

    // ── 4. Soak: compaction-enabled memory accounting ─────────────────
    // Snapshots every 200 executed ops; the retained log must stay
    // bounded by the interval (plus the in-flight window) while
    // throughput and safety are unaffected.
    let soak_interval = 200u64;
    let soak = pipelined(
        pig_v2(batch_cfg(16)).with_snapshots(paxi::SnapshotConfig::every_ops(soak_interval)),
    )
    .run_sim(SEED);
    assert!(soak.violations.is_empty(), "soak: {:?}", soak.violations);
    assert!(
        soak.snapshots_taken > 0,
        "soak: compaction must fire ({} ops decided)",
        soak.decided
    );
    assert!(
        soak.max_log_len <= 2 * soak_interval,
        "soak: peak retained log {} exceeds 2x snapshot interval {soak_interval}",
        soak.max_log_len
    );
    metrics.push(("soak_max_log_len".into(), soak.max_log_len as f64));
    metrics.push(("soak_snapshots".into(), soak.snapshots_taken as f64));
    metrics.push(("soak_decided".into(), soak.decided as f64));
    if csv_mode() {
        // Self-describing series rows (like the *_reduction rows): the
        // sweep header's columns don't fit these metrics.
        println!("soak_decided,,{},,,,", soak.decided);
        println!("soak_max_log_len,,{},,,,", soak.max_log_len);
        println!("soak_snapshots,,{},,,,", soak.snapshots_taken);
    } else {
        println!(
            "\n── soak @ snapshots every {soak_interval} ops ──\n    \
             {} ops decided, peak retained log {} (bound {}), {} snapshots, tput {:.0}",
            soak.decided,
            soak.max_log_len,
            2 * soak_interval,
            soak.snapshots_taken,
            soak.throughput
        );
    }

    // ── 5. PQR probe batching over the relay tree ─────────────────────
    // Quorum reads bypass the leader's command batcher, so their probe
    // traffic needs its own amortization lever: pending read keys
    // coalesce into one QrReadBatch per relay wave. Probe batching is
    // *off* by default — every earlier section (and the pre-existing
    // baseline keys) runs the exact pre-probe-batching schedule.
    use paxos::QR_PROBE_LABELS as PROBE_LABELS;
    let pqr_run = |cfg: PigConfig| {
        lan_experiment(cfg, 9)
            .clients(40)
            .workload(paxi::Workload {
                read_ratio: 0.9,
                ..paxi::Workload::paper_default()
            })
            .capture_trace()
            .run_sim(SEED)
    };
    let probe_off = pqr_run(PigConfig::lan(2).with_pqr());
    assert!(
        probe_off.violations.is_empty(),
        "pqr probe off: {:?}",
        probe_off.violations
    );
    let probe_on = pqr_run(PigConfig::lan(2).with_pqr().with_probe_batch(
        paxi::BatchConfig::adaptive(16, SimDuration::from_micros(2500)),
    ));
    assert!(
        probe_on.violations.is_empty(),
        "pqr probe on: {:?}",
        probe_on.violations
    );
    let off_per_op = probe_off.labels_per_op(PROBE_LABELS).expect("trace");
    let on_per_op = probe_on.labels_per_op(PROBE_LABELS).expect("trace");
    let probe_reduction = off_per_op / on_per_op.max(1e-9);
    metrics.push(("pqr_probe_unbatched_per_op".into(), off_per_op));
    metrics.push(("pqr_probe_batched_per_op".into(), on_per_op));
    metrics.push(("pqr_probe_batch_reduction".into(), probe_reduction));
    metrics.push(("pqr_probe_batched_tput".into(), probe_on.throughput));
    if csv_mode() {
        println!("pqr_probe_unbatched_per_op,,{off_per_op:.3},,,,");
        println!("pqr_probe_batched_per_op,,{on_per_op:.3},,,,");
        println!("pqr_probe_batch_reduction,,{probe_reduction:.2},,,,");
    } else {
        println!(
            "\n── PQR probe batching (9 nodes, 2 groups, 90% reads, 40 clients) ──\n    \
             probe msgs/op {off_per_op:.2} -> {on_per_op:.2}  ({probe_reduction:.1}x reduction), \
             tput {:.0} -> {:.0}",
            probe_off.throughput, probe_on.throughput
        );
    }
    assert!(
        probe_reduction >= 3.0,
        "probe batching must cut probe msgs/op >=3x (got {probe_reduction:.2}x)"
    );

    if let Some(path) = json_path() {
        std::fs::write(&path, json::render(&metrics)).expect("write json metrics");
        if !csv_mode() {
            println!("\nwrote {} metrics to {path}", metrics.len());
        }
    }
}
