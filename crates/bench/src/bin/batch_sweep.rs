//! Leader-side command batching sweep: throughput and leader message
//! amortization vs. `max_batch`, for direct Multi-Paxos and PigPaxos on
//! a 5-node LAN cluster under heavy offered load.
//!
//! The headline column is **leader-sent protocol messages per committed
//! command** (client replies excluded): with `max_batch = B` one accept
//! round carries up to `B` commands, so the `N−1` (Paxos) or `r`
//! (PigPaxos) accept messages amortize across the batch. At `B = 16`
//! the reduction vs. `B = 1` must exceed 4× — the repo's acceptance
//! gate for the batching subsystem, checked here and in
//! `tests/batching.rs`.

use paxi::harness::{run, RunSpec};
use paxi::BatchConfig;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use pigpaxos_bench::{csv_mode, leader_target, quick_mode};
use simnet::SimDuration;

const BATCH_SIZES: &[usize] = &[1, 2, 4, 8, 16, 32];
const NODES: usize = 5;
const CLIENTS: usize = 32;

fn spec() -> RunSpec {
    let mut spec = RunSpec::lan(NODES, CLIENTS);
    if quick_mode() {
        spec.warmup = SimDuration::from_millis(300);
        spec.measure = SimDuration::from_millis(700);
    } else {
        spec.warmup = SimDuration::from_secs(1);
        spec.measure = SimDuration::from_secs(3);
    }
    spec.capture_trace = true;
    spec
}

fn batch_cfg(max_batch: usize) -> BatchConfig {
    if max_batch <= 1 {
        BatchConfig::disabled()
    } else {
        BatchConfig::new(max_batch, SimDuration::from_micros(200))
    }
}

struct Row {
    max_batch: usize,
    throughput: f64,
    mean_ms: f64,
    p99_ms: f64,
    leader_msgs_per_op: f64,
    leader_proto_sent_per_op: f64,
}

fn sweep(name: &str, mut run_one: impl FnMut(usize) -> Row) {
    let rows: Vec<Row> = BATCH_SIZES.iter().map(|&b| run_one(b)).collect();
    if csv_mode() {
        for r in &rows {
            println!(
                "{name},{},{:.1},{:.3},{:.3},{:.3},{:.3}",
                r.max_batch,
                r.throughput,
                r.mean_ms,
                r.p99_ms,
                r.leader_msgs_per_op,
                r.leader_proto_sent_per_op
            );
        }
    } else {
        println!("\n── {name}: {NODES} nodes, {CLIENTS} closed-loop clients ──");
        println!(
            "{:>6} {:>12} {:>10} {:>10} {:>16} {:>20}",
            "batch", "tput(req/s)", "mean(ms)", "p99(ms)", "leader msgs/op", "leader proto sent/op"
        );
        for r in &rows {
            println!(
                "{:>6} {:>12.0} {:>10.2} {:>10.2} {:>16.2} {:>20.3}",
                r.max_batch,
                r.throughput,
                r.mean_ms,
                r.p99_ms,
                r.leader_msgs_per_op,
                r.leader_proto_sent_per_op
            );
        }
    }
    let base = rows.first().expect("sweep is non-empty");
    let b16 = rows
        .iter()
        .find(|r| r.max_batch == 16)
        .expect("16 in sweep");
    let reduction = base.leader_proto_sent_per_op / b16.leader_proto_sent_per_op;
    if csv_mode() {
        println!("{name}_b16_proto_sent_reduction,,{reduction:.2},,,,");
    } else {
        println!(
            "    B=16 vs B=1: leader-sent protocol msgs/cmd {:.3} -> {:.3}  ({reduction:.1}x reduction)",
            base.leader_proto_sent_per_op, b16.leader_proto_sent_per_op
        );
    }
    assert!(
        reduction >= 4.0,
        "{name}: batching must cut leader-sent protocol messages per command by >=4x \
         (got {reduction:.2}x)"
    );
}

fn main() {
    if csv_mode() {
        println!("series,max_batch,throughput,mean_ms,p99_ms,leader_msgs_per_op,leader_proto_sent_per_op");
    } else {
        println!("Leader-side command batching sweep (max_delay = 200us)");
    }

    sweep("paxos", |b| {
        let mut cfg = PaxosConfig::lan();
        cfg.batch = batch_cfg(b);
        let r = run(&spec(), paxos_builder(cfg), leader_target());
        assert!(r.violations.is_empty(), "paxos B={b}: {:?}", r.violations);
        Row {
            max_batch: b,
            throughput: r.throughput,
            mean_ms: r.mean_latency_ms,
            p99_ms: r.p99_latency_ms,
            leader_msgs_per_op: r.leader_msgs_per_op,
            leader_proto_sent_per_op: r.leader_proto_sent_per_op.expect("trace captured"),
        }
    });

    sweep("pigpaxos_r2", |b| {
        let mut cfg = PigConfig::lan(2);
        cfg.paxos.batch = batch_cfg(b);
        let r = run(&spec(), pig_builder(cfg), leader_target());
        assert!(
            r.violations.is_empty(),
            "pigpaxos B={b}: {:?}",
            r.violations
        );
        Row {
            max_batch: b,
            throughput: r.throughput,
            mean_ms: r.mean_latency_ms,
            p99_ms: r.p99_latency_ms,
            leader_msgs_per_op: r.leader_msgs_per_op,
            leader_proto_sent_per_op: r.leader_proto_sent_per_op.expect("trace captured"),
        }
    });
}
