//! Net-substrate throughput probe: messages per second per core over
//! real TCP loopback sockets.
//!
//! Runs the same PigPaxos experiment on [`Experiment::run_net`] twice —
//! once with the paper-default 8-byte values and once with 1 KiB values
//! (the zero-copy decode pipeline's target shape) — and reports
//! client-observed ops/sec plus wire messages/sec normalized by
//! `available_parallelism`. Wire messages are counted by the transport
//! itself (each socket crossing counts once as a send and once as a
//! receive, so the per-node totals are halved).
//!
//! Wall-clock numbers are machine-dependent, so none of the emitted
//! JSON keys use a gated `perf_gate` suffix: the gate checks they keep
//! being *produced* (a missing baseline key fails) but not their
//! values. The in-process assertions below are the real gate — both
//! runs must make progress with zero safety violations.
//!
//! `--quick` shortens the wall window; `--json <path>` writes the
//! metrics for the CI profile artifact.

use paxi::{Experiment, RunResult, Workload};
use pigpaxos::PigConfig;
use pigpaxos_bench::{json, json_path, quick_mode, SEED};
use std::time::Duration;

struct Point {
    name: &'static str,
    ops_per_sec: f64,
    msgs_per_sec: f64,
    msgs_per_sec_core: f64,
}

fn probe(name: &'static str, payload: usize, wall: Duration, cores: f64) -> Point {
    let r: RunResult = Experiment::lan(PigConfig::lan(2), 5)
        .clients(16)
        .client_pipeline(4)
        .workload(Workload::write_only(8).value_size(payload))
        .run_net(SEED, wall);
    assert!(
        r.violations.is_empty(),
        "net run `{name}`: safety violations {:?}",
        r.violations
    );
    assert!(
        r.samples > 100,
        "net run `{name}` made no progress: {} samples",
        r.samples
    );
    let secs = wall.as_secs_f64();
    // node_msgs is sent + received per node; every wire message is
    // counted once on each side of its socket.
    let wire_msgs = r.node_msgs.iter().sum::<u64>() as f64 / 2.0;
    Point {
        name,
        ops_per_sec: r.samples as f64 / secs,
        msgs_per_sec: wire_msgs / secs,
        msgs_per_sec_core: wire_msgs / secs / cores,
    }
}

fn main() {
    let wall = if quick_mode() {
        Duration::from_millis(600)
    } else {
        Duration::from_secs(3)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as f64;

    let small = probe("small", 8, wall, cores);
    let large = probe("large", 1024, wall, cores);

    println!(
        "net_throughput (pigpaxos n=5 g=2, 16 clients x4 pipeline, {:.1}s wall, {cores:.0} cores)",
        wall.as_secs_f64()
    );
    println!(
        "{:<10} {:>12} {:>14} {:>18}",
        "values", "ops/sec", "wire msgs/sec", "msgs/sec/core"
    );
    for p in [&small, &large] {
        println!(
            "{:<10} {:>12.0} {:>14.0} {:>18.0}",
            p.name, p.ops_per_sec, p.msgs_per_sec, p.msgs_per_sec_core
        );
    }

    if let Some(path) = json_path() {
        let rows = vec![
            ("net_small_ops_per_sec".to_string(), small.ops_per_sec),
            ("net_small_msgs_per_sec".to_string(), small.msgs_per_sec),
            (
                "net_small_msgs_per_sec_core".to_string(),
                small.msgs_per_sec_core,
            ),
            ("net_large_ops_per_sec".to_string(), large.ops_per_sec),
            ("net_large_msgs_per_sec".to_string(), large.msgs_per_sec),
            (
                "net_large_msgs_per_sec_core".to_string(),
                large.msgs_per_sec_core,
            ),
        ];
        std::fs::write(&path, json::render(&rows)).expect("write json");
        println!("wrote {path}");
    }
    println!("net_throughput: OK (both runs progressed, zero violations)");
}
