//! Tables 1 and 2: analytical message load at the leader and followers
//! for different relay-group counts (25-node and 9-node clusters).

use analytical::{table1, table2, LoadRow};
use pigpaxos_bench::csv_mode;

fn print_table(title: &str, rows: &[LoadRow]) {
    if csv_mode() {
        for r in rows {
            println!(
                "{title},{},{},{:.2},{:.0}",
                r.label(),
                r.leader_msgs,
                r.follower_msgs,
                r.leader_overhead * 100.0
            );
        }
        return;
    }
    println!("\n── {title} ──");
    println!(
        "{:>14} {:>18} {:>22} {:>16}",
        "# relay groups", "msgs at leader", "msgs at follower", "leader overhead"
    );
    for r in rows {
        println!(
            "{:>14} {:>18.0} {:>22.2} {:>15.0}%",
            r.label(),
            r.leader_msgs,
            r.follower_msgs,
            r.leader_overhead * 100.0
        );
    }
}

fn main() {
    if csv_mode() {
        println!("table,relay_groups,leader_msgs,follower_msgs,leader_overhead_pct");
    }
    print_table("Table 1: message load, 25-node cluster", &table1());
    print_table("Table 2: message load, 9-node cluster", &table2());
}
