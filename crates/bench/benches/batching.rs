//! Criterion benchmarks for the leader-side batching hot path: the
//! batcher data structure itself, and end-to-end simulated clusters
//! with batching off vs. on (wall-clock cost of regenerating the
//! batch_sweep's extreme points).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use paxi::harness::{run, RunSpec};
use paxi::{BatchConfig, BatchPush, Batcher, Command, Operation, RequestId, TargetPolicy};
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use simnet::{NodeId, SimDuration, SimTime};

fn cmd(seq: u64) -> Command {
    Command {
        id: RequestId {
            client: NodeId(99),
            seq,
        },
        op: Operation::Put(seq % 1000, paxi::Value::zeros(16)),
    }
}

fn bench_batcher(c: &mut Criterion) {
    c.bench_function("batcher_push_flush_16", |b| {
        let mut batcher = Batcher::new(BatchConfig::new(16, SimDuration::from_micros(200)));
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            match batcher.push(NodeId(7), cmd(seq), SimTime::from_nanos(seq * 1_000)) {
                BatchPush::Flush(batch) => black_box(batch.len()),
                _ => 0,
            }
        })
    });

    c.bench_function("batcher_push_flush_adaptive_32", |b| {
        let mut batcher = Batcher::new(BatchConfig::adaptive(32, SimDuration::from_micros(200)));
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            match batcher.push(NodeId(7), cmd(seq), SimTime::from_nanos(seq * 1_000)) {
                BatchPush::Flush(batch) => black_box(batch.len()),
                _ => 0,
            }
        })
    });
}

fn quick_spec(n: usize, clients: usize) -> RunSpec {
    RunSpec {
        warmup: SimDuration::from_millis(100),
        measure: SimDuration::from_millis(300),
        ..RunSpec::lan(n, clients)
    }
}

fn bench_batched_clusters(c: &mut Criterion) {
    let mut g = c.benchmark_group("batching");
    g.sample_size(10);

    for (id, max_batch) in [
        ("paxos_5n_unbatched_400ms_sim", 1),
        ("paxos_5n_batch16_400ms_sim", 16),
    ] {
        g.bench_function(id, |b| {
            b.iter_batched(
                || {
                    let mut cfg = PaxosConfig::lan();
                    if max_batch > 1 {
                        cfg.batch = BatchConfig::new(max_batch, SimDuration::from_micros(200));
                    }
                    cfg
                },
                |cfg| {
                    let r = run(
                        &quick_spec(5, 32),
                        paxos_builder(cfg),
                        TargetPolicy::Fixed(NodeId(0)),
                    );
                    assert!(r.violations.is_empty());
                    r.samples
                },
                BatchSize::PerIteration,
            )
        });
    }

    g.bench_function("pigpaxos_5n_r2_batch16_400ms_sim", |b| {
        b.iter_batched(
            || {
                let mut cfg = PigConfig::lan(2);
                cfg.paxos.batch = BatchConfig::new(16, SimDuration::from_micros(200));
                cfg
            },
            |cfg| {
                let r = run(
                    &quick_spec(5, 32),
                    pig_builder(cfg),
                    TargetPolicy::Fixed(NodeId(0)),
                );
                assert!(r.violations.is_empty());
                r.samples
            },
            BatchSize::PerIteration,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_batcher, bench_batched_clusters);
criterion_main!(benches);
