//! Criterion benchmarks for the leader-side batching hot path: the
//! batcher data structure itself, and end-to-end simulated clusters
//! with batching off vs. on (wall-clock cost of regenerating the
//! batch_sweep's extreme points).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use paxi::{
    BatchConfig, BatchPush, Batcher, Command, Experiment, Operation, ProtocolSpec, RequestId,
};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use simnet::{NodeId, SimDuration, SimTime};

fn cmd(seq: u64) -> Command {
    Command {
        id: RequestId {
            client: NodeId(99),
            seq,
        },
        op: Operation::Put(seq % 1000, paxi::Value::zeros(16)),
    }
}

fn bench_batcher(c: &mut Criterion) {
    c.bench_function("batcher_push_flush_16", |b| {
        let mut batcher = Batcher::new(BatchConfig::new(16, SimDuration::from_micros(200)));
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            match batcher.push(NodeId(7), cmd(seq), SimTime::from_nanos(seq * 1_000)) {
                BatchPush::Flush(batch) => black_box(batch.len()),
                _ => 0,
            }
        })
    });

    c.bench_function("batcher_push_flush_adaptive_32", |b| {
        let mut batcher = Batcher::new(BatchConfig::adaptive(32, SimDuration::from_micros(200)));
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            match batcher.push(NodeId(7), cmd(seq), SimTime::from_nanos(seq * 1_000)) {
                BatchPush::Flush(batch) => black_box(batch.len()),
                _ => 0,
            }
        })
    });
}

fn quick<P: ProtocolSpec>(proto: P, n: usize, clients: usize) -> Experiment<P> {
    Experiment::lan(proto, n)
        .clients(clients)
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(300))
}

fn bench_batched_clusters(c: &mut Criterion) {
    let mut g = c.benchmark_group("batching");
    g.sample_size(10);

    for (id, max_batch) in [
        ("paxos_5n_unbatched_400ms_sim", 1),
        ("paxos_5n_batch16_400ms_sim", 16),
    ] {
        g.bench_function(id, |b| {
            b.iter_batched(
                || {
                    let mut cfg = PaxosConfig::lan();
                    if max_batch > 1 {
                        cfg.batch = BatchConfig::new(max_batch, SimDuration::from_micros(200));
                    }
                    quick(cfg, 5, 32)
                },
                |exp| {
                    let r = exp.run_sim(paxi::DEFAULT_SEED);
                    assert!(r.violations.is_empty());
                    r.samples
                },
                BatchSize::PerIteration,
            )
        });
    }

    g.bench_function("pigpaxos_5n_r2_batch16_400ms_sim", |b| {
        b.iter_batched(
            || {
                let cfg = PigConfig::lan(2)
                    .with_batch(BatchConfig::new(16, SimDuration::from_micros(200)));
                quick(cfg, 5, 32)
            },
            |exp| {
                let r = exp.run_sim(paxi::DEFAULT_SEED);
                assert!(r.violations.is_empty());
                r.samples
            },
            BatchSize::PerIteration,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_batcher, bench_batched_clusters);
criterion_main!(benches);
