//! End-to-end protocol benchmarks: simulated clusters driven for a
//! fixed window; criterion measures the wall-clock cost of regenerating
//! a slice of the paper's experiments.
//!
//! These complement the figure binaries: figures report *simulated*
//! performance; these benches guard the *simulator's* own performance
//! so figure regeneration stays fast.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use epaxos::{epaxos_builder, EpaxosConfig};
use paxi::harness::{run, RunSpec};
use paxi::TargetPolicy;
use paxos::{paxos_builder, PaxosConfig};
use pigpaxos::{pig_builder, PigConfig};
use simnet::{NodeId, SimDuration};

fn quick_spec(n: usize, clients: usize) -> RunSpec {
    RunSpec {
        warmup: SimDuration::from_millis(100),
        measure: SimDuration::from_millis(300),
        ..RunSpec::lan(n, clients)
    }
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols");
    g.sample_size(10);

    g.bench_function("paxos_25n_400ms_sim", |b| {
        b.iter_batched(
            || quick_spec(25, 20),
            |spec| {
                let r = run(
                    &spec,
                    paxos_builder(PaxosConfig::lan()),
                    TargetPolicy::Fixed(NodeId(0)),
                );
                assert!(r.violations.is_empty());
                r.samples
            },
            BatchSize::PerIteration,
        )
    });

    g.bench_function("pigpaxos_25n_r3_400ms_sim", |b| {
        b.iter_batched(
            || quick_spec(25, 20),
            |spec| {
                let r = run(
                    &spec,
                    pig_builder(PigConfig::lan(3)),
                    TargetPolicy::Fixed(NodeId(0)),
                );
                assert!(r.violations.is_empty());
                r.samples
            },
            BatchSize::PerIteration,
        )
    });

    g.bench_function("epaxos_5n_400ms_sim", |b| {
        b.iter_batched(
            || quick_spec(5, 20),
            |spec| {
                let r = run(
                    &spec,
                    epaxos_builder(EpaxosConfig::default()),
                    TargetPolicy::Random((0..5u32).map(NodeId).collect()),
                );
                assert!(r.violations.is_empty());
                r.samples
            },
            BatchSize::PerIteration,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
