//! End-to-end protocol benchmarks: simulated clusters driven for a
//! fixed window; criterion measures the wall-clock cost of regenerating
//! a slice of the paper's experiments.
//!
//! These complement the figure binaries: figures report *simulated*
//! performance; these benches guard the *simulator's* own performance
//! so figure regeneration stays fast.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use epaxos::EpaxosConfig;
use paxi::{Experiment, ProtocolSpec};
use paxos::PaxosConfig;
use pigpaxos::PigConfig;
use simnet::SimDuration;

fn quick<P: ProtocolSpec>(proto: P, n: usize, clients: usize) -> Experiment<P> {
    Experiment::lan(proto, n)
        .clients(clients)
        .warmup(SimDuration::from_millis(100))
        .measure(SimDuration::from_millis(300))
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols");
    g.sample_size(10);

    g.bench_function("paxos_25n_400ms_sim", |b| {
        b.iter_batched(
            || quick(PaxosConfig::lan(), 25, 20),
            |exp| {
                let r = exp.run_sim(paxi::DEFAULT_SEED);
                assert!(r.violations.is_empty());
                r.samples
            },
            BatchSize::PerIteration,
        )
    });

    g.bench_function("pigpaxos_25n_r3_400ms_sim", |b| {
        b.iter_batched(
            || quick(PigConfig::lan(3), 25, 20),
            |exp| {
                let r = exp.run_sim(paxi::DEFAULT_SEED);
                assert!(r.violations.is_empty());
                r.samples
            },
            BatchSize::PerIteration,
        )
    });

    g.bench_function("epaxos_5n_400ms_sim", |b| {
        b.iter_batched(
            || quick(EpaxosConfig::default(), 5, 20),
            |exp| {
                let r = exp.run_sim(paxi::DEFAULT_SEED);
                assert!(r.violations.is_empty());
                r.samples
            },
            BatchSize::PerIteration,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
