//! Kernel benchmarks for the hot data structures behind the figures:
//! the replicated log, the relay aggregation table (via relay-group
//! selection), EPaxos dependency-graph planning, and workload sampling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use epaxos::{plan_execution, InstStatus, InstanceId, InstanceView};
use paxi::{Ballot, Command, Log, Operation, RequestId, Value, Workload};
use pigpaxos::{GroupSpec, RelayGroups};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::NodeId;
use std::collections::HashMap;

fn cmd(seq: u64) -> Command {
    Command {
        id: RequestId {
            client: NodeId(99),
            seq,
        },
        op: Operation::Put(seq % 1000, Value::zeros(8)),
    }
}

fn bench_log(c: &mut Criterion) {
    c.bench_function("log_accept_commit_execute_1000", |b| {
        let ballot = Ballot::new(1, NodeId(0));
        b.iter(|| {
            let mut log = Log::new();
            for s in 0..1000u64 {
                log.accept(s, ballot, cmd(s));
                log.commit(s, ballot, cmd(s));
                let (slot, _) = log.next_executable().expect("ready");
                log.mark_executed(slot);
            }
            black_box(log.committed_count())
        })
    });
}

fn bench_relay_groups(c: &mut Criterion) {
    let followers: Vec<NodeId> = (1..25).map(NodeId).collect();
    let groups = RelayGroups::build(&followers, &GroupSpec::Chunks(3));
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("relay_pick_25n_r3", |b| {
        b.iter(|| black_box(groups.pick_relays(&mut rng)))
    });
}

struct ChainView {
    nodes: HashMap<InstanceId, (InstStatus, u64, Vec<InstanceId>)>,
}

impl InstanceView for ChainView {
    fn status(&self, id: InstanceId) -> InstStatus {
        self.nodes
            .get(&id)
            .map(|n| n.0)
            .unwrap_or(InstStatus::Unknown)
    }
    fn deps(&self, id: InstanceId) -> &[InstanceId] {
        self.nodes.get(&id).map(|n| n.2.as_slice()).unwrap_or(&[])
    }
    fn seq(&self, id: InstanceId) -> u64 {
        self.nodes.get(&id).map(|n| n.1).unwrap_or(0)
    }
}

fn bench_graph(c: &mut Criterion) {
    let inst = |s: u64| InstanceId {
        replica: NodeId(0),
        slot: s,
    };
    let mut nodes = HashMap::new();
    for i in 0..1000u64 {
        let deps = if i == 0 { vec![] } else { vec![inst(i - 1)] };
        nodes.insert(inst(i), (InstStatus::Committed, i, deps));
    }
    let view = ChainView { nodes };
    let roots: Vec<InstanceId> = (0..1000u64).map(inst).collect();
    c.bench_function("epaxos_plan_1000_chain", |b| {
        b.iter(|| black_box(plan_execution(&roots, &view).order.len()))
    });
}

fn bench_workload(c: &mut Criterion) {
    let w = Workload::paper_default();
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("workload_next_op", |b| {
        b.iter(|| black_box(w.next_op(&mut rng)))
    });
}

criterion_group!(
    benches,
    bench_log,
    bench_relay_groups,
    bench_graph,
    bench_workload
);
criterion_main!(benches);
