//! Criterion benchmarks over the three profiled hot paths: the leader
//! decide/execute pipeline (B=16, n=5), one PigPaxos relay aggregation
//! round, and `Wire` encode/decode of a wave message. Component-level
//! (no simulator), driven through [`pigpaxos_bench::hotpath`] — the
//! same harness the `alloc_gate` binary and the allocation-regression
//! test measure, so wall-clock and allocs/op describe identical work.
//!
//! The counting allocator is installed here too: run with
//! `cargo bench -p pigpaxos_bench --bench hotpath` and pair the timings
//! with `alloc_gate`'s allocs/op for the full picture.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pigpaxos_bench::alloc::CountingAllocator;
use pigpaxos_bench::hotpath::{self, LeaderPipeline};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn bench_leader_pipeline(c: &mut Criterion) {
    c.bench_function("leader_decide_execute_wave_b16_n5", |b| {
        let mut pipe = LeaderPipeline::new(5, 16);
        pipe.run(8); // steady state
        b.iter(|| black_box(pipe.drive_wave().decided))
    });
}

fn bench_relay_aggregate(c: &mut Criterion) {
    c.bench_function("relay_aggregate_round_b16_g3", |b| {
        let ballot = paxi::Ballot::new(1, simnet::NodeId(0));
        let mut first_slot = 1u64;
        b.iter(|| {
            first_slot += 16;
            black_box(hotpath::relay_aggregate_round(ballot, first_slot, 16, 3))
        })
    });
}

fn bench_wire(c: &mut Criterion) {
    let msg = hotpath::sample_p2a_batch(16);
    let frame = simnet::Bytes::from(hotpath::encode_message(&msg));
    c.bench_function("wire_encode_p2a_batch_b16", |b| {
        b.iter(|| black_box(hotpath::encode_message(&msg)))
    });
    c.bench_function("wire_decode_p2a_batch_b16", |b| {
        b.iter(|| black_box(hotpath::decode_message(&frame)))
    });
    // Large values stress the zero-copy path: payload bytes must ride
    // out of the decoder as slices of the frame, not fresh copies.
    let large = hotpath::sample_p2a_batch_with_values(16, 4096);
    let large_frame = simnet::Bytes::from(hotpath::encode_message(&large));
    c.bench_function("wire_decode_p2a_batch_b16_4k_values", |b| {
        b.iter(|| black_box(hotpath::decode_message(&large_frame)))
    });
}

criterion_group!(
    hotpath_benches,
    bench_leader_pipeline,
    bench_relay_aggregate,
    bench_wire
);
criterion_main!(hotpath_benches);
