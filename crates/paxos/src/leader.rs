//! The leader role: phase-1 campaigns, slot allocation, vote counting,
//! and commit decisions.
//!
//! [`Leader`] is a pure state machine — it never sends messages itself.
//! The replica (direct Multi-Paxos) or the PigPaxos overlay decides how
//! its outputs travel. This separation is what lets PigPaxos reuse the
//! decision logic unchanged, as the paper's implementation did.

use crate::messages::{P1bVote, P2bVote};
use paxi::{majority, Ballot, Command, RequestId, VoteTracker};
use simnet::{NodeId, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Outcome of feeding phase-1b votes to a campaigning leader.
#[derive(Debug, PartialEq)]
pub enum Phase1Outcome {
    /// Not enough promises yet.
    Pending,
    /// Campaign won. `reproposals` are the slots the new leader must
    /// re-propose under its ballot (adopted values + no-op hole fillers)
    /// before serving new commands.
    Won {
        /// `(slot, command)` pairs to propose immediately.
        reproposals: Vec<(u64, Command)>,
    },
    /// A higher ballot exists; the campaign is abandoned.
    Preempted {
        /// The ballot that preempted us.
        higher: Ballot,
    },
}

/// Outcome of [`Leader::on_p2b_batch`]: slots that reached quorum plus
/// any preempting ballot seen while counting.
#[derive(Debug, PartialEq)]
pub struct BatchVotesOutcome {
    /// `(slot, command, waiting client)` per newly decided slot, in
    /// slot order.
    pub committed: Vec<(u64, Command, Option<NodeId>)>,
    /// Highest preempting ballot observed, if any — the replica must
    /// still apply every commit before abdicating.
    pub preempted: Option<Ballot>,
}

/// A proposal in flight.
#[derive(Debug)]
pub struct Outstanding {
    /// The proposed command.
    pub command: Command,
    /// Vote tally for this slot.
    pub tracker: VoteTracker,
    /// When the proposal was (last) sent, for retry.
    pub sent_at: SimTime,
    /// Times this proposal has been re-sent after going stale. Each
    /// retry doubles the staleness threshold (capped), so a slot that
    /// cannot reach quorum — e.g. during a partition — stops flooding
    /// the group at a fixed interval.
    pub attempts: u32,
    /// The client waiting for this slot, if any.
    pub client: Option<NodeId>,
}

/// Cap on the per-proposal retry backoff: the staleness threshold grows
/// to at most `timeout << MAX_RETRY_SHIFT` (16x).
const MAX_RETRY_SHIFT: u32 = 4;

/// Leader-role state.
#[derive(Debug)]
pub struct Leader {
    me: NodeId,
    n: usize,
    /// Phase-1 quorum size (majority unless flexible quorums are used).
    q1: usize,
    /// Phase-2 quorum size.
    q2: usize,
    ballot: Ballot,
    active: bool,
    campaigning: bool,
    p1_tracker: VoteTracker,
    p1_merged: HashMap<u64, (Ballot, Command)>,
    next_slot: u64,
    outstanding: BTreeMap<u64, Outstanding>,
    /// Requests queued while inactive (e.g. during phase-1).
    pub pending: VecDeque<(NodeId, Command)>,
}

impl Leader {
    /// New (inactive) leader role for node `me` in a cluster of `n`,
    /// using classic majority quorums.
    pub fn new(me: NodeId, n: usize) -> Self {
        Leader::with_quorums(me, n, majority(n), majority(n))
    }

    /// Leader with flexible quorums (Howard et al.; paper §2.2):
    /// phase-1 quorums of `q1`, phase-2 quorums of `q2`. Panics unless
    /// `q1 + q2 > n` (quorums must intersect).
    pub fn with_quorums(me: NodeId, n: usize, q1: usize, q2: usize) -> Self {
        assert!(q1 + q2 > n, "flexible quorums must intersect: q1 + q2 > n");
        assert!(q1 >= 1 && q1 <= n && q2 >= 1 && q2 <= n);
        Leader {
            me,
            n,
            q1,
            q2,
            ballot: Ballot::ZERO,
            active: false,
            campaigning: false,
            p1_tracker: VoteTracker::new(q1, Ballot::ZERO),
            p1_merged: HashMap::new(),
            next_slot: 0,
            outstanding: BTreeMap::new(),
            pending: VecDeque::new(),
        }
    }

    /// The phase-2 quorum size in use.
    pub fn q2(&self) -> usize {
        self.q2
    }

    /// The cluster size this leader was configured for.
    pub fn cluster_size(&self) -> usize {
        self.n
    }

    /// Current ballot.
    pub fn ballot(&self) -> Ballot {
        self.ballot
    }

    /// True once phase-1 has completed and new commands may be proposed.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// True while a phase-1 campaign is in flight.
    pub fn is_campaigning(&self) -> bool {
        self.campaigning
    }

    /// Proposals not yet committed.
    pub fn outstanding(&self) -> &BTreeMap<u64, Outstanding> {
        &self.outstanding
    }

    /// Start (or restart) a phase-1 campaign with a ballot above
    /// `at_least`. Returns the new ballot to put in the P1a.
    pub fn start_campaign(&mut self, at_least: Ballot) -> Ballot {
        self.ballot = at_least.max(self.ballot).next(self.me);
        self.active = false;
        self.campaigning = true;
        self.p1_tracker = VoteTracker::new(self.q1, self.ballot);
        self.p1_merged.clear();
        self.ballot
    }

    /// Feed phase-1b votes (own vote included by the caller).
    pub fn on_p1b_votes(&mut self, votes: Vec<P1bVote>, watermark: u64) -> Phase1Outcome {
        if !self.campaigning {
            return Phase1Outcome::Pending;
        }
        for v in votes {
            if !v.ok {
                if v.ballot > self.ballot {
                    self.campaigning = false;
                    return Phase1Outcome::Preempted { higher: v.ballot };
                }
                self.p1_tracker.nack(v.node);
                continue;
            }
            for (slot, b, cmd) in v.accepted {
                match self.p1_merged.get(&slot) {
                    Some((prev, _)) if *prev >= b => {}
                    _ => {
                        self.p1_merged.insert(slot, (b, cmd));
                    }
                }
            }
            if self.p1_tracker.ack(v.node, self.ballot) {
                return self.finish_campaign(watermark);
            }
        }
        Phase1Outcome::Pending
    }

    fn finish_campaign(&mut self, watermark: u64) -> Phase1Outcome {
        self.campaigning = false;
        self.active = true;
        let max_seen = self.p1_merged.keys().copied().max();
        let horizon = max_seen.map(|m| m + 1).unwrap_or(watermark);
        self.next_slot = self.next_slot.max(horizon).max(watermark);
        let mut reproposals = Vec::new();
        for slot in watermark..horizon {
            let cmd = self
                .p1_merged
                .remove(&slot)
                .map(|(_, c)| c)
                .unwrap_or_else(Command::noop);
            reproposals.push((slot, cmd));
        }
        self.p1_merged.clear();
        Phase1Outcome::Won { reproposals }
    }

    /// Allocate a slot and register the proposal. The caller constructs
    /// and disseminates the P2a and feeds the leader's own acceptor vote
    /// back via [`Leader::on_p2b_votes`].
    pub fn propose(&mut self, client: Option<NodeId>, command: Command, now: SimTime) -> u64 {
        assert!(self.active, "propose on inactive leader");
        let slot = self.next_slot;
        self.next_slot += 1;
        self.register(slot, command, client, now);
        slot
    }

    /// Register a proposal at a fixed slot (used for re-proposals after
    /// phase-1 and for retries after preemption recovery).
    pub fn register(&mut self, slot: u64, command: Command, client: Option<NodeId>, now: SimTime) {
        self.next_slot = self.next_slot.max(slot + 1);
        self.outstanding.insert(
            slot,
            Outstanding {
                command,
                tracker: VoteTracker::new(self.q2, self.ballot),
                sent_at: now,
                attempts: 0,
                client,
            },
        );
    }

    /// Feed a single phase-2b vote for the slot it carries. Returns the
    /// commit if the vote completed a quorum: `(slot, command, waiting
    /// client)`. A preempting higher ballot is reported via
    /// `Err(higher)`. This is the allocation-free core of the vote
    /// path; the batched entry points layer ordering on top of it.
    #[allow(clippy::type_complexity)]
    pub fn on_p2b_vote(
        &mut self,
        v: P2bVote,
    ) -> Result<Option<(u64, Command, Option<NodeId>)>, Ballot> {
        let Some(out) = self.outstanding.get_mut(&v.slot) else {
            return Ok(None); // already committed or unknown
        };
        if !v.ok {
            if v.ballot > self.ballot {
                return Err(v.ballot);
            }
            out.tracker.nack(v.node);
            return Ok(None);
        }
        if out.tracker.ack(v.node, self.ballot) {
            let out = self.outstanding.remove(&v.slot).expect("present");
            return Ok(Some((v.slot, out.command, out.client)));
        }
        Ok(None)
    }

    /// Feed phase-2b votes. Returns slots that just reached quorum:
    /// `(slot, command, waiting client)`. A preempting higher ballot is
    /// reported via `Err(higher)`.
    #[allow(clippy::type_complexity)]
    pub fn on_p2b_votes(
        &mut self,
        slot: u64,
        votes: Vec<P2bVote>,
    ) -> Result<Option<(u64, Command, Option<NodeId>)>, Ballot> {
        if !self.outstanding.contains_key(&slot) {
            return Ok(None); // already committed or unknown
        }
        for v in votes {
            match self.on_p2b_vote(P2bVote { slot, ..v })? {
                Some(c) => return Ok(Some(c)),
                None => continue,
            }
        }
        Ok(None)
    }

    /// Feed a batched set of phase-2b votes spanning multiple slots
    /// (one `P2bVote` per `(node, slot)` pair, as carried by
    /// `P2bBatch`). Votes are counted per slot — in slot order, so
    /// commits come out ready for in-order execution — through the
    /// ordinary single-slot quorum counting. Every slot of the
    /// batch is counted even when one slot reports a preempting ballot:
    /// a quorum of acks at our ballot means *chosen*, and dropping such
    /// a commit would strand its client (the slot is already out of
    /// `outstanding`, so `demote` could not re-queue it).
    ///
    /// The votes are ordered with an in-place *stable* insertion sort
    /// instead of being grouped into per-slot containers: follower
    /// segments arrive already slot-sorted (from `accept_batch`), so
    /// the sort is near-linear, allocates nothing, and stability keeps
    /// each slot's votes in arrival order — preserving exactly which
    /// vote completes a quorum or reports a preemption first.
    pub fn on_p2b_batch(&mut self, mut votes: Vec<P2bVote>) -> BatchVotesOutcome {
        for i in 1..votes.len() {
            let mut j = i;
            while j > 0 && votes[j - 1].slot > votes[j].slot {
                votes.swap(j - 1, j);
                j -= 1;
            }
        }
        let mut out = BatchVotesOutcome {
            committed: Vec::new(),
            preempted: None,
        };
        let mut i = 0;
        while i < votes.len() {
            let slot = votes[i].slot;
            let mut end = i + 1;
            while end < votes.len() && votes[end].slot == slot {
                end += 1;
            }
            // One slot's run: count votes until the slot commits or
            // reports a preemption; either way the rest of the run is
            // moot (the old per-slot grouping behaved identically).
            for &vote in &votes[i..end] {
                match self.on_p2b_vote(vote) {
                    Ok(Some(c)) => {
                        out.committed.push(c);
                        break;
                    }
                    Ok(None) => {}
                    Err(higher) => {
                        out.preempted = Some(match out.preempted {
                            Some(prev) => prev.max(higher),
                            None => higher,
                        });
                        break;
                    }
                }
            }
            i = end;
        }
        out
    }

    /// Demote after preemption: drop in-flight proposals back into the
    /// pending queue (they will be re-proposed if we win again, or the
    /// new leader will adopt them via phase-1).
    pub fn demote(&mut self) {
        self.active = false;
        self.campaigning = false;
        let slots: Vec<u64> = self.outstanding.keys().copied().collect();
        for s in slots {
            let out = self.outstanding.remove(&s).expect("present");
            if let Some(client) = out.client {
                self.pending.push_back((client, out.command));
            }
        }
    }

    /// Proposals due for retry as of `now`. Marks them as re-sent.
    ///
    /// A proposal is due once it has been waiting `timeout <<
    /// min(attempts, 4)` — a fresh proposal retries after one timeout,
    /// then 2x, 4x, … capped at 16x per further attempt. Without the
    /// backoff a leader cut off from its quorum re-broadcast every
    /// outstanding slot to every peer at a fixed interval, and a
    /// preempted leader (demoted `active` but with `outstanding` not
    /// yet drained) kept re-sending P2as for ballots it had already
    /// lost; an inactive leader now never reports stale proposals.
    pub fn stale_proposals(
        &mut self,
        now: SimTime,
        timeout: simnet::SimDuration,
    ) -> Vec<(u64, Command)> {
        if !self.active {
            return Vec::new();
        }
        let mut stale = Vec::new();
        for (&slot, out) in self.outstanding.iter_mut() {
            let threshold = simnet::SimDuration::from_nanos(
                timeout
                    .as_nanos()
                    .saturating_mul(1 << out.attempts.min(MAX_RETRY_SHIFT)),
            );
            if now.saturating_sub(out.sent_at) >= threshold {
                out.sent_at = now;
                out.attempts += 1;
                stale.push((slot, out.command.clone()));
            }
        }
        stale
    }

    /// Ids of commands currently outstanding (for duplicate suppression).
    pub fn has_outstanding_request(&self, id: RequestId) -> bool {
        self.outstanding.values().any(|o| o.command.id == id)
    }

    /// Highest sequence number of `client`'s commands currently
    /// outstanding. Used to rebuild the per-client proposal floor after
    /// re-election.
    pub fn highest_outstanding_seq(&self, client: NodeId) -> Option<u64> {
        self.outstanding
            .values()
            .filter(|o| o.command.id.client == client)
            .map(|o| o.command.id.seq)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::{Operation, Value};

    fn cmd(seq: u64) -> Command {
        Command {
            id: RequestId {
                client: NodeId(9),
                seq,
            },
            op: Operation::Put(seq, Value::zeros(8)),
        }
    }

    fn p1b_ok(node: u32, ballot: Ballot) -> P1bVote {
        P1bVote {
            node: NodeId(node),
            ballot,
            ok: true,
            accepted: vec![],
            snapshot: None,
        }
    }

    fn p2b_ok(node: u32, ballot: Ballot, slot: u64) -> P2bVote {
        P2bVote {
            node: NodeId(node),
            ballot,
            slot,
            ok: true,
        }
    }

    #[test]
    fn campaign_wins_with_majority() {
        let mut l = Leader::new(NodeId(0), 5);
        let b = l.start_campaign(Ballot::ZERO);
        assert!(l.is_campaigning());
        assert_eq!(
            l.on_p1b_votes(vec![p1b_ok(0, b)], 0),
            Phase1Outcome::Pending
        );
        assert_eq!(
            l.on_p1b_votes(vec![p1b_ok(1, b)], 0),
            Phase1Outcome::Pending
        );
        match l.on_p1b_votes(vec![p1b_ok(2, b)], 0) {
            Phase1Outcome::Won { reproposals } => assert!(reproposals.is_empty()),
            other => panic!("expected win, got {other:?}"),
        }
        assert!(l.is_active());
    }

    #[test]
    fn campaign_adopts_highest_ballot_values_and_fills_holes() {
        let mut l = Leader::new(NodeId(0), 3);
        let b = l.start_campaign(Ballot::ZERO);
        let old_b1 = Ballot::new(1, NodeId(1));
        let old_b2 = Ballot::new(2, NodeId(2));
        let v1 = P1bVote {
            node: NodeId(1),
            ballot: b,
            ok: true,
            accepted: vec![(1, old_b1, cmd(11)), (3, old_b1, cmd(13))],
            snapshot: None,
        };
        let v2 = P1bVote {
            node: NodeId(2),
            ballot: b,
            ok: true,
            accepted: vec![(1, old_b2, cmd(21))],
            snapshot: None,
        };
        match l.on_p1b_votes(vec![v1, v2], 0) {
            Phase1Outcome::Won { reproposals } => {
                // Slots 0..4: 0 noop, 1 adopted (higher ballot wins), 2 noop, 3 adopted.
                assert_eq!(reproposals.len(), 4);
                assert!(reproposals[0].1.is_noop());
                assert_eq!(reproposals[1].1, cmd(21), "b2 > b1 so node 2's value wins");
                assert!(reproposals[2].1.is_noop());
                assert_eq!(reproposals[3].1, cmd(13));
            }
            other => panic!("expected win, got {other:?}"),
        }
    }

    #[test]
    fn campaign_preempted_by_higher_ballot() {
        let mut l = Leader::new(NodeId(0), 3);
        let b = l.start_campaign(Ballot::ZERO);
        let higher = Ballot::new(99, NodeId(2));
        let nack = P1bVote {
            node: NodeId(2),
            ballot: higher,
            ok: false,
            accepted: vec![],
            snapshot: None,
        };
        assert_eq!(
            l.on_p1b_votes(vec![nack], 0),
            Phase1Outcome::Preempted { higher }
        );
        assert!(!l.is_active());
        // Next campaign outbids the preemptor.
        let b2 = l.start_campaign(higher);
        assert!(b2 > higher);
        assert!(b2 > b);
    }

    fn active_leader(n: usize) -> Leader {
        let mut l = Leader::new(NodeId(0), n);
        let b = l.start_campaign(Ballot::ZERO);
        let votes: Vec<P1bVote> = (0..majority(n) as u32).map(|i| p1b_ok(i, b)).collect();
        match l.on_p1b_votes(votes, 0) {
            Phase1Outcome::Won { .. } => {}
            other => panic!("setup failed: {other:?}"),
        }
        l
    }

    #[test]
    fn propose_allocates_sequential_slots() {
        let mut l = active_leader(3);
        let s0 = l.propose(Some(NodeId(10)), cmd(1), SimTime::ZERO);
        let s1 = l.propose(Some(NodeId(10)), cmd(2), SimTime::ZERO);
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(l.outstanding().len(), 2);
    }

    #[test]
    fn p2b_quorum_commits() {
        let mut l = active_leader(5);
        let b = l.ballot();
        let slot = l.propose(Some(NodeId(10)), cmd(1), SimTime::ZERO);
        assert_eq!(l.on_p2b_votes(slot, vec![p2b_ok(0, b, slot)]), Ok(None));
        assert_eq!(l.on_p2b_votes(slot, vec![p2b_ok(1, b, slot)]), Ok(None));
        let r = l
            .on_p2b_votes(slot, vec![p2b_ok(2, b, slot)])
            .unwrap()
            .unwrap();
        assert_eq!(r.0, slot);
        assert_eq!(r.1, cmd(1));
        assert_eq!(r.2, Some(NodeId(10)));
        assert!(l.outstanding().is_empty());
        // Late votes for a committed slot are harmless.
        assert_eq!(l.on_p2b_votes(slot, vec![p2b_ok(3, b, slot)]), Ok(None));
    }

    #[test]
    fn aggregated_votes_commit_in_one_call() {
        let mut l = active_leader(5);
        let b = l.ballot();
        let slot = l.propose(None, cmd(1), SimTime::ZERO);
        // A PigPaxos relay aggregate carrying 3 votes at once.
        let votes = vec![p2b_ok(0, b, slot), p2b_ok(1, b, slot), p2b_ok(2, b, slot)];
        let r = l.on_p2b_votes(slot, votes).unwrap();
        assert!(
            r.is_some(),
            "aggregate satisfying quorum commits immediately"
        );
    }

    #[test]
    fn p2b_preemption_reported() {
        let mut l = active_leader(3);
        let slot = l.propose(None, cmd(1), SimTime::ZERO);
        let higher = Ballot::new(50, NodeId(1));
        let nack = P2bVote {
            node: NodeId(1),
            ballot: higher,
            slot,
            ok: false,
        };
        assert_eq!(l.on_p2b_votes(slot, vec![nack]), Err(higher));
    }

    #[test]
    fn demote_requeues_client_commands() {
        let mut l = active_leader(3);
        l.propose(Some(NodeId(10)), cmd(1), SimTime::ZERO);
        l.propose(None, cmd(2), SimTime::ZERO); // no client (e.g. noop)
        l.demote();
        assert!(!l.is_active());
        assert_eq!(l.pending.len(), 1, "only client-attached commands requeue");
        assert!(l.outstanding().is_empty());
    }

    #[test]
    fn stale_proposals_for_retry() {
        let mut l = active_leader(3);
        let t0 = SimTime::ZERO;
        l.propose(None, cmd(1), t0);
        let later = SimTime::from_millis(100);
        let stale = l.stale_proposals(later, simnet::SimDuration::from_millis(50));
        assert_eq!(stale.len(), 1);
        // Marked as re-sent: immediately asking again returns nothing.
        let stale2 = l.stale_proposals(later, simnet::SimDuration::from_millis(50));
        assert!(stale2.is_empty());
    }

    #[test]
    fn stale_proposals_back_off_exponentially() {
        let mut l = active_leader(3);
        let timeout = simnet::SimDuration::from_millis(50);
        l.propose(None, cmd(1), SimTime::ZERO);
        // Attempt schedule: due at 50ms after each send, then 100ms,
        // 200ms, 400ms, 800ms, capped at 800ms (16x) thereafter.
        let mut now = SimTime::ZERO;
        let mut resend_gaps = Vec::new();
        let mut last_send = SimTime::ZERO;
        for _ in 0..7 {
            // Walk time forward in 10ms ticks until the retry fires.
            loop {
                now += simnet::SimDuration::from_millis(10);
                if !l.stale_proposals(now, timeout).is_empty() {
                    resend_gaps.push(now.saturating_sub(last_send));
                    last_send = now;
                    break;
                }
            }
        }
        let gaps_ms: Vec<u64> = resend_gaps
            .iter()
            .map(|g| g.as_nanos() / 1_000_000)
            .collect();
        assert_eq!(gaps_ms, vec![50, 100, 200, 400, 800, 800, 800]);
    }

    #[test]
    fn preempted_leader_stops_retrying_outstanding() {
        let mut l = active_leader(3);
        l.propose(None, cmd(1), SimTime::ZERO);
        // A new campaign (e.g. after preemption) deactivates the leader
        // but does not drain `outstanding` — the retry scan must go
        // quiet instead of re-sending P2as for the lost ballot.
        l.start_campaign(l.ballot());
        assert!(!l.is_active());
        assert!(!l.outstanding().is_empty());
        let stale = l.stale_proposals(SimTime::from_secs(10), simnet::SimDuration::from_millis(50));
        assert!(stale.is_empty(), "inactive leader must not re-send");
    }

    #[test]
    fn duplicate_request_detection() {
        let mut l = active_leader(3);
        l.propose(Some(NodeId(10)), cmd(7), SimTime::ZERO);
        assert!(l.has_outstanding_request(RequestId {
            client: NodeId(9),
            seq: 7
        }));
        assert!(!l.has_outstanding_request(RequestId {
            client: NodeId(9),
            seq: 8
        }));
    }

    #[test]
    fn batched_votes_commit_multiple_slots_in_order() {
        let mut l = active_leader(5);
        let b = l.ballot();
        let s0 = l.propose(Some(NodeId(10)), cmd(1), SimTime::ZERO);
        let s1 = l.propose(Some(NodeId(11)), cmd(2), SimTime::ZERO);
        // One P2bBatch worth of votes: two nodes ack both slots (own
        // vote per slot arrives first, as the replica does it).
        for s in [s0, s1] {
            assert_eq!(l.on_p2b_votes(s, vec![p2b_ok(0, b, s)]), Ok(None));
        }
        let votes = vec![
            p2b_ok(1, b, s0),
            p2b_ok(1, b, s1),
            p2b_ok(2, b, s0),
            p2b_ok(2, b, s1),
        ];
        let out = l.on_p2b_batch(votes);
        assert_eq!(out.preempted, None);
        assert_eq!(out.committed.len(), 2);
        assert_eq!(out.committed[0].0, s0, "commits come out in slot order");
        assert_eq!(out.committed[1].0, s1);
        assert_eq!(out.committed[0].2, Some(NodeId(10)));
        assert!(l.outstanding().is_empty());
    }

    #[test]
    fn batched_votes_report_preemption() {
        let mut l = active_leader(3);
        let b = l.ballot();
        let s0 = l.propose(None, cmd(1), SimTime::ZERO);
        let higher = Ballot::new(50, NodeId(1));
        let votes = vec![
            p2b_ok(1, b, s0),
            P2bVote {
                node: NodeId(2),
                ballot: higher,
                slot: s0,
                ok: false,
            },
        ];
        let out = l.on_p2b_batch(votes);
        assert_eq!(out.preempted, Some(higher));
        assert!(out.committed.is_empty());
    }

    #[test]
    fn batched_votes_salvage_commits_despite_preemption() {
        // One aggregated batch completes slot s0's quorum AND carries a
        // higher-ballot nack on slot s1: s0's decision must not be lost.
        let mut l = active_leader(5);
        let b = l.ballot();
        let s0 = l.propose(Some(NodeId(10)), cmd(1), SimTime::ZERO);
        let s1 = l.propose(Some(NodeId(11)), cmd(2), SimTime::ZERO);
        for s in [s0, s1] {
            assert_eq!(l.on_p2b_votes(s, vec![p2b_ok(0, b, s)]), Ok(None));
            assert_eq!(l.on_p2b_votes(s, vec![p2b_ok(1, b, s)]), Ok(None));
        }
        let higher = Ballot::new(50, NodeId(3));
        let votes = vec![
            p2b_ok(2, b, s0), // third ack: s0 reaches quorum
            P2bVote {
                node: NodeId(3),
                ballot: higher,
                slot: s1,
                ok: false,
            },
        ];
        let out = l.on_p2b_batch(votes);
        assert_eq!(
            out.committed.len(),
            1,
            "quorum-complete slot survives the nack"
        );
        assert_eq!(out.committed[0].0, s0);
        assert_eq!(out.preempted, Some(higher));
    }
}
