//! # paxos — Multi-Paxos baseline
//!
//! The single-leader Multi-Paxos the PigPaxos paper compares against
//! (paper §2.1): a stable leader runs phase-1 once, proposes each command
//! with a phase-2a fanned out directly to all followers, and piggybacks
//! phase-3 commits on subsequent phase-2a/heartbeat messages via a commit
//! watermark.
//!
//! The [`Acceptor`] and [`Leader`] role state machines are shared with
//! the `pigpaxos` crate, which replaces only the communication pattern —
//! mirroring the paper's claim that PigPaxos "required almost no changes
//! to the core Paxos code".

#![warn(missing_docs)]

pub mod acceptor;
pub mod batching;
pub mod catchup;
pub mod config;
pub mod leader;
pub mod messages;
pub mod replica;

pub use acceptor::{Acceptor, CommitAdvance, LearnAnswer};
pub use batching::{
    abandon_leadership, accept_batch, apply_batch_votes, count_batch_votes, handle_executed,
    propose_batch, Batch, BatchAccept, BatchLane, BatchProposal, VoteWave,
};
pub use catchup::{
    apply_snapshot_transfer, compact_after_execution, install_p1b_snapshots, install_peer_snapshot,
};
pub use config::PaxosConfig;
pub use leader::{BatchVotesOutcome, Leader, Outstanding, Phase1Outcome};
pub use messages::{
    P1bVote, P2bVote, PaxosMsg, QrProbe, QrProbeVote, QrVoteEntry, QR_PROBE_LABELS,
};
pub use replica::PaxosReplica;
