//! Shared snapshot catch-up plumbing for the replica layer.
//!
//! Like [`crate::batching`], this module exists so the direct
//! Multi-Paxos replica and the PigPaxos overlay cannot drift: both
//! install peer snapshots identically — only the wire wrapper around
//! the resulting messages differs. The subtle ordering lives here once:
//! a phase-1b snapshot must be installed *before* the vote is counted,
//! so a winning campaign finishes from the restored executed frontier
//! instead of no-op-filling truncated (decided) slots.

use crate::acceptor::Acceptor;
use crate::messages::P1bVote;
use paxi::{Ballot, Command, CompactionStats, RequestId, SessionTable, Snapshot, Value};

/// Install a snapshot shipped by a peer (phase-1b attachment or
/// `SnapshotTransfer`): state machine + session window + counters.
/// Returns `false` when the snapshot is stale (acceptor untouched).
pub fn install_peer_snapshot(
    acceptor: &mut Acceptor,
    sessions: &mut SessionTable,
    stats: &CompactionStats,
    snapshot: &Snapshot,
) -> bool {
    if !acceptor.install_snapshot(snapshot) {
        return false;
    }
    sessions.merge_from(&snapshot.sessions);
    stats.note_install();
    true
}

/// Strip the snapshots attached to a wave of phase-1b promises and
/// install the most advanced one (several promisers may each attach
/// their full state; only the highest `up_to` matters — installing all
/// of them would clone the whole keyspace once per vote). Must run
/// *before* the votes are fed to the leader's campaign counting (see
/// the module docs).
pub fn install_p1b_snapshots(
    acceptor: &mut Acceptor,
    sessions: &mut SessionTable,
    stats: &CompactionStats,
    votes: &mut [P1bVote],
) {
    let mut best: Option<Box<Snapshot>> = None;
    for v in votes.iter_mut() {
        if let Some(snap) = v.snapshot.take() {
            // MSRV 1.80: spelled as a match (`Option::is_none_or` is 1.82+).
            let better = match &best {
                None => true,
                Some(b) => snap.up_to > b.up_to,
            };
            if better {
                best = Some(snap);
            }
        }
    }
    if let Some(snap) = best {
        install_peer_snapshot(acceptor, sessions, stats, &snap);
    }
}

/// Apply a received `SnapshotTransfer`: install the snapshot, commit
/// the decided tail entries, and return whatever became executable —
/// the caller routes that through its ordinary reply path.
#[allow(clippy::type_complexity)]
pub fn apply_snapshot_transfer(
    acceptor: &mut Acceptor,
    sessions: &mut SessionTable,
    stats: &CompactionStats,
    ballot: Ballot,
    snapshot: &Snapshot,
    entries: Vec<(u64, Command)>,
) -> Vec<(u64, RequestId, Option<Value>)> {
    install_peer_snapshot(acceptor, sessions, stats, snapshot);
    for (slot, cmd) in entries {
        acceptor.commit(slot, ballot, cmd);
    }
    acceptor.execute_ready()
}

/// The post-execution compaction hook both replicas run after every
/// execution wave: sample the retained log length *first* (the
/// pre-truncation value is the true memory peak the boundedness gate
/// must see), then snapshot + truncate if the policy says so.
pub fn compact_after_execution(
    acceptor: &mut Acceptor,
    sessions: &SessionTable,
    stats: &CompactionStats,
) {
    stats.observe_log_len(acceptor.log().len() as u64);
    if acceptor.maybe_compact(sessions) {
        stats.note_snapshot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::{ClientReply, Operation, SafetyMonitor, SnapshotConfig};
    use simnet::NodeId;

    fn cmd(seq: u64) -> Command {
        Command {
            id: RequestId {
                client: NodeId(9),
                seq,
            },
            op: Operation::Put(seq, Value::zeros(8)),
        }
    }

    fn b(r: u32) -> Ballot {
        Ballot::new(r, NodeId(0))
    }

    /// A donor acceptor that compacted past slot 10.
    fn donor() -> Acceptor {
        let mut a = Acceptor::new(NodeId(1), SafetyMonitor::new());
        a.set_snapshot_config(SnapshotConfig::every_ops(5));
        let mut sessions = SessionTable::new();
        for s in 0..12 {
            a.commit(s, b(1), cmd(s + 1));
            for (_, id, value) in a.execute_ready() {
                sessions.record(&ClientReply::ok(id, value));
            }
            a.maybe_compact(&sessions);
        }
        a
    }

    #[test]
    fn p1b_snapshots_install_before_counting() {
        let mut a = donor();
        let mut lagger = Acceptor::new(NodeId(2), SafetyMonitor::new());
        let mut sessions = SessionTable::new();
        let stats = CompactionStats::new();
        let mut votes = vec![a.on_p1a(b(2), 0)];
        assert!(votes[0].snapshot.is_some(), "donor attaches its snapshot");
        install_p1b_snapshots(&mut lagger, &mut sessions, &stats, &mut votes);
        assert!(votes[0].snapshot.is_none(), "attachment consumed");
        assert_eq!(stats.snapshots_installed(), 1);
        assert_eq!(lagger.commit_watermark(), a.snapshot_floor());
        // The donor's executed replies now answer retries at the lagger.
        assert!(sessions.replay(cmd(1).id).is_some());
    }

    #[test]
    fn only_the_most_advanced_p1b_snapshot_installs() {
        // Two donors with different compaction floors both attach
        // snapshots to the same promise wave; exactly one install runs,
        // and it is the most advanced state.
        let mut behind = Acceptor::new(NodeId(1), SafetyMonitor::new());
        behind.set_snapshot_config(SnapshotConfig::every_ops(8));
        let mut ahead = Acceptor::new(NodeId(3), SafetyMonitor::new());
        ahead.set_snapshot_config(SnapshotConfig::every_ops(3));
        let sessions_src = SessionTable::new();
        for s in 0..12 {
            for a in [&mut behind, &mut ahead] {
                a.commit(s, b(1), cmd(s + 1));
                a.execute_ready();
                a.maybe_compact(&sessions_src);
            }
        }
        assert!(ahead.snapshot_floor() > behind.snapshot_floor());
        let mut votes = vec![behind.on_p1a(b(2), 0), ahead.on_p1a(b(2), 0)];
        let mut lagger = Acceptor::new(NodeId(2), SafetyMonitor::new());
        let mut sessions = SessionTable::new();
        let stats = CompactionStats::new();
        install_p1b_snapshots(&mut lagger, &mut sessions, &stats, &mut votes);
        assert_eq!(stats.snapshots_installed(), 1, "one install, not per vote");
        assert_eq!(lagger.commit_watermark(), ahead.snapshot_floor());
        assert!(votes.iter().all(|v| v.snapshot.is_none()));
    }

    #[test]
    fn snapshot_transfer_applies_snapshot_then_tail() {
        let a = donor();
        let mut lagger = Acceptor::new(NodeId(2), SafetyMonitor::new());
        let mut sessions = SessionTable::new();
        let stats = CompactionStats::new();
        let snap = a.latest_snapshot().unwrap().clone();
        let tail: Vec<(u64, Command)> = (snap.up_to..12).map(|s| (s, cmd(s + 1))).collect();
        let executed =
            apply_snapshot_transfer(&mut lagger, &mut sessions, &stats, b(1), &snap, tail);
        assert_eq!(executed.len(), (12 - snap.up_to) as usize);
        assert_eq!(lagger.kv().fingerprint(), a.kv().fingerprint());
        assert_eq!(stats.snapshots_installed(), 1);
    }

    #[test]
    fn compact_hook_samples_peak_before_truncating() {
        let mut a = Acceptor::new(NodeId(1), SafetyMonitor::new());
        a.set_snapshot_config(SnapshotConfig::every_ops(4));
        let sessions = SessionTable::new();
        let stats = CompactionStats::new();
        for s in 0..4 {
            a.commit(s, b(1), cmd(s + 1));
        }
        a.execute_ready();
        compact_after_execution(&mut a, &sessions, &stats);
        assert_eq!(stats.snapshots_taken(), 1);
        assert_eq!(
            stats.max_log_len(),
            4,
            "the gate must see the pre-truncation peak, not the post-compact length"
        );
        assert_eq!(a.log().len(), 0, "truncation still happened");
    }
}
