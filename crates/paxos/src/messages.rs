//! Multi-Paxos wire messages.
//!
//! Phase-1b and phase-2b responses carry a *vector* of votes. A follower
//! replying directly sends a singleton; a PigPaxos relay sends the
//! concatenation of its group's votes. The leader's quorum counting is
//! identical either way — this is the mechanical realization of the
//! paper's observation that the relay/aggregate overlay changes only the
//! communication implementation, not the protocol.

use paxi::wire::{decode_command_body, op_tag};
use paxi::{Ballot, Command, Key, ProtoMessage, Snapshot, Value, HEADER_BYTES};
use simnet::wire::DOMAIN_PAXOS;
use simnet::{NodeId, Wire, WireError, WireHeader, WirePut, WireReader};
use std::sync::Arc;

/// One follower's phase-1b promise.
#[derive(Debug, Clone, PartialEq)]
pub struct P1bVote {
    /// The promising follower.
    pub node: NodeId,
    /// The ballot it promises (equals the P1a ballot on success; its
    /// higher promised ballot on rejection).
    pub ballot: Ballot,
    /// Whether the promise was granted.
    pub ok: bool,
    /// Every accepted-but-uncommitted `(slot, ballot, command)` the
    /// follower knows — the new leader must re-propose these.
    pub accepted: Vec<(u64, Ballot, Command)>,
    /// Attached when the candidate's reported watermark lies below this
    /// follower's compaction floor: the slots the candidate is missing
    /// no longer exist as log entries anywhere on this follower, so the
    /// promise ships the state-machine snapshot that replaced them. The
    /// candidate installs it before counting the vote. `None` whenever
    /// compaction is disabled (the default) or the candidate is current.
    pub snapshot: Option<Box<Snapshot>>,
}

/// One follower's phase-2b acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2bVote {
    /// The acknowledging follower.
    pub node: NodeId,
    /// Its current promised ballot (for nack diagnosis).
    pub ballot: Ballot,
    /// The slot being acknowledged.
    pub slot: u64,
    /// Whether the accept was granted.
    pub ok: bool,
}

/// One replica's answer to a quorum read (PQR, Charapko et al.
/// HotStorage'19; adopted for PigPaxos relay trees in the paper's §4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct QrVoteEntry {
    /// The answering replica.
    pub node: NodeId,
    /// Slot of the last *executed* write to the key at this replica
    /// (0 if never written).
    pub value_slot: u64,
    /// The executed value (None if the key was never written).
    pub value: Option<Value>,
    /// True if this replica has accepted-but-uncommitted writes to the
    /// key — the reader must rinse (retry) until they resolve.
    pub pending_write: bool,
}

impl QrVoteEntry {
    fn wire_bytes(&self) -> usize {
        13 + self.value.as_ref().map_or(0, |v| v.len())
    }
}

/// Every wire label a quorum-read probe or answer can travel under —
/// single probes and batched waves. Benchmarks and tests sum delivered
/// messages over this list to get "probe msgs/op"; keeping it next to
/// [`PaxosMsg`]'s `label()` match means a label rename cannot silently
/// zero out a measurement.
pub const QR_PROBE_LABELS: &[&str] = &["qr_read", "qr_vote", "qr_read_batch", "qr_vote_batch"];

/// One key probe inside a [`PaxosMsg::QrReadBatch`]: the proxy-local
/// read id, the read's *attempt* number (rinse retries bump it; answers
/// for older attempts must not count toward newer ones), and the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QrProbe {
    /// Proxy-local read id.
    pub id: u64,
    /// The attempt this probe belongs to (1 = first probe; each rinse
    /// restart bumps it).
    pub attempt: u32,
    /// The key being read.
    pub key: Key,
}

impl QrProbe {
    fn wire_bytes(&self) -> usize {
        8 + 4 + 8
    }
}

/// One replica's answer to one probe of a batched quorum read: the
/// probe's `(id, attempt)` echo plus the replica's [`QrVoteEntry`].
/// Relay aggregation of [`PaxosMsg::QrVoteBatch`] is plain
/// concatenation of these, exactly like `P2bVote`s in a `P2bBatch`.
#[derive(Debug, Clone, PartialEq)]
pub struct QrProbeVote {
    /// The read id this answers.
    pub id: u64,
    /// The attempt this answers (the proxy drops mismatches).
    pub attempt: u32,
    /// The replica's answer.
    pub entry: QrVoteEntry,
}

impl QrProbeVote {
    fn wire_bytes(&self) -> usize {
        8 + 4 + self.entry.wire_bytes()
    }
}

/// Multi-Paxos protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum PaxosMsg {
    /// Phase-1a: leadership proposal with a ballot.
    P1a {
        /// Candidate's ballot.
        ballot: Ballot,
        /// The candidate's own commit watermark: promises report every
        /// log entry (committed or not) from this slot up, so the
        /// candidate learns about slots decided while it was behind and
        /// never fills them with no-ops.
        from: u64,
    },
    /// Phase-1b: promise votes (singleton when direct, aggregated by
    /// PigPaxos relays).
    P1b {
        /// The ballot these votes answer.
        ballot: Ballot,
        /// Individual promises.
        votes: Vec<P1bVote>,
    },
    /// Phase-2a: accept request for one slot, carrying the commit
    /// watermark as the piggybacked phase-3 (every slot below it is
    /// decided).
    P2a {
        /// Leader's ballot.
        ballot: Ballot,
        /// Slot to fill.
        slot: u64,
        /// Proposed command.
        command: Command,
        /// All slots `< commit_up_to` are committed (phase-3 piggyback).
        commit_up_to: u64,
    },
    /// Phase-2b: accept votes (singleton or aggregated).
    P2b {
        /// The ballot these votes answer.
        ballot: Ballot,
        /// The slot these votes answer.
        slot: u64,
        /// Individual acks.
        votes: Vec<P2bVote>,
    },
    /// Phase-2a for a *contiguous run* of slots — the leader-side
    /// client-command batching fast path. One message amortizes
    /// `commands.len()` accept rounds; slot `first_slot + i` carries
    /// `commands[i]`. Semantically identical to that many `P2a`s.
    P2aBatch {
        /// Leader's ballot.
        ballot: Ballot,
        /// Slot of `commands[0]`.
        first_slot: u64,
        /// One command per consecutive slot. Shared (`Arc`) so that
        /// fanning the same wave out to every follower — and relaying
        /// it down a PigPaxos group — clones a refcount, not the
        /// command vector.
        commands: Arc<[Command]>,
        /// All slots `< commit_up_to` are committed (phase-3 piggyback).
        commit_up_to: u64,
    },
    /// Accept votes for a batched round: one [`P2bVote`] per `(node,
    /// slot)` pair, possibly aggregated across a relay group. Each vote
    /// carries its own slot.
    P2bBatch {
        /// The ballot these votes answer.
        ballot: Ballot,
        /// First slot of the batch being answered.
        first_slot: u64,
        /// Last slot of the batch being answered.
        last_slot: u64,
        /// Individual per-slot acks.
        votes: Vec<P2bVote>,
    },
    /// Leader liveness + commit-watermark propagation when idle.
    Heartbeat {
        /// Leader's ballot.
        ballot: Ballot,
        /// Commit watermark (as in P2a).
        commit_up_to: u64,
    },
    /// Follower asks the leader for committed entries it is missing
    /// (gap repair after drops or relay failures). Carries the precise
    /// missing slots so the reply stays minimal; repair is batched and
    /// rate-limited at the follower to keep it off the hot path.
    LearnReq {
        /// The slots the follower is missing.
        slots: Vec<u64>,
    },
    /// Leader's reply with decided entries.
    LearnRep {
        /// Leader's ballot.
        ballot: Ballot,
        /// Decided `(slot, command)` pairs.
        entries: Vec<(u64, Command)>,
    },
    /// Snapshot-based catch-up: the answer to a `LearnReq` whose
    /// missing slots lie below the sender's compaction floor. The slots
    /// no longer exist as log entries, so the receiver installs the
    /// state-machine snapshot (covering every slot `< snapshot.up_to`)
    /// and then commits the decided tail entries above the floor.
    SnapshotTransfer {
        /// Sender's promised ballot (commit bookkeeping for `entries`).
        ballot: Ballot,
        /// The state replacing the truncated prefix.
        snapshot: Box<Snapshot>,
        /// Decided `(slot, command)` pairs at or above the floor that
        /// the requester also asked for.
        entries: Vec<(u64, Command)>,
    },
    /// Quorum-read probe from a reading proxy (§4.3).
    QrRead {
        /// The proxy driving the read (aggregates travel back to it).
        reader: NodeId,
        /// Proxy-local read id.
        id: u64,
        /// The read's attempt number. A rinse restart bumps it, and the
        /// proxy drops answers tagged with an older attempt — a stale
        /// vote counted toward a newer attempt could complete the read
        /// without re-checking for pending writes, breaking
        /// linearizability.
        attempt: u32,
        /// The key being read.
        key: Key,
    },
    /// Quorum-read answers (singleton when direct, aggregated by
    /// PigPaxos relays, like P1b/P2b).
    QrVote {
        /// The proxy this answers.
        reader: NodeId,
        /// The read id it answers.
        id: u64,
        /// The attempt it answers (echoed from the `QrRead`).
        attempt: u32,
        /// Individual replica answers.
        votes: Vec<QrVoteEntry>,
    },
    /// A *wave* of quorum-read probes — the probe-side counterpart of
    /// `P2aBatch`. The proxy coalesces the keys of several pending
    /// reads and ships them down the relay tree in one message per
    /// group; each replica answers all probes in one pass, and each
    /// relay returns a single aggregated [`PaxosMsg::QrVoteBatch`]
    /// uplink per wave.
    QrReadBatch {
        /// The proxy driving the reads (aggregates travel back to it).
        reader: NodeId,
        /// Proxy-local wave id (keys the relay aggregation round).
        wave: u64,
        /// The coalesced probes.
        probes: Vec<QrProbe>,
    },
    /// Answers to a probe wave: one [`QrProbeVote`] per `(replica,
    /// probe)` pair, possibly aggregated across a relay group.
    QrVoteBatch {
        /// The proxy this answers.
        reader: NodeId,
        /// The wave it answers.
        wave: u64,
        /// Individual per-probe answers.
        votes: Vec<QrProbeVote>,
    },
}

impl PaxosMsg {
    fn votes_bytes_p1(votes: &[P1bVote]) -> usize {
        votes
            .iter()
            .map(|v| {
                // 14 = node (4) + ballot (8) + flags (1) + accepted
                // count (1); a count >= 255 escapes to an extra u32.
                14 + if v.accepted.len() >= 255 { 4 } else { 0 }
                    + v.accepted
                        .iter()
                        .map(|(_, _, c)| 16 + c.payload_bytes())
                        .sum::<usize>()
                    + v.snapshot.as_ref().map_or(0, |s| s.wire_bytes())
            })
            .sum()
    }
}

impl ProtoMessage for PaxosMsg {
    fn wire_size(&self) -> usize {
        HEADER_BYTES
            + match self {
                PaxosMsg::P1a { .. } => 16,
                PaxosMsg::P1b { votes, .. } => 8 + PaxosMsg::votes_bytes_p1(votes),
                PaxosMsg::P2a { command, .. } => 8 + 8 + 8 + command.payload_bytes(),
                PaxosMsg::P2b { votes, .. } => 16 + votes.len() * 14,
                PaxosMsg::P2aBatch { commands, .. } => {
                    8 + 8
                        + 8
                        + commands
                            .iter()
                            .map(|c| 4 + c.payload_bytes())
                            .sum::<usize>()
                }
                PaxosMsg::P2bBatch { votes, .. } => 24 + votes.len() * 14,
                PaxosMsg::Heartbeat { .. } => 16,
                PaxosMsg::LearnReq { slots } => 8 + slots.len() * 8,
                PaxosMsg::LearnRep { entries, .. } => {
                    8 + entries
                        .iter()
                        .map(|(_, c)| 8 + c.payload_bytes())
                        .sum::<usize>()
                }
                PaxosMsg::SnapshotTransfer {
                    snapshot, entries, ..
                } => {
                    8 + snapshot.wire_bytes()
                        + entries
                            .iter()
                            .map(|(_, c)| 8 + c.payload_bytes())
                            .sum::<usize>()
                }
                PaxosMsg::QrRead { .. } => 24,
                PaxosMsg::QrVote { votes, .. } => {
                    16 + votes.iter().map(|v| v.wire_bytes()).sum::<usize>()
                }
                PaxosMsg::QrReadBatch { probes, .. } => {
                    12 + probes.iter().map(|p| p.wire_bytes()).sum::<usize>()
                }
                PaxosMsg::QrVoteBatch { votes, .. } => {
                    12 + votes.iter().map(|v| v.wire_bytes()).sum::<usize>()
                }
            }
    }

    fn label(&self) -> &'static str {
        match self {
            PaxosMsg::P1a { .. } => "p1a",
            PaxosMsg::P1b { .. } => "p1b",
            PaxosMsg::P2a { .. } => "p2a",
            PaxosMsg::P2b { .. } => "p2b",
            PaxosMsg::P2aBatch { .. } => "p2a_batch",
            PaxosMsg::P2bBatch { .. } => "p2b_batch",
            PaxosMsg::Heartbeat { .. } => "heartbeat",
            PaxosMsg::LearnReq { .. } => "learnreq",
            PaxosMsg::LearnRep { .. } => "learnrep",
            PaxosMsg::SnapshotTransfer { .. } => "snapshot",
            PaxosMsg::QrRead { .. } => "qr_read",
            PaxosMsg::QrVote { .. } => "qr_vote",
            PaxosMsg::QrReadBatch { .. } => "qr_read_batch",
            PaxosMsg::QrVoteBatch { .. } => "qr_vote_batch",
        }
    }
}

// ---------------------------------------------------------------------
// Wire codec. Every variant's encoding is exactly `wire_size()` bytes;
// see `simnet::wire` for the framing format and packing conventions.
// ---------------------------------------------------------------------

const KIND_P1A: u8 = 0;
const KIND_P1B: u8 = 1;
const KIND_P2A: u8 = 2;
const KIND_P2B: u8 = 3;
const KIND_P2A_BATCH: u8 = 4;
const KIND_P2B_BATCH: u8 = 5;
const KIND_HEARTBEAT: u8 = 6;
const KIND_LEARN_REQ: u8 = 7;
const KIND_LEARN_REP: u8 = 8;
const KIND_SNAPSHOT: u8 = 9;
const KIND_QR_READ: u8 = 10;
const KIND_QR_VOTE: u8 = 11;
const KIND_QR_READ_BATCH: u8 = 12;
const KIND_QR_VOTE_BATCH: u8 = 13;

/// Largest value that fits the 14-bit length half of a packed
/// `(op tag, len)` entry metadata word (log entries inside P1b
/// promises, learn replies, and snapshot tails).
const META_LEN_MAX: usize = (1 << 14) - 1;

fn encode_entry_meta(cmd: &Command, out: &mut Vec<u8>) {
    let len = paxi::wire::command_value_len(cmd);
    assert!(
        len <= META_LEN_MAX,
        "entry value of {len}B overflows the 14-bit length field"
    );
    out.put_u16(((op_tag(&cmd.op) as u16) << 14) | len as u16);
}

fn decode_entry_command(r: &mut WireReader<'_>) -> Result<Command, WireError> {
    let meta = r.u16("entry.meta")?;
    decode_command_body((meta >> 14) as u8, Some((meta & 0x3FFF) as usize), r)
}

/// `(slot, command)` pair inside LearnRep / SnapshotTransfer: slot as
/// u48 + entry meta (8 bytes total of prefix, matching the arithmetic's
/// `8 + payload` per entry), then the sized command body.
fn encode_learn_entry(slot: u64, cmd: &Command, out: &mut Vec<u8>) {
    out.put_u48(slot);
    encode_entry_meta(cmd, out);
    paxi::wire::encode_command_body(cmd, out);
}

fn decode_learn_entry(r: &mut WireReader<'_>) -> Result<(u64, Command), WireError> {
    let slot = r.u48("entry.slot")?;
    Ok((slot, decode_entry_command(r)?))
}

const P1B_OK: u8 = 1 << 0;
const P1B_SNAPSHOT: u8 = 1 << 1;

fn encode_p1b_vote(v: &P1bVote, out: &mut Vec<u8>) {
    out.put_u32(v.node.0);
    v.ballot.encode_into(out);
    let mut flags = 0u8;
    if v.ok {
        flags |= P1B_OK;
    }
    if v.snapshot.is_some() {
        flags |= P1B_SNAPSHOT;
    }
    out.put_u8(flags);
    if v.accepted.len() < 255 {
        out.put_u8(v.accepted.len() as u8);
    } else {
        out.put_u8(255);
        out.put_u32(v.accepted.len() as u32);
    }
    for (slot, ballot, cmd) in &v.accepted {
        out.put_u48(*slot);
        ballot.encode_into(out);
        encode_entry_meta(cmd, out);
        paxi::wire::encode_command_body(cmd, out);
    }
    if let Some(s) = &v.snapshot {
        s.encode_into(out);
    }
}

fn decode_p1b_vote(r: &mut WireReader<'_>) -> Result<P1bVote, WireError> {
    let node = NodeId(r.u32("p1b.node")?);
    let ballot = Ballot::decode(r)?;
    let flags = r.u8("p1b.flags")?;
    let count = match r.u8("p1b.accepted_count")? {
        255 => r.u32("p1b.accepted_count32")? as usize,
        n => n as usize,
    };
    // 6 slot + 8 ballot + 2 meta + 12 request id per accepted entry.
    let mut accepted = Vec::with_capacity(r.capacity_for(count, 28));
    for _ in 0..count {
        let slot = r.u48("p1b.accepted_slot")?;
        let b = Ballot::decode(r)?;
        accepted.push((slot, b, decode_entry_command(r)?));
    }
    let snapshot = if flags & P1B_SNAPSHOT != 0 {
        Some(Box::new(Snapshot::decode(r)?))
    } else {
        None
    };
    Ok(P1bVote {
        node,
        ballot,
        ok: flags & P1B_OK != 0,
        accepted,
        snapshot,
    })
}

/// P2b votes pack `(ok, slot)` into a u16: bit 15 = ok, low 15 bits =
/// the vote's slot as a delta from the enclosing message's base slot
/// (`slot` for P2b, `first_slot` for P2bBatch) — 14 bytes per vote, as
/// charged.
fn encode_p2b_vote(v: &P2bVote, base: u64, out: &mut Vec<u8>) {
    out.put_u32(v.node.0);
    v.ballot.encode_into(out);
    let delta = v
        .slot
        .checked_sub(base)
        .expect("vote slot below batch base");
    assert!(
        delta < (1 << 15),
        "vote slot delta {delta} overflows 15 bits"
    );
    out.put_u16(((v.ok as u16) << 15) | delta as u16);
}

fn decode_p2b_vote(base: u64, r: &mut WireReader<'_>) -> Result<P2bVote, WireError> {
    let node = NodeId(r.u32("p2b.node")?);
    let ballot = Ballot::decode(r)?;
    let packed = r.u16("p2b.packed")?;
    Ok(P2bVote {
        node,
        ballot,
        slot: base + (packed & 0x7FFF) as u64,
        ok: packed & (1 << 15) != 0,
    })
}

const QR_PENDING: u8 = 1 << 0;
const QR_VALUE: u8 = 1 << 1;

fn encode_qr_entry(e: &QrVoteEntry, out: &mut Vec<u8>) {
    out.put_u32(e.node.0);
    out.put_u48(e.value_slot);
    let mut flags = 0u8;
    if e.pending_write {
        flags |= QR_PENDING;
    }
    if e.value.is_some() {
        flags |= QR_VALUE;
    }
    out.put_u8(flags);
    let len = e.value.as_ref().map_or(0, |v| v.len());
    assert!(len <= u16::MAX as usize, "qr value of {len}B overflows u16");
    out.put_u16(len as u16);
    if let Some(v) = &e.value {
        out.extend_from_slice(&v.0);
    }
}

fn decode_qr_entry(r: &mut WireReader<'_>) -> Result<QrVoteEntry, WireError> {
    let node = NodeId(r.u32("qr.node")?);
    let value_slot = r.u48("qr.value_slot")?;
    let flags = r.u8("qr.flags")?;
    let len = r.u16("qr.value_len")? as usize;
    let value = if flags & QR_VALUE != 0 {
        Some(Value(r.read_value(len, "qr.value")?))
    } else {
        None
    };
    Ok(QrVoteEntry {
        node,
        value_slot,
        value,
        pending_write: flags & QR_PENDING != 0,
    })
}

fn header(kind: u8) -> WireHeader {
    WireHeader::new(DOMAIN_PAXOS, kind)
}

impl Wire for PaxosMsg {
    const KIND: &'static str = "PaxosMsg";

    /// One-pass encode: `wire_size` is exact (`encode().len() ==
    /// wire_size()` is the schema invariant), so sizing the buffer up
    /// front makes serialization a single allocation with no growth
    /// reallocs — the same buffer discipline the net framing uses.
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(paxi::ProtoMessage::wire_size(self));
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            PaxosMsg::P1a { ballot, from } => {
                header(KIND_P1A).encode_into(out);
                ballot.encode_into(out);
                out.put_u64(*from);
            }
            PaxosMsg::P1b { ballot, votes } => {
                header(KIND_P1B).aux0(votes.len() as u32).encode_into(out);
                ballot.encode_into(out);
                for v in votes {
                    encode_p1b_vote(v, out);
                }
            }
            PaxosMsg::P2a {
                ballot,
                slot,
                command,
                commit_up_to,
            } => {
                header(KIND_P2A).flags(op_tag(&command.op)).encode_into(out);
                ballot.encode_into(out);
                out.put_u64(*slot);
                out.put_u64(*commit_up_to);
                paxi::wire::encode_command_body(command, out);
            }
            PaxosMsg::P2b {
                ballot,
                slot,
                votes,
            } => {
                header(KIND_P2B).aux0(votes.len() as u32).encode_into(out);
                ballot.encode_into(out);
                out.put_u64(*slot);
                for v in votes {
                    encode_p2b_vote(v, *slot, out);
                }
            }
            PaxosMsg::P2aBatch {
                ballot,
                first_slot,
                commands,
                commit_up_to,
            } => {
                header(KIND_P2A_BATCH)
                    .aux0(commands.len() as u32)
                    .encode_into(out);
                ballot.encode_into(out);
                out.put_u64(*first_slot);
                out.put_u64(*commit_up_to);
                for cmd in commands.iter() {
                    // 4-byte prefix per command: op tag u8 + value len
                    // u24 (the batch arithmetic's `4 + payload`).
                    let len = paxi::wire::command_value_len(cmd);
                    assert!(len < (1 << 24), "batched value of {len}B overflows u24");
                    out.put_u8(op_tag(&cmd.op));
                    out.extend_from_slice(&(len as u32).to_le_bytes()[..3]);
                    paxi::wire::encode_command_body(cmd, out);
                }
            }
            PaxosMsg::P2bBatch {
                ballot,
                first_slot,
                last_slot,
                votes,
            } => {
                header(KIND_P2B_BATCH)
                    .aux0(votes.len() as u32)
                    .encode_into(out);
                ballot.encode_into(out);
                out.put_u64(*first_slot);
                out.put_u64(*last_slot);
                for v in votes {
                    encode_p2b_vote(v, *first_slot, out);
                }
            }
            PaxosMsg::Heartbeat {
                ballot,
                commit_up_to,
            } => {
                header(KIND_HEARTBEAT).encode_into(out);
                ballot.encode_into(out);
                out.put_u64(*commit_up_to);
            }
            PaxosMsg::LearnReq { slots } => {
                header(KIND_LEARN_REQ).encode_into(out);
                out.put_u64(slots.len() as u64);
                for s in slots {
                    out.put_u64(*s);
                }
            }
            PaxosMsg::LearnRep { ballot, entries } => {
                header(KIND_LEARN_REP)
                    .aux0(entries.len() as u32)
                    .encode_into(out);
                ballot.encode_into(out);
                for (slot, cmd) in entries {
                    encode_learn_entry(*slot, cmd, out);
                }
            }
            PaxosMsg::SnapshotTransfer {
                ballot,
                snapshot,
                entries,
            } => {
                header(KIND_SNAPSHOT)
                    .aux0(entries.len() as u32)
                    .encode_into(out);
                ballot.encode_into(out);
                snapshot.encode_into(out);
                for (slot, cmd) in entries {
                    encode_learn_entry(*slot, cmd, out);
                }
            }
            PaxosMsg::QrRead {
                reader,
                id,
                attempt,
                key,
            } => {
                header(KIND_QR_READ).encode_into(out);
                out.put_u32(reader.0);
                out.put_u64(*id);
                out.put_u32(*attempt);
                out.put_u64(*key);
            }
            PaxosMsg::QrVote {
                reader,
                id,
                attempt,
                votes,
            } => {
                header(KIND_QR_VOTE)
                    .aux0(votes.len() as u32)
                    .encode_into(out);
                out.put_u32(reader.0);
                out.put_u64(*id);
                out.put_u32(*attempt);
                for v in votes {
                    encode_qr_entry(v, out);
                }
            }
            PaxosMsg::QrReadBatch {
                reader,
                wave,
                probes,
            } => {
                header(KIND_QR_READ_BATCH)
                    .aux0(probes.len() as u32)
                    .encode_into(out);
                out.put_u32(reader.0);
                out.put_u64(*wave);
                for p in probes {
                    out.put_u64(p.id);
                    out.put_u32(p.attempt);
                    out.put_u64(p.key);
                }
            }
            PaxosMsg::QrVoteBatch {
                reader,
                wave,
                votes,
            } => {
                header(KIND_QR_VOTE_BATCH)
                    .aux0(votes.len() as u32)
                    .encode_into(out);
                out.put_u32(reader.0);
                out.put_u64(*wave);
                for v in votes {
                    out.put_u64(v.id);
                    out.put_u32(v.attempt);
                    encode_qr_entry(&v.entry, out);
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let h = WireHeader::decode(r)?;
        match h.kind {
            KIND_P1A => Ok(PaxosMsg::P1a {
                ballot: Ballot::decode(r)?,
                from: r.u64("p1a.from")?,
            }),
            KIND_P1B => {
                let ballot = Ballot::decode(r)?;
                // 4 node + 8 ballot + 1 flags + 1 count per vote.
                let mut votes = Vec::with_capacity(r.capacity_for(h.aux0 as usize, 14));
                for _ in 0..h.aux0 {
                    votes.push(decode_p1b_vote(r)?);
                }
                Ok(PaxosMsg::P1b { ballot, votes })
            }
            KIND_P2A => {
                let ballot = Ballot::decode(r)?;
                let slot = r.u64("p2a.slot")?;
                let commit_up_to = r.u64("p2a.commit_up_to")?;
                Ok(PaxosMsg::P2a {
                    ballot,
                    slot,
                    command: decode_command_body(h.flags, None, r)?,
                    commit_up_to,
                })
            }
            KIND_P2B => {
                let ballot = Ballot::decode(r)?;
                let slot = r.u64("p2b.slot")?;
                // 14 bytes per packed vote.
                let mut votes = Vec::with_capacity(r.capacity_for(h.aux0 as usize, 14));
                for _ in 0..h.aux0 {
                    votes.push(decode_p2b_vote(slot, r)?);
                }
                Ok(PaxosMsg::P2b {
                    ballot,
                    slot,
                    votes,
                })
            }
            KIND_P2A_BATCH => {
                let ballot = Ballot::decode(r)?;
                let first_slot = r.u64("p2a_batch.first_slot")?;
                let commit_up_to = r.u64("p2a_batch.commit_up_to")?;
                // 1 tag + 3 len + 12 request id per command.
                let mut commands = Vec::with_capacity(r.capacity_for(h.aux0 as usize, 16));
                for _ in 0..h.aux0 {
                    let tag = r.u8("p2a_batch.op")?;
                    let b = r.bytes(3, "p2a_batch.len")?;
                    let len = u32::from_le_bytes([b[0], b[1], b[2], 0]) as usize;
                    commands.push(decode_command_body(tag, Some(len), r)?);
                }
                Ok(PaxosMsg::P2aBatch {
                    ballot,
                    first_slot,
                    commands: commands.into(),
                    commit_up_to,
                })
            }
            KIND_P2B_BATCH => {
                let ballot = Ballot::decode(r)?;
                let first_slot = r.u64("p2b_batch.first_slot")?;
                let last_slot = r.u64("p2b_batch.last_slot")?;
                // 14 bytes per packed vote.
                let mut votes = Vec::with_capacity(r.capacity_for(h.aux0 as usize, 14));
                for _ in 0..h.aux0 {
                    votes.push(decode_p2b_vote(first_slot, r)?);
                }
                Ok(PaxosMsg::P2bBatch {
                    ballot,
                    first_slot,
                    last_slot,
                    votes,
                })
            }
            KIND_HEARTBEAT => Ok(PaxosMsg::Heartbeat {
                ballot: Ballot::decode(r)?,
                commit_up_to: r.u64("heartbeat.commit_up_to")?,
            }),
            KIND_LEARN_REQ => {
                let n = r.u64("learnreq.count")?;
                let mut slots = Vec::with_capacity(r.capacity_for(n as usize, 8));
                for _ in 0..n {
                    slots.push(r.u64("learnreq.slot")?);
                }
                Ok(PaxosMsg::LearnReq { slots })
            }
            KIND_LEARN_REP => {
                let ballot = Ballot::decode(r)?;
                // 6 slot + 2 meta + 12 request id per entry.
                let mut entries = Vec::with_capacity(r.capacity_for(h.aux0 as usize, 20));
                for _ in 0..h.aux0 {
                    entries.push(decode_learn_entry(r)?);
                }
                Ok(PaxosMsg::LearnRep { ballot, entries })
            }
            KIND_SNAPSHOT => {
                let ballot = Ballot::decode(r)?;
                let snapshot = Box::new(Snapshot::decode(r)?);
                let mut entries = Vec::with_capacity(r.capacity_for(h.aux0 as usize, 20));
                for _ in 0..h.aux0 {
                    entries.push(decode_learn_entry(r)?);
                }
                Ok(PaxosMsg::SnapshotTransfer {
                    ballot,
                    snapshot,
                    entries,
                })
            }
            KIND_QR_READ => Ok(PaxosMsg::QrRead {
                reader: NodeId(r.u32("qr_read.reader")?),
                id: r.u64("qr_read.id")?,
                attempt: r.u32("qr_read.attempt")?,
                key: r.u64("qr_read.key")?,
            }),
            KIND_QR_VOTE => {
                let reader = NodeId(r.u32("qr_vote.reader")?);
                let id = r.u64("qr_vote.id")?;
                let attempt = r.u32("qr_vote.attempt")?;
                // 4 node + 6 slot + 1 flags + 2 len per entry.
                let mut votes = Vec::with_capacity(r.capacity_for(h.aux0 as usize, 13));
                for _ in 0..h.aux0 {
                    votes.push(decode_qr_entry(r)?);
                }
                Ok(PaxosMsg::QrVote {
                    reader,
                    id,
                    attempt,
                    votes,
                })
            }
            KIND_QR_READ_BATCH => {
                let reader = NodeId(r.u32("qr_batch.reader")?);
                let wave = r.u64("qr_batch.wave")?;
                // 8 id + 4 attempt + 8 key per probe.
                let mut probes = Vec::with_capacity(r.capacity_for(h.aux0 as usize, 20));
                for _ in 0..h.aux0 {
                    probes.push(QrProbe {
                        id: r.u64("qr_probe.id")?,
                        attempt: r.u32("qr_probe.attempt")?,
                        key: r.u64("qr_probe.key")?,
                    });
                }
                Ok(PaxosMsg::QrReadBatch {
                    reader,
                    wave,
                    probes,
                })
            }
            KIND_QR_VOTE_BATCH => {
                let reader = NodeId(r.u32("qr_vbatch.reader")?);
                let wave = r.u64("qr_vbatch.wave")?;
                // 8 id + 4 attempt + a 13-byte entry per vote.
                let mut votes = Vec::with_capacity(r.capacity_for(h.aux0 as usize, 25));
                for _ in 0..h.aux0 {
                    let id = r.u64("qr_pvote.id")?;
                    let attempt = r.u32("qr_pvote.attempt")?;
                    votes.push(QrProbeVote {
                        id,
                        attempt,
                        entry: decode_qr_entry(r)?,
                    });
                }
                Ok(PaxosMsg::QrVoteBatch {
                    reader,
                    wave,
                    votes,
                })
            }
            other => Err(WireError::BadTag {
                what: "paxos kind",
                got: other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::{Operation, RequestId, Value};

    fn cmd(bytes: usize) -> Command {
        Command {
            id: RequestId {
                client: NodeId(9),
                seq: 1,
            },
            op: Operation::Put(1, Value::zeros(bytes)),
        }
    }

    #[test]
    fn p2a_size_scales_with_payload() {
        let small = PaxosMsg::P2a {
            ballot: Ballot::ZERO,
            slot: 0,
            command: cmd(8),
            commit_up_to: 0,
        };
        let large = PaxosMsg::P2a {
            ballot: Ballot::ZERO,
            slot: 0,
            command: cmd(1280),
            commit_up_to: 0,
        };
        assert_eq!(large.wire_size() - small.wire_size(), 1272);
    }

    #[test]
    fn aggregated_p2b_bigger_than_single() {
        let vote = |n| P2bVote {
            node: NodeId(n),
            ballot: Ballot::ZERO,
            slot: 0,
            ok: true,
        };
        let single = PaxosMsg::P2b {
            ballot: Ballot::ZERO,
            slot: 0,
            votes: vec![vote(1)],
        };
        let agg = PaxosMsg::P2b {
            ballot: Ballot::ZERO,
            slot: 0,
            votes: (0..8).map(vote).collect(),
        };
        assert!(agg.wire_size() > single.wire_size());
        assert_eq!(agg.wire_size() - single.wire_size(), 7 * 14);
    }

    #[test]
    fn p1b_size_includes_accepted_entries() {
        let empty = PaxosMsg::P1b {
            ballot: Ballot::ZERO,
            votes: vec![P1bVote {
                node: NodeId(1),
                ballot: Ballot::ZERO,
                ok: true,
                accepted: vec![],
                snapshot: None,
            }],
        };
        let loaded = PaxosMsg::P1b {
            ballot: Ballot::ZERO,
            votes: vec![P1bVote {
                node: NodeId(1),
                ballot: Ballot::ZERO,
                ok: true,
                accepted: vec![(3, Ballot::ZERO, cmd(100))],
                snapshot: None,
            }],
        };
        assert!(loaded.wire_size() > empty.wire_size() + 100);
    }

    #[test]
    fn batch_scales_sublinearly_vs_singles() {
        let singles: usize = (0..8)
            .map(|s| {
                PaxosMsg::P2a {
                    ballot: Ballot::ZERO,
                    slot: s,
                    command: cmd(64),
                    commit_up_to: 0,
                }
                .wire_size()
            })
            .sum();
        let batch = PaxosMsg::P2aBatch {
            ballot: Ballot::ZERO,
            first_slot: 0,
            commands: (0..8).map(|_| cmd(64)).collect(),
            commit_up_to: 0,
        }
        .wire_size();
        assert!(
            batch < singles,
            "one batch message ({batch}B) must beat 8 singles ({singles}B)"
        );
        assert_eq!(
            PaxosMsg::P2aBatch {
                ballot: Ballot::ZERO,
                first_slot: 0,
                commands: vec![cmd(64)].into(),
                commit_up_to: 0
            }
            .label(),
            "p2a_batch"
        );
    }

    #[test]
    fn p2b_batch_size_scales_with_votes() {
        let vote = |n, s| P2bVote {
            node: NodeId(n),
            ballot: Ballot::ZERO,
            slot: s,
            ok: true,
        };
        let small = PaxosMsg::P2bBatch {
            ballot: Ballot::ZERO,
            first_slot: 0,
            last_slot: 3,
            votes: vec![vote(1, 0)],
        };
        let big = PaxosMsg::P2bBatch {
            ballot: Ballot::ZERO,
            first_slot: 0,
            last_slot: 3,
            votes: (0..4)
                .flat_map(|s| (1..4).map(move |n| vote(n, s)))
                .collect(),
        };
        assert_eq!(big.wire_size() - small.wire_size(), 11 * 14);
        assert_eq!(big.label(), "p2b_batch");
    }

    #[test]
    fn probe_batch_scales_sublinearly_vs_single_probes() {
        let single = |id| PaxosMsg::QrRead {
            reader: NodeId(1),
            id,
            attempt: 1,
            key: 7,
        };
        let singles: usize = (0..8).map(|i| single(i).wire_size()).sum();
        let batch = PaxosMsg::QrReadBatch {
            reader: NodeId(1),
            wave: 0,
            probes: (0..8)
                .map(|id| QrProbe {
                    id,
                    attempt: 1,
                    key: 7,
                })
                .collect(),
        };
        assert!(
            batch.wire_size() < singles,
            "one probe wave ({}B) must beat 8 single probes ({singles}B)",
            batch.wire_size()
        );
        assert_eq!(batch.label(), "qr_read_batch");
        let vote = PaxosMsg::QrVoteBatch {
            reader: NodeId(1),
            wave: 0,
            votes: vec![QrProbeVote {
                id: 3,
                attempt: 1,
                entry: QrVoteEntry {
                    node: NodeId(2),
                    value_slot: 0,
                    value: None,
                    pending_write: false,
                },
            }],
        };
        assert_eq!(vote.label(), "qr_vote_batch");
        assert!(vote.wire_size() > 0);
    }

    #[test]
    fn labels() {
        assert_eq!(
            PaxosMsg::P1a {
                ballot: Ballot::ZERO,
                from: 0
            }
            .label(),
            "p1a"
        );
        assert_eq!(
            PaxosMsg::Heartbeat {
                ballot: Ballot::ZERO,
                commit_up_to: 0
            }
            .label(),
            "heartbeat"
        );
    }
}
