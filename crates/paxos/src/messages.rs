//! Multi-Paxos wire messages.
//!
//! Phase-1b and phase-2b responses carry a *vector* of votes. A follower
//! replying directly sends a singleton; a PigPaxos relay sends the
//! concatenation of its group's votes. The leader's quorum counting is
//! identical either way — this is the mechanical realization of the
//! paper's observation that the relay/aggregate overlay changes only the
//! communication implementation, not the protocol.

use paxi::{Ballot, Command, Key, ProtoMessage, Snapshot, Value, HEADER_BYTES};
use simnet::NodeId;

/// One follower's phase-1b promise.
#[derive(Debug, Clone, PartialEq)]
pub struct P1bVote {
    /// The promising follower.
    pub node: NodeId,
    /// The ballot it promises (equals the P1a ballot on success; its
    /// higher promised ballot on rejection).
    pub ballot: Ballot,
    /// Whether the promise was granted.
    pub ok: bool,
    /// Every accepted-but-uncommitted `(slot, ballot, command)` the
    /// follower knows — the new leader must re-propose these.
    pub accepted: Vec<(u64, Ballot, Command)>,
    /// Attached when the candidate's reported watermark lies below this
    /// follower's compaction floor: the slots the candidate is missing
    /// no longer exist as log entries anywhere on this follower, so the
    /// promise ships the state-machine snapshot that replaced them. The
    /// candidate installs it before counting the vote. `None` whenever
    /// compaction is disabled (the default) or the candidate is current.
    pub snapshot: Option<Box<Snapshot>>,
}

/// One follower's phase-2b acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2bVote {
    /// The acknowledging follower.
    pub node: NodeId,
    /// Its current promised ballot (for nack diagnosis).
    pub ballot: Ballot,
    /// The slot being acknowledged.
    pub slot: u64,
    /// Whether the accept was granted.
    pub ok: bool,
}

/// One replica's answer to a quorum read (PQR, Charapko et al.
/// HotStorage'19; adopted for PigPaxos relay trees in the paper's §4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct QrVoteEntry {
    /// The answering replica.
    pub node: NodeId,
    /// Slot of the last *executed* write to the key at this replica
    /// (0 if never written).
    pub value_slot: u64,
    /// The executed value (None if the key was never written).
    pub value: Option<Value>,
    /// True if this replica has accepted-but-uncommitted writes to the
    /// key — the reader must rinse (retry) until they resolve.
    pub pending_write: bool,
}

impl QrVoteEntry {
    fn wire_bytes(&self) -> usize {
        13 + self.value.as_ref().map_or(0, |v| v.len())
    }
}

/// Every wire label a quorum-read probe or answer can travel under —
/// single probes and batched waves. Benchmarks and tests sum delivered
/// messages over this list to get "probe msgs/op"; keeping it next to
/// [`PaxosMsg`]'s `label()` match means a label rename cannot silently
/// zero out a measurement.
pub const QR_PROBE_LABELS: &[&str] = &["qr_read", "qr_vote", "qr_read_batch", "qr_vote_batch"];

/// One key probe inside a [`PaxosMsg::QrReadBatch`]: the proxy-local
/// read id, the read's *attempt* number (rinse retries bump it; answers
/// for older attempts must not count toward newer ones), and the key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QrProbe {
    /// Proxy-local read id.
    pub id: u64,
    /// The attempt this probe belongs to (1 = first probe; each rinse
    /// restart bumps it).
    pub attempt: u32,
    /// The key being read.
    pub key: Key,
}

impl QrProbe {
    fn wire_bytes(&self) -> usize {
        8 + 4 + 8
    }
}

/// One replica's answer to one probe of a batched quorum read: the
/// probe's `(id, attempt)` echo plus the replica's [`QrVoteEntry`].
/// Relay aggregation of [`PaxosMsg::QrVoteBatch`] is plain
/// concatenation of these, exactly like `P2bVote`s in a `P2bBatch`.
#[derive(Debug, Clone, PartialEq)]
pub struct QrProbeVote {
    /// The read id this answers.
    pub id: u64,
    /// The attempt this answers (the proxy drops mismatches).
    pub attempt: u32,
    /// The replica's answer.
    pub entry: QrVoteEntry,
}

impl QrProbeVote {
    fn wire_bytes(&self) -> usize {
        8 + 4 + self.entry.wire_bytes()
    }
}

/// Multi-Paxos protocol messages.
#[derive(Debug, Clone, PartialEq)]
pub enum PaxosMsg {
    /// Phase-1a: leadership proposal with a ballot.
    P1a {
        /// Candidate's ballot.
        ballot: Ballot,
        /// The candidate's own commit watermark: promises report every
        /// log entry (committed or not) from this slot up, so the
        /// candidate learns about slots decided while it was behind and
        /// never fills them with no-ops.
        from: u64,
    },
    /// Phase-1b: promise votes (singleton when direct, aggregated by
    /// PigPaxos relays).
    P1b {
        /// The ballot these votes answer.
        ballot: Ballot,
        /// Individual promises.
        votes: Vec<P1bVote>,
    },
    /// Phase-2a: accept request for one slot, carrying the commit
    /// watermark as the piggybacked phase-3 (every slot below it is
    /// decided).
    P2a {
        /// Leader's ballot.
        ballot: Ballot,
        /// Slot to fill.
        slot: u64,
        /// Proposed command.
        command: Command,
        /// All slots `< commit_up_to` are committed (phase-3 piggyback).
        commit_up_to: u64,
    },
    /// Phase-2b: accept votes (singleton or aggregated).
    P2b {
        /// The ballot these votes answer.
        ballot: Ballot,
        /// The slot these votes answer.
        slot: u64,
        /// Individual acks.
        votes: Vec<P2bVote>,
    },
    /// Phase-2a for a *contiguous run* of slots — the leader-side
    /// client-command batching fast path. One message amortizes
    /// `commands.len()` accept rounds; slot `first_slot + i` carries
    /// `commands[i]`. Semantically identical to that many `P2a`s.
    P2aBatch {
        /// Leader's ballot.
        ballot: Ballot,
        /// Slot of `commands[0]`.
        first_slot: u64,
        /// One command per consecutive slot.
        commands: Vec<Command>,
        /// All slots `< commit_up_to` are committed (phase-3 piggyback).
        commit_up_to: u64,
    },
    /// Accept votes for a batched round: one [`P2bVote`] per `(node,
    /// slot)` pair, possibly aggregated across a relay group. Each vote
    /// carries its own slot.
    P2bBatch {
        /// The ballot these votes answer.
        ballot: Ballot,
        /// First slot of the batch being answered.
        first_slot: u64,
        /// Last slot of the batch being answered.
        last_slot: u64,
        /// Individual per-slot acks.
        votes: Vec<P2bVote>,
    },
    /// Leader liveness + commit-watermark propagation when idle.
    Heartbeat {
        /// Leader's ballot.
        ballot: Ballot,
        /// Commit watermark (as in P2a).
        commit_up_to: u64,
    },
    /// Follower asks the leader for committed entries it is missing
    /// (gap repair after drops or relay failures). Carries the precise
    /// missing slots so the reply stays minimal; repair is batched and
    /// rate-limited at the follower to keep it off the hot path.
    LearnReq {
        /// The slots the follower is missing.
        slots: Vec<u64>,
    },
    /// Leader's reply with decided entries.
    LearnRep {
        /// Leader's ballot.
        ballot: Ballot,
        /// Decided `(slot, command)` pairs.
        entries: Vec<(u64, Command)>,
    },
    /// Snapshot-based catch-up: the answer to a `LearnReq` whose
    /// missing slots lie below the sender's compaction floor. The slots
    /// no longer exist as log entries, so the receiver installs the
    /// state-machine snapshot (covering every slot `< snapshot.up_to`)
    /// and then commits the decided tail entries above the floor.
    SnapshotTransfer {
        /// Sender's promised ballot (commit bookkeeping for `entries`).
        ballot: Ballot,
        /// The state replacing the truncated prefix.
        snapshot: Box<Snapshot>,
        /// Decided `(slot, command)` pairs at or above the floor that
        /// the requester also asked for.
        entries: Vec<(u64, Command)>,
    },
    /// Quorum-read probe from a reading proxy (§4.3).
    QrRead {
        /// The proxy driving the read (aggregates travel back to it).
        reader: NodeId,
        /// Proxy-local read id.
        id: u64,
        /// The read's attempt number. A rinse restart bumps it, and the
        /// proxy drops answers tagged with an older attempt — a stale
        /// vote counted toward a newer attempt could complete the read
        /// without re-checking for pending writes, breaking
        /// linearizability.
        attempt: u32,
        /// The key being read.
        key: Key,
    },
    /// Quorum-read answers (singleton when direct, aggregated by
    /// PigPaxos relays, like P1b/P2b).
    QrVote {
        /// The proxy this answers.
        reader: NodeId,
        /// The read id it answers.
        id: u64,
        /// The attempt it answers (echoed from the `QrRead`).
        attempt: u32,
        /// Individual replica answers.
        votes: Vec<QrVoteEntry>,
    },
    /// A *wave* of quorum-read probes — the probe-side counterpart of
    /// `P2aBatch`. The proxy coalesces the keys of several pending
    /// reads and ships them down the relay tree in one message per
    /// group; each replica answers all probes in one pass, and each
    /// relay returns a single aggregated [`PaxosMsg::QrVoteBatch`]
    /// uplink per wave.
    QrReadBatch {
        /// The proxy driving the reads (aggregates travel back to it).
        reader: NodeId,
        /// Proxy-local wave id (keys the relay aggregation round).
        wave: u64,
        /// The coalesced probes.
        probes: Vec<QrProbe>,
    },
    /// Answers to a probe wave: one [`QrProbeVote`] per `(replica,
    /// probe)` pair, possibly aggregated across a relay group.
    QrVoteBatch {
        /// The proxy this answers.
        reader: NodeId,
        /// The wave it answers.
        wave: u64,
        /// Individual per-probe answers.
        votes: Vec<QrProbeVote>,
    },
}

impl PaxosMsg {
    fn votes_bytes_p1(votes: &[P1bVote]) -> usize {
        votes
            .iter()
            .map(|v| {
                14 + v
                    .accepted
                    .iter()
                    .map(|(_, _, c)| 16 + c.payload_bytes())
                    .sum::<usize>()
                    + v.snapshot.as_ref().map_or(0, |s| s.wire_bytes())
            })
            .sum()
    }
}

impl ProtoMessage for PaxosMsg {
    fn wire_size(&self) -> usize {
        HEADER_BYTES
            + match self {
                PaxosMsg::P1a { .. } => 16,
                PaxosMsg::P1b { votes, .. } => 8 + PaxosMsg::votes_bytes_p1(votes),
                PaxosMsg::P2a { command, .. } => 8 + 8 + 8 + command.payload_bytes(),
                PaxosMsg::P2b { votes, .. } => 16 + votes.len() * 14,
                PaxosMsg::P2aBatch { commands, .. } => {
                    8 + 8
                        + 8
                        + commands
                            .iter()
                            .map(|c| 4 + c.payload_bytes())
                            .sum::<usize>()
                }
                PaxosMsg::P2bBatch { votes, .. } => 24 + votes.len() * 14,
                PaxosMsg::Heartbeat { .. } => 16,
                PaxosMsg::LearnReq { slots } => 8 + slots.len() * 8,
                PaxosMsg::LearnRep { entries, .. } => {
                    8 + entries
                        .iter()
                        .map(|(_, c)| 8 + c.payload_bytes())
                        .sum::<usize>()
                }
                PaxosMsg::SnapshotTransfer {
                    snapshot, entries, ..
                } => {
                    8 + snapshot.wire_bytes()
                        + entries
                            .iter()
                            .map(|(_, c)| 8 + c.payload_bytes())
                            .sum::<usize>()
                }
                PaxosMsg::QrRead { .. } => 24,
                PaxosMsg::QrVote { votes, .. } => {
                    16 + votes.iter().map(|v| v.wire_bytes()).sum::<usize>()
                }
                PaxosMsg::QrReadBatch { probes, .. } => {
                    12 + probes.iter().map(|p| p.wire_bytes()).sum::<usize>()
                }
                PaxosMsg::QrVoteBatch { votes, .. } => {
                    12 + votes.iter().map(|v| v.wire_bytes()).sum::<usize>()
                }
            }
    }

    fn label(&self) -> &'static str {
        match self {
            PaxosMsg::P1a { .. } => "p1a",
            PaxosMsg::P1b { .. } => "p1b",
            PaxosMsg::P2a { .. } => "p2a",
            PaxosMsg::P2b { .. } => "p2b",
            PaxosMsg::P2aBatch { .. } => "p2a_batch",
            PaxosMsg::P2bBatch { .. } => "p2b_batch",
            PaxosMsg::Heartbeat { .. } => "heartbeat",
            PaxosMsg::LearnReq { .. } => "learnreq",
            PaxosMsg::LearnRep { .. } => "learnrep",
            PaxosMsg::SnapshotTransfer { .. } => "snapshot",
            PaxosMsg::QrRead { .. } => "qr_read",
            PaxosMsg::QrVote { .. } => "qr_vote",
            PaxosMsg::QrReadBatch { .. } => "qr_read_batch",
            PaxosMsg::QrVoteBatch { .. } => "qr_vote_batch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::{Operation, RequestId, Value};

    fn cmd(bytes: usize) -> Command {
        Command {
            id: RequestId {
                client: NodeId(9),
                seq: 1,
            },
            op: Operation::Put(1, Value::zeros(bytes)),
        }
    }

    #[test]
    fn p2a_size_scales_with_payload() {
        let small = PaxosMsg::P2a {
            ballot: Ballot::ZERO,
            slot: 0,
            command: cmd(8),
            commit_up_to: 0,
        };
        let large = PaxosMsg::P2a {
            ballot: Ballot::ZERO,
            slot: 0,
            command: cmd(1280),
            commit_up_to: 0,
        };
        assert_eq!(large.wire_size() - small.wire_size(), 1272);
    }

    #[test]
    fn aggregated_p2b_bigger_than_single() {
        let vote = |n| P2bVote {
            node: NodeId(n),
            ballot: Ballot::ZERO,
            slot: 0,
            ok: true,
        };
        let single = PaxosMsg::P2b {
            ballot: Ballot::ZERO,
            slot: 0,
            votes: vec![vote(1)],
        };
        let agg = PaxosMsg::P2b {
            ballot: Ballot::ZERO,
            slot: 0,
            votes: (0..8).map(vote).collect(),
        };
        assert!(agg.wire_size() > single.wire_size());
        assert_eq!(agg.wire_size() - single.wire_size(), 7 * 14);
    }

    #[test]
    fn p1b_size_includes_accepted_entries() {
        let empty = PaxosMsg::P1b {
            ballot: Ballot::ZERO,
            votes: vec![P1bVote {
                node: NodeId(1),
                ballot: Ballot::ZERO,
                ok: true,
                accepted: vec![],
                snapshot: None,
            }],
        };
        let loaded = PaxosMsg::P1b {
            ballot: Ballot::ZERO,
            votes: vec![P1bVote {
                node: NodeId(1),
                ballot: Ballot::ZERO,
                ok: true,
                accepted: vec![(3, Ballot::ZERO, cmd(100))],
                snapshot: None,
            }],
        };
        assert!(loaded.wire_size() > empty.wire_size() + 100);
    }

    #[test]
    fn batch_scales_sublinearly_vs_singles() {
        let singles: usize = (0..8)
            .map(|s| {
                PaxosMsg::P2a {
                    ballot: Ballot::ZERO,
                    slot: s,
                    command: cmd(64),
                    commit_up_to: 0,
                }
                .wire_size()
            })
            .sum();
        let batch = PaxosMsg::P2aBatch {
            ballot: Ballot::ZERO,
            first_slot: 0,
            commands: (0..8).map(|_| cmd(64)).collect(),
            commit_up_to: 0,
        }
        .wire_size();
        assert!(
            batch < singles,
            "one batch message ({batch}B) must beat 8 singles ({singles}B)"
        );
        assert_eq!(
            PaxosMsg::P2aBatch {
                ballot: Ballot::ZERO,
                first_slot: 0,
                commands: vec![cmd(64)],
                commit_up_to: 0
            }
            .label(),
            "p2a_batch"
        );
    }

    #[test]
    fn p2b_batch_size_scales_with_votes() {
        let vote = |n, s| P2bVote {
            node: NodeId(n),
            ballot: Ballot::ZERO,
            slot: s,
            ok: true,
        };
        let small = PaxosMsg::P2bBatch {
            ballot: Ballot::ZERO,
            first_slot: 0,
            last_slot: 3,
            votes: vec![vote(1, 0)],
        };
        let big = PaxosMsg::P2bBatch {
            ballot: Ballot::ZERO,
            first_slot: 0,
            last_slot: 3,
            votes: (0..4)
                .flat_map(|s| (1..4).map(move |n| vote(n, s)))
                .collect(),
        };
        assert_eq!(big.wire_size() - small.wire_size(), 11 * 14);
        assert_eq!(big.label(), "p2b_batch");
    }

    #[test]
    fn probe_batch_scales_sublinearly_vs_single_probes() {
        let single = |id| PaxosMsg::QrRead {
            reader: NodeId(1),
            id,
            attempt: 1,
            key: 7,
        };
        let singles: usize = (0..8).map(|i| single(i).wire_size()).sum();
        let batch = PaxosMsg::QrReadBatch {
            reader: NodeId(1),
            wave: 0,
            probes: (0..8)
                .map(|id| QrProbe {
                    id,
                    attempt: 1,
                    key: 7,
                })
                .collect(),
        };
        assert!(
            batch.wire_size() < singles,
            "one probe wave ({}B) must beat 8 single probes ({singles}B)",
            batch.wire_size()
        );
        assert_eq!(batch.label(), "qr_read_batch");
        let vote = PaxosMsg::QrVoteBatch {
            reader: NodeId(1),
            wave: 0,
            votes: vec![QrProbeVote {
                id: 3,
                attempt: 1,
                entry: QrVoteEntry {
                    node: NodeId(2),
                    value_slot: 0,
                    value: None,
                    pending_write: false,
                },
            }],
        };
        assert_eq!(vote.label(), "qr_vote_batch");
        assert!(vote.wire_size() > 0);
    }

    #[test]
    fn labels() {
        assert_eq!(
            PaxosMsg::P1a {
                ballot: Ballot::ZERO,
                from: 0
            }
            .label(),
            "p1a"
        );
        assert_eq!(
            PaxosMsg::Heartbeat {
                ballot: Ballot::ZERO,
                commit_up_to: 0
            }
            .label(),
            "heartbeat"
        );
    }
}
