//! Multi-Paxos timing configuration.

use paxi::{BatchConfig, SnapshotConfig};
use simnet::SimDuration;

/// Timers governing liveness behaviour.
#[derive(Debug, Clone)]
pub struct PaxosConfig {
    /// Leader heartbeat period (keeps followers' election timers at bay
    /// and propagates the commit watermark when idle).
    pub heartbeat_interval: SimDuration,
    /// Minimum follower election timeout (randomized per follower in
    /// `[min, max]` to avoid split votes).
    pub election_timeout_min: SimDuration,
    /// Maximum follower election timeout.
    pub election_timeout_max: SimDuration,
    /// Leader re-sends phase-2a for a slot still uncommitted after this.
    pub p2_retry_timeout: SimDuration,
    /// Phase-1 retry timeout for a candidate that cannot gather promises.
    pub p1_retry_timeout: SimDuration,
    /// CPU time charged per command applied to the state machine
    /// (matches `CpuCostModel::calibrated().exec_cost` by default).
    pub exec_cost: SimDuration,
    /// Delay before a follower sends a batched `LearnReq` for missing
    /// slots. Rate-limits gap repair so it never competes with the hot
    /// path (followers lagging briefly is invisible to clients — only
    /// the leader answers them).
    pub learn_delay: SimDuration,
    /// Flexible quorums (paper §2.2): `Some((q1, q2))` replaces majority
    /// quorums with phase-1 quorums of `q1` and phase-2 quorums of `q2`
    /// (`q1 + q2 > n` required). The paper's point: a small `q2` improves
    /// latency but cannot fix the leader's message bottleneck — the
    /// leader still talks to everyone.
    pub flexible_quorums: Option<(usize, usize)>,
    /// Thrifty optimization (paper §2.2): send phase-2a to only `q2 − 1`
    /// followers instead of all. Saves leader messages but a single
    /// sluggish or crashed node in that set stalls commits until the
    /// retry path widens the fan-out.
    pub thrifty: bool,
    /// Leader-side client-command batching: one accept round (and one
    /// message per follower / relay group) amortizes up to
    /// `batch.max_batch` commands. Disabled by default.
    pub batch: BatchConfig,
    /// Log compaction policy: when to snapshot the state machine and
    /// truncate the executed log prefix. Disabled by default — the
    /// benchmarks and perf gate run with the unbounded log unless a
    /// scenario opts in (long-running soaks do).
    pub snapshot: SnapshotConfig,
}

impl Default for PaxosConfig {
    fn default() -> Self {
        PaxosConfig::lan()
    }
}

impl PaxosConfig {
    /// Defaults tuned for sub-millisecond LAN RTTs.
    pub fn lan() -> Self {
        PaxosConfig {
            heartbeat_interval: SimDuration::from_millis(20),
            election_timeout_min: SimDuration::from_millis(100),
            election_timeout_max: SimDuration::from_millis(200),
            p2_retry_timeout: SimDuration::from_millis(50),
            p1_retry_timeout: SimDuration::from_millis(100),
            exec_cost: SimDuration::from_micros(40),
            learn_delay: SimDuration::from_millis(100),
            flexible_quorums: None,
            thrifty: false,
            batch: BatchConfig::disabled(),
            snapshot: SnapshotConfig::disabled(),
        }
    }

    /// Fluent helper: enable leader-side command batching (and whatever
    /// reply coalescing the [`BatchConfig`] carries).
    pub fn with_batch(mut self, batch: BatchConfig) -> Self {
        self.batch = batch;
        self
    }

    /// Fluent helper: enable log compaction + snapshot catch-up with
    /// the given policy.
    pub fn with_snapshots(mut self, snapshot: SnapshotConfig) -> Self {
        self.snapshot = snapshot;
        self
    }

    /// Defaults tuned for ~100 ms WAN RTTs.
    pub fn wan() -> Self {
        PaxosConfig {
            heartbeat_interval: SimDuration::from_millis(150),
            election_timeout_min: SimDuration::from_millis(600),
            election_timeout_max: SimDuration::from_millis(1200),
            p2_retry_timeout: SimDuration::from_millis(400),
            p1_retry_timeout: SimDuration::from_millis(600),
            exec_cost: SimDuration::from_micros(40),
            learn_delay: SimDuration::from_millis(300),
            flexible_quorums: None,
            thrifty: false,
            batch: BatchConfig::disabled(),
            snapshot: SnapshotConfig::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_defaults_sane() {
        let c = PaxosConfig::lan();
        assert!(c.heartbeat_interval < c.election_timeout_min);
        assert!(c.election_timeout_min < c.election_timeout_max);
    }

    #[test]
    fn wan_slower_than_lan() {
        assert!(PaxosConfig::wan().election_timeout_min > PaxosConfig::lan().election_timeout_max);
    }
}
