//! The acceptor role: ballot promises, log acceptance, commit tracking,
//! and state-machine execution.
//!
//! Both Multi-Paxos and PigPaxos replicas embed an [`Acceptor`]; PigPaxos
//! changes only how acceptor responses travel, never what they contain.

use crate::messages::{P1bVote, P2bVote, QrVoteEntry};
use paxi::{
    Ballot, Command, Key, KvStore, Log, RequestId, SafetyMonitor, SessionTable, Snapshot,
    SnapshotConfig, Value,
};
use simnet::NodeId;
use std::collections::HashMap;

/// Follower-side consensus state.
#[derive(Debug)]
pub struct Acceptor {
    node: NodeId,
    promised: Ballot,
    log: Log,
    kv: KvStore,
    safety: SafetyMonitor,
    /// Slot of the last executed write per key (for quorum reads).
    last_write_slot: HashMap<Key, u64>,
    /// When to snapshot + truncate the executed prefix (disabled by
    /// default).
    snapshot_cfg: SnapshotConfig,
    /// The snapshot covering everything below the compaction floor —
    /// what this acceptor serves to peers whose missing prefix is gone.
    latest_snapshot: Option<Snapshot>,
}

/// Result of advancing the commit watermark.
#[derive(Debug, Default, PartialEq)]
pub struct CommitAdvance {
    /// Executed commands: `(slot, request id, read result)`.
    pub executed: Vec<(u64, RequestId, Option<Value>)>,
    /// A gap prevents further commits: the replica should schedule a
    /// (batched, rate-limited) `LearnReq` covering slots up to this
    /// watermark.
    pub learn_needed: Option<u64>,
}

impl Acceptor {
    /// New acceptor for `node`, reporting commits to `safety`.
    /// Compaction is off until [`Acceptor::set_snapshot_config`].
    pub fn new(node: NodeId, safety: SafetyMonitor) -> Self {
        Acceptor {
            node,
            promised: Ballot::ZERO,
            log: Log::new(),
            kv: KvStore::new(),
            safety,
            last_write_slot: HashMap::new(),
            snapshot_cfg: SnapshotConfig::disabled(),
            latest_snapshot: None,
        }
    }

    /// Install the compaction policy (from the protocol config).
    pub fn set_snapshot_config(&mut self, cfg: SnapshotConfig) {
        self.snapshot_cfg = cfg;
    }

    /// Highest promised ballot.
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// The underlying log (read access for tests and leaders).
    pub fn log(&self) -> &Log {
        &self.log
    }

    /// The replicated state machine.
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }

    /// Handle a phase-1a leadership proposal. `from` is the candidate's
    /// commit watermark; the promise reports every entry (committed or
    /// not) from there, so a candidate that fell behind learns decided
    /// slots instead of filling them with no-ops.
    pub fn on_p1a(&mut self, ballot: Ballot, from: u64) -> P1bVote {
        if ballot > self.promised {
            self.promised = ballot;
            // If the candidate's watermark lies below our compaction
            // floor, the slots it is missing no longer exist here as
            // entries — attach the snapshot that replaced them so the
            // candidate installs state instead of filling decided slots
            // with no-ops.
            let floor = self.log.compacted_up_to();
            let snapshot = if from < floor {
                self.latest_snapshot.clone().map(Box::new)
            } else {
                None
            };
            P1bVote {
                node: self.node,
                ballot,
                ok: true,
                accepted: self.log.entries_from(from.max(floor)),
                snapshot,
            }
        } else {
            P1bVote {
                node: self.node,
                ballot: self.promised,
                ok: false,
                accepted: Vec::new(),
                snapshot: None,
            }
        }
    }

    /// Handle a phase-2a accept request. On success also advances commits
    /// using the piggybacked watermark; the caller must process the
    /// returned [`CommitAdvance`].
    pub fn on_p2a(
        &mut self,
        ballot: Ballot,
        slot: u64,
        command: Command,
        commit_up_to: u64,
    ) -> (P2bVote, CommitAdvance) {
        if ballot >= self.promised {
            self.promised = ballot;
            self.log.accept(slot, ballot, command);
            let adv = self.advance_commits(commit_up_to, ballot);
            (
                P2bVote {
                    node: self.node,
                    ballot,
                    slot,
                    ok: true,
                },
                adv,
            )
        } else {
            (
                P2bVote {
                    node: self.node,
                    ballot: self.promised,
                    slot,
                    ok: false,
                },
                CommitAdvance::default(),
            )
        }
    }

    /// Process the commit watermark from a leader message: every slot
    /// `< commit_up_to` is decided. Entries accepted under
    /// `leader_ballot` are committed as-is; a hole or an entry from an
    /// older ballot needs repair (`learn_needed`).
    pub fn advance_commits(&mut self, commit_up_to: u64, leader_ballot: Ballot) -> CommitAdvance {
        let mut adv = CommitAdvance::default();
        for s in self.log.execute_cursor()..commit_up_to {
            let committable = match self.log.get(s) {
                Some(e) if e.committed => None, // already done
                Some(e) if e.ballot == leader_ballot => Some(e.command.clone()),
                _ => {
                    adv.learn_needed = Some(commit_up_to);
                    break;
                }
            };
            if let Some(cmd) = committable {
                self.commit(s, leader_ballot, cmd);
            }
        }
        adv.executed = self.execute_ready();
        adv
    }

    /// Commit a decided `(slot, command)` (from vote counting at the
    /// leader, or from a `LearnRep`). Slots below the executed frontier
    /// — including truncated ones — are already decided; a late commit
    /// for them is ignored.
    pub fn commit(&mut self, slot: u64, ballot: Ballot, command: Command) {
        if slot < self.log.execute_cursor() {
            return;
        }
        let already = self.log.get(slot).map(|e| e.committed).unwrap_or(false);
        if !already {
            self.safety.record(0, slot, command.id);
            self.log.commit(slot, ballot, command);
        }
    }

    /// Apply every gap-free committed command to the state machine.
    pub fn execute_ready(&mut self) -> Vec<(u64, RequestId, Option<Value>)> {
        let mut out = Vec::new();
        while let Some((slot, cmd)) = self.log.next_executable() {
            let id = cmd.id;
            let op = cmd.op.clone();
            let result = self.kv.apply(&op);
            if !op.is_read() {
                if let Some(key) = op.key() {
                    self.last_write_slot.insert(key, slot);
                }
            }
            self.log.mark_executed(slot);
            out.push((slot, id, result));
        }
        out
    }

    /// True if `id` sits in the committed-or-accepted-but-unexecuted
    /// window of the log — the retry gap the session table cannot
    /// cover (see [`paxi::Log::has_unexecuted_command`]).
    pub fn has_unexecuted_command(&self, id: RequestId) -> bool {
        self.log.has_unexecuted_command(id)
    }

    /// Highest sequence number of `client`'s commands in the unexecuted
    /// window (see [`paxi::Log::highest_unexecuted_seq`]).
    pub fn highest_unexecuted_seq(&self, client: simnet::NodeId) -> Option<u64> {
        self.log.highest_unexecuted_seq(client)
    }

    /// This replica's answer to a quorum read (PQR): the last executed
    /// write to `key` plus whether any uncommitted write to it is in
    /// flight here.
    pub fn read_state(&self, key: Key) -> QrVoteEntry {
        QrVoteEntry {
            node: self.node,
            value_slot: self.last_write_slot.get(&key).copied().unwrap_or(0),
            value: self.kv.peek(key).cloned(),
            pending_write: self
                .log
                .has_uncommitted_write(key, self.log.execute_cursor()),
        }
    }

    /// Lowest slot not yet committed locally (this acceptor's commit
    /// watermark; at the leader it is the cluster watermark).
    pub fn commit_watermark(&self) -> u64 {
        // Slots below the execute cursor are committed & executed; scan
        // forward from there for the first uncommitted slot.
        let mut s = self.log.execute_cursor();
        while self.log.get(s).map(|e| e.committed).unwrap_or(false) {
            s += 1;
        }
        s
    }

    /// Decided entries in `[from, to)` for serving a `LearnReq`.
    pub fn committed_range(&self, from: u64, to: u64) -> Vec<(u64, Command)> {
        (from..to)
            .filter_map(|s| {
                self.log
                    .get(s)
                    .filter(|e| e.committed)
                    .map(|e| (s, e.command.clone()))
            })
            .collect()
    }

    /// Decided entries for an explicit slot list (serving a batched
    /// `LearnReq`).
    pub fn committed_slots(&self, slots: &[u64]) -> Vec<(u64, Command)> {
        slots
            .iter()
            .filter_map(|&s| {
                self.log
                    .get(s)
                    .filter(|e| e.committed)
                    .map(|e| (s, e.command.clone()))
            })
            .collect()
    }

    /// Slots in `[execute_cursor, up_to)` this acceptor has not
    /// committed — the precise repair set for a `LearnReq`. Capped at
    /// `max` entries to bound message sizes.
    pub fn missing_slots(&self, up_to: u64, max: usize) -> Vec<u64> {
        (self.log.execute_cursor()..up_to)
            .filter(|&s| !self.log.get(s).map(|e| e.committed).unwrap_or(false))
            .take(max)
            .collect()
    }

    // ---- log compaction & snapshot catch-up ------------------------------

    /// Compaction floor: every slot below it was truncated (its effect
    /// lives in [`Acceptor::latest_snapshot`]).
    pub fn snapshot_floor(&self) -> u64 {
        self.log.compacted_up_to()
    }

    /// The snapshot covering everything below the floor, if one was
    /// ever taken or installed.
    pub fn latest_snapshot(&self) -> Option<&Snapshot> {
        self.latest_snapshot.as_ref()
    }

    /// Snapshot + truncate if the configured trigger fired: the
    /// executed frontier advanced `interval_ops` past the floor, or the
    /// retained log reached `interval_bytes`. `sessions` is the
    /// replica's reply cache at this instant — it travels inside the
    /// snapshot so a catch-up peer still answers retries exactly once.
    /// Returns `true` when a snapshot was taken.
    pub fn maybe_compact(&mut self, sessions: &SessionTable) -> bool {
        if !self.snapshot_cfg.is_enabled() {
            return false;
        }
        let cursor = self.log.execute_cursor();
        let since = cursor - self.log.compacted_up_to();
        if since == 0 {
            return false;
        }
        let due_ops = self.snapshot_cfg.interval_ops.is_some_and(|n| since >= n);
        // Byte trigger compares against the *truncatable* (executed)
        // prefix, not all retained bytes: the unexecuted tail survives
        // truncation, so a threshold below the steady-state in-flight
        // window would otherwise snapshot on every wave while freeing
        // nothing.
        let due_bytes = self
            .snapshot_cfg
            .interval_bytes
            .is_some_and(|b| self.log.executed_bytes() >= b);
        if !(due_ops || due_bytes) {
            return false;
        }
        self.force_snapshot(sessions);
        true
    }

    /// Snapshot the executed prefix and truncate the log below the
    /// executed frontier (compaction never drops undecided or
    /// unexecuted slots — the frontier *is* the bound).
    ///
    /// Capture is skipped when the executed frontier has not advanced
    /// past the snapshot already held: the held snapshot *is* the state
    /// at that frontier, so recapturing would deep-clone the whole
    /// kv/session state for nothing — and worse, it would freeze
    /// whatever the session table holds *now* under the old `up_to`.
    /// Session entries recorded since the frontier froze (e.g. replies
    /// cached by the shared reply leg) would then claim coverage a
    /// snapshot at that frontier cannot justify — the staleness bug
    /// this guard fixes. Truncation still runs; it is idempotent.
    pub fn force_snapshot(&mut self, sessions: &SessionTable) {
        let up_to = self.log.execute_cursor();
        let fresh = self
            .latest_snapshot
            .as_ref()
            .is_some_and(|s| s.up_to >= up_to);
        if !fresh {
            // The full map is just the unbounded range of the
            // range-filtered capture path — one code path serves
            // compaction and shard moves.
            self.latest_snapshot = Some(Snapshot::for_range(
                up_to,
                &self.kv,
                &self.last_write_slot,
                sessions,
                0,
                None,
            ));
        }
        self.log.truncate_below(up_to);
    }

    /// Capture — without truncating — a snapshot of only the keys in
    /// `[start, end)` (`end = None` unbounded) at the current executed
    /// frontier. This is the shard-move drain path: the departing range
    /// ships to the destination group without cloning the keys that
    /// stay behind.
    pub fn snapshot_range(
        &self,
        sessions: &SessionTable,
        start: Key,
        end: Option<Key>,
    ) -> Snapshot {
        Snapshot::for_range(
            self.log.execute_cursor(),
            &self.kv,
            &self.last_write_slot,
            sessions,
            start,
            end,
        )
    }

    /// Install a snapshot received from a peer (via a phase-1b promise
    /// or a `SnapshotTransfer`). Replaces the state machine, jumps the
    /// executed frontier to `snapshot.up_to`, and keeps any accepted or
    /// committed tail entries above it. Returns `false` (untouched)
    /// when the snapshot is not ahead of this acceptor.
    pub fn install_snapshot(&mut self, snapshot: &Snapshot) -> bool {
        if !self.log.install_snapshot(snapshot.up_to) {
            return false;
        }
        self.kv = snapshot.kv.clone();
        self.last_write_slot = snapshot.last_write_slots.iter().copied().collect();
        self.latest_snapshot = Some(snapshot.clone());
        true
    }

    /// Answer a `LearnReq` for `slots`: decided entries when every slot
    /// is still in the log, or the latest snapshot plus the decided
    /// tail when some requested slot lies below the compaction floor.
    /// `None` when there is nothing useful to send.
    pub fn serve_learn(&self, slots: &[u64]) -> Option<LearnAnswer> {
        let floor = self.log.compacted_up_to();
        if slots.iter().any(|&s| s < floor) {
            if let Some(snap) = &self.latest_snapshot {
                let tail: Vec<u64> = slots.iter().copied().filter(|&s| s >= floor).collect();
                return Some(LearnAnswer::Snapshot(
                    Box::new(snap.clone()),
                    self.committed_slots(&tail),
                ));
            }
        }
        let entries = self.committed_slots(slots);
        if entries.is_empty() {
            None
        } else {
            Some(LearnAnswer::Entries(entries))
        }
    }
}

/// What an acceptor sends back for a `LearnReq` (see
/// [`Acceptor::serve_learn`]).
#[derive(Debug)]
pub enum LearnAnswer {
    /// Every requested slot is still in the log: plain decided entries.
    Entries(Vec<(u64, Command)>),
    /// Some requested slots were compacted away: ship the snapshot plus
    /// the decided entries at or above the floor.
    Snapshot(Box<Snapshot>, Vec<(u64, Command)>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::Operation;

    fn acc() -> Acceptor {
        Acceptor::new(NodeId(1), SafetyMonitor::new())
    }

    fn cmd(seq: u64) -> Command {
        Command {
            id: RequestId {
                client: NodeId(9),
                seq,
            },
            op: Operation::Put(seq, Value::zeros(8)),
        }
    }

    fn b(r: u32) -> Ballot {
        Ballot::new(r, NodeId(0))
    }

    #[test]
    fn p1a_promise_and_reject() {
        let mut a = acc();
        let v = a.on_p1a(b(1), 0);
        assert!(v.ok);
        assert_eq!(v.ballot, b(1));
        // Same ballot again: reject (strictly-greater required).
        let v2 = a.on_p1a(b(1), 0);
        assert!(!v2.ok);
        let v3 = a.on_p1a(b(2), 0);
        assert!(v3.ok);
    }

    #[test]
    fn p1b_reports_committed_and_accepted_entries_from_watermark() {
        let mut a = acc();
        a.on_p2a(b(1), 0, cmd(1), 0);
        a.on_p2a(b(1), 1, cmd(2), 0);
        // Commit slot 0 only.
        a.commit(0, b(1), cmd(1));
        // A candidate starting from watermark 0 must learn about *both*
        // slots: the committed one (so it is never refilled with a noop)
        // and the uncommitted one (to re-propose it).
        let v = a.on_p1a(b(2), 0);
        assert!(v.ok);
        assert_eq!(v.accepted.len(), 2);
        assert_eq!(v.accepted[0].0, 0);
        assert_eq!(v.accepted[1].0, 1);
        // A candidate already past slot 0 only gets the tail.
        let v = a.on_p1a(b(3), 1);
        assert_eq!(v.accepted.len(), 1, "`from` bounds the phase-1b payload");
        assert_eq!(v.accepted[0].0, 1);
    }

    #[test]
    fn p2a_accept_and_reject_by_ballot() {
        let mut a = acc();
        a.on_p1a(b(5), 0);
        let (v, _) = a.on_p2a(b(5), 0, cmd(1), 0);
        assert!(v.ok, "equal ballot accepted");
        let (v, _) = a.on_p2a(b(3), 1, cmd(2), 0);
        assert!(!v.ok, "lower ballot rejected");
        assert_eq!(v.ballot, b(5), "nack reports promised ballot");
    }

    #[test]
    fn watermark_commits_and_executes() {
        let mut a = acc();
        let (_, adv) = a.on_p2a(b(1), 0, cmd(1), 0);
        assert!(adv.executed.is_empty());
        // Second p2a carries watermark 1 -> slot 0 commits and executes.
        let (_, adv) = a.on_p2a(b(1), 1, cmd(2), 1);
        assert_eq!(adv.executed.len(), 1);
        assert_eq!(adv.executed[0].0, 0);
        assert!(adv.learn_needed.is_none());
        assert_eq!(a.kv().applied(), 1);
        assert_eq!(a.commit_watermark(), 1);
    }

    #[test]
    fn gap_triggers_learn() {
        let mut a = acc();
        // Accept slot 2 only; watermark says 3 -> slots 0,1 missing.
        let (_, adv) = a.on_p2a(b(1), 2, cmd(3), 3);
        assert_eq!(adv.learn_needed, Some(3));
        assert!(adv.executed.is_empty());
    }

    #[test]
    fn old_ballot_entry_triggers_learn() {
        let mut a = acc();
        a.on_p2a(b(1), 0, cmd(1), 0);
        // New leader at b2; its watermark covers slot 0 but our entry is b1.
        let (_, adv) = a.on_p2a(b(2), 1, cmd(2), 1);
        assert_eq!(adv.learn_needed, Some(1));
    }

    #[test]
    fn learn_rep_fills_gap_and_unblocks_execution() {
        let mut a = acc();
        a.on_p2a(b(1), 2, cmd(3), 0);
        a.commit(2, b(1), cmd(3));
        assert_eq!(a.execute_ready().len(), 0, "blocked by holes");
        a.commit(0, b(1), cmd(1));
        a.commit(1, b(1), cmd(2));
        let ex = a.execute_ready();
        assert_eq!(ex.iter().map(|e| e.0).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(a.commit_watermark(), 3);
    }

    #[test]
    fn commit_is_idempotent_for_safety_reporting() {
        let safety = SafetyMonitor::new();
        let mut a = Acceptor::new(NodeId(1), safety.clone());
        a.commit(0, b(1), cmd(1));
        a.commit(0, b(1), cmd(1));
        assert_eq!(
            safety.commit_observations(),
            1,
            "double commit reported once"
        );
    }

    #[test]
    fn committed_range_serves_learn_requests() {
        let mut a = acc();
        a.commit(0, b(1), cmd(1));
        a.commit(2, b(1), cmd(3));
        let r = a.committed_range(0, 3);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, 0);
        assert_eq!(r[1].0, 2);
    }

    fn compacting_acc(interval: u64) -> Acceptor {
        let mut a = acc();
        a.set_snapshot_config(paxi::SnapshotConfig::every_ops(interval));
        a
    }

    /// Feed `n` decided Put commands and execute them.
    fn run_commits(a: &mut Acceptor, sessions: &mut SessionTable, n: u64) {
        for s in 0..n {
            a.commit(s, b(1), cmd(s + 1));
            for (_, id, value) in a.execute_ready() {
                sessions.record(&paxi::ClientReply::ok(id, value));
            }
            a.maybe_compact(sessions);
        }
    }

    #[test]
    fn compaction_bounds_log_and_keeps_state() {
        let mut a = compacting_acc(4);
        let mut sessions = SessionTable::new();
        run_commits(&mut a, &mut sessions, 20);
        assert!(a.snapshot_floor() >= 16, "floor {}", a.snapshot_floor());
        assert!(a.log().len() < 4 + 1, "log stays under one interval");
        let snap = a.latest_snapshot().expect("snapshot taken");
        assert_eq!(snap.up_to, a.snapshot_floor());
        assert_eq!(a.kv().applied(), 20, "state machine unaffected");
        assert_eq!(a.commit_watermark(), 20);
        // Truncated slots answer quorum reads from the snapshot index.
        assert!(a.read_state(1).value.is_some());
    }

    #[test]
    fn snapshot_range_captures_only_the_moving_slice() {
        let mut a = acc();
        let sessions = SessionTable::new();
        for s in 0..10 {
            a.commit(s, b(1), cmd(s + 1));
        }
        a.execute_ready();
        // cmd(n) writes key n, so keys 1..=10 exist; [3, 6) holds three.
        let snap = a.snapshot_range(&sessions, 3, Some(6));
        assert_eq!(snap.kv.len(), 3);
        assert!(snap
            .last_write_slots
            .iter()
            .all(|&(k, _)| (3..6).contains(&k)));
        assert_eq!(snap.up_to, 10);
        assert_eq!(a.snapshot_floor(), 0, "range capture never truncates");
        // Unbounded capture matches what force_snapshot would record.
        let full = a.snapshot_range(&sessions, 0, None);
        assert_eq!(full.kv.fingerprint(), a.kv().fingerprint());
    }

    #[test]
    fn p1b_attaches_snapshot_for_stale_candidates() {
        let mut a = compacting_acc(4);
        let mut sessions = SessionTable::new();
        run_commits(&mut a, &mut sessions, 12);
        let floor = a.snapshot_floor();
        assert!(floor > 0);
        // Candidate behind the floor: snapshot attached, entries start
        // at the floor.
        let v = a.on_p1a(b(2), 0);
        assert!(v.ok);
        let snap = v.snapshot.expect("stale candidate gets the snapshot");
        assert_eq!(snap.up_to, floor);
        assert!(v.accepted.iter().all(|&(s, _, _)| s >= floor));
        // Candidate at/above the floor: no snapshot.
        let v = a.on_p1a(b(3), floor);
        assert!(v.snapshot.is_none());
    }

    #[test]
    fn install_snapshot_catches_up_a_lagging_acceptor() {
        let mut donor = compacting_acc(5);
        let mut sessions = SessionTable::new();
        run_commits(&mut donor, &mut sessions, 23);
        let mut lagger = acc();
        // Lagger executed only the first 3 slots.
        for s in 0..3 {
            lagger.commit(s, b(1), cmd(s + 1));
        }
        lagger.execute_ready();
        let snap = donor.latest_snapshot().unwrap().clone();
        assert!(lagger.install_snapshot(&snap));
        // Learn the tail above the floor and execute it.
        let tail: Vec<u64> = (snap.up_to..23).collect();
        match donor.serve_learn(&tail) {
            Some(LearnAnswer::Entries(entries)) => {
                for (s, c) in entries {
                    lagger.commit(s, b(1), c);
                }
            }
            other => panic!("tail above floor must be plain entries: {other:?}"),
        }
        lagger.execute_ready();
        assert_eq!(
            lagger.kv().fingerprint(),
            donor.kv().fingerprint(),
            "snapshot + tail reaches the same state"
        );
        assert_eq!(lagger.commit_watermark(), 23);
        assert!(!lagger.install_snapshot(&snap), "stale re-install refused");
    }

    #[test]
    fn serve_learn_ships_snapshot_below_floor() {
        let mut a = compacting_acc(4);
        let mut sessions = SessionTable::new();
        run_commits(&mut a, &mut sessions, 10);
        let floor = a.snapshot_floor();
        let slots: Vec<u64> = (0..10).collect();
        match a.serve_learn(&slots) {
            Some(LearnAnswer::Snapshot(snap, entries)) => {
                assert_eq!(snap.up_to, floor);
                assert!(entries.iter().all(|&(s, _)| s >= floor));
            }
            other => panic!("below-floor request must ship a snapshot: {other:?}"),
        }
        // All-above-floor request stays a plain LearnRep.
        let above: Vec<u64> = (floor..10).collect();
        assert!(matches!(
            a.serve_learn(&above),
            Some(LearnAnswer::Entries(_))
        ));
    }

    #[test]
    fn byte_interval_triggers_compaction() {
        let mut a = acc();
        a.set_snapshot_config(paxi::SnapshotConfig::every_bytes(64));
        let mut sessions = SessionTable::new();
        run_commits(&mut a, &mut sessions, 30); // 8B values, ~28B/cmd
        assert!(a.snapshot_floor() > 0, "byte threshold fired");
        assert!(a.log().retained_bytes() < 128);
    }

    #[test]
    fn byte_trigger_ignores_unexecuted_tail() {
        let mut a = acc();
        a.set_snapshot_config(paxi::SnapshotConfig::every_bytes(100));
        let sessions = SessionTable::new();
        // One executed op (~28 payload bytes)...
        a.commit(0, b(1), cmd(1));
        a.execute_ready();
        // ...plus a large accepted-but-uncommitted tail above a hole at
        // slot 1, so nothing else can execute (or be truncated).
        for s in 2..22 {
            a.on_p2a(b(1), s, cmd(s), 0);
        }
        assert!(a.log().retained_bytes() > 100);
        assert!(
            !a.maybe_compact(&sessions),
            "the untruncatable in-flight tail must not trip the byte threshold"
        );
        assert_eq!(a.snapshot_floor(), 0);
    }

    #[test]
    fn get_executes_against_prior_puts() {
        let mut a = acc();
        let put = Command {
            id: RequestId {
                client: NodeId(9),
                seq: 1,
            },
            op: Operation::Put(42, Value::zeros(3)),
        };
        let get = Command {
            id: RequestId {
                client: NodeId(9),
                seq: 2,
            },
            op: Operation::Get(42),
        };
        a.commit(0, b(1), put);
        a.commit(1, b(1), get);
        let ex = a.execute_ready();
        assert_eq!(ex[1].2.as_ref().map(|v| v.len()), Some(3));
    }
}
