//! The Multi-Paxos replica: glues the [`Acceptor`] and [`Leader`] roles
//! to direct leader↔follower communication.
//!
//! This is the baseline the paper measures PigPaxos against: the leader
//! fans out every phase message to all `N−1` followers and receives all
//! their responses directly, so its message load is `2(N−1)+2` per
//! operation (paper Table 1, "Paxos" row).

use crate::acceptor::{Acceptor, CommitAdvance};
use crate::batching::BatchLane;
use crate::config::PaxosConfig;
use crate::leader::{Leader, Phase1Outcome};
use crate::messages::PaxosMsg;
use paxi::{
    ClientReply, ClientRequest, ClusterConfig, Command, Ctx, Envelope, Replica, ReplicaActor,
    ReplicaCtx, ReplyBatcher, SessionTable,
};
use rand::Rng;
use simnet::{Actor, NodeId, SimDuration, SimTime, TimerId};
use std::collections::HashMap;

const T_ELECTION: u64 = 1;
const T_HEARTBEAT: u64 = 2;
const T_RETRY_SCAN: u64 = 3;
const T_LEARN: u64 = 6;
const T_BATCH: u64 = 7;
const T_REPLY: u64 = 8;

/// Largest number of slots requested in one batched `LearnReq`.
const LEARN_BATCH_MAX: usize = 4096;

/// A Multi-Paxos replica (leader-capable).
pub struct PaxosReplica {
    me: NodeId,
    cluster: ClusterConfig,
    cfg: PaxosConfig,
    acceptor: Acceptor,
    leader: Leader,
    known_leader: Option<NodeId>,
    last_leader_contact: SimTime,
    /// Clients waiting for a slot to execute, by slot.
    waiting: HashMap<u64, NodeId>,
    /// Recently executed replies per client, for exactly-once retries.
    sessions: SessionTable,
    /// Client-command admission: duplicate suppression, per-client
    /// sequencing, and the batch buffer (active leader only; shared
    /// with the PigPaxos replica via `paxos::batching`).
    lane: BatchLane,
    /// Executed-command replies buffered per destination client.
    replies: ReplyBatcher,
    /// True while a reply flush timer is in flight.
    reply_timer_armed: bool,
    election_timeout: SimDuration,
    /// Highest watermark we observed with gaps below it; a learn timer
    /// is armed while repair is pending.
    repair_up_to: u64,
    repair_armed: bool,
}

impl PaxosReplica {
    /// Create the replica for `me`.
    pub fn new(me: NodeId, cluster: ClusterConfig, cfg: PaxosConfig) -> Self {
        let n = cluster.n();
        let mut acceptor = Acceptor::new(me, cluster.safety.clone());
        acceptor.set_snapshot_config(cfg.snapshot.clone());
        let leader = match cfg.flexible_quorums {
            Some((q1, q2)) => Leader::with_quorums(me, n, q1, q2),
            None => Leader::new(me, n),
        };
        PaxosReplica {
            me,
            // Every command of every client flows through the leader's
            // log in direct Multi-Paxos, so per-client sequencing holds
            // — unless the cluster is one shard of many, where a
            // client's sequence legitimately skips the commands routed
            // to other groups.
            lane: BatchLane::new(cfg.batch.clone(), !cluster.client_gaps),
            replies: ReplyBatcher::new(cfg.batch.replies),
            reply_timer_armed: false,
            cfg,
            acceptor,
            leader,
            known_leader: Some(cluster.leader),
            last_leader_contact: SimTime::ZERO,
            waiting: HashMap::new(),
            sessions: SessionTable::new(),
            election_timeout: SimDuration::ZERO,
            repair_up_to: 0,
            repair_armed: false,
            cluster,
        }
    }

    /// The embedded acceptor (for tests and diagnostics).
    pub fn acceptor(&self) -> &Acceptor {
        &self.acceptor
    }

    /// True if this replica currently acts as the active leader.
    pub fn is_leader(&self) -> bool {
        self.leader.is_active()
    }

    fn fanout(&self, msg: PaxosMsg, ctx: &mut Ctx<PaxosMsg>) {
        for peer in self.cluster.peers(self.me) {
            ctx.send_proto(peer, msg.clone());
        }
    }

    /// Phase-2 dissemination policy, shared by single and batched
    /// accepts. Thrifty sends to exactly enough peers for a q2 quorum
    /// (own vote included); retries fall back to the full fan-out,
    /// recovering from a sluggish member at latency cost (paper §2.2).
    fn disseminate_p2(&self, msg: PaxosMsg, ctx: &mut Ctx<PaxosMsg>) {
        if self.cfg.thrifty {
            let peers = self.cluster.peers(self.me);
            for peer in peers.into_iter().take(self.leader.q2().saturating_sub(1)) {
                ctx.send_proto(peer, msg.clone());
            }
        } else {
            self.fanout(msg, ctx);
        }
    }

    fn begin_campaign(&mut self, ctx: &mut Ctx<PaxosMsg>) {
        let ballot = self.leader.start_campaign(self.acceptor.promised());
        let watermark = self.acceptor.commit_watermark();
        // Self-vote first; in a 1-node cluster this already wins.
        let own = self.acceptor.on_p1a(ballot, watermark);
        let outcome = self.leader.on_p1b_votes(vec![own], watermark);
        self.handle_phase1_outcome(outcome, ctx);
        self.fanout(
            PaxosMsg::P1a {
                ballot,
                from: watermark,
            },
            ctx,
        );
    }

    fn handle_phase1_outcome(&mut self, outcome: Phase1Outcome, ctx: &mut Ctx<PaxosMsg>) {
        match outcome {
            Phase1Outcome::Pending => {}
            Phase1Outcome::Won { reproposals } => {
                self.known_leader = Some(self.me);
                for (slot, cmd) in reproposals {
                    self.leader.register(slot, cmd.clone(), None, ctx.now());
                    self.send_accepts(slot, cmd, ctx);
                }
                // Serve commands that queued up during the campaign,
                // through the same admission path as live requests.
                while let Some((client, cmd)) = self.leader.pending.pop_front() {
                    self.admit_and_propose(client, cmd, ctx);
                }
            }
            Phase1Outcome::Preempted { higher } => {
                self.abdicate(higher.node(), ctx);
            }
        }
    }

    fn abdicate(&mut self, to: NodeId, ctx: &mut Ctx<PaxosMsg>) {
        self.leader.demote();
        self.known_leader = Some(to);
        crate::batching::abandon_leadership(
            &mut self.lane,
            &mut self.replies,
            &mut self.leader,
            self.known_leader,
            ctx,
        );
    }

    /// Run a client command through the shared admission lane and
    /// propose whatever it flushes.
    fn admit_and_propose(&mut self, client: NodeId, cmd: Command, ctx: &mut Ctx<PaxosMsg>) {
        let batches = self.lane.admit(
            &self.leader,
            &self.acceptor,
            &self.sessions,
            client,
            cmd,
            ctx,
            T_BATCH,
        );
        for batch in batches {
            self.propose_batch(batch, ctx);
        }
    }

    fn propose_command(&mut self, client: NodeId, cmd: Command, ctx: &mut Ctx<PaxosMsg>) {
        let slot = self.leader.propose(Some(client), cmd.clone(), ctx.now());
        self.waiting.insert(slot, client);
        self.send_accepts(slot, cmd, ctx);
    }

    /// Propose a full batch: allocate consecutive slots, self-vote each,
    /// then fan out a single `P2aBatch` carrying all of them — this is
    /// where N commands start costing one message per follower instead
    /// of N.
    fn propose_batch(&mut self, batch: Vec<(NodeId, Command)>, ctx: &mut Ctx<PaxosMsg>) {
        if batch.is_empty() {
            return;
        }
        if batch.len() == 1 {
            let (client, cmd) = batch.into_iter().next().expect("len checked");
            self.propose_command(client, cmd, ctx);
            return;
        }
        let crate::batching::BatchProposal {
            ballot,
            first_slot,
            commit_up_to,
            commands,
            waiting,
            self_commits,
            advances,
        } = crate::batching::propose_batch(&mut self.leader, &mut self.acceptor, batch, ctx.now());
        for (slot, client) in waiting {
            self.waiting.insert(slot, client);
        }
        for adv in advances {
            self.finish_advance(adv, ctx);
        }
        for (slot, cmd) in self_commits {
            self.commit_and_execute(slot, cmd, ctx);
        }
        let msg = PaxosMsg::P2aBatch {
            ballot,
            first_slot,
            commands,
            commit_up_to,
        };
        self.disseminate_p2(msg, ctx);
    }

    /// Accept every slot of a batched phase-2a locally (via the shared
    /// [`crate::batching`] helper), returning the per-slot votes.
    fn accept_batch(
        &mut self,
        ballot: paxi::Ballot,
        first_slot: u64,
        commands: &[Command],
        commit_up_to: u64,
        ctx: &mut Ctx<PaxosMsg>,
    ) -> crate::batching::BatchAccept {
        let mut acc = crate::batching::accept_batch(
            &mut self.acceptor,
            ballot,
            first_slot,
            commands,
            commit_up_to,
        );
        for adv in std::mem::take(&mut acc.advances) {
            self.finish_advance(adv, ctx);
        }
        if acc.any_ok {
            self.note_leader_contact(ballot.node(), ctx.now());
            if self.leader.is_active() && ballot > self.leader.ballot() {
                self.abdicate(ballot.node(), ctx);
            }
        }
        acc
    }

    /// Feed a batched phase-2b response through the shared guard +
    /// commit-the-wave-then-execute-once helper. Commits are applied
    /// even when the same batch reports a preemption — a quorum of acks
    /// means *chosen*, and the slot is already out of `outstanding`.
    fn count_batch_votes(
        &mut self,
        ballot: paxi::Ballot,
        votes: Vec<crate::messages::P2bVote>,
        ctx: &mut Ctx<PaxosMsg>,
    ) {
        let Some(wave) =
            crate::batching::apply_batch_votes(&mut self.leader, &mut self.acceptor, ballot, votes)
        else {
            return;
        };
        self.reply_executed(wave.executed, ctx);
        if let Some(higher) = wave.preempted {
            self.abdicate(higher.node(), ctx);
        }
    }

    /// Self-vote + fan the P2a out (to all followers, or to `q2 − 1` of
    /// them under the thrifty optimization).
    fn send_accepts(&mut self, slot: u64, cmd: Command, ctx: &mut Ctx<PaxosMsg>) {
        let ballot = self.leader.ballot();
        let commit_up_to = self.acceptor.commit_watermark();
        let (own, adv) = self
            .acceptor
            .on_p2a(ballot, slot, cmd.clone(), commit_up_to);
        self.finish_advance(adv, ctx);
        match self.leader.on_p2b_vote(own) {
            Ok(Some((slot, cmd, _client))) => self.commit_and_execute(slot, cmd, ctx),
            Ok(None) => {}
            Err(_) => {}
        }
        let msg = PaxosMsg::P2a {
            ballot,
            slot,
            command: cmd,
            commit_up_to,
        };
        self.disseminate_p2(msg, ctx);
    }

    fn commit_and_execute(&mut self, slot: u64, cmd: Command, ctx: &mut Ctx<PaxosMsg>) {
        self.acceptor.commit(slot, self.leader.ballot(), cmd);
        let executed = self.acceptor.execute_ready();
        self.reply_executed(executed, ctx);
    }

    fn reply_executed(
        &mut self,
        executed: Vec<(u64, paxi::RequestId, Option<paxi::Value>)>,
        ctx: &mut Ctx<PaxosMsg>,
    ) {
        let executed_any = !executed.is_empty();
        let batches = crate::batching::handle_executed(
            &mut self.lane,
            &mut self.replies,
            &mut self.reply_timer_armed,
            &mut self.sessions,
            &mut self.waiting,
            &self.leader,
            &self.acceptor,
            self.cfg.exec_cost,
            executed,
            T_BATCH,
            T_REPLY,
            ctx,
        );
        for batch in batches {
            self.propose_batch(batch, ctx);
        }
        if executed_any {
            // Compaction rides the execution wave: the frontier just
            // advanced, so sample the peak and check the snapshot
            // trigger (shared with the PigPaxos replica).
            crate::catchup::compact_after_execution(
                &mut self.acceptor,
                &self.sessions,
                &self.cluster.stats,
            );
        }
    }

    fn finish_advance(&mut self, adv: CommitAdvance, ctx: &mut Ctx<PaxosMsg>) {
        if let Some(up_to) = adv.learn_needed {
            self.repair_up_to = self.repair_up_to.max(up_to);
            if !self.repair_armed {
                self.repair_armed = true;
                ctx.set_timer(self.cfg.learn_delay, T_LEARN);
            }
        }
        self.reply_executed(adv.executed, ctx);
    }

    /// Fire the batched gap repair: ask the leader for exactly the slots
    /// still missing (most in-flight gaps will have healed by now).
    fn send_learn_request(&mut self, ctx: &mut Ctx<PaxosMsg>) {
        self.repair_armed = false;
        let Some(leader) = self.known_leader else {
            return;
        };
        if leader == self.me {
            return;
        }
        let missing = self
            .acceptor
            .missing_slots(self.repair_up_to, LEARN_BATCH_MAX);
        if !missing.is_empty() {
            ctx.send_proto(leader, PaxosMsg::LearnReq { slots: missing });
        }
    }

    fn note_leader_contact(&mut self, from: NodeId, now: SimTime) {
        self.known_leader = Some(from);
        self.last_leader_contact = now;
    }

    fn arm_election_timer(&mut self, ctx: &mut Ctx<PaxosMsg>) {
        let min = self.cfg.election_timeout_min.as_nanos();
        let max = self.cfg.election_timeout_max.as_nanos();
        let span = SimDuration::from_nanos(ctx.rng().gen_range(min..=max));
        self.election_timeout = span;
        ctx.set_timer(span, T_ELECTION);
    }
}

impl Replica<PaxosMsg> for PaxosReplica {
    fn on_start(&mut self, ctx: &mut Ctx<PaxosMsg>) {
        self.last_leader_contact = ctx.now();
        if self.me == self.cluster.leader {
            self.begin_campaign(ctx);
            ctx.set_timer(self.cfg.heartbeat_interval, T_HEARTBEAT);
        } else {
            self.arm_election_timer(ctx);
        }
        ctx.set_timer(self.cfg.p2_retry_timeout / 2, T_RETRY_SCAN);
    }

    fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<PaxosMsg>) {
        let cmd = req.command;
        // Exactly-once: a retry of the last executed command gets the
        // cached reply; anything older is a stale duplicate.
        if let Some(reply) = self.sessions.replay(cmd.id) {
            ctx.reply(client, reply.clone());
            return;
        }
        if self.sessions.is_stale(cmd.id) {
            return;
        }
        if self.leader.is_active() {
            // Admission (duplicate suppression, per-client sequencing,
            // batching) is shared with the PigPaxos replica; only the
            // dissemination in `propose_batch` differs.
            self.admit_and_propose(client, cmd, ctx);
        } else if self.leader.is_campaigning() || self.me == self.cluster.leader {
            self.leader.pending.push_back((client, cmd));
        } else {
            ctx.reply(client, ClientReply::redirect(cmd.id, self.known_leader));
        }
    }

    fn on_proto(&mut self, from: NodeId, msg: PaxosMsg, ctx: &mut Ctx<PaxosMsg>) {
        match msg {
            PaxosMsg::P1a {
                ballot,
                from: report_from,
            } => {
                let vote = self.acceptor.on_p1a(ballot, report_from);
                if vote.ok {
                    self.note_leader_contact(from, ctx.now());
                    if (self.leader.is_active() || self.leader.is_campaigning())
                        && ballot > self.leader.ballot()
                    {
                        self.abdicate(from, ctx);
                    }
                }
                ctx.send_proto(
                    from,
                    PaxosMsg::P1b {
                        ballot: vote.ballot,
                        votes: vec![vote],
                    },
                );
            }
            PaxosMsg::P1b { ballot, mut votes } => {
                if ballot == self.leader.ballot() && self.leader.is_campaigning() {
                    // A promise may carry a snapshot when our watermark
                    // lies below the promiser's compaction floor; it is
                    // installed before the vote is counted (see
                    // `crate::catchup`).
                    crate::catchup::install_p1b_snapshots(
                        &mut self.acceptor,
                        &mut self.sessions,
                        &self.cluster.stats,
                        &mut votes,
                    );
                    let watermark = self.acceptor.commit_watermark();
                    let outcome = self.leader.on_p1b_votes(votes, watermark);
                    self.handle_phase1_outcome(outcome, ctx);
                }
            }
            PaxosMsg::P2a {
                ballot,
                slot,
                command,
                commit_up_to,
            } => {
                let (vote, adv) = self.acceptor.on_p2a(ballot, slot, command, commit_up_to);
                if vote.ok {
                    self.note_leader_contact(from, ctx.now());
                    if self.leader.is_active() && ballot > self.leader.ballot() {
                        self.abdicate(from, ctx);
                    }
                }
                self.finish_advance(adv, ctx);
                ctx.send_proto(
                    from,
                    PaxosMsg::P2b {
                        ballot: vote.ballot,
                        slot,
                        votes: vec![vote],
                    },
                );
            }
            PaxosMsg::P2b {
                ballot,
                slot,
                votes,
            } => {
                if self.leader.is_active() && ballot == self.leader.ballot() {
                    match self.leader.on_p2b_votes(slot, votes) {
                        Ok(Some((slot, cmd, _client))) => self.commit_and_execute(slot, cmd, ctx),
                        Ok(None) => {}
                        Err(higher) => self.abdicate(higher.node(), ctx),
                    }
                }
            }
            PaxosMsg::P2aBatch {
                ballot,
                first_slot,
                commands,
                commit_up_to,
            } => {
                let last_slot = first_slot + commands.len().saturating_sub(1) as u64;
                let acc = self.accept_batch(ballot, first_slot, &commands, commit_up_to, ctx);
                ctx.send_proto(
                    from,
                    PaxosMsg::P2bBatch {
                        ballot: acc.reply_ballot,
                        first_slot,
                        last_slot,
                        votes: acc.votes,
                    },
                );
            }
            PaxosMsg::P2bBatch { ballot, votes, .. } => {
                self.count_batch_votes(ballot, votes, ctx);
            }
            PaxosMsg::Heartbeat {
                ballot,
                commit_up_to,
            } => {
                if ballot >= self.acceptor.promised() {
                    self.note_leader_contact(from, ctx.now());
                    let adv = self.acceptor.advance_commits(commit_up_to, ballot);
                    self.finish_advance(adv, ctx);
                }
            }
            PaxosMsg::LearnReq { slots } => {
                let ballot = self.acceptor.promised();
                match self.acceptor.serve_learn(&slots) {
                    Some(crate::acceptor::LearnAnswer::Entries(entries)) => {
                        ctx.send_proto(from, PaxosMsg::LearnRep { ballot, entries });
                    }
                    Some(crate::acceptor::LearnAnswer::Snapshot(snapshot, entries)) => {
                        // The requested prefix was compacted away:
                        // catch the follower up from state, not slots.
                        ctx.send_proto(
                            from,
                            PaxosMsg::SnapshotTransfer {
                                ballot,
                                snapshot,
                                entries,
                            },
                        );
                    }
                    None => {}
                }
            }
            PaxosMsg::LearnRep { ballot, entries } => {
                for (slot, cmd) in entries {
                    self.acceptor.commit(slot, ballot, cmd);
                }
                let executed = self.acceptor.execute_ready();
                self.reply_executed(executed, ctx);
            }
            PaxosMsg::SnapshotTransfer {
                ballot,
                snapshot,
                entries,
            } => {
                let executed = crate::catchup::apply_snapshot_transfer(
                    &mut self.acceptor,
                    &mut self.sessions,
                    &self.cluster.stats,
                    ballot,
                    &snapshot,
                    entries,
                );
                self.reply_executed(executed, ctx);
            }
            PaxosMsg::QrRead {
                reader,
                id,
                attempt,
                key,
            } => {
                let entry = self.acceptor.read_state(key);
                ctx.send_proto(
                    from,
                    PaxosMsg::QrVote {
                        reader,
                        id,
                        attempt,
                        votes: vec![entry],
                    },
                );
            }
            PaxosMsg::QrReadBatch {
                reader,
                wave,
                probes,
            } => {
                let votes = probes
                    .into_iter()
                    .map(|p| crate::messages::QrProbeVote {
                        id: p.id,
                        attempt: p.attempt,
                        entry: self.acceptor.read_state(p.key),
                    })
                    .collect();
                ctx.send_proto(
                    from,
                    PaxosMsg::QrVoteBatch {
                        reader,
                        wave,
                        votes,
                    },
                );
            }
            // Plain Multi-Paxos replicas never proxy quorum reads; a
            // stray aggregate is dropped (PigPaxos implements the proxy).
            PaxosMsg::QrVote { .. } | PaxosMsg::QrVoteBatch { .. } => {}
        }
    }

    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Ctx<PaxosMsg>) {
        match kind {
            T_ELECTION => {
                let idle = ctx.now().saturating_sub(self.last_leader_contact);
                if !self.leader.is_active()
                    && !self.leader.is_campaigning()
                    && idle >= self.election_timeout
                {
                    self.begin_campaign(ctx);
                    // Heartbeats start once (if) the campaign wins, via
                    // this same chain: keep both timers running.
                    ctx.set_timer(self.cfg.heartbeat_interval, T_HEARTBEAT);
                }
                self.arm_election_timer(ctx);
            }
            T_HEARTBEAT => {
                if self.leader.is_active() {
                    let commit_up_to = self.acceptor.commit_watermark();
                    self.fanout(
                        PaxosMsg::Heartbeat {
                            ballot: self.leader.ballot(),
                            commit_up_to,
                        },
                        ctx,
                    );
                    ctx.set_timer(self.cfg.heartbeat_interval, T_HEARTBEAT);
                } else if self.leader.is_campaigning() {
                    // Keep the chain alive while campaigning.
                    ctx.set_timer(self.cfg.heartbeat_interval, T_HEARTBEAT);
                }
                // Otherwise let the chain die; a future campaign re-arms it.
            }
            T_RETRY_SCAN => {
                if self.leader.is_active() {
                    let stale = self
                        .leader
                        .stale_proposals(ctx.now(), self.cfg.p2_retry_timeout);
                    let ballot = self.leader.ballot();
                    let commit_up_to = self.acceptor.commit_watermark();
                    for (slot, command) in stale {
                        self.fanout(
                            PaxosMsg::P2a {
                                ballot,
                                slot,
                                command,
                                commit_up_to,
                            },
                            ctx,
                        );
                    }
                }
                ctx.set_timer(self.cfg.p2_retry_timeout / 2, T_RETRY_SCAN);
            }
            T_LEARN => self.send_learn_request(ctx),
            T_BATCH if self.leader.is_active() => {
                let batch = self.lane.on_flush_timer();
                self.propose_batch(batch, ctx);
            }
            T_REPLY => {
                self.reply_timer_armed = false;
                self.replies.flush_into(ctx);
            }
            _ => {}
        }
    }

    fn state_digest(&self) -> Option<u64> {
        Some(self.acceptor.kv().fingerprint())
    }
}

/// [`PaxosConfig`] is the protocol's [`paxi::ProtocolSpec`]: hand it to
/// [`paxi::Experiment`] to run direct Multi-Paxos on any topology and
/// either execution substrate. Clients default to the stable leader
/// (replica 0).
impl paxi::ProtocolSpec for PaxosConfig {
    type Msg = PaxosMsg;

    fn protocol_name(&self) -> &'static str {
        "paxos"
    }

    fn build_replica(
        &self,
        node: NodeId,
        cluster: &ClusterConfig,
    ) -> Box<dyn Actor<Envelope<PaxosMsg>> + Send> {
        Box::new(ReplicaActor(PaxosReplica::new(
            node,
            cluster.clone(),
            self.clone(),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi::Experiment;
    use paxi::TargetPolicy;
    use simnet::{Control, SimTime};

    fn exp(n: usize, clients: usize) -> Experiment<PaxosConfig> {
        Experiment::lan(PaxosConfig::lan(), n)
            .clients(clients)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(700))
    }

    #[test]
    fn three_node_cluster_commits() {
        let r = exp(3, 4).run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.throughput > 100.0, "throughput {}", r.throughput);
        assert!(r.decided > 100);
        assert!(r.mean_latency_ms > 0.1, "latency should include RTT");
    }

    #[test]
    fn five_node_cluster_commits() {
        let r = exp(5, 8).run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty());
        assert!(r.throughput > 100.0);
    }

    #[test]
    fn leader_messages_scale_with_cluster_size() {
        // Paper Table 1/2: Paxos leader handles 2(N-1)+2 msgs/op.
        let r5 = exp(5, 8).run_sim(paxi::DEFAULT_SEED);
        let r9 = exp(9, 8).run_sim(paxi::DEFAULT_SEED);
        assert!(
            (r5.leader_msgs_per_op - 10.0).abs() < 2.0,
            "5 nodes: expected ≈10 msgs/op at leader, got {}",
            r5.leader_msgs_per_op
        );
        assert!(
            (r9.leader_msgs_per_op - 18.0).abs() < 3.0,
            "9 nodes: expected ≈18 msgs/op at leader, got {}",
            r9.leader_msgs_per_op
        );
        assert!(r9.leader_msgs_per_op > r5.leader_msgs_per_op);
    }

    #[test]
    fn follower_crash_does_not_stop_progress() {
        let r = exp(5, 4).run_sim_with(paxi::DEFAULT_SEED, |sim, _cluster| {
            sim.schedule_control(SimTime::from_millis(400), Control::Crash(NodeId(4)));
        });
        assert!(r.violations.is_empty());
        assert!(r.throughput > 100.0, "majority alive: progress continues");
    }

    #[test]
    fn leader_crash_triggers_reelection() {
        let r = exp(3, 2)
            .warmup(SimDuration::from_millis(200))
            .measure(SimDuration::from_secs(3))
            .target(TargetPolicy::Random(vec![NodeId(0), NodeId(1), NodeId(2)]))
            .run_sim_with(paxi::DEFAULT_SEED, |sim, _cluster| {
                sim.schedule_control(SimTime::from_millis(700), Control::Crash(NodeId(0)));
            });
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        // After the old leader dies, a new one must emerge and keep
        // committing (clients retry toward random nodes and follow
        // redirects).
        assert!(
            r.throughput > 50.0,
            "cluster must recover from leader crash, got {} ops/s",
            r.throughput
        );
    }

    #[test]
    fn reads_and_writes_both_complete() {
        let r = exp(3, 4).run_sim(paxi::DEFAULT_SEED);
        assert!(r.samples > 0);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn flexible_quorums_commit_and_stay_safe() {
        // The paper's §2.2 example: N=10, Q1=8, Q2=3.
        let mut cfg = PaxosConfig::lan();
        cfg.flexible_quorums = Some((8, 3));
        let r = Experiment::lan(cfg, 10)
            .clients(6)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(700))
            .run_sim(paxi::DEFAULT_SEED);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert!(r.throughput > 100.0);
    }

    #[test]
    fn flexible_q2_cuts_wan_latency_but_not_leader_load() {
        // 15-node WAN, 5 replicas per region, leader in Virginia. A Q2
        // of 5 commits entirely within the leader's region; the majority
        // configuration must wait for California.
        let wan = |cfg: PaxosConfig| {
            Experiment::wan(cfg, 15)
                .clients(4)
                .warmup(SimDuration::from_millis(500))
                .measure(SimDuration::from_secs(2))
                .run_sim(paxi::DEFAULT_SEED)
        };
        let majority = wan(PaxosConfig::wan());
        let mut cfg = PaxosConfig::wan();
        cfg.flexible_quorums = Some((11, 5));
        let flexible = wan(cfg);
        assert!(flexible.violations.is_empty());
        assert!(
            flexible.mean_latency_ms < majority.mean_latency_ms / 5.0,
            "intra-region Q2 must avoid WAN RTT: {:.1}ms vs {:.1}ms",
            flexible.mean_latency_ms,
            majority.mean_latency_ms
        );
        // The paper's caveat: the leader still fans out to everyone, so
        // its per-op message load is unchanged.
        assert!(
            (flexible.leader_msgs_per_op - majority.leader_msgs_per_op).abs() < 2.0,
            "leader load unchanged: {:.1} vs {:.1}",
            flexible.leader_msgs_per_op,
            majority.leader_msgs_per_op
        );
    }

    #[test]
    fn thrifty_reduces_leader_messages_but_one_crash_hurts() {
        let mut cfg = PaxosConfig::lan();
        cfg.thrifty = true;
        let base = Experiment::lan(cfg, 9)
            .clients(4)
            .warmup(SimDuration::from_millis(300))
            .measure(SimDuration::from_millis(700));
        let healthy = base.run_sim(paxi::DEFAULT_SEED);
        assert!(healthy.violations.is_empty());
        // Thrifty: 1 req + (q2-1)=4 sends + 4 acks + 1 reply = 10 per op
        // instead of 18.
        assert!(
            healthy.leader_msgs_per_op < 12.0,
            "thrifty must cut leader load: {:.1}",
            healthy.leader_msgs_per_op
        );

        // Crash one of the thrifty quorum members: every commit now
        // rides the retry path (paper: "a single faulty or sluggish
        // node in Q2 stalls the performance").
        let crashed = base.run_sim_with(paxi::DEFAULT_SEED, |sim, _| {
            sim.schedule_control(SimTime::from_millis(100), Control::Crash(NodeId(1)));
        });
        assert!(crashed.violations.is_empty());
        assert!(
            crashed.mean_latency_ms > healthy.mean_latency_ms * 5.0,
            "thrifty + crash must stall: {:.1}ms vs {:.1}ms",
            crashed.mean_latency_ms,
            healthy.mean_latency_ms
        );
    }
}
