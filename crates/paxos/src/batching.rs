//! Shared leader/acceptor plumbing for batched accept rounds.
//!
//! Both the direct Multi-Paxos replica and the PigPaxos overlay batch
//! identically — only the *dissemination* of the resulting `P2aBatch`
//! (full fan-out vs. relay tree) differs. The slot allocation,
//! self-voting, and local acceptance logic live here once so the two
//! replicas cannot drift.

use crate::acceptor::{Acceptor, CommitAdvance};
use crate::leader::Leader;
use crate::messages::P2bVote;
use paxi::{Ballot, Command};
use simnet::{NodeId, SimTime};

/// Everything a replica must apply and send after proposing a batch:
/// the wire payload fields plus the leader's local side effects.
#[derive(Debug)]
pub struct BatchProposal {
    /// Leader's ballot at proposal time.
    pub ballot: Ballot,
    /// Slot of `commands[0]`; the batch occupies consecutive slots.
    pub first_slot: u64,
    /// Commit watermark to piggyback.
    pub commit_up_to: u64,
    /// The batched commands, in slot order.
    pub commands: Vec<Command>,
    /// `(slot, client)` pairs the replica must await execution for.
    pub waiting: Vec<(u64, NodeId)>,
    /// Slots the leader's own vote already decided (1-node quorums).
    pub self_commits: Vec<(u64, Command)>,
    /// Commit advances produced by accepting locally.
    pub advances: Vec<CommitAdvance>,
}

/// Allocate consecutive slots for `batch`, register each command with
/// the leader, and feed the leader's own acceptor vote per slot.
/// `batch` must be non-empty.
pub fn propose_batch(
    leader: &mut Leader,
    acceptor: &mut Acceptor,
    batch: Vec<(NodeId, Command)>,
    now: SimTime,
) -> BatchProposal {
    debug_assert!(!batch.is_empty(), "propose_batch needs commands");
    let ballot = leader.ballot();
    let commit_up_to = acceptor.commit_watermark();
    let mut first_slot = None;
    let mut commands = Vec::with_capacity(batch.len());
    let mut waiting = Vec::with_capacity(batch.len());
    let mut self_commits = Vec::new();
    let mut advances = Vec::new();
    for (client, cmd) in batch {
        let slot = leader.propose(Some(client), cmd.clone(), now);
        first_slot.get_or_insert(slot);
        waiting.push((slot, client));
        let (own, adv) = acceptor.on_p2a(ballot, slot, cmd.clone(), commit_up_to);
        advances.push(adv);
        if let Ok(Some((slot, cmd, _))) = leader.on_p2b_votes(slot, vec![own]) {
            self_commits.push((slot, cmd));
        }
        commands.push(cmd);
    }
    BatchProposal {
        ballot,
        first_slot: first_slot.expect("non-empty batch"),
        commit_up_to,
        commands,
        waiting,
        self_commits,
        advances,
    }
}

/// A follower's local processing of a batched phase-2a.
#[derive(Debug)]
pub struct BatchAccept {
    /// One vote per slot of the batch, in slot order.
    pub votes: Vec<P2bVote>,
    /// Commit advances from the piggybacked watermark.
    pub advances: Vec<CommitAdvance>,
    /// True if any slot was accepted (leader contact is real).
    pub any_ok: bool,
    /// Ballot for the reply message (the promised ballot on rejection,
    /// mirroring the single-slot reply convention).
    pub reply_ballot: Ballot,
}

/// Accept every slot of a batched phase-2a against `acceptor`.
pub fn accept_batch(
    acceptor: &mut Acceptor,
    ballot: Ballot,
    first_slot: u64,
    commands: Vec<Command>,
    commit_up_to: u64,
) -> BatchAccept {
    let mut votes = Vec::with_capacity(commands.len());
    let mut advances = Vec::with_capacity(commands.len());
    let mut any_ok = false;
    for (i, command) in commands.into_iter().enumerate() {
        let (vote, adv) = acceptor.on_p2a(ballot, first_slot + i as u64, command, commit_up_to);
        any_ok |= vote.ok;
        votes.push(vote);
        advances.push(adv);
    }
    let reply_ballot = votes.first().map(|v| v.ballot).unwrap_or(ballot);
    BatchAccept {
        votes,
        advances,
        any_ok,
        reply_ballot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::P1bVote;
    use paxi::{majority, Operation, RequestId, SafetyMonitor, Value};

    fn cmd(seq: u64) -> Command {
        Command {
            id: RequestId {
                client: NodeId(9),
                seq,
            },
            op: Operation::Put(seq, Value::zeros(8)),
        }
    }

    fn active_leader(n: usize) -> Leader {
        let mut l = Leader::new(NodeId(0), n);
        let b = l.start_campaign(Ballot::ZERO);
        let votes: Vec<P1bVote> = (0..majority(n) as u32)
            .map(|i| P1bVote {
                node: NodeId(i),
                ballot: b,
                ok: true,
                accepted: vec![],
            })
            .collect();
        l.on_p1b_votes(votes, 0);
        l
    }

    #[test]
    fn propose_allocates_consecutive_slots_and_tracks_clients() {
        let mut leader = active_leader(5);
        let mut acceptor = Acceptor::new(NodeId(0), SafetyMonitor::new());
        let batch = vec![
            (NodeId(10), cmd(1)),
            (NodeId(11), cmd(2)),
            (NodeId(12), cmd(3)),
        ];
        let p = propose_batch(&mut leader, &mut acceptor, batch, SimTime::ZERO);
        assert_eq!(p.first_slot, 0);
        assert_eq!(p.commands.len(), 3);
        assert_eq!(
            p.waiting,
            vec![(0, NodeId(10)), (1, NodeId(11)), (2, NodeId(12))]
        );
        assert!(
            p.self_commits.is_empty(),
            "5-node quorum needs more than the self vote"
        );
        assert_eq!(leader.outstanding().len(), 3);
    }

    #[test]
    fn one_node_cluster_self_commits_whole_batch() {
        let mut leader = active_leader(1);
        let mut acceptor = Acceptor::new(NodeId(0), SafetyMonitor::new());
        let batch = vec![(NodeId(10), cmd(1)), (NodeId(11), cmd(2))];
        let p = propose_batch(&mut leader, &mut acceptor, batch, SimTime::ZERO);
        assert_eq!(p.self_commits.len(), 2, "quorum of one: own vote decides");
        assert!(leader.outstanding().is_empty());
    }

    #[test]
    fn accept_batch_votes_per_slot() {
        let mut acceptor = Acceptor::new(NodeId(1), SafetyMonitor::new());
        let ballot = Ballot::new(1, NodeId(0));
        let acc = accept_batch(&mut acceptor, ballot, 5, vec![cmd(1), cmd(2)], 0);
        assert!(acc.any_ok);
        assert_eq!(acc.reply_ballot, ballot);
        assert_eq!(acc.votes.len(), 2);
        assert_eq!(acc.votes[0].slot, 5);
        assert_eq!(acc.votes[1].slot, 6);
        assert!(acc.votes.iter().all(|v| v.ok));
    }

    #[test]
    fn accept_batch_rejects_stale_ballot_with_promised() {
        let mut acceptor = Acceptor::new(NodeId(1), SafetyMonitor::new());
        let high = Ballot::new(9, NodeId(2));
        acceptor.on_p1a(high, 0);
        let stale = Ballot::new(1, NodeId(0));
        let acc = accept_batch(&mut acceptor, stale, 0, vec![cmd(1)], 0);
        assert!(!acc.any_ok);
        assert_eq!(acc.reply_ballot, high, "nack carries the promised ballot");
    }
}
