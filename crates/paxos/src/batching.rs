//! Shared leader/acceptor plumbing for batched accept rounds.
//!
//! Both the direct Multi-Paxos replica and the PigPaxos overlay batch
//! identically — only the *dissemination* of the resulting `P2aBatch`
//! (full fan-out vs. relay tree) differs. Everything else lives here
//! once so the two replicas cannot drift:
//!
//! - [`BatchLane`]: client-command admission at an active leader —
//!   duplicate suppression, per-client sequencing (pipelined clients'
//!   requests can arrive reordered by network jitter; the lane holds
//!   successors until their predecessors are proposed so the decided
//!   log preserves per-client issue order), and the size-or-time
//!   (or adaptive) batch buffer;
//! - [`propose_batch`] / [`accept_batch`]: slot allocation, self-voting,
//!   and follower-side acceptance for a batched phase-2a;
//! - [`count_batch_votes`]: the leader-side quorum counting guard.

use crate::acceptor::{Acceptor, CommitAdvance};
use crate::leader::{BatchVotesOutcome, Leader};
use crate::messages::P2bVote;
use paxi::{
    Ballot, BatchConfig, BatchPush, Batcher, Command, Ctx, ProtoMessage, ReplicaCtx, ReplyBatcher,
    SessionTable,
};
use simnet::{NodeId, SimTime, TimerId};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// A flushed batch ready to propose: `(client, command)` pairs in
/// admission order.
pub type Batch = Vec<(NodeId, Command)>;

/// Client-command admission and batching state for an active leader.
///
/// The lane is the part of the request path that was previously
/// mirrored between `PaxosReplica` and `PigReplica`; the replicas keep
/// only their dissemination policy. Every batch the lane emits must be
/// proposed (via [`propose_batch`]) by the caller.
#[derive(Debug)]
pub struct BatchLane {
    batcher: Batcher,
    /// Pending `max_delay` flush timer, cancelled when a batch flushes
    /// by size so it cannot prematurely flush the next batch.
    timer: Option<TimerId>,
    /// Highest sequence number proposed per client — the per-client
    /// sequencing floor, and a cheap filter so only requests at or
    /// below it (i.e. possible duplicates) pay the unexecuted-window
    /// log scan.
    proposed_hw: HashMap<NodeId, u64>,
    /// Out-of-order arrivals held until their predecessors are proposed
    /// (only populated by pipelined clients under network jitter).
    held: HashMap<NodeId, BTreeMap<u64, Command>>,
    held_count: usize,
    /// Enforce per-client issue order in the decided log. Must be off
    /// when some of a client's commands legitimately bypass this
    /// leader's log (e.g. PQR reads served at follower proxies) — a
    /// sequence gap would otherwise be held forever.
    sequencing: bool,
}

impl BatchLane {
    /// Empty lane with the given batching policy; `sequencing` enforces
    /// per-client issue order in the decided log (see the field doc for
    /// when it must be off).
    pub fn new(cfg: BatchConfig, sequencing: bool) -> Self {
        BatchLane {
            batcher: Batcher::new(cfg),
            timer: None,
            proposed_hw: HashMap::new(),
            held: HashMap::new(),
            held_count: 0,
            sequencing,
        }
    }

    /// The active batching policy.
    pub fn config(&self) -> &BatchConfig {
        self.batcher.config()
    }

    /// Current adaptive fill target (diagnostics).
    pub fn batch_target(&self) -> usize {
        self.batcher.target()
    }

    /// Commands currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.batcher.len()
    }

    /// Commands held for per-client reordering (diagnostics).
    pub fn held_count(&self) -> usize {
        self.held_count
    }

    /// Record one executed wave for drain-aware sizing (no-op unless
    /// the policy sets [`BatchConfig::drain_aware`]). Called from the
    /// shared reply leg so both replicas feed the same estimator.
    pub fn note_drain(&mut self, now: SimTime, executed: usize) {
        self.batcher.note_drain(now, executed);
    }

    fn next_expected(&self, sessions: &SessionTable, client: NodeId) -> u64 {
        let hw = self.proposed_hw.get(&client).copied().unwrap_or(0);
        let executed = sessions.latest_seq(client).unwrap_or(0);
        hw.max(executed) + 1
    }

    fn note_proposed(&mut self, client: NodeId, seq: u64) {
        let hw = self.proposed_hw.entry(client).or_insert(0);
        *hw = (*hw).max(seq);
    }

    /// The provably-handled per-client floor: the highest seq visible in
    /// any live structure (executed sessions, the unexecuted log window,
    /// outstanding proposals, the batch buffer). Only consulted on the
    /// rare stale-floor path after re-election, so the log scan stays
    /// off the hot path.
    fn justified_floor(
        &self,
        leader: &Leader,
        acceptor: &Acceptor,
        sessions: &SessionTable,
        client: NodeId,
    ) -> u64 {
        sessions
            .latest_seq(client)
            .unwrap_or(0)
            .max(acceptor.highest_unexecuted_seq(client).unwrap_or(0))
            .max(leader.highest_outstanding_seq(client).unwrap_or(0))
            .max(self.batcher.highest_buffered_seq(client).unwrap_or(0))
    }

    fn is_duplicate(&self, leader: &Leader, acceptor: &Acceptor, cmd: &Command) -> bool {
        // The floor filter keeps the unexecuted-log scan off the hot
        // path: a fresh command (above a known floor) cannot be in the
        // log. An *absent* entry is inconclusive — after failover the
        // new leader has no floor yet, but a retry of a command the old
        // leader committed may sit unexecuted in the log — so scan.
        let possibly_proposed = match self.proposed_hw.get(&cmd.id.client) {
            Some(&hw) => hw >= cmd.id.seq,
            None => true, // no floor yet (e.g. fresh leadership): scan
        };
        leader.has_outstanding_request(cmd.id)
            || self.batcher.contains(cmd.id)
            || (possibly_proposed && acceptor.has_unexecuted_command(cmd.id))
    }

    fn push<P: ProtoMessage>(
        &mut self,
        client: NodeId,
        cmd: Command,
        ctx: &mut Ctx<P>,
        t_batch: u64,
        out: &mut Vec<Batch>,
    ) {
        self.note_proposed(cmd.id.client, cmd.id.seq);
        match self.batcher.push(client, cmd, ctx.now()) {
            BatchPush::Flush(batch) => {
                if let Some(t) = self.timer.take() {
                    ctx.cancel_timer(t);
                }
                out.push(batch);
            }
            BatchPush::ArmTimer => {
                self.timer = Some(ctx.set_timer(self.batcher.config().max_delay, t_batch));
            }
            BatchPush::Buffered => {}
        }
    }

    /// Release held successors of `client` that are now in sequence.
    #[allow(clippy::too_many_arguments)]
    fn release_client<P: ProtoMessage>(
        &mut self,
        leader: &Leader,
        acceptor: &Acceptor,
        sessions: &SessionTable,
        client: NodeId,
        ctx: &mut Ctx<P>,
        t_batch: u64,
        out: &mut Vec<Batch>,
    ) {
        loop {
            let expect = self.next_expected(sessions, client);
            let Some(chain) = self.held.get_mut(&client) else {
                return;
            };
            // Drop anything at or below the floor (stale duplicates of
            // commands that got proposed through another path).
            while chain
                .first_key_value()
                .is_some_and(|(&seq, _)| seq < expect)
            {
                chain.pop_first();
                self.held_count -= 1;
            }
            let Some(cmd) = chain.remove(&expect) else {
                if chain.is_empty() {
                    self.held.remove(&client);
                }
                return;
            };
            self.held_count -= 1;
            if self.is_duplicate(leader, acceptor, &cmd) {
                self.note_proposed(cmd.id.client, cmd.id.seq);
                continue;
            }
            self.push(client, cmd, ctx, t_batch, out);
        }
    }

    /// Admit a client command at an *active* leader. The caller has
    /// already answered session replays and dropped stale duplicates.
    /// Returns the batches (possibly several, when the command unblocks
    /// held successors) that must be proposed now.
    #[allow(clippy::too_many_arguments)]
    pub fn admit<P: ProtoMessage>(
        &mut self,
        leader: &Leader,
        acceptor: &Acceptor,
        sessions: &SessionTable,
        client: NodeId,
        cmd: Command,
        ctx: &mut Ctx<P>,
        t_batch: u64,
    ) -> Vec<Batch> {
        let mut out = Vec::new();
        let id = cmd.id;
        if self
            .held
            .get(&id.client)
            .is_some_and(|chain| chain.contains_key(&id.seq))
        {
            return out; // retry of a held command
        }
        if self.is_duplicate(leader, acceptor, &cmd) {
            // Already in flight, buffered, or committed-but-unexecuted
            // (the window the session table cannot see): the reply
            // comes at execution. Advancing the floor lets any held
            // successors through.
            self.note_proposed(id.client, id.seq);
            self.release_client(
                leader, acceptor, sessions, id.client, ctx, t_batch, &mut out,
            );
            return out;
        }
        if self.sequencing {
            let mut expect = self.next_expected(sessions, id.client);
            if id.seq < expect {
                // The floor says this seq was handled, yet it is in no
                // live structure (checked above, and the floor made the
                // unexecuted-log scan run): the floor was inherited
                // from an earlier leadership term whose proposal never
                // survived. Rebuild it from ground truth and
                // re-sequence, so even several such retries — which may
                // themselves arrive reordered — are re-proposed in
                // issue order rather than dropped (stranding the
                // client) or pushed as they come (reordering the log).
                let justified = self.justified_floor(leader, acceptor, sessions, id.client);
                self.proposed_hw.insert(id.client, justified);
                expect = justified + 1;
                if id.seq < expect {
                    // A *successor* already survived into the log or
                    // executed while this seq vanished (possible only
                    // under message loss + failover): issue order is
                    // unrecoverable for this pair, so deliver rather
                    // than strand the retrying client.
                    expect = id.seq;
                }
            }
            if id.seq > expect {
                // A predecessor is still in the network (pipelined
                // client + jitter) or is itself an unproposed retry yet
                // to arrive: hold until it is proposed. Liveness is the
                // client's job — every outstanding request is retried.
                self.held.entry(id.client).or_default().insert(id.seq, cmd);
                self.held_count += 1;
                return out;
            }
        }
        self.push(client, cmd, ctx, t_batch, &mut out);
        self.release_client(
            leader, acceptor, sessions, id.client, ctx, t_batch, &mut out,
        );
        out
    }

    /// Release held commands unblocked by state advances outside
    /// [`BatchLane::admit`] (e.g. executions learned from the commit
    /// watermark advancing the session table). Cheap when nothing is
    /// held.
    pub fn drain_ready<P: ProtoMessage>(
        &mut self,
        leader: &Leader,
        acceptor: &Acceptor,
        sessions: &SessionTable,
        ctx: &mut Ctx<P>,
        t_batch: u64,
    ) -> Vec<Batch> {
        let mut out = Vec::new();
        if self.held_count == 0 {
            return out;
        }
        let clients: Vec<NodeId> = self.held.keys().copied().collect();
        for client in clients {
            self.release_client(leader, acceptor, sessions, client, ctx, t_batch, &mut out);
        }
        out
    }

    /// The `max_delay` timer fired: take whatever is buffered.
    pub fn on_flush_timer(&mut self) -> Batch {
        self.timer = None;
        self.batcher.flush()
    }

    /// Abandon leadership: drain the buffer and every held command (the
    /// caller redirects their clients) and return the flush timer to
    /// cancel, so it cannot fire into the next leadership term.
    pub fn abandon(&mut self) -> (Vec<(NodeId, Command)>, Option<TimerId>) {
        let mut out = self.batcher.flush();
        for (_, chain) in self.held.drain() {
            for (_, cmd) in chain {
                out.push((cmd.id.client, cmd));
            }
        }
        self.held_count = 0;
        (out, self.timer.take())
    }
}

/// Count a batched set of phase-2b votes at the leader, guarded against
/// inactive leadership and stale ballots. `None` means the votes do not
/// apply; otherwise the caller must apply every commit and any
/// preemption in the outcome.
pub fn count_batch_votes(
    leader: &mut Leader,
    ballot: Ballot,
    votes: Vec<P2bVote>,
) -> Option<BatchVotesOutcome> {
    if !leader.is_active() || ballot != leader.ballot() {
        return None;
    }
    Some(leader.on_p2b_batch(votes))
}

/// What a batched vote wave produced: one execution wave of replies to
/// ship, plus any preempting ballot the caller must abdicate to (after
/// delivering the replies — a quorum of acks means *chosen*).
#[derive(Debug)]
pub struct VoteWave {
    /// Executed `(slot, request, value)` triples, in slot order.
    pub executed: Vec<(u64, paxi::RequestId, Option<paxi::Value>)>,
    /// Highest preempting ballot observed, if any.
    pub preempted: Option<Ballot>,
}

/// Count a batched vote wave and apply it: commit every decided slot
/// first, then execute the ready prefix *once*, so the wave produces a
/// single batch of replies (what reply coalescing amortizes into
/// per-client envelopes). `None` when the votes do not apply.
pub fn apply_batch_votes(
    leader: &mut Leader,
    acceptor: &mut Acceptor,
    ballot: Ballot,
    votes: Vec<P2bVote>,
) -> Option<VoteWave> {
    let out = count_batch_votes(leader, ballot, votes)?;
    let ballot = leader.ballot();
    for (slot, cmd, _client) in out.committed {
        acceptor.commit(slot, ballot, cmd);
    }
    Some(VoteWave {
        executed: acceptor.execute_ready(),
        preempted: out.preempted,
    })
}

/// Handle one wave of executed commands at a replica — the reply leg
/// shared by the direct and relay-tree replicas: charge execution cost,
/// record every reply in the session table, route waiting clients'
/// replies through the (possibly coalescing) reply batcher, close the
/// wave, and release any held admissions the session advance unblocked.
/// Returns the batches the caller must propose (its dissemination
/// policy is the only part that differs between replicas).
#[allow(clippy::too_many_arguments)]
pub fn handle_executed<P: ProtoMessage>(
    lane: &mut BatchLane,
    replies: &mut ReplyBatcher,
    reply_timer_armed: &mut bool,
    sessions: &mut SessionTable,
    waiting: &mut HashMap<u64, NodeId>,
    leader: &Leader,
    acceptor: &Acceptor,
    exec_cost: simnet::SimDuration,
    executed: Vec<(u64, paxi::RequestId, Option<paxi::Value>)>,
    t_batch: u64,
    t_reply: u64,
    ctx: &mut Ctx<P>,
) -> Vec<Batch> {
    if executed.is_empty() {
        return Vec::new();
    }
    ctx.charge(exec_cost * executed.len() as u64);
    // Feed the drain side of the adaptive estimator: a slowed
    // commit/execute pipe (e.g. a lagging follower) shows up here as
    // sparse waves and shrinks subsequent batch targets.
    lane.note_drain(ctx.now(), executed.len());
    for (slot, id, value) in executed {
        let reply = paxi::ClientReply::ok(id, value);
        // Every replica caches the reply so retries are answered
        // without another consensus round, even after a leader change.
        sessions.record(&reply);
        if let Some(client) = waiting.remove(&slot) {
            replies.deliver(client, reply, reply_timer_armed, t_reply, ctx);
        }
    }
    replies.end_wave(ctx);
    // Executions advance the session table, which can release held
    // out-of-order commands.
    if leader.is_active() {
        lane.drain_ready(leader, acceptor, sessions, ctx, t_batch)
    } else {
        Vec::new()
    }
}

/// Abandon leadership — the other reply-leg path shared by both
/// replicas: redirect every command queued during the campaign and
/// every command the admission lane still holds (buffered or awaiting
/// predecessors) toward `redirect_to`, cancel the batch flush timer so
/// it cannot fire into the next term, and ship any replies still
/// buffered for coalescing (executed results stay valid across
/// abdication).
pub fn abandon_leadership<P: ProtoMessage>(
    lane: &mut BatchLane,
    replies: &mut ReplyBatcher,
    leader: &mut Leader,
    redirect_to: Option<NodeId>,
    ctx: &mut Ctx<P>,
) {
    while let Some((client, cmd)) = leader.pending.pop_front() {
        ctx.reply(client, paxi::ClientReply::redirect(cmd.id, redirect_to));
    }
    let (abandoned, timer) = lane.abandon();
    for (client, cmd) in abandoned {
        ctx.reply(client, paxi::ClientReply::redirect(cmd.id, redirect_to));
    }
    if let Some(t) = timer {
        ctx.cancel_timer(t);
    }
    replies.flush_into(ctx);
}

/// Everything a replica must apply and send after proposing a batch:
/// the wire payload fields plus the leader's local side effects.
#[derive(Debug)]
pub struct BatchProposal {
    /// Leader's ballot at proposal time.
    pub ballot: Ballot,
    /// Slot of `commands[0]`; the batch occupies consecutive slots.
    pub first_slot: u64,
    /// Commit watermark to piggyback.
    pub commit_up_to: u64,
    /// The batched commands, in slot order, ready to fan out by
    /// refcount (shared with every peer's `P2aBatch`).
    pub commands: Arc<[Command]>,
    /// `(slot, client)` pairs the replica must await execution for.
    pub waiting: Vec<(u64, NodeId)>,
    /// Slots the leader's own vote already decided (1-node quorums).
    pub self_commits: Vec<(u64, Command)>,
    /// Commit advances produced by accepting locally.
    pub advances: Vec<CommitAdvance>,
}

/// Allocate consecutive slots for `batch`, register each command with
/// the leader, and feed the leader's own acceptor vote per slot.
/// `batch` must be non-empty.
pub fn propose_batch(
    leader: &mut Leader,
    acceptor: &mut Acceptor,
    batch: Vec<(NodeId, Command)>,
    now: SimTime,
) -> BatchProposal {
    debug_assert!(!batch.is_empty(), "propose_batch needs commands");
    let ballot = leader.ballot();
    let commit_up_to = acceptor.commit_watermark();
    let mut first_slot = None;
    let mut commands = Vec::with_capacity(batch.len());
    let mut waiting = Vec::with_capacity(batch.len());
    let mut self_commits = Vec::new();
    let mut advances = Vec::new();
    for (client, cmd) in batch {
        let slot = leader.propose(Some(client), cmd.clone(), now);
        first_slot.get_or_insert(slot);
        waiting.push((slot, client));
        let (own, adv) = acceptor.on_p2a(ballot, slot, cmd.clone(), commit_up_to);
        advances.push(adv);
        if let Ok(Some((slot, cmd, _))) = leader.on_p2b_vote(own) {
            self_commits.push((slot, cmd));
        }
        commands.push(cmd);
    }
    BatchProposal {
        ballot,
        first_slot: first_slot.expect("non-empty batch"),
        commit_up_to,
        commands: commands.into(),
        waiting,
        self_commits,
        advances,
    }
}

/// A follower's local processing of a batched phase-2a.
#[derive(Debug)]
pub struct BatchAccept {
    /// One vote per slot of the batch, in slot order.
    pub votes: Vec<P2bVote>,
    /// Commit advances from the piggybacked watermark.
    pub advances: Vec<CommitAdvance>,
    /// True if any slot was accepted (leader contact is real).
    pub any_ok: bool,
    /// Ballot for the reply header: always the *request* ballot, so the
    /// reply reaches the proposing leader's (and any relay's) round
    /// matching even when every vote is a rejection — the rejecting
    /// votes themselves carry the promised ballot, which is how a
    /// preempted leader learns of the higher ballot immediately instead
    /// of waiting for its P1a or heartbeat.
    pub reply_ballot: Ballot,
}

/// Accept every slot of a batched phase-2a against `acceptor`.
pub fn accept_batch(
    acceptor: &mut Acceptor,
    ballot: Ballot,
    first_slot: u64,
    commands: &[Command],
    commit_up_to: u64,
) -> BatchAccept {
    let mut votes = Vec::with_capacity(commands.len());
    let mut advances = Vec::with_capacity(commands.len());
    let mut any_ok = false;
    for (i, command) in commands.iter().enumerate() {
        let (vote, adv) =
            acceptor.on_p2a(ballot, first_slot + i as u64, command.clone(), commit_up_to);
        any_ok |= vote.ok;
        votes.push(vote);
        advances.push(adv);
    }
    BatchAccept {
        votes,
        advances,
        any_ok,
        reply_ballot: ballot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::P1bVote;
    use paxi::{majority, Operation, RequestId, SafetyMonitor, Value};

    fn cmd(seq: u64) -> Command {
        Command {
            id: RequestId {
                client: NodeId(9),
                seq,
            },
            op: Operation::Put(seq, Value::zeros(8)),
        }
    }

    fn client_cmd(client: u32, seq: u64) -> Command {
        Command {
            id: RequestId {
                client: NodeId(client),
                seq,
            },
            op: Operation::Put(seq, Value::zeros(8)),
        }
    }

    fn active_leader(n: usize) -> Leader {
        let mut l = Leader::new(NodeId(0), n);
        let b = l.start_campaign(Ballot::ZERO);
        let votes: Vec<P1bVote> = (0..majority(n) as u32)
            .map(|i| P1bVote {
                node: NodeId(i),
                ballot: b,
                ok: true,
                accepted: vec![],
                snapshot: None,
            })
            .collect();
        l.on_p1b_votes(votes, 0);
        l
    }

    #[test]
    fn propose_allocates_consecutive_slots_and_tracks_clients() {
        let mut leader = active_leader(5);
        let mut acceptor = Acceptor::new(NodeId(0), SafetyMonitor::new());
        let batch = vec![
            (NodeId(10), cmd(1)),
            (NodeId(11), cmd(2)),
            (NodeId(12), cmd(3)),
        ];
        let p = propose_batch(&mut leader, &mut acceptor, batch, SimTime::ZERO);
        assert_eq!(p.first_slot, 0);
        assert_eq!(p.commands.len(), 3);
        assert_eq!(
            p.waiting,
            vec![(0, NodeId(10)), (1, NodeId(11)), (2, NodeId(12))]
        );
        assert!(
            p.self_commits.is_empty(),
            "5-node quorum needs more than the self vote"
        );
        assert_eq!(leader.outstanding().len(), 3);
    }

    #[test]
    fn one_node_cluster_self_commits_whole_batch() {
        let mut leader = active_leader(1);
        let mut acceptor = Acceptor::new(NodeId(0), SafetyMonitor::new());
        let batch = vec![(NodeId(10), cmd(1)), (NodeId(11), cmd(2))];
        let p = propose_batch(&mut leader, &mut acceptor, batch, SimTime::ZERO);
        assert_eq!(p.self_commits.len(), 2, "quorum of one: own vote decides");
        assert!(leader.outstanding().is_empty());
    }

    #[test]
    fn accept_batch_votes_per_slot() {
        let mut acceptor = Acceptor::new(NodeId(1), SafetyMonitor::new());
        let ballot = Ballot::new(1, NodeId(0));
        let acc = accept_batch(&mut acceptor, ballot, 5, &[cmd(1), cmd(2)], 0);
        assert!(acc.any_ok);
        assert_eq!(acc.reply_ballot, ballot);
        assert_eq!(acc.votes.len(), 2);
        assert_eq!(acc.votes[0].slot, 5);
        assert_eq!(acc.votes[1].slot, 6);
        assert!(acc.votes.iter().all(|v| v.ok));
    }

    #[test]
    fn accept_batch_rejection_keeps_request_ballot_header() {
        let mut acceptor = Acceptor::new(NodeId(1), SafetyMonitor::new());
        let high = Ballot::new(9, NodeId(2));
        acceptor.on_p1a(high, 0);
        let stale = Ballot::new(1, NodeId(0));
        let acc = accept_batch(&mut acceptor, stale, 0, &[cmd(1)], 0);
        assert!(!acc.any_ok);
        assert_eq!(
            acc.reply_ballot, stale,
            "reply header keeps the request ballot so the proposer's \
             round matching accepts the nack"
        );
        assert_eq!(
            acc.votes[0].ballot, high,
            "the vote itself carries the promised ballot for preemption"
        );
    }

    #[test]
    fn rejected_batch_preempts_the_proposing_leader_immediately() {
        let mut leader = active_leader(3);
        let ballot = leader.ballot();
        let slot = leader.propose(Some(NodeId(10)), cmd(1), SimTime::ZERO);

        // A follower promised to a higher ballot rejects the batch.
        let mut follower = Acceptor::new(NodeId(1), SafetyMonitor::new());
        let high = Ballot::new(50, NodeId(2));
        follower.on_p1a(high, 0);
        let acc = accept_batch(&mut follower, ballot, slot, &[cmd(1)], 0);

        // The reply header matches the leader's ballot, so the guard
        // passes and the nack is seen at once.
        let out = count_batch_votes(&mut leader, acc.reply_ballot, acc.votes)
            .expect("request-ballot header must pass the leader guard");
        assert_eq!(out.preempted, Some(high));
    }

    #[test]
    fn count_votes_guards_inactive_and_stale() {
        let mut leader = active_leader(3);
        let stale = Ballot::new(999, NodeId(7));
        assert!(count_batch_votes(&mut leader, stale, vec![]).is_none());
        leader.demote();
        let b = leader.ballot();
        assert!(count_batch_votes(&mut leader, b, vec![]).is_none());
    }

    // ---- BatchLane ------------------------------------------------------

    use paxi::Envelope;
    use simnet::{Actor, Context, CpuCostModel, SimDuration, Simulation, Topology};

    const T_BATCH: u64 = 7;

    /// Drive a closure with a real simulator context (the lane needs
    /// one for timers).
    fn with_ctx(f: impl FnOnce(&mut Ctx<crate::messages::PaxosMsg>) + 'static) {
        struct Once<F>(Option<F>);
        impl<F: FnOnce(&mut Context<Envelope<crate::messages::PaxosMsg>>) + 'static>
            Actor<Envelope<crate::messages::PaxosMsg>> for Once<F>
        {
            fn on_start(&mut self, ctx: &mut Context<Envelope<crate::messages::PaxosMsg>>) {
                (self.0.take().expect("run once"))(ctx);
            }
            fn on_message(
                &mut self,
                _f: NodeId,
                _m: Envelope<crate::messages::PaxosMsg>,
                _c: &mut Context<Envelope<crate::messages::PaxosMsg>>,
            ) {
            }
            fn on_timer(
                &mut self,
                _i: TimerId,
                _k: u64,
                _c: &mut Context<Envelope<crate::messages::PaxosMsg>>,
            ) {
            }
        }
        let mut sim: Simulation<Envelope<crate::messages::PaxosMsg>> =
            Simulation::new(Topology::lan(1), CpuCostModel::free(), 1);
        sim.add_actor(Box::new(Once(Some(f))));
        sim.run_until(SimTime::from_millis(1));
    }

    #[test]
    fn lane_orders_reordered_pipelined_arrivals() {
        with_ctx(|ctx| {
            let leader = active_leader(5);
            let acceptor = Acceptor::new(NodeId(0), SafetyMonitor::new());
            let sessions = SessionTable::new();
            let mut lane = BatchLane::new(BatchConfig::new(2, SimDuration::from_micros(200)), true);

            // Seq 2 arrives before seq 1 (network jitter): held.
            let held = lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 2),
                ctx,
                T_BATCH,
            );
            assert!(held.is_empty(), "out-of-order arrival must be held");
            assert_eq!(lane.held_count(), 1);

            // Seq 1 arrives: both are admitted in order and fill the
            // 2-command batch.
            let batches = lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 1),
                ctx,
                T_BATCH,
            );
            assert_eq!(batches.len(), 1);
            let seqs: Vec<u64> = batches[0].iter().map(|(_, c)| c.id.seq).collect();
            assert_eq!(seqs, vec![1, 2], "admission restores issue order");
            assert_eq!(lane.held_count(), 0);
        });
    }

    #[test]
    fn lane_suppresses_duplicates_and_held_retries() {
        with_ctx(|ctx| {
            let leader = active_leader(5);
            let acceptor = Acceptor::new(NodeId(0), SafetyMonitor::new());
            let sessions = SessionTable::new();
            let mut lane = BatchLane::new(BatchConfig::new(4, SimDuration::from_micros(200)), true);

            lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 1),
                ctx,
                T_BATCH,
            );
            assert_eq!(lane.buffered(), 1);
            // Retry of the buffered command: suppressed.
            let out = lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 1),
                ctx,
                T_BATCH,
            );
            assert!(out.is_empty());
            assert_eq!(lane.buffered(), 1, "no duplicate buffered");

            // A held command's retry is also suppressed.
            lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 3),
                ctx,
                T_BATCH,
            );
            assert_eq!(lane.held_count(), 1);
            lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 3),
                ctx,
                T_BATCH,
            );
            assert_eq!(lane.held_count(), 1, "held retry not duplicated");
        });
    }

    #[test]
    fn lane_reproposes_below_a_stale_floor_after_reelection() {
        with_ctx(|ctx| {
            let leader = active_leader(5);
            let acceptor = Acceptor::new(NodeId(0), SafetyMonitor::new());
            let sessions = SessionTable::new();
            let mut lane = BatchLane::new(BatchConfig::disabled(), true);

            // Term 1: seq 1 admitted (floor advances to 1), but the
            // proposal dies with the preempted leader — it never
            // reaches the log and the lane is abandoned.
            let first = lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 1),
                ctx,
                T_BATCH,
            );
            assert_eq!(first.len(), 1);
            lane.abandon();

            // Term 2 (re-elected): the client's retry of seq 1 sits
            // below the stale floor but is in no live structure — it
            // must be re-proposed, not dropped.
            let retry = lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 1),
                ctx,
                T_BATCH,
            );
            assert_eq!(
                retry.len(),
                1,
                "below-floor retry with no surviving proposal must be re-proposed"
            );
        });
    }

    #[test]
    fn lane_resequences_reordered_retries_below_a_stale_floor() {
        with_ctx(|ctx| {
            let leader = active_leader(5);
            let acceptor = Acceptor::new(NodeId(0), SafetyMonitor::new());
            let sessions = SessionTable::new();
            let mut lane = BatchLane::new(BatchConfig::disabled(), true);

            // Term 1: seqs 1 and 2 admitted (floor = 2), both proposals
            // die with the preempted leader.
            for seq in [1, 2] {
                lane.admit(
                    &leader,
                    &acceptor,
                    &sessions,
                    NodeId(10),
                    client_cmd(10, seq),
                    ctx,
                    T_BATCH,
                );
            }
            lane.abandon();

            // Term 2: the retries arrive reordered (2 before 1). The
            // rebuilt floor must hold seq 2 until seq 1 lands, keeping
            // the decided log in issue order.
            let first = lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 2),
                ctx,
                T_BATCH,
            );
            assert!(first.is_empty(), "seq 2 must wait for seq 1's retry");
            assert_eq!(lane.held_count(), 1);
            let second = lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 1),
                ctx,
                T_BATCH,
            );
            let seqs: Vec<u64> = second
                .iter()
                .flat_map(|b| b.iter().map(|(_, c)| c.id.seq))
                .collect();
            assert_eq!(seqs, vec![1, 2], "retries re-proposed in issue order");
            assert_eq!(lane.held_count(), 0);
        });
    }

    #[test]
    fn lane_abandon_returns_buffered_and_held() {
        with_ctx(|ctx| {
            let leader = active_leader(5);
            let acceptor = Acceptor::new(NodeId(0), SafetyMonitor::new());
            let sessions = SessionTable::new();
            let mut lane = BatchLane::new(BatchConfig::new(8, SimDuration::from_micros(200)), true);
            lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 1),
                ctx,
                T_BATCH,
            );
            lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(11),
                client_cmd(11, 5),
                ctx,
                T_BATCH,
            );
            let (cmds, timer) = lane.abandon();
            assert_eq!(cmds.len(), 2, "one buffered + one held");
            assert!(timer.is_some(), "flush timer returned for cancellation");
            assert_eq!(lane.held_count(), 0);
            assert_eq!(lane.buffered(), 0);
        });
    }

    #[test]
    fn lane_drain_ready_releases_after_session_advance() {
        with_ctx(|ctx| {
            let leader = active_leader(5);
            let acceptor = Acceptor::new(NodeId(0), SafetyMonitor::new());
            let mut sessions = SessionTable::new();
            let mut lane = BatchLane::new(BatchConfig::disabled(), true);

            // Seq 2 held: the lane has never seen seq 1.
            lane.admit(
                &leader,
                &acceptor,
                &sessions,
                NodeId(10),
                client_cmd(10, 2),
                ctx,
                T_BATCH,
            );
            assert_eq!(lane.held_count(), 1);

            // Seq 1 executes (e.g. learned via the commit watermark).
            sessions.record(&paxi::ClientReply::ok(
                RequestId {
                    client: NodeId(10),
                    seq: 1,
                },
                None,
            ));
            let batches = lane.drain_ready(&leader, &acceptor, &sessions, ctx, T_BATCH);
            assert_eq!(batches.len(), 1, "session advance releases the successor");
            assert_eq!(batches[0][0].1.id.seq, 2);
        });
    }
}
