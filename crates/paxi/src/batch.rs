//! Leader-side client-command batching.
//!
//! The PigPaxos paper attacks the leader's *communication* bottleneck
//! with relay trees; batching attacks the same bottleneck on an
//! orthogonal axis: one phase-2 round (and therefore one message per
//! relay/follower) amortizes up to [`BatchConfig::max_batch`] client
//! commands. Commands buffered at the leader are flushed either when the
//! batch fills or when the oldest buffered command has waited
//! [`BatchConfig::max_delay`] — the classic size-or-time policy.
//!
//! The batcher is protocol-agnostic plumbing: `paxos::PaxosReplica`
//! sends one `P2aBatch` per follower per flush, and the PigPaxos replica
//! sends one per *relay group*, so the two compose (relay fan-in × batch
//! amortization).

use crate::command::{Command, RequestId};
use simnet::{NodeId, SimDuration};

/// Batching policy for a leader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum commands per accept round. `1` disables batching (every
    /// command gets its own phase-2 round, the paper's baseline).
    pub max_batch: usize,
    /// Maximum time the first command of a batch may wait before the
    /// batch is flushed regardless of size.
    pub max_delay: SimDuration,
}

impl BatchConfig {
    /// Batching off: every command proposed individually.
    pub fn disabled() -> Self {
        BatchConfig {
            max_batch: 1,
            max_delay: SimDuration::ZERO,
        }
    }

    /// Batch up to `max_batch` commands, holding the first at most
    /// `max_delay`.
    pub fn new(max_batch: usize, max_delay: SimDuration) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        BatchConfig {
            max_batch,
            max_delay,
        }
    }

    /// True when batching is active (`max_batch > 1`).
    pub fn enabled(&self) -> bool {
        self.max_batch > 1
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::disabled()
    }
}

/// Outcome of [`Batcher::push`].
#[derive(Debug, PartialEq, Eq)]
pub enum BatchPush {
    /// The batch reached `max_batch`: flush these commands now.
    Flush(Vec<(NodeId, Command)>),
    /// First command buffered since the last flush: arm the flush timer
    /// for `max_delay`.
    ArmTimer,
    /// Buffered behind an already-armed timer.
    Buffered,
}

/// Accumulates `(client, command)` pairs at an active leader.
#[derive(Debug)]
pub struct Batcher {
    cfg: BatchConfig,
    buf: Vec<(NodeId, Command)>,
}

impl Batcher {
    /// Empty batcher with the given policy.
    pub fn new(cfg: BatchConfig) -> Self {
        Batcher {
            buf: Vec::with_capacity(cfg.max_batch),
            cfg,
        }
    }

    /// The active policy.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// True when batching is active (`max_batch > 1`).
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// Commands currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True if a command with this id is already buffered (duplicate
    /// suppression for client retries).
    pub fn contains(&self, id: RequestId) -> bool {
        self.buf.iter().any(|(_, c)| c.id == id)
    }

    /// Buffer a command. Returns [`BatchPush::Flush`] with the full
    /// batch when it reaches `max_batch`.
    pub fn push(&mut self, client: NodeId, command: Command) -> BatchPush {
        self.buf.push((client, command));
        if self.buf.len() >= self.cfg.max_batch {
            BatchPush::Flush(std::mem::take(&mut self.buf))
        } else if self.buf.len() == 1 {
            BatchPush::ArmTimer
        } else {
            BatchPush::Buffered
        }
    }

    /// Take whatever is buffered (the `max_delay` flush, or draining on
    /// abdication). May be empty.
    pub fn flush(&mut self) -> Vec<(NodeId, Command)> {
        std::mem::take(&mut self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Operation;

    fn cmd(seq: u64) -> Command {
        Command {
            id: RequestId {
                client: NodeId(7),
                seq,
            },
            op: Operation::Get(seq),
        }
    }

    #[test]
    fn disabled_config_flushes_every_push() {
        let mut b = Batcher::new(BatchConfig::disabled());
        assert!(!b.enabled());
        match b.push(NodeId(1), cmd(1)) {
            BatchPush::Flush(batch) => assert_eq!(batch.len(), 1),
            other => panic!("expected immediate flush, got {other:?}"),
        }
        assert!(b.is_empty());
    }

    #[test]
    fn fills_to_max_batch() {
        let mut b = Batcher::new(BatchConfig::new(3, SimDuration::from_millis(1)));
        assert_eq!(b.push(NodeId(1), cmd(1)), BatchPush::ArmTimer);
        assert_eq!(b.push(NodeId(2), cmd(2)), BatchPush::Buffered);
        match b.push(NodeId(3), cmd(3)) {
            BatchPush::Flush(batch) => {
                assert_eq!(batch.len(), 3);
                assert_eq!(batch[0].0, NodeId(1));
                assert_eq!(batch[2].1, cmd(3));
            }
            other => panic!("expected flush, got {other:?}"),
        }
        // Next command starts a fresh batch and needs a fresh timer.
        assert_eq!(b.push(NodeId(4), cmd(4)), BatchPush::ArmTimer);
    }

    #[test]
    fn timer_flush_takes_partial_batch() {
        let mut b = Batcher::new(BatchConfig::new(8, SimDuration::from_millis(1)));
        b.push(NodeId(1), cmd(1));
        b.push(NodeId(2), cmd(2));
        let batch = b.flush();
        assert_eq!(batch.len(), 2);
        assert!(b.is_empty());
        assert!(b.flush().is_empty(), "second flush has nothing");
    }

    #[test]
    fn duplicate_detection() {
        let mut b = Batcher::new(BatchConfig::new(8, SimDuration::from_millis(1)));
        b.push(NodeId(1), cmd(1));
        assert!(b.contains(cmd(1).id));
        assert!(!b.contains(cmd(2).id));
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        BatchConfig::new(0, SimDuration::ZERO);
    }
}
