//! Leader-side client-command batching and client-reply coalescing.
//!
//! The PigPaxos paper attacks the leader's *communication* bottleneck
//! with relay trees; batching attacks the same bottleneck on an
//! orthogonal axis: one phase-2 round (and therefore one message per
//! relay/follower) amortizes up to [`BatchConfig::max_batch`] client
//! commands. Commands buffered at the leader are flushed either when the
//! batch fills or when the oldest buffered command has waited
//! [`BatchConfig::max_delay`] — the classic size-or-time policy.
//!
//! **Adaptive sizing** (`BatchConfig::adaptive`): instead of a static
//! fill target, the batcher tracks the command arrival rate with an EWMA
//! of inter-arrival gaps and sizes each batch to the number of arrivals
//! expected within one `max_delay` window. Under saturation that target
//! converges toward `max_batch` (maximal amortization); at low load it
//! collapses to 1, so an isolated command flushes immediately and pays
//! no batching latency.
//!
//! **Reply coalescing** ([`ReplyBatcher`]): execution of a batch
//! produces a wave of client replies, and a pipelined client can have
//! several commands in the same wave. The leader buffers replies per
//! destination and ships each destination one `ReplyBatch` envelope,
//! amortizing the reply leg the same way `P2aBatch` amortizes the
//! accept leg.
//!
//! The batcher is protocol-agnostic plumbing: `paxos::PaxosReplica`
//! sends one `P2aBatch` per follower per flush, and the PigPaxos replica
//! sends one per *relay group*, so the two compose (relay fan-in × batch
//! amortization).

use crate::command::{ClientReply, Command, RequestId};
use crate::envelope::ProtoMessage;
use crate::replica::{Ctx, ReplicaCtx};
use simnet::{NodeId, SimDuration, SimTime};
use std::collections::BTreeMap;

/// EWMA weight of the newest inter-arrival gap in adaptive mode.
const EWMA_ALPHA: f64 = 0.25;

/// Arrival-rate tracker behind adaptive batch sizing: an EWMA of
/// inter-arrival gaps, turned into a fill target of "arrivals expected
/// within one flush window". Shared by the leader's command
/// [`Batcher`] and the PigPaxos proxy-side probe batcher so the two
/// adaptive policies cannot drift.
#[derive(Debug, Default)]
pub struct RateEstimator {
    /// EWMA of inter-arrival gaps in nanoseconds (`None` until a
    /// second arrival establishes a gap).
    ewma_gap_ns: Option<f64>,
    last_arrival: Option<SimTime>,
    /// EWMA of per-command *drain* gaps — the commit/execute side of
    /// the pipe (`None` until two drain waves establish one).
    ewma_drain_gap_ns: Option<f64>,
    last_drain: Option<SimTime>,
}

impl RateEstimator {
    /// No observations yet.
    pub fn new() -> Self {
        RateEstimator::default()
    }

    /// Record an arrival at `now`, updating the gap EWMA.
    pub fn observe(&mut self, now: SimTime) {
        if let Some(prev) = self.last_arrival {
            let gap = now.saturating_sub(prev).as_nanos().max(1) as f64;
            self.ewma_gap_ns = Some(match self.ewma_gap_ns {
                Some(ewma) => EWMA_ALPHA * gap + (1.0 - EWMA_ALPHA) * ewma,
                None => gap,
            });
        }
        self.last_arrival = Some(now);
    }

    /// Arrivals expected within one `window`, clamped to `[1, max]`.
    /// `1` until a rate estimate exists (stay latency-optimal).
    pub fn target(&self, max: usize, window: SimDuration) -> usize {
        match self.ewma_gap_ns {
            None => 1,
            Some(gap_ns) => {
                let window_ns = window.as_nanos() as f64;
                let expected = window_ns / gap_ns.max(1.0);
                (expected as usize).clamp(1, max)
            }
        }
    }

    /// Record that `executed` commands drained (committed and executed)
    /// at `now`, updating the per-command drain-gap EWMA. Drains arrive
    /// in waves, so the gap since the previous wave is spread evenly
    /// over the wave's commands.
    ///
    /// This closes the bug where adaptive sizing looked only at the
    /// *arrival* side of the queue: a slowed follower (or relay) lowers
    /// the commit rate, not the arrival rate, so the old target kept
    /// batches at `max` while the in-flight window backed up. Folding
    /// commit latency in lets [`Self::drain_capacity`] shrink batches
    /// to what the pipeline is actually clearing.
    pub fn observe_drain(&mut self, now: SimTime, executed: usize) {
        if executed == 0 {
            return;
        }
        if let Some(prev) = self.last_drain {
            let gap = now.saturating_sub(prev).as_nanos().max(1) as f64 / executed as f64;
            self.ewma_drain_gap_ns = Some(match self.ewma_drain_gap_ns {
                Some(ewma) => EWMA_ALPHA * gap + (1.0 - EWMA_ALPHA) * ewma,
                None => gap,
            });
        }
        self.last_drain = Some(now);
    }

    /// Commands the commit/execute pipeline is draining per `window`,
    /// clamped to `[1, max]`. `max` until a drain estimate exists (no
    /// evidence of a slow pipe means no throttling).
    pub fn drain_capacity(&self, max: usize, window: SimDuration) -> usize {
        match self.ewma_drain_gap_ns {
            None => max,
            Some(gap_ns) => {
                let window_ns = window.as_nanos() as f64;
                let expected = window_ns / gap_ns.max(1.0);
                (expected as usize).clamp(1, max)
            }
        }
    }
}

/// Batching policy for a leader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum commands per accept round. `1` disables batching (every
    /// command gets its own phase-2 round, the paper's baseline).
    pub max_batch: usize,
    /// Maximum time the first command of a batch may wait before the
    /// batch is flushed regardless of size. In adaptive mode this is
    /// also the arrival window the size target is computed over.
    pub max_delay: SimDuration,
    /// Adaptive sizing: the fill target tracks the observed arrival
    /// rate in `[1, max_batch]` instead of sitting at `max_batch`.
    pub adaptive: bool,
    /// Drain-aware sizing: additionally clamp the fill target to the
    /// observed commit/execute drain rate, so a slowed follower shrinks
    /// batches instead of inflating the in-flight window. Off by
    /// default (the baseline configs predate it).
    pub drain_aware: bool,
    /// Client-reply coalescing policy for executed commands.
    pub replies: ReplyCoalesce,
}

impl BatchConfig {
    /// Batching off: every command proposed individually.
    pub fn disabled() -> Self {
        BatchConfig {
            max_batch: 1,
            max_delay: SimDuration::ZERO,
            adaptive: false,
            drain_aware: false,
            replies: ReplyCoalesce::Off,
        }
    }

    /// Batch up to `max_batch` commands, holding the first at most
    /// `max_delay`.
    pub fn new(max_batch: usize, max_delay: SimDuration) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        BatchConfig {
            max_batch,
            max_delay,
            adaptive: false,
            drain_aware: false,
            replies: ReplyCoalesce::Off,
        }
    }

    /// Adaptive batching: size each batch to the observed arrival rate,
    /// up to `max_batch`, flushing immediately at low load.
    pub fn adaptive(max_batch: usize, max_delay: SimDuration) -> Self {
        BatchConfig {
            adaptive: true,
            ..BatchConfig::new(max_batch, max_delay)
        }
    }

    /// Additionally clamp the fill target to the observed drain rate
    /// (see [`BatchConfig::drain_aware`]).
    pub fn with_drain_awareness(mut self) -> Self {
        self.drain_aware = true;
        self
    }

    /// Enable reply coalescing with the given flush window
    /// (`SimDuration::ZERO` groups replies produced by one execution
    /// wave without delaying them).
    pub fn with_reply_coalescing(mut self, window: SimDuration) -> Self {
        self.replies = ReplyCoalesce::Window(window);
        self
    }

    /// True when batching is active (`max_batch > 1`).
    pub fn enabled(&self) -> bool {
        self.max_batch > 1
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig::disabled()
    }
}

/// Outcome of [`Batcher::push`].
#[derive(Debug, PartialEq, Eq)]
pub enum BatchPush {
    /// The batch reached its fill target: flush these commands now.
    Flush(Vec<(NodeId, Command)>),
    /// First command buffered since the last flush: arm the flush timer
    /// for `max_delay`.
    ArmTimer,
    /// Buffered behind an already-armed timer.
    Buffered,
}

/// Accumulates `(client, command)` pairs at an active leader.
#[derive(Debug)]
pub struct Batcher {
    cfg: BatchConfig,
    buf: Vec<(NodeId, Command)>,
    /// Arrival-rate EWMA (adaptive mode only).
    rate: RateEstimator,
}

impl Batcher {
    /// Empty batcher with the given policy.
    pub fn new(cfg: BatchConfig) -> Self {
        Batcher {
            buf: Vec::with_capacity(cfg.max_batch),
            cfg,
            rate: RateEstimator::new(),
        }
    }

    /// The active policy.
    pub fn config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// True when batching is active (`max_batch > 1`).
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// Commands currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True if a command with this id is already buffered (duplicate
    /// suppression for client retries).
    pub fn contains(&self, id: RequestId) -> bool {
        self.buf.iter().any(|(_, c)| c.id == id)
    }

    /// Highest sequence number of `client`'s buffered commands. Used to
    /// rebuild the per-client proposal floor after re-election.
    pub fn highest_buffered_seq(&self, client: NodeId) -> Option<u64> {
        self.buf
            .iter()
            .filter(|(_, c)| c.id.client == client)
            .map(|(_, c)| c.id.seq)
            .max()
    }

    /// The current fill target: `max_batch` in fixed mode; in adaptive
    /// mode, the arrivals expected within one `max_delay` window given
    /// the EWMA arrival rate, clamped to `[1, max_batch]`.
    pub fn target(&self) -> usize {
        let arrival = if self.cfg.adaptive {
            self.rate.target(self.cfg.max_batch, self.cfg.max_delay)
        } else {
            self.cfg.max_batch
        };
        if self.cfg.drain_aware {
            arrival.min(
                self.rate
                    .drain_capacity(self.cfg.max_batch, self.cfg.max_delay),
            )
        } else {
            arrival
        }
    }

    /// Record one executed wave for drain-aware sizing (no-op unless
    /// [`BatchConfig::drain_aware`] is set).
    pub fn note_drain(&mut self, now: SimTime, executed: usize) {
        if self.cfg.drain_aware {
            self.rate.observe_drain(now, executed);
        }
    }

    /// Buffer a command arriving at `now`. Returns [`BatchPush::Flush`]
    /// with the full batch when it reaches the current fill target.
    pub fn push(&mut self, client: NodeId, command: Command, now: SimTime) -> BatchPush {
        if self.cfg.adaptive {
            self.rate.observe(now);
        }
        self.buf.push((client, command));
        if self.buf.len() >= self.target() {
            BatchPush::Flush(std::mem::take(&mut self.buf))
        } else if self.buf.len() == 1 {
            BatchPush::ArmTimer
        } else {
            BatchPush::Buffered
        }
    }

    /// Take whatever is buffered (the `max_delay` flush, or draining on
    /// abdication). May be empty.
    pub fn flush(&mut self) -> Vec<(NodeId, Command)> {
        std::mem::take(&mut self.buf)
    }
}

/// Client-reply coalescing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyCoalesce {
    /// One `Reply` envelope per executed command (the baseline).
    Off,
    /// Buffer replies per destination and flush them in one `ReplyBatch`
    /// envelope after at most this window. `SimDuration::ZERO` groups
    /// the replies of a single execution wave without delaying them.
    Window(SimDuration),
}

impl ReplyCoalesce {
    /// True when coalescing is on.
    pub fn enabled(&self) -> bool {
        matches!(self, ReplyCoalesce::Window(_))
    }

    /// The flush window (ZERO when off or immediate).
    pub fn window(&self) -> SimDuration {
        match self {
            ReplyCoalesce::Off => SimDuration::ZERO,
            ReplyCoalesce::Window(w) => *w,
        }
    }
}

/// Buffers executed-command replies per destination client so one
/// envelope carries a whole wave. Keyed by a `BTreeMap` so flush order
/// is deterministic (the simulator's trace fingerprint depends on it).
#[derive(Debug)]
pub struct ReplyBatcher {
    mode: ReplyCoalesce,
    buf: BTreeMap<NodeId, Vec<ClientReply>>,
}

impl ReplyBatcher {
    /// Empty buffer with the given policy.
    pub fn new(mode: ReplyCoalesce) -> Self {
        ReplyBatcher {
            mode,
            buf: BTreeMap::new(),
        }
    }

    /// The active policy.
    pub fn mode(&self) -> ReplyCoalesce {
        self.mode
    }

    /// True when coalescing is on.
    pub fn enabled(&self) -> bool {
        self.mode.enabled()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Buffer a reply. Returns true when this push made the buffer
    /// non-empty (the caller arms the flush timer if the window is
    /// non-zero).
    pub fn push(&mut self, client: NodeId, reply: ClientReply) -> bool {
        let was_empty = self.buf.is_empty();
        self.buf.entry(client).or_default().push(reply);
        was_empty
    }

    /// Drain everything, grouped per destination in ascending node
    /// order.
    pub fn flush(&mut self) -> Vec<(NodeId, Vec<ClientReply>)> {
        std::mem::take(&mut self.buf).into_iter().collect()
    }

    /// Route one executed-command reply: sent immediately when
    /// coalescing is off; otherwise buffered, arming the caller's
    /// `t_reply` flush timer on the first push of a non-zero window.
    pub fn deliver<P: ProtoMessage>(
        &mut self,
        client: NodeId,
        reply: ClientReply,
        timer_armed: &mut bool,
        t_reply: u64,
        ctx: &mut Ctx<P>,
    ) {
        if !self.enabled() {
            ctx.reply(client, reply);
            return;
        }
        let window = self.mode.window();
        let first = self.push(client, reply);
        if first && window > SimDuration::ZERO && !*timer_armed {
            *timer_armed = true;
            ctx.set_timer(window, t_reply);
        }
    }

    /// End of one execution wave: in zero-window mode the wave's
    /// replies ship now (grouped per destination, never delayed).
    pub fn end_wave<P: ProtoMessage>(&mut self, ctx: &mut Ctx<P>) {
        if self.enabled() && self.mode.window() == SimDuration::ZERO {
            self.flush_into(ctx);
        }
    }

    /// Ship every buffered reply, one (possibly batched) envelope per
    /// destination client.
    pub fn flush_into<P: ProtoMessage>(&mut self, ctx: &mut Ctx<P>) {
        for (client, replies) in self.flush() {
            ctx.reply_many(client, replies);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Operation;

    fn cmd(seq: u64) -> Command {
        Command {
            id: RequestId {
                client: NodeId(7),
                seq,
            },
            op: Operation::Get(seq),
        }
    }

    fn at(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn disabled_config_flushes_every_push() {
        let mut b = Batcher::new(BatchConfig::disabled());
        assert!(!b.enabled());
        match b.push(NodeId(1), cmd(1), at(0)) {
            BatchPush::Flush(batch) => assert_eq!(batch.len(), 1),
            other => panic!("expected immediate flush, got {other:?}"),
        }
        assert!(b.is_empty());
    }

    #[test]
    fn fills_to_max_batch() {
        let mut b = Batcher::new(BatchConfig::new(3, SimDuration::from_millis(1)));
        assert_eq!(b.push(NodeId(1), cmd(1), at(0)), BatchPush::ArmTimer);
        assert_eq!(b.push(NodeId(2), cmd(2), at(1)), BatchPush::Buffered);
        match b.push(NodeId(3), cmd(3), at(2)) {
            BatchPush::Flush(batch) => {
                assert_eq!(batch.len(), 3);
                assert_eq!(batch[0].0, NodeId(1));
                assert_eq!(batch[2].1, cmd(3));
            }
            other => panic!("expected flush, got {other:?}"),
        }
        // Next command starts a fresh batch and needs a fresh timer.
        assert_eq!(b.push(NodeId(4), cmd(4), at(3)), BatchPush::ArmTimer);
    }

    #[test]
    fn timer_flush_takes_partial_batch() {
        let mut b = Batcher::new(BatchConfig::new(8, SimDuration::from_millis(1)));
        b.push(NodeId(1), cmd(1), at(0));
        b.push(NodeId(2), cmd(2), at(1));
        let batch = b.flush();
        assert_eq!(batch.len(), 2);
        assert!(b.is_empty());
        assert!(b.flush().is_empty(), "second flush has nothing");
    }

    #[test]
    fn duplicate_detection() {
        let mut b = Batcher::new(BatchConfig::new(8, SimDuration::from_millis(1)));
        b.push(NodeId(1), cmd(1), at(0));
        assert!(b.contains(cmd(1).id));
        assert!(!b.contains(cmd(2).id));
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        BatchConfig::new(0, SimDuration::ZERO);
    }

    #[test]
    fn adaptive_starts_latency_optimal() {
        // No rate estimate yet: the first commands flush immediately.
        let mut b = Batcher::new(BatchConfig::adaptive(32, SimDuration::from_micros(200)));
        assert_eq!(b.target(), 1);
        match b.push(NodeId(1), cmd(1), at(0)) {
            BatchPush::Flush(batch) => assert_eq!(batch.len(), 1),
            other => panic!("expected immediate flush, got {other:?}"),
        }
    }

    #[test]
    fn adaptive_grows_under_saturation_and_shrinks_when_idle() {
        let cfg = BatchConfig::adaptive(32, SimDuration::from_micros(200));
        let mut b = Batcher::new(cfg);
        // Dense arrivals: 1 µs apart → ~200 expected per window → capped.
        let mut t = 0;
        for seq in 1..=64 {
            b.push(NodeId(1), cmd(seq), at(t));
            t += 1;
        }
        assert_eq!(b.target(), 32, "saturation drives the target to max");
        // A long idle gap collapses the target back toward 1.
        b.push(NodeId(1), cmd(65), at(t + 100_000));
        assert_eq!(b.target(), 1, "idle gap restores latency-optimal mode");
        b.flush();
    }

    #[test]
    fn adaptive_tracks_moderate_rates() {
        // 50 µs gaps with a 200 µs window → target ≈ 4.
        let cfg = BatchConfig::adaptive(32, SimDuration::from_micros(200));
        let mut b = Batcher::new(cfg);
        let mut t = 0;
        for seq in 1..=32 {
            b.push(NodeId(1), cmd(seq), at(t));
            t += 50;
        }
        let target = b.target();
        assert!(
            (2..=8).contains(&target),
            "expected a mid-range target for 50us gaps, got {target}"
        );
    }

    #[test]
    fn drain_aware_shrinks_batches_when_the_pipe_slows() {
        // Saturating arrivals (2 us gaps, 200 us window) would drive the
        // target to max — but a scripted slow-drain schedule (one
        // 16-command wave every 400 us => 25 us per command) must clamp
        // it to roughly window/25us = 8.
        let cfg = BatchConfig::adaptive(32, SimDuration::from_micros(200)).with_drain_awareness();
        let mut b = Batcher::new(cfg);
        let mut t = 0u64;
        for seq in 1..=64 {
            b.push(NodeId(1), cmd(seq), at(t));
            t += 2;
        }
        assert_eq!(b.target(), 32, "no drain evidence yet: arrival rate rules");

        let mut drain_t = 0u64;
        for _ in 0..16 {
            b.note_drain(at(drain_t), 16);
            drain_t += 400;
        }
        let throttled = b.target();
        assert!(
            (4..=12).contains(&throttled),
            "slow drain (25us/cmd) must clamp the target near 8, got {throttled}"
        );

        // The pipe recovers: fast drains restore the arrival-driven max.
        for _ in 0..32 {
            b.note_drain(at(drain_t), 16);
            drain_t += 16;
        }
        assert_eq!(b.target(), 32, "fast drain restores the arrival target");
        b.flush();
    }

    #[test]
    fn drain_awareness_is_opt_in() {
        let cfg = BatchConfig::adaptive(32, SimDuration::from_micros(200));
        assert!(!cfg.drain_aware);
        let mut b = Batcher::new(cfg);
        let mut t = 0u64;
        for seq in 1..=64 {
            b.push(NodeId(1), cmd(seq), at(t));
            t += 2;
        }
        // Scripted slow drains are ignored without the flag.
        for i in 0..16 {
            b.note_drain(at(i * 400), 16);
        }
        assert_eq!(b.target(), 32, "default configs must not change behavior");
        b.flush();
    }

    #[test]
    fn drain_capacity_defaults_to_max_without_evidence() {
        let r = RateEstimator::new();
        assert_eq!(r.drain_capacity(32, SimDuration::from_micros(200)), 32);
        let mut r = RateEstimator::new();
        r.observe_drain(at(0), 16);
        assert_eq!(
            r.drain_capacity(32, SimDuration::from_micros(200)),
            32,
            "one wave fixes no gap yet"
        );
        r.observe_drain(at(0), 0); // empty waves are ignored
        assert_eq!(r.drain_capacity(32, SimDuration::from_micros(200)), 32);
    }

    #[test]
    fn reply_batcher_groups_per_destination_in_order() {
        let mut r = ReplyBatcher::new(ReplyCoalesce::Window(SimDuration::ZERO));
        assert!(r.enabled());
        let id = |c: u32, s: u64| RequestId {
            client: NodeId(c),
            seq: s,
        };
        assert!(r.push(NodeId(9), ClientReply::ok(id(9, 1), None)));
        assert!(!r.push(NodeId(3), ClientReply::ok(id(3, 1), None)));
        assert!(!r.push(NodeId(9), ClientReply::ok(id(9, 2), None)));
        let out = r.flush();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, NodeId(3), "deterministic ascending node order");
        assert_eq!(out[1].0, NodeId(9));
        assert_eq!(out[1].1.len(), 2, "both replies to client 9 coalesced");
        assert!(r.is_empty());
        assert!(r.push(NodeId(1), ClientReply::ok(id(1, 1), None)));
    }

    #[test]
    fn reply_coalesce_modes() {
        assert!(!ReplyCoalesce::Off.enabled());
        assert_eq!(ReplyCoalesce::Off.window(), SimDuration::ZERO);
        let w = ReplyCoalesce::Window(SimDuration::from_micros(100));
        assert!(w.enabled());
        assert_eq!(w.window(), SimDuration::from_micros(100));
    }
}
