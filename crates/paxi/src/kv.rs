//! The replicated in-memory key-value state machine.
//!
//! Same role as Paxi's `Database`: protocols decide an order of commands,
//! then apply them here. Deterministic: the same command sequence yields
//! the same state on every replica.

use crate::command::{Key, Operation, Value};
use simnet::{Wire, WireError, WirePut, WireReader};
use std::collections::HashMap;

/// An in-memory key-value store.
#[derive(Debug, Default, Clone)]
pub struct KvStore {
    data: HashMap<Key, Value>,
    applied: u64,
}

impl KvStore {
    /// Empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Apply one operation; returns the read value for `Get`.
    pub fn apply(&mut self, op: &Operation) -> Option<Value> {
        self.applied += 1;
        match op {
            Operation::Get(k) => self.data.get(k).cloned(),
            Operation::Put(k, v) => {
                self.data.insert(*k, v.clone());
                None
            }
            Operation::Noop => None,
        }
    }

    /// Read without counting as an applied command (used by leader-local
    /// and quorum read optimizations).
    pub fn peek(&self, k: Key) -> Option<&Value> {
        self.data.get(&k)
    }

    /// Number of operations applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Number of distinct keys present.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when no key has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A copy restricted to keys in `[start, end)`; `end = None` means
    /// unbounded. The `applied` count is carried over verbatim — the
    /// filter carves the key space, not the history — so the unbounded
    /// full range (`0, None`) is bit-identical to a plain clone,
    /// fingerprint included.
    pub fn filtered(&self, start: Key, end: Option<Key>) -> KvStore {
        let data = self
            .data
            .iter()
            .filter(|(&k, _)| k >= start && end.map_or(true, |e| k < e))
            .map(|(&k, v)| (k, v.clone()))
            .collect();
        KvStore {
            data,
            applied: self.applied,
        }
    }

    /// All entries in ascending key order. Sorting makes iteration
    /// deterministic regardless of hash-map internals, which matters
    /// when the entries drive message emission (a shard install replays
    /// the transferred range as ordered writes).
    pub fn sorted_entries(&self) -> Vec<(Key, Value)> {
        let mut entries: Vec<(Key, Value)> =
            self.data.iter().map(|(&k, v)| (k, v.clone())).collect();
        entries.sort_unstable_by_key(|&(k, _)| k);
        entries
    }

    /// Total payload bytes held (keys + values) — the serialized size a
    /// snapshot of this store would ship.
    pub fn data_bytes(&self) -> usize {
        self.data.values().map(|v| 8 + v.len()).sum()
    }

    /// Exact encoded size of this store under [`Wire`]: applied count
    /// (8) + entry count (4) + per entry key (8) + value length (4) +
    /// value bytes.
    pub fn encoded_bytes(&self) -> usize {
        12 + self.data.len() * 4 + self.data_bytes()
    }

    /// Order-independent FNV-1a fingerprint of the full state (sorted
    /// key/value pairs plus the applied-operation count). Two stores
    /// that executed the same command sequence — directly, or via a
    /// snapshot of a prefix plus the tail — produce the same
    /// fingerprint; compaction correctness tests compare exactly this.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x100_0000_01b3;
        let mut keys: Vec<Key> = self.data.keys().copied().collect();
        keys.sort_unstable();
        let mut h = FNV_OFFSET;
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        };
        for b in self.applied.to_be_bytes() {
            eat(b);
        }
        for k in keys {
            for b in k.to_be_bytes() {
                eat(b);
            }
            for &b in self.data[&k].0.iter() {
                eat(b);
            }
        }
        h
    }
}

impl Wire for KvStore {
    const KIND: &'static str = "KvStore";

    /// `applied: u64`, `count: u32`, then `count` entries of
    /// `key: u64`, `len: u32`, `len` value bytes — sorted by key so the
    /// encoding is deterministic.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u64(self.applied);
        out.put_u32(self.data.len() as u32);
        let mut keys: Vec<Key> = self.data.keys().copied().collect();
        keys.sort_unstable();
        for k in keys {
            let v = &self.data[&k];
            out.put_u64(k);
            out.put_u32(v.len() as u32);
            out.extend_from_slice(&v.0);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let applied = r.u64("kv.applied")?;
        let count = r.u32("kv.count")?;
        // 8 key + 4 len per entry.
        let mut data = HashMap::with_capacity(r.capacity_for(count as usize, 12));
        for _ in 0..count {
            let k = r.u64("kv.key")?;
            let len = r.u32("kv.value_len")? as usize;
            data.insert(k, Value(r.read_value(len, "kv.value")?));
        }
        Ok(KvStore { data, applied })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_then_get() {
        let mut kv = KvStore::new();
        assert_eq!(kv.apply(&Operation::Get(1)), None);
        kv.apply(&Operation::Put(1, Value::zeros(4)));
        assert_eq!(kv.apply(&Operation::Get(1)), Some(Value::zeros(4)));
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn overwrite() {
        let mut kv = KvStore::new();
        kv.apply(&Operation::Put(1, Value::from(&b"a"[..])));
        kv.apply(&Operation::Put(1, Value::from(&b"bb"[..])));
        assert_eq!(kv.peek(1).unwrap().len(), 2);
        assert_eq!(kv.len(), 1);
    }

    #[test]
    fn noop_counts_as_applied_but_changes_nothing() {
        let mut kv = KvStore::new();
        kv.apply(&Operation::Noop);
        assert_eq!(kv.applied(), 1);
        assert!(kv.is_empty());
    }

    #[test]
    fn peek_does_not_count() {
        let mut kv = KvStore::new();
        kv.apply(&Operation::Put(7, Value::zeros(1)));
        let before = kv.applied();
        assert!(kv.peek(7).is_some());
        assert_eq!(kv.applied(), before);
    }

    #[test]
    fn wire_roundtrip_preserves_state_and_size() {
        let mut kv = KvStore::new();
        kv.apply(&Operation::Put(3, Value::zeros(7)));
        kv.apply(&Operation::Put(1, Value::zeros(0)));
        kv.apply(&Operation::Get(3));
        let bytes = kv.encode();
        assert_eq!(bytes.len(), kv.encoded_bytes());
        let back = KvStore::decode_frame(&bytes.into()).expect("decodes");
        assert_eq!(back.fingerprint(), kv.fingerprint());
        assert_eq!(back.applied(), kv.applied());
        // Deterministic regardless of map iteration order.
        assert_eq!(kv.encode(), back.encode());
    }

    #[test]
    fn filtered_carves_ranges_and_full_range_is_a_clone() {
        let mut kv = KvStore::new();
        for k in 0..10u64 {
            kv.apply(&Operation::Put(k, Value::zeros(k as usize)));
        }
        kv.apply(&Operation::Get(3));
        let mid = kv.filtered(3, Some(7));
        assert_eq!(mid.len(), 4);
        assert!(mid.peek(3).is_some() && mid.peek(6).is_some());
        assert!(mid.peek(2).is_none() && mid.peek(7).is_none());
        assert_eq!(mid.applied(), kv.applied(), "history count carried over");
        let tail = kv.filtered(8, None);
        assert_eq!(tail.len(), 2);
        // Unbounded full range must be indistinguishable from a clone.
        let full = kv.filtered(0, None);
        assert_eq!(full.fingerprint(), kv.fingerprint());
        assert_eq!(full.encode(), kv.encode());
    }

    #[test]
    fn determinism_same_sequence_same_state() {
        let ops = [
            Operation::Put(1, Value::zeros(3)),
            Operation::Put(2, Value::zeros(5)),
            Operation::Get(1),
            Operation::Put(1, Value::zeros(7)),
        ];
        let mut a = KvStore::new();
        let mut b = KvStore::new();
        let ra: Vec<_> = ops.iter().map(|o| a.apply(o)).collect();
        let rb: Vec<_> = ops.iter().map(|o| b.apply(o)).collect();
        assert_eq!(ra, rb);
        assert_eq!(a.peek(1), b.peek(1));
        assert_eq!(a.peek(2), b.peek(2));
    }
}
