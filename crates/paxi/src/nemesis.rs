//! The nemesis: an in-simulation actor that executes a scenario's
//! fault schedule.
//!
//! A [`Nemesis`] occupies one `extra_client_nodes` slot (the same
//! mechanism custom checker clients use — see
//! [`crate::Experiment::extra_client_nodes`]) and arms one timer per
//! [`FaultEvent`] at start. When a timer fires it injects the fault
//! through [`simnet::Context::control`] — partitions as directional
//! link blocks, crashes, flaky links, slow nodes, drop rates — or, for
//! [`Fault::Storm`], sends the burst of junk requests itself. Running
//! faults *inside* the simulation (rather than pre-scheduling them on
//! the [`simnet::Simulation`]) keeps the schedule in scenario files and
//! the execution deterministic: timers are ordinary events in the
//! run's single event order.

use crate::command::{ClientRequest, Command, Operation, RequestId};
use crate::envelope::{Envelope, ProtoMessage};
use crate::scenario::{Fault, FaultEvent};
use parking_lot::Mutex;
use simnet::{Actor, Context, Control, NodeId, SimDuration, SimTime, TimerId};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Timer kinds at or above this value are crash-loop ticks
/// (`LOOP_BASE + schedule index`); plain schedule indices stay far
/// below, so the two kind spaces cannot collide.
const LOOP_BASE: u64 = 1 << 32;

/// In-flight state for one [`Fault::CrashLoop`] schedule entry.
struct LoopState {
    node: NodeId,
    period: SimDuration,
    /// Crashes still to inject (the first one happens on entry).
    remaining: u32,
    /// Whether the node is currently crashed by this loop.
    down: bool,
}

/// Shared record of executed faults: `(when, description)` per fault,
/// in execution order. Cloneable handle, same pattern as
/// [`crate::ClientRecorder`].
#[derive(Debug, Clone, Default)]
pub struct NemesisLog(Arc<Mutex<Vec<(SimTime, String)>>>);

impl NemesisLog {
    /// Fresh empty log.
    pub fn new() -> Self {
        NemesisLog::default()
    }

    /// Append an executed-fault record.
    pub fn record(&self, at: SimTime, what: String) {
        self.0.lock().push((at, what));
    }

    /// Copy out all records.
    pub fn entries(&self) -> Vec<(SimTime, String)> {
        self.0.lock().clone()
    }

    /// Number of faults executed so far.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// True when no fault has executed yet.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }
}

/// The fault-executing actor. Generic over the protocol message type
/// exactly like [`crate::ClosedLoopClient`] — it never constructs
/// protocol messages, only control effects and client-shaped storms.
pub struct Nemesis<P> {
    schedule: Vec<FaultEvent>,
    log: NemesisLog,
    storm_seq: u64,
    loops: HashMap<u64, LoopState>,
    _proto: PhantomData<P>,
}

impl<P> Nemesis<P> {
    /// A nemesis executing `schedule`, recording into `log`.
    pub fn new(schedule: Vec<FaultEvent>, log: NemesisLog) -> Self {
        Nemesis {
            schedule,
            log,
            storm_seq: 0,
            loops: HashMap::new(),
            _proto: PhantomData,
        }
    }
}

impl<P: ProtoMessage> Nemesis<P> {
    fn execute(&mut self, index: usize, fault: Fault, ctx: &mut Context<Envelope<P>>) {
        self.log.record(ctx.now(), format!("{fault:?}"));
        match fault {
            Fault::Partition { a, b } => {
                for &x in &a {
                    for &y in &b {
                        ctx.control(Control::BlockLink(NodeId(x), NodeId(y)));
                        ctx.control(Control::BlockLink(NodeId(y), NodeId(x)));
                    }
                }
            }
            Fault::AsymmetricPartition { a, b } => {
                // One direction only: `a`'s messages toward `b` die,
                // the reverse links stay up. `Heal` clears these too.
                for &x in &a {
                    for &y in &b {
                        ctx.control(Control::BlockLink(NodeId(x), NodeId(y)));
                    }
                }
            }
            Fault::Heal => ctx.control(Control::HealAllLinks),
            Fault::Crash(node) => ctx.control(Control::Crash(NodeId(node))),
            Fault::Restart(node) => ctx.control(Control::Recover(NodeId(node))),
            Fault::Flaky { from, to, p } => {
                ctx.control(Control::FlakyLink(NodeId(from), NodeId(to), p));
            }
            Fault::ClearFlaky => ctx.control(Control::ClearFlakyLinks),
            Fault::Slow { node, extra } => ctx.control(Control::SlowNode(NodeId(node), extra)),
            Fault::ClearSlow => ctx.control(Control::ClearSlowNodes),
            Fault::DropRate(p) => ctx.control(Control::SetDropRate(p)),
            Fault::CrashLoop {
                node,
                period,
                count,
            } => {
                // First crash now; the recover/crash cadence then runs
                // on half-period `LOOP_BASE` ticks, which `on_timer`
                // dispatches before the schedule lookup. Logged once —
                // the scenario judge matches log entries 1:1 against
                // the fault schedule.
                ctx.control(Control::Crash(NodeId(node)));
                self.loops.insert(
                    index as u64,
                    LoopState {
                        node: NodeId(node),
                        period,
                        remaining: count - 1,
                        down: true,
                    },
                );
                ctx.set_timer(period / 2, LOOP_BASE + index as u64);
            }
            Fault::Storm { target, count } => {
                // A burst of read requests from one misbehaving client:
                // distinct sequence numbers so duplicate suppression
                // does not absorb the storm. Replies are ignored.
                for _ in 0..count {
                    self.storm_seq += 1;
                    let id = RequestId {
                        client: ctx.node(),
                        seq: self.storm_seq,
                    };
                    ctx.send(
                        NodeId(target),
                        Envelope::Request(ClientRequest {
                            command: Command {
                                id,
                                op: Operation::Get(self.storm_seq % 16),
                            },
                        }),
                    );
                }
            }
        }
    }
}

impl<P: ProtoMessage> Actor<Envelope<P>> for Nemesis<P> {
    fn on_start(&mut self, ctx: &mut Context<Envelope<P>>) {
        for (i, ev) in self.schedule.iter().enumerate() {
            ctx.set_timer(ev.at, i as u64);
        }
    }

    fn on_message(&mut self, _from: NodeId, _msg: Envelope<P>, _ctx: &mut Context<Envelope<P>>) {
        // Storm replies and strays are ignored.
    }

    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Context<Envelope<P>>) {
        if kind >= LOOP_BASE {
            self.loop_tick(kind - LOOP_BASE, ctx);
            return;
        }
        let Some(ev) = self.schedule.get(kind as usize) else {
            return;
        };
        let fault = ev.fault.clone();
        self.execute(kind as usize, fault, ctx);
    }
}

impl<P: ProtoMessage> Nemesis<P> {
    /// One half-period tick of a crash loop: recover if down, crash
    /// again if up and crashes remain. The loop always ends with the
    /// node recovered.
    fn loop_tick(&mut self, index: u64, ctx: &mut Context<Envelope<P>>) {
        let Some(state) = self.loops.get_mut(&index) else {
            return;
        };
        if state.down {
            ctx.control(Control::Recover(state.node));
            state.down = false;
            if state.remaining == 0 {
                self.loops.remove(&index);
                return;
            }
        } else {
            ctx.control(Control::Crash(state.node));
            state.down = true;
            state.remaining -= 1;
        }
        let period = state.period;
        ctx.set_timer(period / 2, LOOP_BASE + index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::ClientReply;
    use crate::replica::{Ctx, Replica, ReplicaActor, ReplicaCtx};
    use simnet::{CpuCostModel, SimDuration, Simulation, Topology};

    #[derive(Debug, Clone)]
    struct NoProto;
    impl ProtoMessage for NoProto {
        fn wire_size(&self) -> usize {
            0
        }
    }

    /// Acks everything and counts requests.
    struct Counting {
        seen: Arc<Mutex<u64>>,
    }
    impl Replica<NoProto> for Counting {
        fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<NoProto>) {
            *self.seen.lock() += 1;
            ctx.reply(client, ClientReply::ok(req.command.id, None));
        }
        fn on_proto(&mut self, _f: NodeId, _m: NoProto, _c: &mut Ctx<NoProto>) {}
    }

    fn at(ms: u64, fault: Fault) -> FaultEvent {
        FaultEvent {
            at: SimDuration::from_millis(ms),
            fault,
        }
    }

    #[test]
    fn nemesis_executes_schedule_in_order() {
        let mut sim: Simulation<Envelope<NoProto>> =
            Simulation::new(Topology::lan(3), CpuCostModel::free(), 5);
        let seen = Arc::new(Mutex::new(0));
        sim.add_actor(Box::new(ReplicaActor(Counting { seen: seen.clone() })));
        sim.add_actor(Box::new(ReplicaActor(Counting {
            seen: Arc::new(Mutex::new(0)),
        })));
        let log = NemesisLog::new();
        sim.add_actor(Box::new(Nemesis::<NoProto>::new(
            vec![
                at(10, Fault::Crash(1)),
                at(20, Fault::Restart(1)),
                at(
                    30,
                    Fault::Storm {
                        target: 0,
                        count: 25,
                    },
                ),
            ],
            log.clone(),
        )));
        sim.run_until(simnet::SimTime::from_millis(100));
        let entries = log.entries();
        assert_eq!(entries.len(), 3);
        assert!(entries[0].1.contains("Crash"));
        assert!(entries[1].1.contains("Restart"));
        assert!(entries[2].1.contains("Storm"));
        assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "log is time-ordered"
        );
        assert_eq!(*seen.lock(), 25, "storm burst arrived at the target");
    }

    #[test]
    fn crash_loop_cycles_and_ends_recovered() {
        struct Chatter {
            peer: NodeId,
        }
        impl Actor<Envelope<NoProto>> for Chatter {
            fn on_start(&mut self, ctx: &mut Context<Envelope<NoProto>>) {
                ctx.set_timer(SimDuration::from_millis(5), 0);
            }
            fn on_message(
                &mut self,
                _f: NodeId,
                _m: Envelope<NoProto>,
                _c: &mut Context<Envelope<NoProto>>,
            ) {
            }
            fn on_timer(&mut self, _i: TimerId, _k: u64, ctx: &mut Context<Envelope<NoProto>>) {
                ctx.send(self.peer, Envelope::Proto(NoProto));
                ctx.set_timer(SimDuration::from_millis(5), 0);
            }
        }
        let run = |faults: Vec<FaultEvent>| {
            let mut sim: Simulation<Envelope<NoProto>> =
                Simulation::new(Topology::lan(3), CpuCostModel::free(), 5);
            sim.add_actor(Box::new(Chatter { peer: NodeId(1) }));
            sim.add_actor(Box::new(Chatter { peer: NodeId(0) }));
            let log = NemesisLog::new();
            sim.add_actor(Box::new(Nemesis::<NoProto>::new(faults, log.clone())));
            sim.run_until(simnet::SimTime::from_millis(200));
            (sim.stats().msgs_dropped, log.len())
        };
        let (permanent, _) = run(vec![at(10, Fault::Crash(1))]);
        // Down windows: [10,30) and [50,70); up from 70ms on.
        let (looped, log_len) = run(vec![at(
            10,
            Fault::CrashLoop {
                node: 1,
                period: SimDuration::from_millis(40),
                count: 2,
            },
        )]);
        assert_eq!(log_len, 1, "the loop logs as one scheduled fault");
        assert!(looped > 0, "down windows drop traffic");
        assert!(
            looped < permanent / 2,
            "node recovers between and after crashes: {looped} vs {permanent}"
        );
    }

    #[test]
    fn nemesis_partition_blocks_and_heal_restores() {
        // Node 2 (nemesis) partitions node 0 from node 1 at 10ms and
        // heals at 50ms; a probing client on node 3 relays a request
        // through… simpler: verify via message stats that the storm at
        // 60ms reaches a node that was crashed during the partition
        // window. Here we exercise Partition/Heal control emission and
        // assert the blocked link drops traffic between replicas.
        struct Chatter {
            peer: NodeId,
        }
        impl Actor<Envelope<NoProto>> for Chatter {
            fn on_start(&mut self, ctx: &mut Context<Envelope<NoProto>>) {
                ctx.set_timer(SimDuration::from_millis(5), 0);
            }
            fn on_message(
                &mut self,
                _f: NodeId,
                _m: Envelope<NoProto>,
                _c: &mut Context<Envelope<NoProto>>,
            ) {
            }
            fn on_timer(&mut self, _i: TimerId, _k: u64, ctx: &mut Context<Envelope<NoProto>>) {
                ctx.send(self.peer, Envelope::Proto(NoProto));
                ctx.set_timer(SimDuration::from_millis(5), 0);
            }
        }

        let run = |faults: Vec<FaultEvent>| {
            let mut sim: Simulation<Envelope<NoProto>> =
                Simulation::new(Topology::lan(3), CpuCostModel::free(), 5);
            sim.add_actor(Box::new(Chatter { peer: NodeId(1) }));
            sim.add_actor(Box::new(Chatter { peer: NodeId(0) }));
            sim.add_actor(Box::new(Nemesis::<NoProto>::new(faults, NemesisLog::new())));
            sim.run_until(simnet::SimTime::from_millis(100));
            sim.stats().msgs_dropped
        };
        let no_faults = run(vec![]);
        assert_eq!(no_faults, 0);
        let partitioned = run(vec![at(
            10,
            Fault::Partition {
                a: vec![0],
                b: vec![1],
            },
        )]);
        assert!(partitioned > 10, "partition drops traffic: {partitioned}");
        let healed = run(vec![
            at(
                10,
                Fault::Partition {
                    a: vec![0],
                    b: vec![1],
                },
            ),
            at(20, Fault::Heal),
        ]);
        assert!(
            healed < partitioned / 2,
            "healing restores the link: {healed} vs {partitioned}"
        );
    }
}
