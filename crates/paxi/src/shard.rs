//! Key-range sharding: many consensus groups, one system.
//!
//! One consensus group serializes *everything* through one leader; past
//! its saturation point the only way up is to stop sharing. This module
//! partitions the key space into contiguous ranges, gives each range to
//! an independent consensus group (any [`ProtocolSpec`] — Paxos,
//! PigPaxos, EPaxos), and multiplexes all groups over one shared
//! network substrate so the existing simulator, thread, and TCP
//! harnesses run N-group systems unchanged.
//!
//! The pieces:
//!
//! * [`ShardMap`] — the versioned routing table: an ordered list of
//!   range starts, each owned by a [`GroupId`]. Disjointness and full
//!   coverage hold by construction (a range ends where the next one
//!   starts; the first starts at key 0; the last is unbounded).
//! * [`ShardGate`] — a protocol-agnostic decorator in front of every
//!   replica actor. It owns the shard-facing duties the protocol never
//!   sees: reject-or-redirect for keys the group does not own, the
//!   freeze/drain/ship state machine of a live range move, and
//!   installing an inbound range through the group's own consensus log
//!   (so the transferred state is as durable as any other write).
//! * [`ShardRouter`] — the client actor: resolves each operation's key
//!   against its (possibly stale) map copy, sends to the owning
//!   group's leader, and follows `redirect` replies when a move beat
//!   its map; [`ShardCtl::MapUpdate`] broadcasts re-freshen it.
//! * [`ShardedExperiment`] — the builder that stamps out N gated
//!   protocol instances with disjoint node-id namespaces (shard *s*
//!   owns nodes `[s*R, (s+1)*R)`), routers behind them, and runs the
//!   whole assembly on any substrate, merging per-shard safety and
//!   compaction counters into one [`RunResult`].
//!
//! ## Rebalancing = snapshot + redirect
//!
//! A [`ShardMove`] rides the machinery that already exists instead of
//! inventing a transfer protocol: the source leader's gate **freezes**
//! the moving range (buffering new requests), **drains** in-flight
//! writes, captures a range-filtered [`Snapshot`]
//! ([`Snapshot::for_range`]), and ships it to the destination leader,
//! whose gate **installs** it by proposing each entry through its own
//! group's log. On the destination's ack the source bumps its map
//! version, redirects the buffered clients, and broadcasts the new map.
//! Clients that still hold the stale map are corrected per-request by
//! redirect — exactly the mechanism that already handles a moved
//! Paxos leader. Retries of requests acknowledged before the move are
//! re-answered from a windowed reply cache, not re-executed, so a move
//! never duplicates a client command.
//!
//! Per-key linearizability across a live move is asserted by the
//! workspace test-suite (`tests/sharding.rs`), not just argued here.

use crate::client::{jitter_seed, ClientRecorder, Sample, MAX_BACKOFF_SHIFT};
use crate::cluster::ClusterConfig;
use crate::command::{ClientReply, ClientRequest, Command, Key, Operation, RequestId};
use crate::envelope::{Envelope, ProtoMessage};
use crate::experiment::ProtocolSpec;
use crate::harness::RunResult;
use crate::kv::KvStore;
use crate::metrics::{mean, percentile};
use crate::session::SessionTable;
use crate::snapshot::Snapshot;
use crate::workload::Workload;
use simnet::wire::{WireHeader, DOMAIN_SHARD, WIRE_HEADER_BYTES};
use simnet::{
    Actor, Context, CpuCostModel, Effect, NodeId, SimDuration, SimTime, Simulation, TimerId,
    Topology, Wire, WireError, WirePut, WireReader,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::marker::PhantomData;
use std::sync::Arc;
use std::time::Duration;

/// Identifies one consensus group (one shard's replica set).
pub type GroupId = u32;

/// A contiguous key range `[start, end)`; `end = None` means unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// First key in the range (inclusive).
    pub start: Key,
    /// One past the last key (exclusive); `None` extends to the top of
    /// the key space.
    pub end: Option<Key>,
}

impl KeyRange {
    /// Whether `key` falls inside this range.
    pub fn contains(&self, key: Key) -> bool {
        key >= self.start && self.end.map_or(true, |e| key < e)
    }
}

/// The versioned key-range → group routing table.
///
/// Stored as an ordered list of `(range start, owner)` pairs: range *i*
/// covers `[starts[i], starts[i+1])` and the last range is unbounded.
/// The representation makes the two map invariants — ranges are
/// **disjoint** and **cover** the whole key space — true by
/// construction; `is_valid` checks the representation itself (first
/// start is 0, starts strictly increase).
///
/// Every mutation bumps `version`. Stale copies are harmless: a gate
/// holding the authoritative assignment answers a misrouted request
/// with a redirect, and [`ShardCtl::MapUpdate`] broadcasts let holders
/// catch up wholesale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    version: u64,
    starts: Vec<(Key, GroupId)>,
}

impl ShardMap {
    /// `groups` equal ranges over the key space `[0, key_space)`:
    /// range *g* starts at `g * (key_space / groups)` and is owned by
    /// group *g*. The last range is unbounded, so keys at or above
    /// `key_space` still route (to the last group).
    pub fn uniform(groups: u32, key_space: u64) -> Self {
        assert!(groups >= 1, "need at least one group");
        assert!(
            key_space >= groups as u64,
            "key space must have at least one key per group"
        );
        let stride = key_space / groups as u64;
        ShardMap {
            version: 1,
            starts: (0..groups).map(|g| (g as u64 * stride, g)).collect(),
        }
    }

    /// Monotonic map version; bumped by every mutation.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of ranges (≥ number of groups that own anything).
    pub fn num_ranges(&self) -> usize {
        self.starts.len()
    }

    /// The group owning `key`.
    pub fn group_for(&self, key: Key) -> GroupId {
        let idx = self.starts.partition_point(|&(s, _)| s <= key).max(1);
        self.starts[idx - 1].1
    }

    /// The full range beginning exactly at `start`, if one does.
    pub fn range_starting_at(&self, start: Key) -> Option<KeyRange> {
        let i = self.starts.iter().position(|&(s, _)| s == start)?;
        Some(KeyRange {
            start,
            end: self.starts.get(i + 1).map(|&(s, _)| s),
        })
    }

    /// All ranges with their owners, in key order.
    pub fn ranges(&self) -> Vec<(KeyRange, GroupId)> {
        (0..self.starts.len())
            .map(|i| {
                let (start, g) = self.starts[i];
                (
                    KeyRange {
                        start,
                        end: self.starts.get(i + 1).map(|&(s, _)| s),
                    },
                    g,
                )
            })
            .collect()
    }

    /// Split the range containing `at` into two at that key (both
    /// halves keep the owner). Returns `false` — and leaves the map
    /// untouched — if `at` is 0 or already a boundary.
    pub fn split(&mut self, at: Key) -> bool {
        if at == 0 || self.starts.iter().any(|&(s, _)| s == at) {
            return false;
        }
        let owner = self.group_for(at);
        let idx = self.starts.partition_point(|&(s, _)| s < at);
        self.starts.insert(idx, (at, owner));
        self.version += 1;
        true
    }

    /// Reassign the range starting exactly at `start` to group `to`,
    /// bumping the version. Returns `false` if no range starts there.
    pub fn move_range(&mut self, start: Key, to: GroupId) -> bool {
        match self.starts.iter_mut().find(|(s, _)| *s == start) {
            Some(entry) => {
                entry.1 = to;
                self.version += 1;
                true
            }
            None => false,
        }
    }

    /// Apply a move decided elsewhere, stamping the mover's exact
    /// `version`. Rejected (returns `false`) when `version` is not
    /// newer than this copy or no range starts at `start` — so
    /// replayed or reordered move notifications are no-ops.
    pub fn install_move(&mut self, start: Key, to: GroupId, version: u64) -> bool {
        if version <= self.version {
            return false;
        }
        match self.starts.iter_mut().find(|(s, _)| *s == start) {
            Some(entry) => {
                entry.1 = to;
                self.version = version;
                true
            }
            None => false,
        }
    }

    /// Representation invariant: non-empty, first range starts at key
    /// 0, starts strictly increase. Given this, the ranges are disjoint
    /// and cover every key — the property the workspace proptest
    /// drives through arbitrary split/move sequences.
    pub fn is_valid(&self) -> bool {
        !self.starts.is_empty()
            && self.starts[0].0 == 0
            && self.starts.windows(2).all(|w| w[0].0 < w[1].0)
    }

    /// Exact [`Wire`] encoding size: version (8) + count (4) + 12 bytes
    /// per `(start, group)` entry.
    pub fn wire_bytes(&self) -> usize {
        12 + 12 * self.starts.len()
    }
}

impl Wire for ShardMap {
    const KIND: &'static str = "ShardMap";

    /// `version: u64`, `count: u32`, then `count` entries of
    /// `start: u64`, `group: u32` — already sorted, so deterministic.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u64(self.version);
        out.put_u32(self.starts.len() as u32);
        for &(start, group) in &self.starts {
            out.put_u64(start);
            out.put_u32(group);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let version = r.u64("shard_map.version")?;
        let count = r.u32("shard_map.count")?;
        // 8 start + 4 group per entry.
        let mut starts = Vec::with_capacity(r.capacity_for(count as usize, 12));
        for _ in 0..count {
            let start = r.u64("shard_map.start")?;
            let group = r.u32("shard_map.group")?;
            starts.push((start, group));
        }
        Ok(ShardMap { version, starts })
    }
}

/// One scheduled range move: at `at` (simulation time from start), the
/// range beginning at `start` migrates to group `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// When the source leader's gate initiates the move.
    pub at: SimDuration,
    /// Start key of the moving range (must be an existing boundary).
    pub start: Key,
    /// Destination group.
    pub to: GroupId,
}

/// Shard-control messages, carried as [`Envelope::Shard`] so they share
/// the network with client and protocol traffic on every substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardCtl {
    /// Tell the owning group's leader gate to start moving the range
    /// beginning at `start` to group `to` (the message form of
    /// [`ShardMove`]; scheduled moves use a timer instead).
    Move {
        /// Start key of the range to move.
        start: Key,
        /// Destination group.
        to: GroupId,
    },
    /// Source → destination leader: the drained range's state. Boxed —
    /// a snapshot dwarfs every other variant.
    Install {
        /// The map version the move will commit as.
        version: u64,
        /// The moving range.
        range: KeyRange,
        /// Range-filtered state captured after the source drained.
        snapshot: Box<Snapshot>,
    },
    /// Destination → source leader: the range is durably installed;
    /// the source may commit the move at `version` and redirect.
    InstallAck {
        /// Echo of the install's map version.
        version: u64,
    },
    /// Authoritative map broadcast after a committed move, so routers
    /// and peer gates stop relying on per-request redirects.
    MapUpdate {
        /// The new routing table.
        map: ShardMap,
    },
}

const SHARD_KIND_MOVE: u8 = 0;
const SHARD_KIND_INSTALL: u8 = 1;
const SHARD_KIND_INSTALL_ACK: u8 = 2;
const SHARD_KIND_MAP_UPDATE: u8 = 3;

impl ShardCtl {
    /// Serialized size in bytes (header + variant body); equals the
    /// [`Wire`] encoding length exactly.
    pub fn wire_size(&self) -> usize {
        match self {
            ShardCtl::Move { .. } => WIRE_HEADER_BYTES + 12,
            // version + start + end-presence byte + end + snapshot.
            ShardCtl::Install { snapshot, .. } => WIRE_HEADER_BYTES + 25 + snapshot.wire_bytes(),
            ShardCtl::InstallAck { .. } => WIRE_HEADER_BYTES + 8,
            ShardCtl::MapUpdate { map } => WIRE_HEADER_BYTES + map.wire_bytes(),
        }
    }

    /// Short label for traces and per-label delivery counts.
    pub fn label(&self) -> &'static str {
        match self {
            ShardCtl::Move { .. } => "shard_move",
            ShardCtl::Install { .. } => "shard_install",
            ShardCtl::InstallAck { .. } => "shard_install_ack",
            ShardCtl::MapUpdate { .. } => "shard_map",
        }
    }
}

impl Wire for ShardCtl {
    const KIND: &'static str = "ShardCtl";

    /// Standard 24-byte header under [`DOMAIN_SHARD`]; bodies are plain
    /// little-endian fields (see [`ShardCtl::wire_size`] for layouts).
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ShardCtl::Move { start, to } => {
                WireHeader::new(DOMAIN_SHARD, SHARD_KIND_MOVE).encode_into(out);
                out.put_u64(*start);
                out.put_u32(*to);
            }
            ShardCtl::Install {
                version,
                range,
                snapshot,
            } => {
                WireHeader::new(DOMAIN_SHARD, SHARD_KIND_INSTALL).encode_into(out);
                out.put_u64(*version);
                out.put_u64(range.start);
                out.put_u8(range.end.is_some() as u8);
                out.put_u64(range.end.unwrap_or(0));
                snapshot.encode_into(out);
            }
            ShardCtl::InstallAck { version } => {
                WireHeader::new(DOMAIN_SHARD, SHARD_KIND_INSTALL_ACK).encode_into(out);
                out.put_u64(*version);
            }
            ShardCtl::MapUpdate { map } => {
                WireHeader::new(DOMAIN_SHARD, SHARD_KIND_MAP_UPDATE).encode_into(out);
                map.encode_into(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let h = WireHeader::decode(r)?;
        if h.domain != DOMAIN_SHARD {
            return Err(WireError::BadTag {
                what: "shard.domain",
                got: h.domain,
            });
        }
        match h.kind {
            SHARD_KIND_MOVE => Ok(ShardCtl::Move {
                start: r.u64("shard.move.start")?,
                to: r.u32("shard.move.to")?,
            }),
            SHARD_KIND_INSTALL => {
                let version = r.u64("shard.install.version")?;
                let start = r.u64("shard.install.start")?;
                let has_end = r.u8("shard.install.has_end")?;
                let end_raw = r.u64("shard.install.end")?;
                let end = match has_end {
                    0 => None,
                    1 => Some(end_raw),
                    got => {
                        return Err(WireError::BadTag {
                            what: "shard.install.has_end",
                            got,
                        })
                    }
                };
                Ok(ShardCtl::Install {
                    version,
                    range: KeyRange { start, end },
                    snapshot: Box::new(Snapshot::decode(r)?),
                })
            }
            SHARD_KIND_INSTALL_ACK => Ok(ShardCtl::InstallAck {
                version: r.u64("shard.ack.version")?,
            }),
            SHARD_KIND_MAP_UPDATE => Ok(ShardCtl::MapUpdate {
                map: ShardMap::decode(r)?,
            }),
            got => Err(WireError::BadTag {
                what: "shard.kind",
                got,
            }),
        }
    }
}

/// Gate-owned timer kinds carry this bit so they never collide with the
/// wrapped replica's timers (protocol timer kinds are small values).
const GATE_TIMER_BIT: u64 = 1 << 63;
/// Timer kind for the move drain re-check tick.
const DRAIN_KIND: u64 = GATE_TIMER_BIT | (1 << 62);
/// How often a draining gate re-checks for in-flight writes.
const DRAIN_TICK: SimDuration = SimDuration::from_millis(1);
/// Per-client window of recently acknowledged replies kept for
/// exactly-once retry replay across a move.
const RECENT_WINDOW: usize = 32;

/// Source-side state of one in-progress outbound move.
struct MoveState {
    range: KeyRange,
    to: GroupId,
    /// The map version this move commits as (source version + 1).
    new_version: u64,
    /// Requests for the frozen range, parked until the move commits
    /// (then answered with a redirect to the new owner).
    buffered: Vec<(NodeId, ClientRequest)>,
    shipped: bool,
}

/// Destination-side state of one in-progress inbound install.
struct InstallState {
    version: u64,
    range: KeyRange,
    /// The source leader to ack once every entry is committed.
    from: NodeId,
    /// Sequence numbers of install writes not yet acknowledged by the
    /// local consensus group.
    outstanding: HashSet<u64>,
    /// Client requests for the arriving range, parked until the state
    /// is installed (then served locally).
    buffered: Vec<(NodeId, ClientRequest)>,
}

/// Protocol-agnostic sharding decorator wrapped around a replica actor.
///
/// The gate intercepts the replica's network-facing surface: inbound
/// client requests are admitted, buffered, redirected, or re-answered
/// from the reply cache depending on range ownership and move state;
/// inbound [`ShardCtl`] traffic drives the move/install state machines;
/// everything else — protocol messages, timers — passes through
/// untouched. Outbound effects are observed via [`Context::capture`] so
/// the gate can mirror acknowledged writes (the mirror is what a move
/// ships) without knowing anything about the protocol inside.
///
/// One gate wraps **every** replica, but only the gate in front of a
/// group's leader acts on moves; follower gates merely keep their maps
/// fresh and redirect strays.
pub struct ShardGate<P: ProtoMessage> {
    inner: Box<dyn Actor<Envelope<P>> + Send>,
    group: GroupId,
    map: ShardMap,
    /// Initial leader of every group, indexed by [`GroupId`].
    leaders: Vec<NodeId>,
    /// Nodes to notify with [`ShardCtl::MapUpdate`] after a committed
    /// move (typically all leaders and routers).
    notify: Vec<NodeId>,
    /// Scheduled moves this gate initiates (leader gates only).
    moves: Vec<ShardMove>,
    node: NodeId,
    /// Writes acknowledged by the local group, replayed from observed
    /// `ok` replies — the state a move ships.
    mirror: KvStore,
    /// Writes proposed but not yet acknowledged (client and install
    /// writes); a move may not ship while any overlap its range.
    pending: HashMap<RequestId, Operation>,
    /// Per-client window of recent acknowledged replies, for
    /// exactly-once retry replay after the range moved away.
    recent: HashMap<NodeId, VecDeque<(u64, ClientReply)>>,
    moving: Option<MoveState>,
    installing: Option<InstallState>,
    /// Sequence source for gate-issued install writes.
    gate_seq: u64,
}

impl<P: ProtoMessage> ShardGate<P> {
    /// Wrap `inner` (a replica of `group`) with the sharding gate.
    /// `leaders[g]` is group *g*'s leader node; `notify` lists the
    /// nodes to send map updates to after a committed move.
    pub fn new(
        inner: Box<dyn Actor<Envelope<P>> + Send>,
        group: GroupId,
        map: ShardMap,
        leaders: Vec<NodeId>,
        notify: Vec<NodeId>,
    ) -> Self {
        ShardGate {
            inner,
            group,
            map,
            leaders,
            notify,
            moves: Vec::new(),
            node: NodeId(u32::MAX),
            mirror: KvStore::new(),
            pending: HashMap::new(),
            recent: HashMap::new(),
            moving: None,
            installing: None,
            gate_seq: 0,
        }
    }

    /// Schedule `moves` to fire on this gate's timers (give the full
    /// list to every leader gate; at fire time only the current owner
    /// of the range acts, so chained moves work).
    pub fn with_moves(mut self, moves: Vec<ShardMove>) -> Self {
        self.moves = moves;
        self
    }

    /// This gate's current map copy (tests inspect the version).
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Run `f` against the wrapped replica, capturing its effects and
    /// post-processing them (reply observation, self-delivery).
    fn invoke(
        &mut self,
        ctx: &mut Context<Envelope<P>>,
        f: impl FnOnce(&mut (dyn Actor<Envelope<P>> + Send), &mut Context<Envelope<P>>),
    ) {
        let inner = &mut self.inner;
        let ((), effects) = ctx.capture(|c| f(inner.as_mut(), c));
        self.process_effects(effects, ctx);
    }

    /// Re-emit the replica's captured effects, observing replies on the
    /// way out. Replies addressed to this very node are gate-issued
    /// install writes completing — they are consumed, not sent.
    fn process_effects(
        &mut self,
        effects: Vec<Effect<Envelope<P>>>,
        ctx: &mut Context<Envelope<P>>,
    ) {
        for effect in effects {
            match effect {
                Effect::Send { to, msg } => match msg {
                    Envelope::Reply(r) => {
                        self.note_reply(&r);
                        if to == self.node {
                            self.on_self_reply(&r, ctx);
                        } else {
                            ctx.send(to, Envelope::Reply(r));
                        }
                    }
                    Envelope::ReplyBatch(rs) => {
                        for r in &rs {
                            self.note_reply(r);
                        }
                        if to == self.node {
                            for r in &rs {
                                self.on_self_reply(r, ctx);
                            }
                        } else {
                            ctx.send(to, Envelope::ReplyBatch(rs));
                        }
                    }
                    other => ctx.send(to, other),
                },
                other => ctx.emit(other),
            }
        }
    }

    /// Observe one outbound reply: settle the pending write (feeding
    /// the mirror on success) and cache it for retry replay.
    fn note_reply(&mut self, r: &ClientReply) {
        if !r.ok {
            self.pending.remove(&r.id);
            return;
        }
        if let Some(op) = self.pending.remove(&r.id) {
            self.mirror.apply(&op);
        }
        if r.id.client != self.node {
            let entry = self.recent.entry(r.id.client).or_default();
            entry.retain(|(seq, _)| *seq != r.id.seq);
            entry.push_back((r.id.seq, r.clone()));
            if entry.len() > RECENT_WINDOW {
                entry.pop_front();
            }
        }
    }

    /// A reply to a gate-issued install write arrived (via effect
    /// capture — it never touches the network).
    fn on_self_reply(&mut self, r: &ClientReply, ctx: &mut Context<Envelope<P>>) {
        if !r.ok {
            return;
        }
        let done = match self.installing.as_mut() {
            Some(inst) => {
                inst.outstanding.remove(&r.id.seq);
                inst.outstanding.is_empty()
            }
            None => false,
        };
        if done {
            self.complete_install(ctx);
        }
    }

    fn cached_reply(&self, id: &RequestId) -> Option<ClientReply> {
        self.recent
            .get(&id.client)?
            .iter()
            .find(|(seq, _)| *seq == id.seq)
            .map(|(_, r)| r.clone())
    }

    /// Admission control for client requests: buffer during an install
    /// or a freeze, replay cached replies for retries of acknowledged
    /// requests, redirect keys this group does not own, and pass owned
    /// traffic to the replica.
    fn handle_request(&mut self, from: NodeId, req: ClientRequest, ctx: &mut Context<Envelope<P>>) {
        let key = match req.command.op.key() {
            Some(k) => k,
            // Key-less operations (noops) have no shard; serve locally.
            None => {
                self.forward_owned(from, req, ctx);
                return;
            }
        };
        let installing_hit = self
            .installing
            .as_ref()
            .is_some_and(|inst| inst.range.contains(key));
        if installing_hit {
            let inst = self.installing.as_mut().expect("checked installing");
            if !inst
                .buffered
                .iter()
                .any(|(_, r)| r.command.id == req.command.id)
            {
                inst.buffered.push((from, req));
            }
            return;
        }
        let frozen = self
            .moving
            .as_ref()
            .is_some_and(|mv| mv.range.contains(key));
        if frozen {
            if let Some(reply) = self.cached_reply(&req.command.id) {
                ctx.send(from, Envelope::Reply(reply));
                return;
            }
            let mv = self.moving.as_mut().expect("checked moving");
            if !mv
                .buffered
                .iter()
                .any(|(_, r)| r.command.id == req.command.id)
            {
                mv.buffered.push((from, req));
            }
            return;
        }
        let owner = self.map.group_for(key);
        if owner == self.group {
            self.forward_owned(from, req, ctx);
        } else if let Some(reply) = self.cached_reply(&req.command.id) {
            // A retry of a request this group already executed before
            // the range moved away: re-answer, never redirect — the new
            // owner would execute it a second time.
            ctx.send(from, Envelope::Reply(reply));
        } else {
            let hint = self.leaders.get(owner as usize).copied();
            ctx.send(
                from,
                Envelope::Reply(ClientReply::redirect(req.command.id, hint)),
            );
        }
    }

    /// Hand an owned request to the replica, tracking writes as pending
    /// until their reply settles them.
    fn forward_owned(&mut self, from: NodeId, req: ClientRequest, ctx: &mut Context<Envelope<P>>) {
        if let Operation::Put(..) = req.command.op {
            self.pending.insert(req.command.id, req.command.op.clone());
        }
        self.invoke(ctx, move |inner, c| {
            inner.on_message(from, Envelope::Request(req), c)
        });
    }

    /// Begin moving the range starting at `start` to group `to`.
    /// Silently refuses when this gate is not the current owner's
    /// leader, the range boundary does not exist, a move or install is
    /// already in flight, or the destination is bogus — a scheduled
    /// move list handed to every leader thus fires exactly once, at
    /// the owner.
    fn start_move(&mut self, start: Key, to: GroupId, ctx: &mut Context<Envelope<P>>) {
        if self.moving.is_some() || self.installing.is_some() {
            return;
        }
        if to == self.group || to as usize >= self.leaders.len() {
            return;
        }
        if self.leaders.get(self.group as usize).copied() != Some(self.node) {
            return;
        }
        if self.map.group_for(start) != self.group {
            return;
        }
        let range = match self.map.range_starting_at(start) {
            Some(r) => r,
            None => return,
        };
        self.moving = Some(MoveState {
            range,
            to,
            new_version: self.map.version() + 1,
            buffered: Vec::new(),
            shipped: false,
        });
        self.try_ship(ctx);
    }

    /// Ship the frozen range once no in-flight write overlaps it;
    /// otherwise re-check after a drain tick. Strict draining is what
    /// makes the snapshot complete: a write committed after capture
    /// would be silently lost.
    fn try_ship(&mut self, ctx: &mut Context<Envelope<P>>) {
        let (range, to) = match &self.moving {
            Some(mv) if !mv.shipped => (mv.range, mv.to),
            _ => return,
        };
        let draining = self
            .pending
            .values()
            .any(|op| op.key().is_some_and(|k| range.contains(k)));
        if draining {
            ctx.set_timer(DRAIN_TICK, DRAIN_KIND);
            return;
        }
        let snapshot = Snapshot::for_range(
            0,
            &self.mirror,
            &HashMap::new(),
            &SessionTable::new(),
            range.start,
            range.end,
        );
        let mv = self.moving.as_mut().expect("checked moving");
        mv.shipped = true;
        let version = mv.new_version;
        let dest = self.leaders[to as usize];
        ctx.send(
            dest,
            Envelope::Shard(ShardCtl::Install {
                version,
                range,
                snapshot: Box::new(snapshot),
            }),
        );
    }

    /// Destination side: propose every snapshot entry through the local
    /// group's log (as gate-issued writes), then ack the source.
    fn begin_install(
        &mut self,
        from: NodeId,
        version: u64,
        range: KeyRange,
        snapshot: &Snapshot,
        ctx: &mut Context<Envelope<P>>,
    ) {
        if version <= self.map.version() {
            // Stale or duplicate install. If this group already owns the
            // range the original ack was lost — re-ack so the source
            // can commit; otherwise drop.
            if self.map.group_for(range.start) == self.group {
                ctx.send(from, Envelope::Shard(ShardCtl::InstallAck { version }));
            }
            return;
        }
        if self.installing.is_some() || self.moving.is_some() {
            return;
        }
        let mut inst = InstallState {
            version,
            range,
            from,
            outstanding: HashSet::new(),
            buffered: Vec::new(),
        };
        let mut commands = Vec::new();
        for (k, v) in snapshot.kv.sorted_entries() {
            self.gate_seq += 1;
            let id = RequestId {
                client: self.node,
                seq: self.gate_seq,
            };
            inst.outstanding.insert(self.gate_seq);
            self.pending.insert(id, Operation::Put(k, v.clone()));
            commands.push(Command {
                id,
                op: Operation::Put(k, v),
            });
        }
        self.installing = Some(inst);
        if commands.is_empty() {
            self.complete_install(ctx);
            return;
        }
        let node = self.node;
        for command in commands {
            let req = ClientRequest { command };
            self.invoke(ctx, move |inner, c| {
                inner.on_message(node, Envelope::Request(req), c)
            });
        }
    }

    /// Every install write is committed: adopt the range, ack the
    /// source, and serve what buffered while the state was in flight.
    fn complete_install(&mut self, ctx: &mut Context<Envelope<P>>) {
        let inst = match self.installing.take() {
            Some(i) => i,
            None => return,
        };
        self.map
            .install_move(inst.range.start, self.group, inst.version);
        ctx.send(
            inst.from,
            Envelope::Shard(ShardCtl::InstallAck {
                version: inst.version,
            }),
        );
        for (client, req) in inst.buffered {
            self.handle_request(client, req, ctx);
        }
    }

    /// Source side: the destination holds the range durably — commit
    /// the move, redirect buffered clients, broadcast the new map.
    fn complete_move(&mut self, version: u64, ctx: &mut Context<Envelope<P>>) {
        let acked = self
            .moving
            .as_ref()
            .is_some_and(|mv| mv.shipped && mv.new_version == version);
        if !acked {
            return;
        }
        let mv = self.moving.take().expect("checked moving");
        self.map.install_move(mv.range.start, mv.to, version);
        let hint = self.leaders.get(mv.to as usize).copied();
        for (client, req) in mv.buffered {
            ctx.send(
                client,
                Envelope::Reply(ClientReply::redirect(req.command.id, hint)),
            );
        }
        let update = ShardCtl::MapUpdate {
            map: self.map.clone(),
        };
        for &n in &self.notify {
            if n != self.node {
                ctx.send(n, Envelope::Shard(update.clone()));
            }
        }
    }

    fn handle_ctl(&mut self, from: NodeId, ctl: ShardCtl, ctx: &mut Context<Envelope<P>>) {
        match ctl {
            ShardCtl::Move { start, to } => self.start_move(start, to, ctx),
            ShardCtl::Install {
                version,
                range,
                snapshot,
            } => self.begin_install(from, version, range, &snapshot, ctx),
            ShardCtl::InstallAck { version } => self.complete_move(version, ctx),
            ShardCtl::MapUpdate { map } => {
                if map.version() > self.map.version() {
                    self.map = map;
                }
            }
        }
    }
}

impl<P: ProtoMessage> Actor<Envelope<P>> for ShardGate<P> {
    fn on_start(&mut self, ctx: &mut Context<Envelope<P>>) {
        self.node = ctx.node();
        for (i, mv) in self.moves.iter().enumerate() {
            ctx.set_timer(mv.at, GATE_TIMER_BIT | i as u64);
        }
        self.invoke(ctx, |inner, c| inner.on_start(c));
    }

    fn on_message(&mut self, from: NodeId, msg: Envelope<P>, ctx: &mut Context<Envelope<P>>) {
        match msg {
            Envelope::Request(req) => self.handle_request(from, req, ctx),
            Envelope::Shard(ctl) => self.handle_ctl(from, ctl, ctx),
            other => self.invoke(ctx, move |inner, c| inner.on_message(from, other, c)),
        }
    }

    fn on_timer(&mut self, id: TimerId, kind: u64, ctx: &mut Context<Envelope<P>>) {
        if kind & GATE_TIMER_BIT != 0 {
            if kind == DRAIN_KIND {
                self.try_ship(ctx);
            } else if let Some(mv) = self.moves.get((kind & !GATE_TIMER_BIT) as usize).copied() {
                self.start_move(mv.start, mv.to, ctx);
            }
            return;
        }
        self.invoke(ctx, |inner, c| inner.on_timer(id, kind, c));
    }

    fn state_digest(&self) -> Option<u64> {
        self.inner.state_digest()
    }
}

struct RouterOutstanding {
    issued: SimTime,
    command: Command,
    is_read: bool,
    attempts: u32,
}

/// Closed-loop sharded client: like [`crate::ClosedLoopClient`], but
/// each operation routes by key through a local [`ShardMap`] copy to
/// the owning group's leader. Redirect replies (a stale map losing to a
/// live move) re-send to the hinted leader; [`ShardCtl::MapUpdate`]
/// broadcasts re-freshen the map wholesale. Retry timeouts back off
/// exponentially with the same deterministic jitter schedule as the
/// unsharded client.
pub struct ShardRouter<P> {
    map: ShardMap,
    leaders: Vec<NodeId>,
    workload: Workload,
    recorder: ClientRecorder,
    retry_timeout: SimDuration,
    pipeline: usize,
    seq: u64,
    outstanding: HashMap<u64, RouterOutstanding>,
    _proto: PhantomData<P>,
}

impl<P> ShardRouter<P> {
    /// A router over `map` (leaders indexed by [`GroupId`]) recording
    /// completions into `recorder`.
    pub fn new(
        map: ShardMap,
        leaders: Vec<NodeId>,
        workload: Workload,
        recorder: ClientRecorder,
        retry_timeout: SimDuration,
    ) -> Self {
        assert!(!leaders.is_empty(), "need at least one group leader");
        ShardRouter {
            map,
            leaders,
            workload,
            recorder,
            retry_timeout,
            pipeline: 1,
            seq: 0,
            outstanding: HashMap::new(),
            _proto: PhantomData,
        }
    }

    /// Keep `depth` requests outstanding instead of one.
    pub fn with_pipeline(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        self.pipeline = depth;
        self
    }

    /// The leader this router would send `op` to under its current map.
    fn route(&self, op: &Operation) -> NodeId {
        match op.key() {
            Some(k) => {
                let g = self.map.group_for(k) as usize;
                self.leaders.get(g).copied().unwrap_or(self.leaders[0])
            }
            None => self.leaders[0],
        }
    }
}

impl<P: ProtoMessage> ShardRouter<P> {
    fn retry_delay(&self, node: NodeId, seq: u64, attempt: u32) -> SimDuration {
        if attempt == 0 {
            return self.retry_timeout;
        }
        let base = self.retry_timeout.as_nanos().max(1);
        let delay = base.saturating_mul(1 << attempt.min(MAX_BACKOFF_SHIFT));
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(jitter_seed(node, seq, attempt));
        let jitter = rng.gen_range(0..=delay / 2);
        SimDuration::from_nanos(delay.saturating_add(jitter))
    }

    fn issue_next(&mut self, ctx: &mut Context<Envelope<P>>) {
        self.seq += 1;
        let op = self.workload.next_op(ctx.rng());
        let is_read = op.is_read();
        let to = self.route(&op);
        let id = RequestId {
            client: ctx.node(),
            seq: self.seq,
        };
        let command = Command { id, op };
        self.outstanding.insert(
            self.seq,
            RouterOutstanding {
                issued: ctx.now(),
                command: command.clone(),
                is_read,
                attempts: 0,
            },
        );
        ctx.send(to, Envelope::Request(ClientRequest { command }));
        ctx.set_timer(self.retry_timeout, self.seq);
    }

    fn resend(&mut self, seq: u64, to: Option<NodeId>, ctx: &mut Context<Envelope<P>>) {
        if let Some(out) = self.outstanding.get(&seq) {
            let command = out.command.clone();
            let attempt = out.attempts;
            self.recorder.record_retry();
            // Without a redirect hint, re-resolve against the current
            // map — it may have been refreshed since the first send.
            let to = to.unwrap_or_else(|| self.route(&command.op));
            ctx.send(to, Envelope::Request(ClientRequest { command }));
            let delay = self.retry_delay(ctx.node(), seq, attempt);
            ctx.set_timer(delay, seq);
        }
    }

    fn handle_reply(&mut self, reply: ClientReply, ctx: &mut Context<Envelope<P>>) {
        if !self.outstanding.contains_key(&reply.id.seq) {
            return; // stale (a retry raced the original)
        }
        if !reply.ok {
            self.resend(reply.id.seq, reply.redirect, ctx);
            return;
        }
        let out = self.outstanding.remove(&reply.id.seq).expect("checked");
        self.recorder.record(Sample {
            issued: out.issued,
            completed: ctx.now(),
            is_read: out.is_read,
        });
        self.issue_next(ctx);
    }
}

impl<P: ProtoMessage> Actor<Envelope<P>> for ShardRouter<P> {
    fn on_start(&mut self, ctx: &mut Context<Envelope<P>>) {
        for _ in 0..self.pipeline {
            self.issue_next(ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: Envelope<P>, ctx: &mut Context<Envelope<P>>) {
        match msg {
            Envelope::Reply(r) => self.handle_reply(r, ctx),
            Envelope::ReplyBatch(rs) => {
                for r in rs {
                    self.handle_reply(r, ctx);
                }
            }
            Envelope::Shard(ShardCtl::MapUpdate { map }) if map.version() > self.map.version() => {
                self.map = map;
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Context<Envelope<P>>) {
        if let Some(out) = self.outstanding.get_mut(&kind) {
            out.attempts += 1;
            self.resend(kind, None, ctx);
        }
    }
}

/// The concrete node assignment of one sharded run: who is where.
///
/// Node-id space, in order: shard 0's replicas, shard 1's replicas, …,
/// then routers, then extra client nodes (custom actors first, empty
/// hook slots last). Each shard's [`ClusterConfig`] carries its own
/// shared [`crate::SafetyMonitor`] and [`crate::snapshot::CompactionStats`]
/// handles — clone them out in a run hook for post-run per-shard
/// inspection.
pub struct ShardLayout {
    /// Number of shards (consensus groups).
    pub shards: usize,
    /// Replicas per shard.
    pub replicas_per_shard: usize,
    /// The initial routing table.
    pub map: ShardMap,
    /// Per-shard cluster configs (disjoint node-id ranges).
    pub clusters: Vec<ClusterConfig>,
    /// Initial leader of each shard, indexed by [`GroupId`].
    pub leaders: Vec<NodeId>,
    /// Router (client) node ids.
    pub routers: Vec<NodeId>,
    /// Extra client-node ids (custom actors, then empty hook slots).
    pub extras: Vec<NodeId>,
    /// Total node count in the topology.
    pub total_nodes: usize,
}

impl ShardLayout {
    /// The shard whose replica range contains `node`, if any.
    pub fn shard_of(&self, node: NodeId) -> Option<usize> {
        let idx = node.index();
        if idx < self.shards * self.replicas_per_shard {
            Some(idx / self.replicas_per_shard)
        } else {
            None
        }
    }
}

type ExtraActorFactory<P> =
    Arc<dyn Fn(&ShardLayout) -> Box<dyn Actor<Envelope<P>> + Send> + Send + Sync>;

/// Builder for a sharded deployment: N independent instances of any
/// [`ProtocolSpec`], each wrapped in [`ShardGate`]s, multiplexed over
/// one shared substrate with [`ShardRouter`] clients in front.
///
/// ```
/// # use paxi::{ShardedExperiment, ClusterConfig, Envelope, ProtocolSpec};
/// # use paxi::{ClientReply, ClientRequest, Ctx, Replica, ReplicaActor, ReplicaCtx};
/// # use simnet::{Actor, NodeId, SimDuration};
/// # #[derive(Debug, Clone)]
/// # struct NoMsg;
/// # impl paxi::ProtoMessage for NoMsg { fn wire_size(&self) -> usize { 0 } }
/// # struct Ack(ClusterConfig, u64);
/// # impl Replica<NoMsg> for Ack {
/// #     fn on_request(&mut self, c: NodeId, req: ClientRequest, ctx: &mut Ctx<NoMsg>) {
/// #         self.0.safety.record(0, self.1, req.command.id);
/// #         self.1 += 1;
/// #         ctx.reply(c, ClientReply::ok(req.command.id, None));
/// #     }
/// #     fn on_proto(&mut self, _f: NodeId, _m: NoMsg, _c: &mut Ctx<NoMsg>) {}
/// # }
/// # #[derive(Clone)]
/// # struct AckSpec;
/// # impl ProtocolSpec for AckSpec {
/// #     type Msg = NoMsg;
/// #     fn protocol_name(&self) -> &'static str { "ack" }
/// #     fn build_replica(
/// #         &self,
/// #         _node: NodeId,
/// #         cluster: &ClusterConfig,
/// #     ) -> Box<dyn Actor<Envelope<NoMsg>> + Send> {
/// #         Box::new(ReplicaActor(Ack(cluster.clone(), 0)))
/// #     }
/// # }
/// // 2 shards × 1 replica, 4 routers:
/// let result = ShardedExperiment::new(AckSpec, 2, 1)
///     .routers(4)
///     .warmup(SimDuration::from_millis(100))
///     .measure(SimDuration::from_millis(400))
///     .run_sim(paxi::DEFAULT_SEED);
/// assert!(result.violations.is_empty());
/// assert!(result.samples > 0);
/// ```
pub struct ShardedExperiment<P: ProtocolSpec> {
    proto: P,
    shards: usize,
    replicas_per_shard: usize,
    routers: usize,
    pipeline: usize,
    workload: Workload,
    warmup: SimDuration,
    measure: SimDuration,
    retry_timeout: SimDuration,
    cost: CpuCostModel,
    key_space: u64,
    moves: Vec<ShardMove>,
    extra_nodes: usize,
    extra_actors: Vec<ExtraActorFactory<P::Msg>>,
}

impl<P: ProtocolSpec> ShardedExperiment<P> {
    /// `shards` independent `proto` groups of `replicas_per_shard`
    /// replicas each, with LAN-grade defaults: 4 routers, pipeline 1,
    /// the paper-default workload, 500 ms warmup, 2 s measurement,
    /// 100 ms client retry, calibrated CPU costs.
    pub fn new(proto: P, shards: usize, replicas_per_shard: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(replicas_per_shard >= 1, "need at least one replica");
        ShardedExperiment {
            proto,
            shards,
            replicas_per_shard,
            routers: 4,
            pipeline: 1,
            workload: Workload::paper_default(),
            warmup: SimDuration::from_millis(500),
            measure: SimDuration::from_secs(2),
            retry_timeout: SimDuration::from_millis(100),
            cost: CpuCostModel::calibrated(),
            key_space: 0,
            moves: Vec::new(),
            extra_nodes: 0,
            extra_actors: Vec::new(),
        }
    }

    /// Number of router clients (the offered-load control).
    pub fn routers(mut self, n: usize) -> Self {
        self.routers = n;
        self
    }

    /// Requests each router keeps in flight (default 1).
    pub fn pipeline(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        self.pipeline = depth;
        self
    }

    /// Workload specification (default [`Workload::paper_default`]).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// Ramp-up time excluded from measurement (simulator substrate).
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Measurement window length (simulator substrate).
    pub fn measure(mut self, measure: SimDuration) -> Self {
        self.measure = measure;
        self
    }

    /// Router retry timeout.
    pub fn retry_timeout(mut self, timeout: SimDuration) -> Self {
        self.retry_timeout = timeout;
        self
    }

    /// CPU cost model (default [`CpuCostModel::calibrated`]).
    pub fn cost(mut self, cost: CpuCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Key space the initial map partitions (default 0 = the
    /// workload's `num_keys`).
    pub fn key_space(mut self, keys: u64) -> Self {
        self.key_space = keys;
        self
    }

    /// Schedule a live range move at `at`: the range starting at
    /// `start` migrates to shard `to`. May be called repeatedly;
    /// chained moves must be spaced far enough apart for each to
    /// commit before the next fires.
    pub fn move_range(mut self, at: SimDuration, start: Key, to: GroupId) -> Self {
        self.moves.push(ShardMove { at, start, to });
        self
    }

    /// Extra client-side nodes with no harness-spawned actors; a
    /// [`run_sim_with`](Self::run_sim_with) hook can populate them.
    pub fn extra_client_nodes(mut self, n: usize) -> Self {
        self.extra_nodes = n;
        self
    }

    /// Add a custom client actor built from the concrete layout
    /// (checkers, probes). Each factory gets its own node, placed
    /// after the routers; the factory sees the full [`ShardLayout`]
    /// including per-shard safety handles.
    pub fn with_client(
        mut self,
        factory: impl Fn(&ShardLayout) -> Box<dyn Actor<Envelope<P::Msg>> + Send>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        self.extra_actors.push(Arc::new(factory));
        self
    }

    /// Materialize the node assignment for one run (fresh per-shard
    /// safety monitors and compaction counters).
    fn make_layout(&self) -> ShardLayout {
        let r = self.replicas_per_shard;
        let clusters: Vec<ClusterConfig> = (0..self.shards)
            .map(|s| ClusterConfig::with_range(s * r, r))
            .collect();
        let leaders: Vec<NodeId> = clusters.iter().map(|c| c.leader).collect();
        let n_replicas = self.shards * r;
        let routers: Vec<NodeId> = (0..self.routers)
            .map(|i| NodeId::from(n_replicas + i))
            .collect();
        let n_extras = self.extra_actors.len() + self.extra_nodes;
        let extras: Vec<NodeId> = (0..n_extras)
            .map(|i| NodeId::from(n_replicas + self.routers + i))
            .collect();
        let key_space = if self.key_space == 0 {
            self.workload.num_keys
        } else {
            self.key_space
        };
        ShardLayout {
            shards: self.shards,
            replicas_per_shard: r,
            map: ShardMap::uniform(self.shards as u32, key_space),
            clusters,
            leaders,
            routers,
            extras,
            total_nodes: n_replicas + self.routers + n_extras,
        }
    }

    /// All actors in node-id order: gated replicas, routers, custom
    /// clients.
    fn build_actors(
        &self,
        layout: &ShardLayout,
        recorder: &ClientRecorder,
    ) -> Vec<Box<dyn Actor<Envelope<P::Msg>> + Send>> {
        let notify: Vec<NodeId> = layout
            .leaders
            .iter()
            .chain(layout.routers.iter())
            .copied()
            .collect();
        let mut actors: Vec<Box<dyn Actor<Envelope<P::Msg>> + Send>> = Vec::new();
        for (s, cluster) in layout.clusters.iter().enumerate() {
            for &node in &cluster.replicas {
                let inner = self.proto.build_replica(node, cluster);
                let mut gate = ShardGate::new(
                    inner,
                    s as GroupId,
                    layout.map.clone(),
                    layout.leaders.clone(),
                    notify.clone(),
                );
                if node == cluster.leader {
                    gate = gate.with_moves(self.moves.clone());
                }
                actors.push(Box::new(gate));
            }
        }
        for _ in 0..self.routers {
            actors.push(Box::new(
                ShardRouter::<P::Msg>::new(
                    layout.map.clone(),
                    layout.leaders.clone(),
                    self.workload.clone(),
                    recorder.clone(),
                    self.retry_timeout,
                )
                .with_pipeline(self.pipeline),
            ));
        }
        for factory in &self.extra_actors {
            actors.push(factory(layout));
        }
        actors
    }

    /// Merge the per-shard safety and compaction counters.
    #[allow(clippy::type_complexity)]
    fn merged_counters(layout: &ShardLayout) -> (u64, Vec<String>, u64, u64, u64, u64, u64) {
        let mut decided = 0;
        let mut violations = Vec::new();
        let mut max_log_len = 0;
        let mut taken = 0;
        let mut installed = 0;
        let mut pqr_started = 0;
        let mut pqr_inflight = 0;
        for c in &layout.clusters {
            decided += c.safety.decided_count();
            violations.extend(c.safety.violations());
            max_log_len = max_log_len.max(c.stats.max_log_len());
            taken += c.stats.snapshots_taken();
            installed += c.stats.snapshots_installed();
            pqr_started += c.stats.pqr_started();
            pqr_inflight += c.stats.pqr_inflight();
        }
        (
            decided,
            violations,
            max_log_len,
            taken,
            installed,
            pqr_started,
            pqr_inflight,
        )
    }

    /// Run on the deterministic simulator; identical `(experiment,
    /// seed)` pairs produce bit-identical results.
    pub fn run_sim(&self, seed: u64) -> RunResult {
        self.run_sim_with(seed, |_, _| {})
    }

    /// Run on the simulator with a setup/fault-injection hook, which
    /// fires after all actors are registered and before the simulation
    /// starts. The hook receives the run's [`ShardLayout`] — clone per-
    /// shard safety handles out of `layout.clusters` for post-run
    /// inspection, or target faults at specific shards' node ranges.
    pub fn run_sim_with<H>(&self, seed: u64, hook: H) -> RunResult
    where
        H: FnOnce(&mut Simulation<Envelope<P::Msg>>, &ShardLayout),
    {
        let layout = self.make_layout();
        let n_replicas = self.shards * self.replicas_per_shard;
        let mut topology = Topology::lan(n_replicas);
        topology.add_nodes(layout.total_nodes - n_replicas, 0);
        let mut sim: Simulation<Envelope<P::Msg>> =
            Simulation::new(topology, self.cost.clone(), seed);
        let recorder = ClientRecorder::new();
        for actor in self.build_actors(&layout, &recorder) {
            sim.add_actor(actor);
        }
        hook(&mut sim, &layout);

        sim.run_for(self.warmup);
        let warmup_end = sim.now();
        let stats_before = sim.stats().clone();
        sim.run_for(self.measure);
        let window_end = sim.now();
        let stats_after = sim.stats().clone();

        let all_samples = recorder.samples();
        let window: Vec<&Sample> = all_samples
            .iter()
            .filter(|s| s.completed > warmup_end && s.completed <= window_end)
            .collect();
        let secs = self.measure.as_secs_f64();
        let lat_ms: Vec<f64> = window.iter().map(|s| s.latency().as_millis_f64()).collect();

        let node_msgs: Vec<u64> = stats_after
            .nodes
            .iter()
            .zip(stats_before.nodes.iter())
            .map(|(a, b)| a.msgs_total() - b.msgs_total())
            .collect();
        let ops = window.len().max(1) as f64;
        let leader_loads: Vec<f64> = layout
            .leaders
            .iter()
            .map(|l| node_msgs.get(l.index()).copied().unwrap_or(0) as f64 / ops)
            .collect();
        let follower_loads: Vec<f64> = (0..n_replicas)
            .filter(|&i| !layout.leaders.contains(&NodeId::from(i)))
            .map(|i| node_msgs[i] as f64 / ops)
            .collect();
        let cross_region_msgs_per_op =
            (stats_after.cross_region_msgs - stats_before.cross_region_msgs) as f64 / ops;

        let (decided, violations, max_log_len, taken, installed, pqr_started, pqr_inflight) =
            Self::merged_counters(&layout);

        RunResult {
            throughput: window.len() as f64 / secs,
            mean_latency_ms: mean(&lat_ms),
            p50_latency_ms: percentile(&lat_ms, 50.0),
            p99_latency_ms: percentile(&lat_ms, 99.0),
            samples: window.len(),
            decided,
            violations,
            node_msgs,
            leader_msgs_per_op: mean(&leader_loads),
            follower_msgs_per_op: mean(&follower_loads),
            cross_region_msgs_per_op,
            timeline: Vec::new(),
            client_retries: recorder.retries(),
            max_log_len,
            snapshots_taken: taken,
            snapshots_installed: installed,
            trace_fingerprint: None,
            leader_proto_sent_per_op: None,
            leader_replies_per_op: None,
            leader_sent_per_op: None,
            leader_proto_recv_per_op: None,
            label_counts: None,
            pqr_reads_started: pqr_started,
            pqr_reads_inflight: pqr_inflight,
            replica_digests: Vec::new(),
        }
    }

    /// Run the same sharded deployment on real OS threads via
    /// `pig-runtime` (wall-clock, not deterministic; the whole `wall`
    /// window is measured, and simulator-only accounting is empty —
    /// same contract as [`crate::Experiment::run_threads`]).
    pub fn run_threads(&self, seed: u64, wall: Duration) -> RunResult {
        self.run_threads_with(seed, wall, |_| {})
    }

    /// [`run_threads`](Self::run_threads) with a pre-run hook that
    /// receives the concrete [`ShardLayout`] (clone safety handles out
    /// for post-run per-shard assertions).
    pub fn run_threads_with<H>(&self, seed: u64, wall: Duration, hook: H) -> RunResult
    where
        H: FnOnce(&ShardLayout),
    {
        let layout = self.make_layout();
        hook(&layout);
        let mut rt: pig_runtime::Runtime<Envelope<P::Msg>> = pig_runtime::Runtime::new(seed);
        let recorder = ClientRecorder::new();
        for actor in self.build_actors(&layout, &recorder) {
            rt.add_actor(actor);
        }
        rt.run_for(wall);
        Self::wall_result(&layout, &recorder, wall, Vec::new(), None)
    }

    /// Run the same sharded deployment over real TCP sockets via
    /// `pig_runtime::NetRuntime` — every cross-node message (client,
    /// protocol, *and* shard-control) travels as its [`Wire`] bytes.
    pub fn run_net(&self, seed: u64, wall: Duration) -> RunResult
    where
        P::Msg: Wire,
    {
        let layout = self.make_layout();
        let mut rt: pig_runtime::NetRuntime<Envelope<P::Msg>> = pig_runtime::NetRuntime::new(seed);
        let recorder = ClientRecorder::new();
        for actor in self.build_actors(&layout, &recorder) {
            rt.add_actor(actor);
        }
        let net = rt.run_for(wall);
        let node_msgs: Vec<u64> = net
            .per_node_sent
            .iter()
            .zip(net.per_node_received.iter())
            .map(|(s, r)| s + r)
            .collect();
        Self::wall_result(
            &layout,
            &recorder,
            wall,
            node_msgs,
            Some(net.delivered_by_label),
        )
    }

    /// Shared wall-clock result assembly for the thread and TCP
    /// substrates.
    fn wall_result(
        layout: &ShardLayout,
        recorder: &ClientRecorder,
        wall: Duration,
        node_msgs: Vec<u64>,
        label_counts: Option<std::collections::BTreeMap<&'static str, u64>>,
    ) -> RunResult {
        let samples = recorder.samples();
        let secs = wall.as_secs_f64().max(f64::MIN_POSITIVE);
        let lat_ms: Vec<f64> = samples
            .iter()
            .map(|s| s.latency().as_millis_f64())
            .collect();
        let (decided, violations, max_log_len, taken, installed, pqr_started, pqr_inflight) =
            Self::merged_counters(layout);
        RunResult {
            throughput: samples.len() as f64 / secs,
            mean_latency_ms: mean(&lat_ms),
            p50_latency_ms: percentile(&lat_ms, 50.0),
            p99_latency_ms: percentile(&lat_ms, 99.0),
            samples: samples.len(),
            decided,
            violations,
            node_msgs,
            leader_msgs_per_op: 0.0,
            follower_msgs_per_op: 0.0,
            cross_region_msgs_per_op: 0.0,
            timeline: Vec::new(),
            client_retries: recorder.retries(),
            max_log_len,
            snapshots_taken: taken,
            snapshots_installed: installed,
            trace_fingerprint: None,
            leader_proto_sent_per_op: None,
            leader_replies_per_op: None,
            leader_sent_per_op: None,
            leader_proto_recv_per_op: None,
            label_counts,
            pqr_reads_started: pqr_started,
            pqr_reads_inflight: pqr_inflight,
            replica_digests: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::Value;
    use crate::replica::{Ctx, Replica, ReplicaActor, ReplicaCtx};
    use crate::DEFAULT_SEED;

    #[test]
    fn uniform_map_routes_and_validates() {
        let map = ShardMap::uniform(4, 1000);
        assert!(map.is_valid());
        assert_eq!(map.version(), 1);
        assert_eq!(map.num_ranges(), 4);
        assert_eq!(map.group_for(0), 0);
        assert_eq!(map.group_for(249), 0);
        assert_eq!(map.group_for(250), 1);
        assert_eq!(map.group_for(999), 3);
        // Keys past the nominal space route to the last (unbounded) range.
        assert_eq!(map.group_for(u64::MAX), 3);
        assert_eq!(
            map.range_starting_at(250),
            Some(KeyRange {
                start: 250,
                end: Some(500)
            })
        );
        assert_eq!(
            map.range_starting_at(750),
            Some(KeyRange {
                start: 750,
                end: None
            })
        );
        assert_eq!(map.range_starting_at(100), None);
    }

    #[test]
    fn split_and_move_bump_version_and_stay_valid() {
        let mut map = ShardMap::uniform(2, 100);
        assert!(map.split(75));
        assert_eq!(map.version(), 2);
        assert_eq!(map.num_ranges(), 3);
        assert_eq!(map.group_for(74), 1);
        assert_eq!(map.group_for(75), 1, "split keeps the owner");
        assert!(!map.split(75), "existing boundary refused");
        assert!(!map.split(0), "key 0 refused");
        assert!(map.move_range(75, 0));
        assert_eq!(map.version(), 3);
        assert_eq!(map.group_for(80), 0);
        assert_eq!(map.group_for(60), 1, "rest of old range unaffected");
        assert!(!map.move_range(76, 0), "non-boundary refused");
        assert!(map.is_valid());
    }

    #[test]
    fn install_move_requires_newer_version() {
        let mut map = ShardMap::uniform(2, 100);
        assert!(!map.install_move(50, 0, 1), "same version rejected");
        assert!(map.install_move(50, 0, 7), "newer version applies");
        assert_eq!(map.version(), 7);
        assert_eq!(map.group_for(60), 0);
        assert!(!map.install_move(50, 1, 7), "replay rejected");
    }

    #[test]
    fn shard_map_wire_roundtrip_exact() {
        let mut map = ShardMap::uniform(3, 900);
        map.split(123);
        map.move_range(123, 2);
        let bytes = map.encode();
        assert_eq!(bytes.len(), map.wire_bytes());
        assert_eq!(ShardMap::decode_frame(&bytes.into()).expect("decodes"), map);
    }

    #[test]
    fn shard_ctl_wire_roundtrips_exact() {
        let mut kv = KvStore::new();
        kv.apply(&Operation::Put(7, Value::zeros(3)));
        let snapshot = Snapshot::for_range(0, &kv, &HashMap::new(), &SessionTable::new(), 0, None);
        let ctls = vec![
            ShardCtl::Move { start: 42, to: 3 },
            ShardCtl::Install {
                version: 9,
                range: KeyRange {
                    start: 100,
                    end: Some(200),
                },
                snapshot: Box::new(snapshot.clone()),
            },
            ShardCtl::Install {
                version: 10,
                range: KeyRange {
                    start: 500,
                    end: None,
                },
                snapshot: Box::new(snapshot),
            },
            ShardCtl::InstallAck { version: 9 },
            ShardCtl::MapUpdate {
                map: ShardMap::uniform(4, 400),
            },
        ];
        for ctl in ctls {
            let bytes = ctl.encode();
            assert_eq!(bytes.len(), ctl.wire_size(), "size contract for {ctl:?}");
            assert_eq!(ShardCtl::decode_frame(&bytes.into()).expect("decodes"), ctl);
        }
    }

    #[test]
    fn shard_ctl_rejects_wrong_domain_and_kind() {
        let mut bytes = ShardCtl::InstallAck { version: 1 }.encode();
        bytes[1] = 9; // domain byte
        assert!(matches!(
            ShardCtl::decode_frame(&bytes.into()),
            Err(WireError::BadTag { .. })
        ));
        let mut bytes = ShardCtl::InstallAck { version: 1 }.encode();
        bytes[2] = 200; // kind byte
        assert!(matches!(
            ShardCtl::decode_frame(&bytes.into()),
            Err(WireError::BadTag { .. })
        ));
    }

    // ---- a minimal protocol for gate/router integration tests --------

    #[derive(Debug, Clone)]
    struct NoMsg;
    impl ProtoMessage for NoMsg {
        fn wire_size(&self) -> usize {
            0
        }
    }

    /// Single-replica "consensus": applies every request to a local KV
    /// and records the decision with the shard's safety monitor.
    struct InstantKv {
        cluster: ClusterConfig,
        kv: KvStore,
        slot: u64,
    }

    impl Replica<NoMsg> for InstantKv {
        fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<NoMsg>) {
            self.cluster.safety.record(0, self.slot, req.command.id);
            self.slot += 1;
            let value = self.kv.apply(&req.command.op);
            ctx.reply(client, ClientReply::ok(req.command.id, value));
        }
        fn on_proto(&mut self, _f: NodeId, _m: NoMsg, _c: &mut Ctx<NoMsg>) {}
    }

    #[derive(Clone)]
    struct InstantSpec;
    impl ProtocolSpec for InstantSpec {
        type Msg = NoMsg;
        fn protocol_name(&self) -> &'static str {
            "instant"
        }
        fn build_replica(
            &self,
            _node: NodeId,
            cluster: &ClusterConfig,
        ) -> Box<dyn Actor<Envelope<NoMsg>> + Send> {
            Box::new(ReplicaActor(InstantKv {
                cluster: cluster.clone(),
                kv: KvStore::new(),
                slot: 0,
            }))
        }
    }

    #[test]
    fn sharded_run_spreads_load_and_stays_safe() {
        let mut shard_safety = Vec::new();
        let result = ShardedExperiment::new(InstantSpec, 4, 1)
            .routers(8)
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(500))
            .run_sim_with(DEFAULT_SEED, |_, layout| {
                shard_safety = layout.clusters.iter().map(|c| c.safety.clone()).collect();
            });
        assert!(result.violations.is_empty());
        assert!(result.samples > 100, "got {}", result.samples);
        assert_eq!(result.client_retries, 0, "uniform load, fresh maps");
        // Every shard decided something: the routers really spread keys.
        for (s, safety) in shard_safety.iter().enumerate() {
            assert!(safety.decided_count() > 0, "shard {s} decided nothing");
        }
    }

    #[test]
    fn sharded_run_is_deterministic() {
        let exp = ShardedExperiment::new(InstantSpec, 2, 1)
            .routers(4)
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(300));
        let a = exp.run_sim(7);
        let b = exp.run_sim(7);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.decided, b.decided);
        assert_eq!(a.node_msgs, b.node_msgs);
    }

    #[test]
    fn live_move_completes_with_no_violations_or_stalls() {
        // 2 shards; at t=300ms shard 0's second range half... actually
        // move shard 0's whole range [0, 500) to shard 1 mid-run.
        let mut shard_safety = Vec::new();
        let result = ShardedExperiment::new(InstantSpec, 2, 1)
            .routers(6)
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_millis(900))
            .move_range(SimDuration::from_millis(300), 0, 1)
            .run_sim_with(DEFAULT_SEED, |_, layout| {
                shard_safety = layout.clusters.iter().map(|c| c.safety.clone()).collect();
            });
        assert!(result.violations.is_empty());
        assert!(result.samples > 100, "got {}", result.samples);
        // After the move every key belongs to shard 1: shard 1 keeps
        // deciding well past shard 0's handoff.
        assert!(shard_safety[1].decided_count() > shard_safety[0].decided_count());
    }

    #[test]
    fn moved_range_redirects_settle_without_lost_requests() {
        // Schedule the move during the measurement window and confirm
        // throughput continues (retries happen, requests never vanish).
        let result = ShardedExperiment::new(InstantSpec, 4, 1)
            .routers(8)
            .warmup(SimDuration::from_millis(100))
            .measure(SimDuration::from_secs(1))
            .move_range(SimDuration::from_millis(400), 250, 3)
            .run_sim(DEFAULT_SEED);
        assert!(result.violations.is_empty());
        assert!(result.samples > 200, "got {}", result.samples);
    }
}
