//! The replicated command log.
//!
//! A slot-indexed log with the usual Multi-Paxos life cycle per slot:
//! *accepted* (under some ballot) → *committed* → *executed*. Execution
//! is strictly in slot order with no gaps, which is what gives
//! linearizability of commands.

use crate::ballot::Ballot;
use crate::command::Command;
use std::collections::BTreeMap;

/// One slot's state.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Ballot under which the current value was accepted.
    pub ballot: Ballot,
    /// The accepted command.
    pub command: Command,
    /// Set once the slot's value is decided.
    pub committed: bool,
    /// Set once the command has been applied to the state machine.
    pub executed: bool,
}

/// A sparse, slot-indexed replicated log.
///
/// Supports **compaction**: once slots are executed, [`Log::truncate_below`]
/// drops them (their effect lives on in a state-machine snapshot) and
/// [`Log::compacted_up_to`] records the floor. Accepts and commits for
/// slots below the executed frontier are ignored — an executed slot is
/// decided by definition, so a late message about it is stale.
#[derive(Debug, Default, Clone)]
pub struct Log {
    entries: BTreeMap<u64, LogEntry>,
    /// Next slot the leader will propose into.
    next_slot: u64,
    /// Lowest slot that has not been executed yet.
    execute_cursor: u64,
    /// Slots below this have been truncated away (compaction floor).
    compacted: u64,
    /// Approximate payload bytes of retained entries (diagnostics).
    retained_bytes: usize,
    /// Approximate payload bytes of retained *executed* entries — the
    /// truncatable prefix, and therefore the byte-based compaction
    /// trigger input (the unexecuted tail cannot be truncated, so
    /// counting it would make a small threshold fire on every wave
    /// while freeing nothing).
    executed_bytes: usize,
}

impl Log {
    /// Empty log; slots start at 0.
    pub fn new() -> Self {
        Log::default()
    }

    /// Allocate the next free slot for a proposal.
    pub fn allocate_slot(&mut self) -> u64 {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }

    /// Record an accepted `(ballot, command)` in `slot`, overwriting any
    /// value accepted under a lower ballot. Returns `false` (and leaves
    /// the entry alone) if the slot already holds a value under a higher
    /// ballot or is already committed with a different value source.
    pub fn accept(&mut self, slot: u64, ballot: Ballot, command: Command) -> bool {
        if slot >= self.next_slot {
            self.next_slot = slot + 1;
        }
        if slot < self.execute_cursor {
            // Already executed (possibly truncated away): decided, so
            // the accept is a no-op — and must not re-insert an entry
            // below the cursor after compaction.
            return true;
        }
        match self.entries.get_mut(&slot) {
            Some(e) if e.committed => true, // decided: accept is a no-op
            Some(e) if e.ballot > ballot => false,
            Some(e) => {
                e.ballot = ballot;
                self.retained_bytes = self
                    .retained_bytes
                    .saturating_sub(e.command.payload_bytes())
                    + command.payload_bytes();
                e.command = command;
                true
            }
            None => {
                self.retained_bytes += command.payload_bytes();
                self.entries.insert(
                    slot,
                    LogEntry {
                        ballot,
                        command,
                        committed: false,
                        executed: false,
                    },
                );
                true
            }
        }
    }

    /// Mark a slot committed with the given command (idempotent). If the
    /// slot held a different uncommitted value, the committed value wins.
    pub fn commit(&mut self, slot: u64, ballot: Ballot, command: Command) {
        if slot >= self.next_slot {
            self.next_slot = slot + 1;
        }
        if slot < self.execute_cursor {
            // Executed (and possibly compacted away): a late commit for
            // it must not re-insert an entry below the cursor.
            return;
        }
        let bytes = &mut self.retained_bytes;
        let e = self.entries.entry(slot).or_insert_with(|| {
            *bytes += command.payload_bytes();
            LogEntry {
                ballot,
                command: command.clone(),
                committed: false,
                executed: false,
            }
        });
        if !e.committed {
            e.ballot = ballot;
            self.retained_bytes = self
                .retained_bytes
                .saturating_sub(e.command.payload_bytes())
                + command.payload_bytes();
            e.command = command;
            e.committed = true;
        }
    }

    /// The next command ready to execute: the lowest committed, unexecuted
    /// slot with no uncommitted gap below it.
    pub fn next_executable(&self) -> Option<(u64, &Command)> {
        let e = self.entries.get(&self.execute_cursor)?;
        if e.committed && !e.executed {
            Some((self.execute_cursor, &e.command))
        } else {
            None
        }
    }

    /// Mark the execute-cursor slot done and advance the cursor.
    /// Panics if called out of order.
    pub fn mark_executed(&mut self, slot: u64) {
        assert_eq!(slot, self.execute_cursor, "out-of-order execution");
        let e = self
            .entries
            .get_mut(&slot)
            .expect("executing a missing slot");
        assert!(e.committed, "executing an uncommitted slot");
        e.executed = true;
        self.executed_bytes += e.command.payload_bytes();
        self.execute_cursor += 1;
    }

    /// Entry at `slot`, if any.
    pub fn get(&self, slot: u64) -> Option<&LogEntry> {
        self.entries.get(&slot)
    }

    /// Next slot a proposal would go into.
    pub fn next_slot(&self) -> u64 {
        self.next_slot
    }

    /// Lowest unexecuted slot.
    pub fn execute_cursor(&self) -> u64 {
        self.execute_cursor
    }

    /// Number of committed slots.
    pub fn committed_count(&self) -> u64 {
        self.entries.values().filter(|e| e.committed).count() as u64
    }

    /// Number of retained entries — the memory footprint compaction
    /// bounds (and [`crate::CompactionStats`] tracks the maximum of).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entry is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compaction floor: every slot below it has been truncated away
    /// (executed, and its effect captured by a snapshot). 0 until the
    /// first truncation.
    pub fn compacted_up_to(&self) -> u64 {
        self.compacted
    }

    /// Approximate payload bytes of all retained entries.
    pub fn retained_bytes(&self) -> usize {
        self.retained_bytes
    }

    /// Approximate payload bytes of the retained *executed* prefix —
    /// what a truncation at the executed frontier would free. The
    /// byte-based compaction trigger compares against this, not
    /// [`Log::retained_bytes`]: the unexecuted tail survives every
    /// truncation, so counting it would fire compaction on every
    /// execution wave without bounding anything.
    pub fn executed_bytes(&self) -> usize {
        self.executed_bytes
    }

    /// Drop every entry below `up_to`. Only the executed prefix may be
    /// truncated — the caller must hold a snapshot covering `[0, up_to)`.
    /// Panics if `up_to` exceeds the executed frontier (compaction must
    /// never drop undecided or unexecuted slots).
    pub fn truncate_below(&mut self, up_to: u64) {
        assert!(
            up_to <= self.execute_cursor,
            "truncating above the executed frontier ({} > {})",
            up_to,
            self.execute_cursor
        );
        if up_to <= self.compacted {
            return;
        }
        self.entries = self.entries.split_off(&up_to);
        self.compacted = up_to;
        self.recompute_bytes();
    }

    /// Install a snapshot covering `[0, up_to)`: drop every entry below
    /// `up_to` and advance the execute cursor there (the state machine
    /// was restored separately). Entries at or above `up_to` survive —
    /// they may already hold accepted or committed tail values. No-op
    /// (returns `false`) when the snapshot is not ahead of this log.
    pub fn install_snapshot(&mut self, up_to: u64) -> bool {
        if up_to <= self.execute_cursor {
            return false;
        }
        self.entries = self.entries.split_off(&up_to);
        self.execute_cursor = up_to;
        self.next_slot = self.next_slot.max(up_to);
        self.compacted = self.compacted.max(up_to);
        self.recompute_bytes();
        true
    }

    fn recompute_bytes(&mut self) {
        self.retained_bytes = self
            .entries
            .values()
            .map(|e| e.command.payload_bytes())
            .sum();
        self.executed_bytes = self
            .entries
            .values()
            .filter(|e| e.executed)
            .map(|e| e.command.payload_bytes())
            .sum();
    }

    /// True if any unexecuted entry (accepted or committed) at or above
    /// the execute cursor carries `id`. This is the duplicate-suppression
    /// window the session table cannot see: a command that is already
    /// committed but still waiting on a lower slot to execute is in
    /// neither the leader's outstanding set nor the session table, and
    /// re-proposing a client retry of it would decide the command twice.
    pub fn has_unexecuted_command(&self, id: crate::command::RequestId) -> bool {
        self.entries
            .range(self.execute_cursor..)
            .any(|(_, e)| !e.executed && e.command.id == id)
    }

    /// Highest sequence number of `client`'s commands in the unexecuted
    /// window (accepted or committed, not yet executed). Used to rebuild
    /// a leader's per-client proposal floor after re-election.
    pub fn highest_unexecuted_seq(&self, client: simnet::NodeId) -> Option<u64> {
        self.entries
            .range(self.execute_cursor..)
            .filter(|(_, e)| !e.executed && e.command.id.client == client)
            .map(|(_, e)| e.command.id.seq)
            .max()
    }

    /// Every `(slot, ballot, command)` at or above `from_slot`, committed
    /// or not — the phase-1b payload. Reporting *committed* entries too is
    /// what keeps a new leader from filling a slot that was already
    /// decided elsewhere (and since the commit watermark only advances
    /// over committed prefixes, `from_slot` bounds the payload to the
    /// in-flight window).
    pub fn entries_from(&self, from_slot: u64) -> Vec<(u64, Ballot, Command)> {
        self.entries
            .range(from_slot..)
            .map(|(&s, e)| (s, e.ballot, e.command.clone()))
            .collect()
    }

    /// Slots in `[from, to)` that have no entry (holes a recovering leader
    /// fills with no-ops).
    pub fn holes(&self, from: u64, to: u64) -> Vec<u64> {
        (from..to)
            .filter(|s| !self.entries.contains_key(s))
            .collect()
    }

    /// True if any accepted-but-uncommitted entry at or above `from`
    /// writes `key` — the "pending write" check of Paxos Quorum Reads.
    pub fn has_uncommitted_write(&self, key: crate::command::Key, from: u64) -> bool {
        self.entries.range(from..).any(|(_, e)| {
            !e.committed && !e.command.op.is_read() && e.command.op.key() == Some(key)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Operation, RequestId};
    use simnet::NodeId;

    fn cmd(seq: u64) -> Command {
        Command {
            id: RequestId {
                client: NodeId(100),
                seq,
            },
            op: Operation::Get(seq),
        }
    }

    fn b(r: u32) -> Ballot {
        Ballot::new(r, NodeId(0))
    }

    #[test]
    fn allocate_monotonic() {
        let mut log = Log::new();
        assert_eq!(log.allocate_slot(), 0);
        assert_eq!(log.allocate_slot(), 1);
        assert_eq!(log.next_slot(), 2);
    }

    #[test]
    fn accept_higher_ballot_overwrites() {
        let mut log = Log::new();
        assert!(log.accept(0, b(1), cmd(1)));
        assert!(log.accept(0, b(2), cmd(2)));
        assert_eq!(log.get(0).unwrap().command, cmd(2));
    }

    #[test]
    fn accept_lower_ballot_rejected() {
        let mut log = Log::new();
        assert!(log.accept(0, b(2), cmd(2)));
        assert!(!log.accept(0, b(1), cmd(1)));
        assert_eq!(log.get(0).unwrap().command, cmd(2));
    }

    #[test]
    fn accept_extends_next_slot() {
        let mut log = Log::new();
        log.accept(5, b(1), cmd(1));
        assert_eq!(log.next_slot(), 6);
    }

    #[test]
    fn commit_then_execute_in_order() {
        let mut log = Log::new();
        log.accept(0, b(1), cmd(1));
        log.accept(1, b(1), cmd(2));
        log.commit(1, b(1), cmd(2));
        assert!(log.next_executable().is_none(), "slot 0 not committed yet");
        log.commit(0, b(1), cmd(1));
        let (s, c) = log.next_executable().unwrap();
        assert_eq!((s, c.clone()), (0, cmd(1)));
        log.mark_executed(0);
        let (s, c) = log.next_executable().unwrap();
        assert_eq!((s, c.clone()), (1, cmd(2)));
        log.mark_executed(1);
        assert!(log.next_executable().is_none());
        assert_eq!(log.execute_cursor(), 2);
    }

    #[test]
    fn commit_is_idempotent_and_sticky() {
        let mut log = Log::new();
        log.commit(0, b(1), cmd(1));
        log.commit(0, b(9), cmd(2)); // later commit with different value ignored
        assert_eq!(log.get(0).unwrap().command, cmd(1));
        assert!(log.get(0).unwrap().committed);
    }

    #[test]
    fn commit_overrides_uncommitted_accept() {
        let mut log = Log::new();
        log.accept(0, b(5), cmd(5));
        log.commit(0, b(1), cmd(1)); // decided value wins regardless of ballot
        assert_eq!(log.get(0).unwrap().command, cmd(1));
    }

    #[test]
    fn accept_on_committed_slot_is_noop() {
        let mut log = Log::new();
        log.commit(0, b(1), cmd(1));
        assert!(log.accept(0, b(9), cmd(9)));
        assert_eq!(log.get(0).unwrap().command, cmd(1));
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_execution_panics() {
        let mut log = Log::new();
        log.commit(0, b(1), cmd(1));
        log.commit(1, b(1), cmd(2));
        log.mark_executed(1);
    }

    #[test]
    fn entries_and_holes_for_recovery() {
        let mut log = Log::new();
        log.accept(0, b(1), cmd(1));
        log.commit(0, b(1), cmd(1));
        log.accept(2, b(1), cmd(3)); // slot 1 is a hole
                                     // Phase-1b payload: committed AND accepted entries from `from`.
        let all = log.entries_from(0);
        assert_eq!(all.iter().map(|e| e.0).collect::<Vec<_>>(), vec![0, 2]);
        let tail = log.entries_from(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].0, 2);
        assert_eq!(log.holes(0, 3), vec![1]);
        assert_eq!(log.committed_count(), 1);
    }

    #[test]
    fn truncate_drops_executed_prefix_only() {
        let mut log = Log::new();
        for s in 0..4 {
            log.commit(s, b(1), cmd(s));
        }
        log.mark_executed(0);
        log.mark_executed(1);
        assert!(log.retained_bytes() > 0);
        log.truncate_below(2);
        assert_eq!(log.compacted_up_to(), 2);
        assert_eq!(log.len(), 2, "unexecuted committed tail survives");
        assert!(log.get(0).is_none());
        assert!(log.get(2).is_some());
        assert_eq!(log.execute_cursor(), 2);
        // Late messages about truncated slots are stale no-ops.
        assert!(log.accept(0, b(9), cmd(9)), "accept below cursor acks");
        log.commit(1, b(9), cmd(9));
        assert!(log.get(0).is_none());
        assert!(log.get(1).is_none());
        // Execution continues over the tail.
        log.mark_executed(2);
        log.mark_executed(3);
    }

    #[test]
    #[should_panic(expected = "above the executed frontier")]
    fn truncate_above_executed_frontier_panics() {
        let mut log = Log::new();
        log.commit(0, b(1), cmd(1));
        log.truncate_below(1); // slot 0 committed but not executed
    }

    #[test]
    fn install_snapshot_jumps_cursor_and_keeps_tail() {
        let mut log = Log::new();
        log.accept(5, b(1), cmd(5));
        log.commit(6, b(1), cmd(6));
        assert!(log.install_snapshot(5), "snapshot ahead of empty prefix");
        assert_eq!(log.execute_cursor(), 5);
        assert_eq!(log.compacted_up_to(), 5);
        assert_eq!(log.next_slot(), 7);
        assert!(log.get(5).is_some(), "tail entry at the boundary kept");
        assert!(!log.install_snapshot(3), "stale snapshot rejected");
        log.commit(5, b(1), cmd(5));
        log.mark_executed(5);
        log.mark_executed(6);
        assert_eq!(log.execute_cursor(), 7);
    }

    #[test]
    fn retained_bytes_track_truncation() {
        let mut log = Log::new();
        for s in 0..8 {
            log.commit(s, b(1), cmd(s));
            log.mark_executed(s);
        }
        let full = log.retained_bytes();
        log.truncate_below(8);
        assert!(full > 0);
        assert_eq!(log.retained_bytes(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn unexecuted_command_window() {
        let mut log = Log::new();
        log.commit(0, b(1), cmd(1));
        log.accept(2, b(1), cmd(3)); // committed slot 0 + accepted slot 2
        assert!(
            log.has_unexecuted_command(cmd(1).id),
            "committed, not yet executed"
        );
        assert!(
            log.has_unexecuted_command(cmd(3).id),
            "accepted, not yet executed"
        );
        log.mark_executed(0);
        assert!(
            !log.has_unexecuted_command(cmd(1).id),
            "executed commands leave the window"
        );
        assert!(log.has_unexecuted_command(cmd(3).id));
    }
}
