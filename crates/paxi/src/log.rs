//! The replicated command log.
//!
//! A slot-indexed log with the usual Multi-Paxos life cycle per slot:
//! *accepted* (under some ballot) → *committed* → *executed*. Execution
//! is strictly in slot order with no gaps, which is what gives
//! linearizability of commands.

use crate::ballot::Ballot;
use crate::command::Command;
use std::collections::BTreeMap;

/// One slot's state.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Ballot under which the current value was accepted.
    pub ballot: Ballot,
    /// The accepted command.
    pub command: Command,
    /// Set once the slot's value is decided.
    pub committed: bool,
    /// Set once the command has been applied to the state machine.
    pub executed: bool,
}

/// A sparse, slot-indexed replicated log.
#[derive(Debug, Default, Clone)]
pub struct Log {
    entries: BTreeMap<u64, LogEntry>,
    /// Next slot the leader will propose into.
    next_slot: u64,
    /// Lowest slot that has not been executed yet.
    execute_cursor: u64,
}

impl Log {
    /// Empty log; slots start at 0.
    pub fn new() -> Self {
        Log::default()
    }

    /// Allocate the next free slot for a proposal.
    pub fn allocate_slot(&mut self) -> u64 {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }

    /// Record an accepted `(ballot, command)` in `slot`, overwriting any
    /// value accepted under a lower ballot. Returns `false` (and leaves
    /// the entry alone) if the slot already holds a value under a higher
    /// ballot or is already committed with a different value source.
    pub fn accept(&mut self, slot: u64, ballot: Ballot, command: Command) -> bool {
        if slot >= self.next_slot {
            self.next_slot = slot + 1;
        }
        match self.entries.get_mut(&slot) {
            Some(e) if e.committed => true, // decided: accept is a no-op
            Some(e) if e.ballot > ballot => false,
            Some(e) => {
                e.ballot = ballot;
                e.command = command;
                true
            }
            None => {
                self.entries.insert(
                    slot,
                    LogEntry {
                        ballot,
                        command,
                        committed: false,
                        executed: false,
                    },
                );
                true
            }
        }
    }

    /// Mark a slot committed with the given command (idempotent). If the
    /// slot held a different uncommitted value, the committed value wins.
    pub fn commit(&mut self, slot: u64, ballot: Ballot, command: Command) {
        if slot >= self.next_slot {
            self.next_slot = slot + 1;
        }
        let e = self.entries.entry(slot).or_insert_with(|| LogEntry {
            ballot,
            command: command.clone(),
            committed: false,
            executed: false,
        });
        if !e.committed {
            e.ballot = ballot;
            e.command = command;
            e.committed = true;
        }
    }

    /// The next command ready to execute: the lowest committed, unexecuted
    /// slot with no uncommitted gap below it.
    pub fn next_executable(&self) -> Option<(u64, &Command)> {
        let e = self.entries.get(&self.execute_cursor)?;
        if e.committed && !e.executed {
            Some((self.execute_cursor, &e.command))
        } else {
            None
        }
    }

    /// Mark the execute-cursor slot done and advance the cursor.
    /// Panics if called out of order.
    pub fn mark_executed(&mut self, slot: u64) {
        assert_eq!(slot, self.execute_cursor, "out-of-order execution");
        let e = self
            .entries
            .get_mut(&slot)
            .expect("executing a missing slot");
        assert!(e.committed, "executing an uncommitted slot");
        e.executed = true;
        self.execute_cursor += 1;
    }

    /// Entry at `slot`, if any.
    pub fn get(&self, slot: u64) -> Option<&LogEntry> {
        self.entries.get(&slot)
    }

    /// Next slot a proposal would go into.
    pub fn next_slot(&self) -> u64 {
        self.next_slot
    }

    /// Lowest unexecuted slot.
    pub fn execute_cursor(&self) -> u64 {
        self.execute_cursor
    }

    /// Number of committed slots.
    pub fn committed_count(&self) -> u64 {
        self.entries.values().filter(|e| e.committed).count() as u64
    }

    /// True if any unexecuted entry (accepted or committed) at or above
    /// the execute cursor carries `id`. This is the duplicate-suppression
    /// window the session table cannot see: a command that is already
    /// committed but still waiting on a lower slot to execute is in
    /// neither the leader's outstanding set nor the session table, and
    /// re-proposing a client retry of it would decide the command twice.
    pub fn has_unexecuted_command(&self, id: crate::command::RequestId) -> bool {
        self.entries
            .range(self.execute_cursor..)
            .any(|(_, e)| !e.executed && e.command.id == id)
    }

    /// Highest sequence number of `client`'s commands in the unexecuted
    /// window (accepted or committed, not yet executed). Used to rebuild
    /// a leader's per-client proposal floor after re-election.
    pub fn highest_unexecuted_seq(&self, client: simnet::NodeId) -> Option<u64> {
        self.entries
            .range(self.execute_cursor..)
            .filter(|(_, e)| !e.executed && e.command.id.client == client)
            .map(|(_, e)| e.command.id.seq)
            .max()
    }

    /// Every `(slot, ballot, command)` at or above `from_slot`, committed
    /// or not — the phase-1b payload. Reporting *committed* entries too is
    /// what keeps a new leader from filling a slot that was already
    /// decided elsewhere (and since the commit watermark only advances
    /// over committed prefixes, `from_slot` bounds the payload to the
    /// in-flight window).
    pub fn entries_from(&self, from_slot: u64) -> Vec<(u64, Ballot, Command)> {
        self.entries
            .range(from_slot..)
            .map(|(&s, e)| (s, e.ballot, e.command.clone()))
            .collect()
    }

    /// Slots in `[from, to)` that have no entry (holes a recovering leader
    /// fills with no-ops).
    pub fn holes(&self, from: u64, to: u64) -> Vec<u64> {
        (from..to)
            .filter(|s| !self.entries.contains_key(s))
            .collect()
    }

    /// True if any accepted-but-uncommitted entry at or above `from`
    /// writes `key` — the "pending write" check of Paxos Quorum Reads.
    pub fn has_uncommitted_write(&self, key: crate::command::Key, from: u64) -> bool {
        self.entries.range(from..).any(|(_, e)| {
            !e.committed && !e.command.op.is_read() && e.command.op.key() == Some(key)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Operation, RequestId};
    use simnet::NodeId;

    fn cmd(seq: u64) -> Command {
        Command {
            id: RequestId {
                client: NodeId(100),
                seq,
            },
            op: Operation::Get(seq),
        }
    }

    fn b(r: u32) -> Ballot {
        Ballot::new(r, NodeId(0))
    }

    #[test]
    fn allocate_monotonic() {
        let mut log = Log::new();
        assert_eq!(log.allocate_slot(), 0);
        assert_eq!(log.allocate_slot(), 1);
        assert_eq!(log.next_slot(), 2);
    }

    #[test]
    fn accept_higher_ballot_overwrites() {
        let mut log = Log::new();
        assert!(log.accept(0, b(1), cmd(1)));
        assert!(log.accept(0, b(2), cmd(2)));
        assert_eq!(log.get(0).unwrap().command, cmd(2));
    }

    #[test]
    fn accept_lower_ballot_rejected() {
        let mut log = Log::new();
        assert!(log.accept(0, b(2), cmd(2)));
        assert!(!log.accept(0, b(1), cmd(1)));
        assert_eq!(log.get(0).unwrap().command, cmd(2));
    }

    #[test]
    fn accept_extends_next_slot() {
        let mut log = Log::new();
        log.accept(5, b(1), cmd(1));
        assert_eq!(log.next_slot(), 6);
    }

    #[test]
    fn commit_then_execute_in_order() {
        let mut log = Log::new();
        log.accept(0, b(1), cmd(1));
        log.accept(1, b(1), cmd(2));
        log.commit(1, b(1), cmd(2));
        assert!(log.next_executable().is_none(), "slot 0 not committed yet");
        log.commit(0, b(1), cmd(1));
        let (s, c) = log.next_executable().unwrap();
        assert_eq!((s, c.clone()), (0, cmd(1)));
        log.mark_executed(0);
        let (s, c) = log.next_executable().unwrap();
        assert_eq!((s, c.clone()), (1, cmd(2)));
        log.mark_executed(1);
        assert!(log.next_executable().is_none());
        assert_eq!(log.execute_cursor(), 2);
    }

    #[test]
    fn commit_is_idempotent_and_sticky() {
        let mut log = Log::new();
        log.commit(0, b(1), cmd(1));
        log.commit(0, b(9), cmd(2)); // later commit with different value ignored
        assert_eq!(log.get(0).unwrap().command, cmd(1));
        assert!(log.get(0).unwrap().committed);
    }

    #[test]
    fn commit_overrides_uncommitted_accept() {
        let mut log = Log::new();
        log.accept(0, b(5), cmd(5));
        log.commit(0, b(1), cmd(1)); // decided value wins regardless of ballot
        assert_eq!(log.get(0).unwrap().command, cmd(1));
    }

    #[test]
    fn accept_on_committed_slot_is_noop() {
        let mut log = Log::new();
        log.commit(0, b(1), cmd(1));
        assert!(log.accept(0, b(9), cmd(9)));
        assert_eq!(log.get(0).unwrap().command, cmd(1));
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_execution_panics() {
        let mut log = Log::new();
        log.commit(0, b(1), cmd(1));
        log.commit(1, b(1), cmd(2));
        log.mark_executed(1);
    }

    #[test]
    fn entries_and_holes_for_recovery() {
        let mut log = Log::new();
        log.accept(0, b(1), cmd(1));
        log.commit(0, b(1), cmd(1));
        log.accept(2, b(1), cmd(3)); // slot 1 is a hole
                                     // Phase-1b payload: committed AND accepted entries from `from`.
        let all = log.entries_from(0);
        assert_eq!(all.iter().map(|e| e.0).collect::<Vec<_>>(), vec![0, 2]);
        let tail = log.entries_from(1);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].0, 2);
        assert_eq!(log.holes(0, 3), vec![1]);
        assert_eq!(log.committed_count(), 1);
    }

    #[test]
    fn unexecuted_command_window() {
        let mut log = Log::new();
        log.commit(0, b(1), cmd(1));
        log.accept(2, b(1), cmd(3)); // committed slot 0 + accepted slot 2
        assert!(
            log.has_unexecuted_command(cmd(1).id),
            "committed, not yet executed"
        );
        assert!(
            log.has_unexecuted_command(cmd(3).id),
            "accepted, not yet executed"
        );
        log.mark_executed(0);
        assert!(
            !log.has_unexecuted_command(cmd(1).id),
            "executed commands leave the window"
        );
        assert!(log.has_unexecuted_command(cmd(3).id));
    }
}
