//! Workload generation.
//!
//! Reproduces the Paxi benchmark workload: a fixed key space with a
//! configurable key distribution, read ratio, and value payload size.
//! The paper's default is 1000 uniformly-selected 8-byte keys with 8-byte
//! values and a 50/50 read/write mix; Fig. 12 uses write-only workloads
//! with payloads from 8 to 1280 bytes.

use crate::command::{Key, Operation, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// How keys are drawn from the key space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over `[0, num_keys)` — the paper's setting.
    Uniform,
    /// Zipfian with the given exponent (skewed access; an extension for
    /// conflict-sensitivity studies).
    Zipfian(f64),
}

/// A workload specification.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Number of distinct keys (paper: 1000).
    pub num_keys: u64,
    /// Fraction of operations that are reads (paper default: 0.5).
    pub read_ratio: f64,
    /// Value payload size in bytes (paper default: 8).
    pub payload_size: usize,
    /// Key selection distribution.
    pub distribution: KeyDistribution,
}

impl Default for Workload {
    fn default() -> Self {
        Workload::paper_default()
    }
}

impl Workload {
    /// The paper's default workload: 1000 keys, uniform, 50/50 R/W,
    /// 8-byte values.
    pub fn paper_default() -> Self {
        Workload {
            num_keys: 1000,
            read_ratio: 0.5,
            payload_size: 8,
            distribution: KeyDistribution::Uniform,
        }
    }

    /// Write-only variant with a given payload size (Fig. 12).
    pub fn write_only(payload_size: usize) -> Self {
        Workload {
            read_ratio: 0.0,
            payload_size,
            ..Workload::paper_default()
        }
    }

    /// Zipfian hot-key skew with rank-frequency exponent `theta`
    /// (otherwise the paper defaults). `theta ≈ 0.99` is the classic
    /// YCSB skew; higher concentrates more mass on fewer keys. This is
    /// the workload shape that makes sharding interesting: a uniform
    /// key space shards trivially, a skewed one concentrates load on
    /// whichever group owns the hot ranks.
    pub fn zipfian(theta: f64) -> Self {
        assert!(theta > 0.0, "zipf exponent must be positive");
        Workload {
            distribution: KeyDistribution::Zipfian(theta),
            ..Workload::paper_default()
        }
    }

    /// Builder-style payload-size override: the same workload shape but
    /// with `n`-byte values. The knob behind large-value runs — with the
    /// zero-copy decode pipeline, value size should move bytes-on-wire
    /// but not allocations-per-op on the receive path.
    pub fn value_size(self, n: usize) -> Self {
        Workload {
            payload_size: n,
            ..self
        }
    }

    /// Sample the next operation.
    pub fn next_op(&self, rng: &mut StdRng) -> Operation {
        let key = self.next_key(rng);
        if self.read_ratio > 0.0 && rng.gen::<f64>() < self.read_ratio {
            Operation::Get(key)
        } else {
            Operation::Put(key, Value::zeros(self.payload_size))
        }
    }

    /// Sample a key according to the distribution.
    pub fn next_key(&self, rng: &mut StdRng) -> Key {
        match self.distribution {
            KeyDistribution::Uniform => rng.gen_range(0..self.num_keys),
            KeyDistribution::Zipfian(theta) => zipf_sample(rng, self.num_keys, theta),
        }
    }
}

/// Simple inverse-CDF Zipf sampler (rank-frequency exponent `theta`).
///
/// Uses the rejection-inversion-free approximate method: draw `u`, walk
/// the harmonic CDF. For the modest key counts used in workloads (≤ 1e6)
/// a precomputed normalization would be faster, but sampling cost is not
/// on the simulated fast path (it's charged to no node), so clarity wins.
fn zipf_sample(rng: &mut StdRng, n: u64, theta: f64) -> u64 {
    debug_assert!(n > 0);
    // Approximate inversion per Gray et al. "Quickly generating
    // billion-record synthetic databases" (the YCSB approach).
    let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
    let u: f64 = rng.gen();
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta) / zetan;
        if sum >= u {
            return i - 1;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn keys_within_range() {
        let w = Workload::paper_default();
        let mut r = rng();
        for _ in 0..1000 {
            assert!(w.next_key(&mut r) < 1000);
        }
    }

    #[test]
    fn read_ratio_respected() {
        let w = Workload {
            read_ratio: 0.5,
            ..Workload::paper_default()
        };
        let mut r = rng();
        let reads = (0..10_000).filter(|_| w.next_op(&mut r).is_read()).count();
        assert!(
            (4000..6000).contains(&reads),
            "≈50% reads expected, got {reads}"
        );
    }

    #[test]
    fn write_only_never_reads() {
        let w = Workload::write_only(256);
        let mut r = rng();
        for _ in 0..100 {
            let op = w.next_op(&mut r);
            assert!(!op.is_read());
            assert_eq!(op.payload_bytes(), 8 + 256);
        }
    }

    #[test]
    fn payload_size_honored() {
        let w = Workload {
            payload_size: 1280,
            read_ratio: 0.0,
            ..Workload::paper_default()
        };
        let mut r = rng();
        match w.next_op(&mut r) {
            Operation::Put(_, v) => assert_eq!(v.len(), 1280),
            other => panic!("expected put, got {other:?}"),
        }
    }

    #[test]
    fn value_size_overrides_only_the_payload() {
        let w = Workload::write_only(8).value_size(4096);
        assert_eq!(w.payload_size, 4096);
        assert_eq!(w.read_ratio, 0.0);
        assert_eq!(w.num_keys, 1000);
        let mut r = rng();
        match w.next_op(&mut r) {
            Operation::Put(_, v) => assert_eq!(v.len(), 4096),
            other => panic!("expected put, got {other:?}"),
        }
    }

    #[test]
    fn zipfian_skews_to_low_ranks() {
        let w = Workload {
            num_keys: 100,
            distribution: KeyDistribution::Zipfian(0.99),
            ..Workload::paper_default()
        };
        let mut r = rng();
        let samples: Vec<u64> = (0..5000).map(|_| w.next_key(&mut r)).collect();
        let low = samples.iter().filter(|&&k| k < 10).count();
        assert!(
            low > samples.len() / 3,
            "zipf(0.99) should put >1/3 of mass on top-10 keys, got {low}/5000"
        );
        assert!(samples.iter().all(|&k| k < 100));
    }

    #[test]
    fn zipfian_ctor_sets_distribution_and_keeps_defaults() {
        let w = Workload::zipfian(0.99);
        assert_eq!(w.distribution, KeyDistribution::Zipfian(0.99));
        assert_eq!(w.num_keys, 1000);
        assert_eq!(w.read_ratio, 0.5);
        assert_eq!(w.payload_size, 8);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zipfian_rejects_nonpositive_theta() {
        Workload::zipfian(0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let w = Workload::paper_default();
        let a: Vec<Key> = {
            let mut r = rng();
            (0..50).map(|_| w.next_key(&mut r)).collect()
        };
        let b: Vec<Key> = {
            let mut r = rng();
            (0..50).map(|_| w.next_key(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
