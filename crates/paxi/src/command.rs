//! Commands, client requests, and replies.
//!
//! Matches the Paxi benchmark's shape: an in-memory key-value store with
//! 64-bit keys and arbitrary-size values; clients issue `Get`/`Put`
//! operations; the protocol under test replicates them.

use bytes::Bytes;
use simnet::NodeId;
use std::fmt;

/// A key in the replicated store. The paper uses 1000 distinct 8-byte
/// keys, so a `u64` is a faithful representation.
pub type Key = u64;

/// An opaque value payload. Cheap to clone (refcounted).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Value(pub Bytes);

impl Value {
    /// A value of `n` zero bytes (the benchmark only cares about size).
    pub fn zeros(n: usize) -> Self {
        Value(Bytes::from(vec![0u8; n]))
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value[{}B]", self.0.len())
    }
}

impl From<&[u8]> for Value {
    fn from(b: &[u8]) -> Self {
        Value(Bytes::copy_from_slice(b))
    }
}

/// An operation against the key-value state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// Read a key.
    Get(Key),
    /// Write a key.
    Put(Key, Value),
    /// A no-op, used by recovery to fill log holes.
    Noop,
}

impl Operation {
    /// True for reads.
    pub fn is_read(&self) -> bool {
        matches!(self, Operation::Get(_))
    }

    /// The key touched, if any. Used for conflict detection (EPaxos).
    pub fn key(&self) -> Option<Key> {
        match self {
            Operation::Get(k) => Some(*k),
            Operation::Put(k, _) => Some(*k),
            Operation::Noop => None,
        }
    }

    /// Serialized payload bytes of this operation (key + value).
    pub fn payload_bytes(&self) -> usize {
        match self {
            Operation::Get(_) => 8,
            Operation::Put(_, v) => 8 + v.len(),
            Operation::Noop => 0,
        }
    }

    /// Two operations conflict when they touch the same key and at least
    /// one writes (EPaxos interference relation).
    pub fn conflicts_with(&self, other: &Operation) -> bool {
        match (self.key(), other.key()) {
            (Some(a), Some(b)) if a == b => !(self.is_read() && other.is_read()),
            _ => false,
        }
    }
}

/// Globally unique id of a client request: `(client node, sequence)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId {
    /// The issuing client's node id.
    pub client: NodeId,
    /// Client-local sequence number, starting at 1.
    pub seq: u64,
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.client, self.seq)
    }
}

/// A command to replicate: a client request as it travels through the
/// consensus protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Request identity (also the dedup key).
    pub id: RequestId,
    /// The operation to apply.
    pub op: Operation,
}

impl Command {
    /// A no-op command (log hole filler) attributed to a synthetic id.
    pub fn noop() -> Self {
        Command {
            id: RequestId {
                client: NodeId(u32::MAX),
                seq: 0,
            },
            op: Operation::Noop,
        }
    }

    /// True if this is a no-op filler.
    pub fn is_noop(&self) -> bool {
        matches!(self.op, Operation::Noop)
    }

    /// Serialized size contribution of this command.
    pub fn payload_bytes(&self) -> usize {
        12 + self.op.payload_bytes() // id (client 4 + seq 8) + op payload
    }
}

/// Fixed per-message framing overhead we charge for every wire message
/// (type tag, ballot, slot, sender — roughly what a compact binary codec
/// would need).
pub const HEADER_BYTES: usize = 24;

/// A client-to-replica request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientRequest {
    /// The command to execute.
    pub command: Command,
}

impl ClientRequest {
    /// Wire size of the request.
    pub fn wire_size(&self) -> usize {
        HEADER_BYTES + self.command.payload_bytes()
    }
}

/// A replica-to-client reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientReply {
    /// Which request this answers.
    pub id: RequestId,
    /// Result of a `Get` (None for `Put`/`Noop` or missing key).
    pub value: Option<Value>,
    /// False when the contacted replica redirects/refuses (e.g. not the
    /// leader); the client should retry.
    pub ok: bool,
    /// Hint: the node the client should talk to instead (if `!ok`).
    pub redirect: Option<NodeId>,
}

impl ClientReply {
    /// Successful reply.
    pub fn ok(id: RequestId, value: Option<Value>) -> Self {
        ClientReply {
            id,
            value,
            ok: true,
            redirect: None,
        }
    }

    /// Redirect reply pointing the client at `leader`.
    pub fn redirect(id: RequestId, leader: Option<NodeId>) -> Self {
        ClientReply {
            id,
            value: None,
            ok: false,
            redirect: leader,
        }
    }

    /// Wire size of the reply.
    pub fn wire_size(&self) -> usize {
        HEADER_BYTES + 12 + self.value.as_ref().map_or(0, |v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_helpers() {
        let v = Value::zeros(16);
        assert_eq!(v.len(), 16);
        assert!(!v.is_empty());
        assert!(Value::default().is_empty());
        assert_eq!(format!("{v:?}"), "Value[16B]");
    }

    #[test]
    fn operation_keys_and_reads() {
        assert!(Operation::Get(1).is_read());
        assert!(!Operation::Put(1, Value::zeros(1)).is_read());
        assert_eq!(Operation::Get(5).key(), Some(5));
        assert_eq!(Operation::Noop.key(), None);
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Operation::Get(1).payload_bytes(), 8);
        assert_eq!(Operation::Put(1, Value::zeros(100)).payload_bytes(), 108);
        assert_eq!(Operation::Noop.payload_bytes(), 0);
    }

    #[test]
    fn conflicts() {
        let r1 = Operation::Get(1);
        let w1 = Operation::Put(1, Value::zeros(1));
        let w2 = Operation::Put(2, Value::zeros(1));
        assert!(
            !r1.conflicts_with(&Operation::Get(1)),
            "read-read never conflicts"
        );
        assert!(r1.conflicts_with(&w1), "read-write same key conflicts");
        assert!(
            w1.conflicts_with(&w1.clone()),
            "write-write same key conflicts"
        );
        assert!(!w1.conflicts_with(&w2), "different keys never conflict");
        assert!(
            !Operation::Noop.conflicts_with(&w1),
            "noop conflicts with nothing"
        );
    }

    #[test]
    fn noop_command() {
        let c = Command::noop();
        assert!(c.is_noop());
        assert_eq!(c.payload_bytes(), 12);
    }

    #[test]
    fn request_reply_sizes_scale_with_value() {
        let id = RequestId {
            client: NodeId(9),
            seq: 1,
        };
        let req = ClientRequest {
            command: Command {
                id,
                op: Operation::Put(1, Value::zeros(1280)),
            },
        };
        assert_eq!(req.wire_size(), HEADER_BYTES + 12 + 8 + 1280);
        let rep = ClientReply::ok(id, Some(Value::zeros(64)));
        assert_eq!(rep.wire_size(), HEADER_BYTES + 12 + 64);
        let rep2 = ClientReply::ok(id, None);
        assert_eq!(rep2.wire_size(), HEADER_BYTES + 12);
    }

    #[test]
    fn redirect_reply() {
        let id = RequestId {
            client: NodeId(1),
            seq: 2,
        };
        let r = ClientReply::redirect(id, Some(NodeId(0)));
        assert!(!r.ok);
        assert_eq!(r.redirect, Some(NodeId(0)));
    }

    #[test]
    fn request_id_display_and_order() {
        let a = RequestId {
            client: NodeId(1),
            seq: 1,
        };
        let b = RequestId {
            client: NodeId(1),
            seq: 2,
        };
        assert!(b > a);
        assert_eq!(format!("{a}"), "n1#1");
    }
}
