//! Declarative chaos scenarios: one file = one experiment point on the
//! protocol × topology × workload × fault-schedule matrix.
//!
//! A scenario file is a small TOML document (parsed by a self-contained
//! subset parser — no external dependency) naming a protocol, a
//! cluster shape, a client population, a fault schedule for the
//! [`crate::nemesis::Nemesis`] actor, and expectations the run must
//! meet. The checked-in corpus under `scenarios/` is executed by the
//! `scenario` driver binary and by CI's chaos job; the same parser
//! backs the driver's `--check` lint mode.
//!
//! ## Format
//!
//! ```toml
//! name = "pig-partition-heal"
//! protocol = "pigpaxos"     # paxos | pigpaxos | epaxos
//! replicas = 7
//! groups = 2                # pigpaxos relay groups (ignored otherwise)
//! topology = "lan"          # lan | wan
//! clients = 10
//! seed = 42
//! warmup_ms = 500
//! measure_ms = 3000
//! drain_ms = 1500           # post-run quiescence before digest checks
//!
//! [workload]
//! read_ratio = 0.5
//! payload = 8
//! keys = 1000
//!
//! [[faults]]                # times are offsets from simulation start
//! at_ms = 1000
//! kind = "partition"
//! a = [0, 1, 2]
//! b = [3, 4, 5, 6]
//!
//! [[faults]]
//! at_ms = 2000
//! kind = "heal"
//!
//! [expect]
//! converged = true
//! min_throughput = 50.0
//! ```
//!
//! Fault kinds and their fields:
//!
//! | kind | fields | effect |
//! |---|---|---|
//! | `partition` | `a`, `b` (node lists) | block every link between the groups |
//! | `asym_partition` | `a`, `b` (node lists) | drop only `a → b`; `b → a` keeps flowing |
//! | `heal` | — | unblock all links |
//! | `crash` | `node` | crash-stop the node |
//! | `restart` | `node` | recover a crashed node |
//! | `flaky` | `from`, `to`, `p` | drop each `from → to` message with probability `p` |
//! | `clear_flaky` | — | restore all flaky links |
//! | `slow` | `node`, `extra_us` | inflate the node's send/receive latency |
//! | `clear_slow` | — | restore all slow nodes |
//! | `drop_rate` | `p` | uniform drop probability on every link |
//! | `storm` | `target`, `count` | burst of `count` junk requests at `target` |
//! | `crash_loop` | `node`, `period_ms`, `count` | crash `node`, recover half a period later, repeat `count` times |
//!
//! ## Sharded scenarios
//!
//! Setting `shards = N` at the root runs the scenario on a
//! [`crate::ShardedExperiment`] instead of a single cluster:
//! `replicas` becomes the per-shard replica count (so the node-id space
//! is `N * replicas` replicas — shard *s* owning the contiguous range
//! `[s*replicas, (s+1)*replicas)` — followed by `clients` routers), and
//! fault node ids may reference any replica in that larger space.
//! Sharded scenarios are LAN-only. The extra expectation
//! `min_shard_decided` then asserts that every shard whose nodes are
//! *not* referenced by any fault still decided at least that many
//! slots — the blast-radius check that a fault in one shard leaves the
//! others committing.

use crate::workload::{KeyDistribution, Workload};
use simnet::SimDuration;
use std::collections::BTreeMap;
use std::fmt;

/// Replica topology families a scenario can request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Single-region LAN.
    Lan,
    /// The paper's Virginia/California/Oregon WAN.
    Wan,
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Block every link between node group `a` and node group `b`
    /// (both directions).
    Partition {
        /// One side of the partition.
        a: Vec<u32>,
        /// The other side.
        b: Vec<u32>,
    },
    /// Block only the `a → b` direction: messages from group `a`
    /// toward group `b` are dropped while `b → a` is still delivered —
    /// the one-way link failure (bad NIC, asymmetric routing) that a
    /// full partition masks. Leader-based protocols must either keep a
    /// quorum that excludes the dead direction or re-elect around it.
    AsymmetricPartition {
        /// Senders whose messages toward `b` are dropped.
        a: Vec<u32>,
        /// Receivers whose replies toward `a` still flow.
        b: Vec<u32>,
    },
    /// Unblock all links.
    Heal,
    /// Crash-stop a node.
    Crash(u32),
    /// Recover a crashed node (state intact).
    Restart(u32),
    /// Make the directional link flaky with the given drop probability.
    Flaky {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Per-message drop probability in `[0, 1]`.
        p: f64,
    },
    /// Restore every flaky link.
    ClearFlaky,
    /// Inflate a node's send/receive latency by `extra`.
    Slow {
        /// The degraded node.
        node: u32,
        /// Added latency per message.
        extra: SimDuration,
    },
    /// Restore every slow node.
    ClearSlow,
    /// Set the uniform drop probability for all links.
    DropRate(f64),
    /// Burst `count` junk read requests at `target` in one handler
    /// invocation (a message storm from a misbehaving client).
    Storm {
        /// Node the burst is aimed at.
        target: u32,
        /// Number of requests in the burst.
        count: u32,
    },
    /// Repeatedly crash-and-recover a node: crash at the scheduled
    /// time, recover half a `period` later, crash again a full `period`
    /// after the previous crash, until `count` crashes have fired. The
    /// node ends the loop recovered. Models a crash-looping process
    /// under a restart supervisor.
    CrashLoop {
        /// The node to crash repeatedly.
        node: u32,
        /// Full crash + recover cycle length.
        period: SimDuration,
        /// Total number of crashes.
        count: u32,
    },
}

/// A [`Fault`] with its scheduled time (offset from simulation start).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the nemesis executes the fault.
    pub at: SimDuration,
    /// What happens.
    pub fault: Fault,
}

/// Pass/fail expectations checked by the scenario driver after a run.
/// All fields optional; absent means "don't check".
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Expectations {
    /// Require post-drain digest convergence to equal this value
    /// (`true`: all replicas converged; `false`: divergence tolerated —
    /// documents a known-lossy schedule).
    pub converged: Option<bool>,
    /// Minimum measured throughput (ops/s).
    pub min_throughput: Option<f64>,
    /// Maximum total client retries across the run.
    pub max_client_retries: Option<u64>,
    /// Minimum completed samples in the measurement window.
    pub min_samples: Option<u64>,
    /// Sharded scenarios only: minimum decided-slot count for every
    /// shard none of whose nodes are referenced by any fault (the
    /// blast-radius check — unaffected shards must keep committing).
    pub min_shard_decided: Option<u64>,
}

/// A fully parsed scenario: everything the driver needs to build an
/// [`crate::Experiment`], attach a nemesis, run, and judge the result.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique name (reports, CI artifacts).
    pub name: String,
    /// Protocol key: `"paxos"`, `"pigpaxos"`, or `"epaxos"`. Kept as a
    /// string — protocol dispatch happens in the driver, which depends
    /// on the protocol crates; this crate does not.
    pub protocol: String,
    /// Number of consensus replicas — per shard, when `shards` is set.
    pub replicas: usize,
    /// Number of key-range shards; `None` runs a single unsharded
    /// cluster. When set, the run uses a [`crate::ShardedExperiment`]
    /// with `shards * replicas` replica nodes and `clients` routers.
    pub shards: Option<usize>,
    /// PigPaxos relay-group count (ignored by other protocols).
    pub groups: Option<usize>,
    /// Replica topology family.
    pub topology: TopologyKind,
    /// Closed-loop client count.
    pub clients: usize,
    /// Requests each client keeps in flight.
    pub pipeline: usize,
    /// Master seed.
    pub seed: u64,
    /// Ramp-up excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window.
    pub measure: SimDuration,
    /// Post-run quiescence before digests are sampled (0 = skip).
    pub drain: SimDuration,
    /// Client retry timeout override (`None` = substrate default).
    pub retry_timeout: Option<SimDuration>,
    /// Workload specification.
    pub workload: Workload,
    /// The fault schedule, in file order.
    pub faults: Vec<FaultEvent>,
    /// Post-run checks.
    pub expect: Expectations,
    /// Whether the scenario runs under `--quick` / `PIG_QUICK=1`
    /// (default `true`; long soaks opt out with `quick = false`).
    pub quick: bool,
}

/// Parse or validation failure, with enough context to fix the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario error: {}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

fn err<T>(line: usize, msg: impl fmt::Display) -> Result<T, ScenarioError> {
    Err(ScenarioError(format!("line {line}: {msg}")))
}

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
    IntList(Vec<i64>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::IntList(_) => "integer list",
        }
    }
}

/// `(value, source line)` — the line survives into validation errors.
type Table = BTreeMap<String, (Value, usize)>;

#[derive(Debug, Default)]
struct RawScenario {
    root: Table,
    workload: Table,
    expect: Table,
    faults: Vec<Table>,
}

fn parse_value(raw: &str, line: usize) -> Result<Value, ScenarioError> {
    let raw = raw.trim();
    if let Some(stripped) = raw.strip_prefix('"') {
        let Some(inner) = stripped.strip_suffix('"') else {
            return err(line, "unterminated string");
        };
        if inner.contains('"') {
            return err(line, "escaped quotes are not supported");
        }
        return Ok(Value::Str(inner.to_string()));
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(stripped) = raw.strip_prefix('[') {
        let Some(inner) = stripped.strip_suffix(']') else {
            return err(line, "unterminated list (lists must be single-line)");
        };
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            match part.parse::<i64>() {
                Ok(v) => items.push(v),
                Err(_) => return err(line, format!("non-integer list item `{part}`")),
            }
        }
        return Ok(Value::IntList(items));
    }
    if raw.contains('.') {
        if let Ok(v) = raw.parse::<f64>() {
            return Ok(Value::Float(v));
        }
    }
    if let Ok(v) = raw.parse::<i64>() {
        return Ok(Value::Int(v));
    }
    err(line, format!("unparseable value `{raw}`"))
}

/// Strip a `#` comment, respecting a single level of double quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_raw(text: &str) -> Result<RawScenario, ScenarioError> {
    #[derive(PartialEq)]
    enum Section {
        Root,
        Workload,
        Expect,
        Fault,
    }
    let mut raw = RawScenario::default();
    let mut section = Section::Root;
    for (idx, full_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(full_line).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[faults]]" {
            raw.faults.push(Table::new());
            section = Section::Fault;
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = match name {
                "workload" => Section::Workload,
                "expect" => Section::Expect,
                other => return err(lineno, format!("unknown section `[{other}]`")),
            };
            continue;
        }
        let Some((key, val)) = line.split_once('=') else {
            return err(lineno, format!("expected `key = value`, got `{line}`"));
        };
        let key = key.trim().to_string();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return err(lineno, format!("invalid key `{key}`"));
        }
        let value = parse_value(val, lineno)?;
        let table = match section {
            Section::Root => &mut raw.root,
            Section::Workload => &mut raw.workload,
            Section::Expect => &mut raw.expect,
            Section::Fault => raw.faults.last_mut().expect("section implies entry"),
        };
        if table.insert(key.clone(), (value, lineno)).is_some() {
            return err(lineno, format!("duplicate key `{key}`"));
        }
    }
    Ok(raw)
}

// ---- typed extraction ----------------------------------------------------

fn take_str(t: &mut Table, key: &str) -> Result<Option<String>, ScenarioError> {
    match t.remove(key) {
        None => Ok(None),
        Some((Value::Str(s), _)) => Ok(Some(s)),
        Some((v, line)) => err(
            line,
            format!("`{key}` must be a string, got {}", v.type_name()),
        ),
    }
}

fn take_u64(t: &mut Table, key: &str) -> Result<Option<u64>, ScenarioError> {
    match t.remove(key) {
        None => Ok(None),
        Some((Value::Int(v), line)) => {
            if v < 0 {
                err(line, format!("`{key}` must be non-negative"))
            } else {
                Ok(Some(v as u64))
            }
        }
        Some((v, line)) => err(
            line,
            format!("`{key}` must be an integer, got {}", v.type_name()),
        ),
    }
}

fn take_f64(t: &mut Table, key: &str) -> Result<Option<f64>, ScenarioError> {
    match t.remove(key) {
        None => Ok(None),
        Some((Value::Float(v), _)) => Ok(Some(v)),
        Some((Value::Int(v), _)) => Ok(Some(v as f64)),
        Some((v, line)) => err(
            line,
            format!("`{key}` must be a number, got {}", v.type_name()),
        ),
    }
}

fn take_bool(t: &mut Table, key: &str) -> Result<Option<bool>, ScenarioError> {
    match t.remove(key) {
        None => Ok(None),
        Some((Value::Bool(v), _)) => Ok(Some(v)),
        Some((v, line)) => err(
            line,
            format!("`{key}` must be true/false, got {}", v.type_name()),
        ),
    }
}

fn take_nodes(t: &mut Table, key: &str) -> Result<Option<Vec<u32>>, ScenarioError> {
    match t.remove(key) {
        None => Ok(None),
        Some((Value::IntList(vs), line)) => {
            let mut nodes = Vec::with_capacity(vs.len());
            for v in vs {
                if !(0..=u32::MAX as i64).contains(&v) {
                    return err(line, format!("`{key}` contains invalid node id {v}"));
                }
                nodes.push(v as u32);
            }
            Ok(Some(nodes))
        }
        Some((v, line)) => err(
            line,
            format!("`{key}` must be a node list, got {}", v.type_name()),
        ),
    }
}

fn require<T>(opt: Option<T>, key: &str) -> Result<T, ScenarioError> {
    opt.ok_or_else(|| ScenarioError(format!("missing required key `{key}`")))
}

fn reject_unknown(t: &Table, what: &str) -> Result<(), ScenarioError> {
    if let Some((key, (_, line))) = t.iter().next() {
        return err(*line, format!("unknown {what} key `{key}`"));
    }
    Ok(())
}

fn take_prob(t: &mut Table, key: &str, line_hint: usize) -> Result<f64, ScenarioError> {
    let p = require(take_f64(t, key)?, key)?;
    if !(0.0..=1.0).contains(&p) {
        return err(line_hint, format!("`{key}` must be in [0, 1], got {p}"));
    }
    Ok(p)
}

fn parse_fault(mut t: Table, index: usize) -> Result<FaultEvent, ScenarioError> {
    // Best line for errors that aren't tied to a present key.
    let line_hint = t.values().map(|&(_, l)| l).min().unwrap_or(0);
    let at_ms = require(take_u64(&mut t, "at_ms")?, "at_ms")
        .map_err(|_| ScenarioError(format!("fault #{}: missing `at_ms`", index + 1)))?;
    let kind = require(take_str(&mut t, "kind")?, "kind")
        .map_err(|_| ScenarioError(format!("fault #{}: missing `kind`", index + 1)))?;
    let fault = match kind.as_str() {
        "partition" => {
            let a = require(take_nodes(&mut t, "a")?, "a")?;
            let b = require(take_nodes(&mut t, "b")?, "b")?;
            if a.is_empty() || b.is_empty() {
                return err(line_hint, "partition groups must be non-empty");
            }
            if a.iter().any(|n| b.contains(n)) {
                return err(line_hint, "partition groups must be disjoint");
            }
            Fault::Partition { a, b }
        }
        "asym_partition" => {
            let a = require(take_nodes(&mut t, "a")?, "a")?;
            let b = require(take_nodes(&mut t, "b")?, "b")?;
            if a.is_empty() || b.is_empty() {
                return err(line_hint, "asym_partition groups must be non-empty");
            }
            if a.iter().any(|n| b.contains(n)) {
                return err(line_hint, "asym_partition groups must be disjoint");
            }
            Fault::AsymmetricPartition { a, b }
        }
        "heal" => Fault::Heal,
        "crash" => Fault::Crash(require(take_u64(&mut t, "node")?, "node")? as u32),
        "restart" => Fault::Restart(require(take_u64(&mut t, "node")?, "node")? as u32),
        "flaky" => Fault::Flaky {
            from: require(take_u64(&mut t, "from")?, "from")? as u32,
            to: require(take_u64(&mut t, "to")?, "to")? as u32,
            p: take_prob(&mut t, "p", line_hint)?,
        },
        "clear_flaky" => Fault::ClearFlaky,
        "slow" => Fault::Slow {
            node: require(take_u64(&mut t, "node")?, "node")? as u32,
            extra: SimDuration::from_micros(require(take_u64(&mut t, "extra_us")?, "extra_us")?),
        },
        "clear_slow" => Fault::ClearSlow,
        "drop_rate" => Fault::DropRate(take_prob(&mut t, "p", line_hint)?),
        "storm" => {
            let count = require(take_u64(&mut t, "count")?, "count")?;
            if count == 0 || count > 100_000 {
                return err(line_hint, "storm `count` must be in 1..=100000");
            }
            Fault::Storm {
                target: require(take_u64(&mut t, "target")?, "target")? as u32,
                count: count as u32,
            }
        }
        "crash_loop" => {
            let count = require(take_u64(&mut t, "count")?, "count")?;
            if count == 0 || count > 1000 {
                return err(line_hint, "crash_loop `count` must be in 1..=1000");
            }
            let period_ms = require(take_u64(&mut t, "period_ms")?, "period_ms")?;
            if period_ms == 0 {
                return err(line_hint, "crash_loop `period_ms` must be positive");
            }
            Fault::CrashLoop {
                node: require(take_u64(&mut t, "node")?, "node")? as u32,
                period: SimDuration::from_millis(period_ms),
                count: count as u32,
            }
        }
        other => return err(line_hint, format!("unknown fault kind `{other}`")),
    };
    reject_unknown(&t, "fault")?;
    Ok(FaultEvent {
        at: SimDuration::from_millis(at_ms),
        fault,
    })
}

/// Parse a scenario file.
///
/// Accepts the TOML subset documented in the [module docs](self):
/// `key = value` pairs, `[workload]` / `[expect]` sections, and
/// `[[faults]]` array entries; values are strings, integers, floats,
/// booleans, and single-line integer lists. Unknown keys, unknown
/// sections, and out-of-range values are hard errors — the corpus is
/// linted by exactly this function.
pub fn parse(text: &str) -> Result<Scenario, ScenarioError> {
    let raw = parse_raw(text)?;
    let mut root = raw.root;

    let name = require(take_str(&mut root, "name")?, "name")?;
    if name.is_empty() {
        return Err(ScenarioError("`name` must be non-empty".into()));
    }
    let protocol = require(take_str(&mut root, "protocol")?, "protocol")?;
    if !matches!(protocol.as_str(), "paxos" | "pigpaxos" | "epaxos") {
        return Err(ScenarioError(format!(
            "unknown protocol `{protocol}` (expected paxos | pigpaxos | epaxos)"
        )));
    }
    let replicas = require(take_u64(&mut root, "replicas")?, "replicas")? as usize;
    if replicas == 0 {
        return Err(ScenarioError("`replicas` must be positive".into()));
    }
    let clients = require(take_u64(&mut root, "clients")?, "clients")? as usize;
    let shards = take_u64(&mut root, "shards")?.map(|s| s as usize);
    if shards == Some(0) {
        return Err(ScenarioError("`shards` must be positive".into()));
    }
    let groups = take_u64(&mut root, "groups")?.map(|g| g as usize);
    if let Some(g) = groups {
        if g == 0 || g > replicas {
            return Err(ScenarioError(format!(
                "`groups` must be in 1..=replicas, got {g}"
            )));
        }
    }
    let topology = match take_str(&mut root, "topology")?.as_deref() {
        None | Some("lan") => TopologyKind::Lan,
        Some("wan") => TopologyKind::Wan,
        Some(other) => {
            return Err(ScenarioError(format!(
                "unknown topology `{other}` (expected lan | wan)"
            )))
        }
    };
    let pipeline = take_u64(&mut root, "pipeline")?.unwrap_or(1) as usize;
    if pipeline == 0 {
        return Err(ScenarioError("`pipeline` must be positive".into()));
    }
    let seed = take_u64(&mut root, "seed")?.unwrap_or(crate::harness::DEFAULT_SEED);
    let warmup = SimDuration::from_millis(take_u64(&mut root, "warmup_ms")?.unwrap_or(500));
    let measure = SimDuration::from_millis(take_u64(&mut root, "measure_ms")?.unwrap_or(3000));
    let drain = SimDuration::from_millis(take_u64(&mut root, "drain_ms")?.unwrap_or(0));
    let retry_timeout = take_u64(&mut root, "retry_timeout_ms")?.map(SimDuration::from_millis);
    let quick = take_bool(&mut root, "quick")?.unwrap_or(true);
    reject_unknown(&root, "scenario")?;

    let mut wl_table = raw.workload;
    let mut workload = Workload::paper_default();
    if let Some(r) = take_f64(&mut wl_table, "read_ratio")? {
        if !(0.0..=1.0).contains(&r) {
            return Err(ScenarioError(format!(
                "`read_ratio` must be in [0, 1], got {r}"
            )));
        }
        workload.read_ratio = r;
    }
    if let Some(p) = take_u64(&mut wl_table, "payload")? {
        workload.payload_size = p as usize;
    }
    if let Some(k) = take_u64(&mut wl_table, "keys")? {
        if k == 0 {
            return Err(ScenarioError("`keys` must be positive".into()));
        }
        workload.num_keys = k;
    }
    if let Some(theta) = take_f64(&mut wl_table, "zipf")? {
        workload.distribution = KeyDistribution::Zipfian(theta);
    }
    reject_unknown(&wl_table, "workload")?;

    let mut expect_table = raw.expect;
    let expect = Expectations {
        converged: take_bool(&mut expect_table, "converged")?,
        min_throughput: take_f64(&mut expect_table, "min_throughput")?,
        max_client_retries: take_u64(&mut expect_table, "max_client_retries")?,
        min_samples: take_u64(&mut expect_table, "min_samples")?,
        min_shard_decided: take_u64(&mut expect_table, "min_shard_decided")?,
    };
    reject_unknown(&expect_table, "expect")?;

    let mut faults = Vec::with_capacity(raw.faults.len());
    for (i, table) in raw.faults.into_iter().enumerate() {
        faults.push(parse_fault(table, i)?);
    }

    let scenario = Scenario {
        name,
        protocol,
        replicas,
        shards,
        groups,
        topology,
        clients,
        pipeline,
        seed,
        warmup,
        measure,
        drain,
        retry_timeout,
        workload,
        faults,
        expect,
        quick,
    };
    scenario.validate()?;
    Ok(scenario)
}

impl Scenario {
    /// Cross-field validation: every fault must reference nodes inside
    /// the cluster (the full `shards * replicas` space when sharded)
    /// and fire within the run (warmup + measure).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.shards.is_some() && self.topology == TopologyKind::Wan {
            return Err(ScenarioError(format!(
                "scenario `{}`: sharded scenarios are lan-only",
                self.name
            )));
        }
        if self.expect.min_shard_decided.is_some() && self.shards.is_none() {
            return Err(ScenarioError(format!(
                "scenario `{}`: `min_shard_decided` requires `shards`",
                self.name
            )));
        }
        if self.shards.is_some() && self.expect.converged.is_some() {
            return Err(ScenarioError(format!(
                "scenario `{}`: sharded runs do not collect convergence digests; \
                 drop `expect.converged`",
                self.name
            )));
        }
        let n = (self.replicas * self.shards.unwrap_or(1)) as u32;
        let horizon = self.warmup + self.measure;
        let check_node = |node: u32, what: &str| {
            if node >= n {
                return Err(ScenarioError(format!(
                    "scenario `{}`: {what} node {node} outside cluster of {n}",
                    self.name
                )));
            }
            Ok(())
        };
        for (i, ev) in self.faults.iter().enumerate() {
            if ev.at >= horizon {
                return Err(ScenarioError(format!(
                    "scenario `{}`: fault #{} at {} fires after the run ends ({})",
                    self.name,
                    i + 1,
                    ev.at,
                    horizon
                )));
            }
            match &ev.fault {
                Fault::Partition { a, b } | Fault::AsymmetricPartition { a, b } => {
                    for &x in a.iter().chain(b.iter()) {
                        check_node(x, "partition")?;
                    }
                }
                Fault::Crash(node) | Fault::Restart(node) => check_node(*node, "crash/restart")?,
                Fault::Flaky { from, to, .. } => {
                    check_node(*from, "flaky")?;
                    check_node(*to, "flaky")?;
                }
                Fault::Slow { node, .. } => check_node(*node, "slow")?,
                Fault::Storm { target, .. } => check_node(*target, "storm")?,
                Fault::CrashLoop {
                    node,
                    period,
                    count,
                } => {
                    check_node(*node, "crash_loop")?;
                    // The last recovery must land inside the run too.
                    let last = ev.at + *period * (*count as u64 - 1) + *period / 2;
                    if last >= horizon {
                        return Err(ScenarioError(format!(
                            "scenario `{}`: fault #{} crash_loop ends at {last} \
                             after the run ends ({horizon})",
                            self.name,
                            i + 1,
                        )));
                    }
                }
                Fault::Heal | Fault::ClearFlaky | Fault::ClearSlow | Fault::DropRate(_) => {}
            }
        }
        if self.expect.converged == Some(true) && self.drain == SimDuration::ZERO {
            return Err(ScenarioError(format!(
                "scenario `{}`: `converged = true` requires `drain_ms > 0`",
                self.name
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# A full-featured scenario.
name = "pig-partition-heal"   # trailing comment
protocol = "pigpaxos"
replicas = 7
groups = 2
topology = "lan"
clients = 10
seed = 42
warmup_ms = 500
measure_ms = 3000
drain_ms = 1500
retry_timeout_ms = 100

[workload]
read_ratio = 0.25
payload = 16
keys = 500

[[faults]]
at_ms = 1000
kind = "partition"
a = [0, 1, 2]
b = [3, 4, 5, 6]

[[faults]]
at_ms = 2000
kind = "heal"

[[faults]]
at_ms = 2200
kind = "storm"
target = 0
count = 50

[expect]
converged = true
min_throughput = 10.0
"#;

    #[test]
    fn full_scenario_round_trips() {
        let s = parse(FULL).expect("parses");
        assert_eq!(s.name, "pig-partition-heal");
        assert_eq!(s.protocol, "pigpaxos");
        assert_eq!(s.replicas, 7);
        assert_eq!(s.groups, Some(2));
        assert_eq!(s.topology, TopologyKind::Lan);
        assert_eq!(s.clients, 10);
        assert_eq!(s.seed, 42);
        assert_eq!(s.warmup, SimDuration::from_millis(500));
        assert_eq!(s.measure, SimDuration::from_millis(3000));
        assert_eq!(s.drain, SimDuration::from_millis(1500));
        assert_eq!(s.retry_timeout, Some(SimDuration::from_millis(100)));
        assert!((s.workload.read_ratio - 0.25).abs() < 1e-12);
        assert_eq!(s.workload.payload_size, 16);
        assert_eq!(s.workload.num_keys, 500);
        assert_eq!(s.faults.len(), 3);
        assert_eq!(
            s.faults[0],
            FaultEvent {
                at: SimDuration::from_millis(1000),
                fault: Fault::Partition {
                    a: vec![0, 1, 2],
                    b: vec![3, 4, 5, 6],
                },
            }
        );
        assert_eq!(s.faults[1].fault, Fault::Heal);
        assert_eq!(
            s.faults[2].fault,
            Fault::Storm {
                target: 0,
                count: 50
            }
        );
        assert_eq!(s.expect.converged, Some(true));
        assert_eq!(s.expect.min_throughput, Some(10.0));
        assert!(s.quick, "quick defaults to true");
    }

    #[test]
    fn minimal_scenario_uses_defaults() {
        let s = parse("name = \"tiny\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 2\n")
            .expect("parses");
        assert_eq!(s.topology, TopologyKind::Lan);
        assert_eq!(s.pipeline, 1);
        assert_eq!(s.seed, crate::harness::DEFAULT_SEED);
        assert_eq!(s.warmup, SimDuration::from_millis(500));
        assert_eq!(s.measure, SimDuration::from_millis(3000));
        assert_eq!(s.drain, SimDuration::ZERO);
        assert_eq!(s.retry_timeout, None);
        assert!(s.faults.is_empty());
        assert_eq!(s.expect, Expectations::default());
    }

    #[test]
    fn all_fault_kinds_parse() {
        let text = r#"
name = "kinds"
protocol = "epaxos"
replicas = 5
clients = 1
measure_ms = 10000

[[faults]]
at_ms = 1
kind = "crash"
node = 0

[[faults]]
at_ms = 2
kind = "restart"
node = 0

[[faults]]
at_ms = 3
kind = "flaky"
from = 1
to = 2
p = 0.5

[[faults]]
at_ms = 4
kind = "clear_flaky"

[[faults]]
at_ms = 5
kind = "slow"
node = 3
extra_us = 250

[[faults]]
at_ms = 6
kind = "clear_slow"

[[faults]]
at_ms = 7
kind = "drop_rate"
p = 0.01
"#;
        let s = parse(text).expect("parses");
        assert_eq!(s.faults.len(), 7);
        assert_eq!(s.faults[0].fault, Fault::Crash(0));
        assert_eq!(s.faults[1].fault, Fault::Restart(0));
        assert_eq!(
            s.faults[2].fault,
            Fault::Flaky {
                from: 1,
                to: 2,
                p: 0.5
            }
        );
        assert_eq!(s.faults[3].fault, Fault::ClearFlaky);
        assert_eq!(
            s.faults[4].fault,
            Fault::Slow {
                node: 3,
                extra: SimDuration::from_micros(250)
            }
        );
        assert_eq!(s.faults[5].fault, Fault::ClearSlow);
        assert_eq!(s.faults[6].fault, Fault::DropRate(0.01));
    }

    #[test]
    fn asym_partition_parses_and_validates() {
        let text = r#"
name = "one-way"
protocol = "paxos"
replicas = 5
clients = 1
measure_ms = 4000

[[faults]]
at_ms = 100
kind = "asym_partition"
a = [0]
b = [3, 4]
"#;
        let s = parse(text).expect("parses");
        assert_eq!(
            s.faults[0].fault,
            Fault::AsymmetricPartition {
                a: vec![0],
                b: vec![3, 4]
            }
        );
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             measure_ms = 4000\n\
             [[faults]]\nat_ms = 1\nkind = \"asym_partition\"\na = [0]\nb = [0, 1]\n",
            "disjoint",
        );
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             measure_ms = 4000\n\
             [[faults]]\nat_ms = 1\nkind = \"asym_partition\"\na = [0]\nb = [7]\n",
            "outside cluster",
        );
    }

    #[test]
    fn crash_loop_and_sharding_parse() {
        let text = r#"
name = "shard-loop"
protocol = "paxos"
replicas = 3
shards = 3
clients = 6
measure_ms = 4000

[[faults]]
at_ms = 500
kind = "crash_loop"
node = 8            # valid: sharded node space is 3 * 3 = 9
period_ms = 400
count = 3

[expect]
min_shard_decided = 50
"#;
        let s = parse(text).expect("parses");
        assert_eq!(s.shards, Some(3));
        assert_eq!(
            s.faults[0].fault,
            Fault::CrashLoop {
                node: 8,
                period: SimDuration::from_millis(400),
                count: 3
            }
        );
        assert_eq!(s.expect.min_shard_decided, Some(50));
    }

    #[test]
    fn sharding_and_crash_loop_rejections() {
        // Node 8 is outside an unsharded 3-replica cluster.
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             measure_ms = 4000\n\
             [[faults]]\nat_ms = 1\nkind = \"crash_loop\"\nnode = 8\n\
             period_ms = 100\ncount = 2\n",
            "outside cluster",
        );
        // The loop's last recovery must land inside the run.
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             measure_ms = 1000\nwarmup_ms = 0\n\
             [[faults]]\nat_ms = 100\nkind = \"crash_loop\"\nnode = 0\n\
             period_ms = 500\ncount = 3\n",
            "after the run ends",
        );
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             [[faults]]\nat_ms = 1\nkind = \"crash_loop\"\nnode = 0\n\
             period_ms = 100\ncount = 0\n",
            "1..=1000",
        );
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nshards = 2\n\
             clients = 1\ntopology = \"wan\"\n",
            "lan-only",
        );
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             [expect]\nmin_shard_decided = 10\n",
            "requires `shards`",
        );
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nshards = 0\nclients = 1\n",
            "`shards` must be positive",
        );
    }

    fn assert_rejects(text: &str, needle: &str) {
        match parse(text) {
            Ok(_) => panic!("expected rejection mentioning `{needle}`"),
            Err(e) => assert!(
                e.0.contains(needle),
                "error `{}` should mention `{needle}`",
                e.0
            ),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert_rejects("protocol = \"paxos\"\nreplicas = 3\nclients = 1\n", "name");
        assert_rejects(
            "name = \"x\"\nprotocol = \"raft\"\nreplicas = 3\nclients = 1\n",
            "raft",
        );
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\nbogus = 1\n",
            "bogus",
        );
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n[weird]\n",
            "weird",
        );
        assert_rejects("name = \"x\"\nname = \"y\"\n", "duplicate");
        assert_rejects("just nonsense\n", "key = value");
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             [[faults]]\nat_ms = 1\nkind = \"meteor\"\n",
            "meteor",
        );
        // Fault on a node outside the cluster.
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             [[faults]]\nat_ms = 1\nkind = \"crash\"\nnode = 9\n",
            "outside cluster",
        );
        // Fault scheduled after the run.
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             measure_ms = 100\nwarmup_ms = 0\n\
             [[faults]]\nat_ms = 5000\nkind = \"heal\"\n",
            "after the run ends",
        );
        // Probability out of range.
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             [[faults]]\nat_ms = 1\nkind = \"drop_rate\"\np = 1.5\n",
            "[0, 1]",
        );
        // Overlapping partition groups.
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             [[faults]]\nat_ms = 1\nkind = \"partition\"\na = [0, 1]\nb = [1, 2]\n",
            "disjoint",
        );
        // converged=true without a drain phase cannot be checked.
        assert_rejects(
            "name = \"x\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n\
             [expect]\nconverged = true\n",
            "drain_ms",
        );
    }

    #[test]
    fn comments_and_whitespace_are_tolerated() {
        let s = parse(
            "  # header\n\nname = \"x\" # inline\nprotocol = \"paxos\"\n\
             replicas = 3\n  clients = 1  \n",
        )
        .expect("parses");
        assert_eq!(s.name, "x");
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let s = parse("name = \"x#1\"\nprotocol = \"paxos\"\nreplicas = 3\nclients = 1\n")
            .expect("parses");
        assert_eq!(s.name, "x#1");
    }
}
