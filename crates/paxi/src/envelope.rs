//! The wire envelope shared by all protocols.
//!
//! Clients speak only [`ClientRequest`]/[`ClientReply`]; each protocol
//! defines its own internal message type implementing [`ProtoMessage`].
//! [`Envelope`] unifies the two so a single simulated network carries
//! both, and so clients are protocol-agnostic.

use crate::command::{ClientReply, ClientRequest};
use crate::shard::ShardCtl;
use simnet::Message;

/// A protocol-internal message (phase-1a/1b/2a/2b, relays, etc.).
pub trait ProtoMessage: Clone + std::fmt::Debug + 'static {
    /// Serialized size in bytes.
    fn wire_size(&self) -> usize;
    /// Short label for traces.
    fn label(&self) -> &'static str {
        "proto"
    }
}

/// Everything that can travel over the simulated network.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope<P> {
    /// Client → replica.
    Request(ClientRequest),
    /// Replica → client.
    Reply(ClientReply),
    /// Replica → client: several coalesced replies in one envelope (the
    /// reply-side counterpart of `P2aBatch`; see `paxi::batch`). All
    /// replies target the destination client, which unpacks them in
    /// order.
    ReplyBatch(Vec<ClientReply>),
    /// Shard-control traffic (range moves, snapshot installs, routing
    /// map updates). Protocol-independent: handled by the
    /// [`crate::shard::ShardGate`] decorator in front of each replica,
    /// never by protocol code.
    Shard(ShardCtl),
    /// Replica → replica (protocol internal).
    Proto(P),
}

impl<P: ProtoMessage> Message for Envelope<P> {
    fn wire_size(&self) -> usize {
        match self {
            Envelope::Request(r) => r.wire_size(),
            Envelope::Reply(r) => r.wire_size(),
            // One shared header; per-reply payload without re-framing.
            Envelope::ReplyBatch(rs) => {
                crate::command::HEADER_BYTES
                    + rs.iter()
                        .map(|r| r.wire_size() - crate::command::HEADER_BYTES + 2)
                        .sum::<usize>()
            }
            Envelope::Shard(c) => c.wire_size(),
            Envelope::Proto(p) => p.wire_size(),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            Envelope::Request(_) => "request",
            Envelope::Reply(_) => "reply",
            Envelope::ReplyBatch(_) => "reply_batch",
            Envelope::Shard(c) => c.label(),
            Envelope::Proto(p) => p.label(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Command, Operation, RequestId, Value, HEADER_BYTES};
    use simnet::NodeId;

    #[derive(Debug, Clone)]
    struct P2a;
    impl ProtoMessage for P2a {
        fn wire_size(&self) -> usize {
            100
        }
        fn label(&self) -> &'static str {
            "p2a"
        }
    }

    #[test]
    fn envelope_delegates_size_and_label() {
        let id = RequestId {
            client: NodeId(1),
            seq: 1,
        };
        let req: Envelope<P2a> = Envelope::Request(ClientRequest {
            command: Command {
                id,
                op: Operation::Put(1, Value::zeros(8)),
            },
        });
        assert_eq!(req.wire_size(), HEADER_BYTES + 12 + 16);
        assert_eq!(req.label(), "request");

        let rep: Envelope<P2a> = Envelope::Reply(ClientReply::ok(id, None));
        assert_eq!(rep.label(), "reply");

        let batch: Envelope<P2a> =
            Envelope::ReplyBatch(vec![ClientReply::ok(id, None), ClientReply::ok(id, None)]);
        assert_eq!(batch.label(), "reply_batch");
        // Two coalesced replies must beat two framed singles.
        assert!(batch.wire_size() < 2 * rep.wire_size());

        let proto: Envelope<P2a> = Envelope::Proto(P2a);
        assert_eq!(proto.wire_size(), 100);
        assert_eq!(proto.label(), "p2a");
    }
}
