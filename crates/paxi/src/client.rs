//! Closed-loop benchmark clients.
//!
//! Mirrors the Paxi benchmark client: each client keeps exactly one
//! request outstanding; completing a request immediately issues the next.
//! Offered load is therefore controlled by the number of clients, and the
//! latency/throughput curves of the paper are produced by sweeping the
//! client count.

use crate::command::{ClientRequest, Command, RequestId};
use crate::envelope::{Envelope, ProtoMessage};
use crate::workload::Workload;
use parking_lot::Mutex;
use simnet::{Actor, Context, NodeId, SimDuration, SimTime, TimerId};
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::Arc;

/// Which replica a client sends each request to.
#[derive(Debug, Clone)]
pub enum TargetPolicy {
    /// Always the same node (Paxos/PigPaxos clients talk to the leader).
    Fixed(NodeId),
    /// A uniformly random replica per request (EPaxos clients).
    Random(Vec<NodeId>),
}

impl TargetPolicy {
    fn pick(&self, rng: &mut rand::rngs::StdRng) -> NodeId {
        match self {
            TargetPolicy::Fixed(n) => *n,
            TargetPolicy::Random(nodes) => {
                use rand::Rng;
                nodes[rng.gen_range(0..nodes.len())]
            }
        }
    }
}

/// One completed operation.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// When the request was first issued.
    pub issued: SimTime,
    /// When the reply arrived.
    pub completed: SimTime,
    /// Whether the operation was a read.
    pub is_read: bool,
}

impl Sample {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.completed.saturating_sub(self.issued)
    }
}

/// Shared sink for samples from all clients in a run. Thread-safe so it
/// works under both the simulator and the real-thread runtime.
#[derive(Debug, Clone, Default)]
pub struct ClientRecorder {
    samples: Arc<Mutex<Vec<Sample>>>,
    retries: Arc<std::sync::atomic::AtomicU64>,
}

impl ClientRecorder {
    /// Fresh recorder.
    pub fn new() -> Self {
        ClientRecorder::default()
    }

    /// Append a sample.
    pub fn record(&self, s: Sample) {
        self.samples.lock().push(s);
    }

    /// Count one request re-send (timeout retry or redirect follow).
    pub fn record_retry(&self) {
        self.retries
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Total re-sends across all clients sharing this recorder.
    pub fn retries(&self) -> u64 {
        self.retries.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Copy out all samples.
    pub fn samples(&self) -> Vec<Sample> {
        self.samples.lock().clone()
    }

    /// Number of samples so far.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }
}

struct Outstanding {
    issued: SimTime,
    command: Command,
    is_read: bool,
    /// Timeout-driven retry count, driving the exponential backoff.
    attempts: u32,
}

/// Retry delays double per attempt up to `base << MAX_BACKOFF_SHIFT`
/// (16x the configured retry timeout).
pub(crate) const MAX_BACKOFF_SHIFT: u32 = 4;

/// Deterministic per-(client, request, attempt) jitter source. Seeding a
/// fresh small RNG from this key keeps retry de-synchronization fully
/// deterministic without touching the client's workload RNG stream —
/// the same `(seed, node)` pair must keep producing the same operations
/// whether or not faults forced retries.
pub(crate) fn jitter_seed(node: NodeId, seq: u64, attempt: u32) -> u64 {
    let mut z = ((node.0 as u64) << 40)
        ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ ((attempt as u64) << 17);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A closed-loop client actor, generic over the protocol message type
/// (clients never construct protocol messages).
///
/// With `pipeline > 1` the client keeps that many requests in flight
/// simultaneously (one user session multiplexing several operations
/// over one connection); each completion immediately issues the next.
/// Coalesced [`Envelope::ReplyBatch`] envelopes are unpacked in order.
pub struct ClosedLoopClient<P> {
    target: TargetPolicy,
    workload: Workload,
    recorder: ClientRecorder,
    retry_timeout: SimDuration,
    pipeline: usize,
    seq: u64,
    outstanding: HashMap<u64, Outstanding>,
    retries: u64,
    _proto: PhantomData<P>,
}

impl<P> ClosedLoopClient<P> {
    /// Create a client that records into `recorder`.
    pub fn new(
        target: TargetPolicy,
        workload: Workload,
        recorder: ClientRecorder,
        retry_timeout: SimDuration,
    ) -> Self {
        ClosedLoopClient {
            target,
            workload,
            recorder,
            retry_timeout,
            pipeline: 1,
            seq: 0,
            outstanding: HashMap::new(),
            retries: 0,
            _proto: PhantomData,
        }
    }

    /// Keep `depth` requests outstanding instead of one.
    pub fn with_pipeline(mut self, depth: usize) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        self.pipeline = depth;
        self
    }

    /// How many times this client re-sent a request after a timeout.
    pub fn retries(&self) -> u64 {
        self.retries
    }
}

impl<P: ProtoMessage> ClosedLoopClient<P> {
    /// Delay before the next retry of request `seq` after `attempt`
    /// timeout-driven resends. The first retry fires after exactly the
    /// configured timeout (so fault-free runs are bit-identical to the
    /// fixed-interval schedule); later retries back off exponentially,
    /// capped at 16x, with deterministic jitter in `[0, delay/2]` so a
    /// fleet of clients cut off by the same partition does not re-send
    /// in lockstep when it heals.
    fn retry_delay(&self, node: NodeId, seq: u64, attempt: u32) -> SimDuration {
        if attempt == 0 {
            return self.retry_timeout;
        }
        let base = self.retry_timeout.as_nanos().max(1);
        let delay = base.saturating_mul(1 << attempt.min(MAX_BACKOFF_SHIFT));
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(jitter_seed(node, seq, attempt));
        let jitter = rng.gen_range(0..=delay / 2);
        SimDuration::from_nanos(delay.saturating_add(jitter))
    }

    fn issue_next(&mut self, ctx: &mut Context<Envelope<P>>) {
        self.seq += 1;
        let op = self.workload.next_op(ctx.rng());
        let is_read = op.is_read();
        let id = RequestId {
            client: ctx.node(),
            seq: self.seq,
        };
        let command = Command { id, op };
        self.outstanding.insert(
            self.seq,
            Outstanding {
                issued: ctx.now(),
                command: command.clone(),
                is_read,
                attempts: 0,
            },
        );
        let to = self.target.pick(ctx.rng());
        ctx.send(to, Envelope::Request(ClientRequest { command }));
        ctx.set_timer(self.retry_timeout, self.seq);
    }

    fn resend(&mut self, seq: u64, to: Option<NodeId>, ctx: &mut Context<Envelope<P>>) {
        if let Some(out) = self.outstanding.get(&seq) {
            let command = out.command.clone();
            let attempt = out.attempts;
            self.retries += 1;
            self.recorder.record_retry();
            let to = to.unwrap_or_else(|| self.target.pick(ctx.rng()));
            ctx.send(to, Envelope::Request(ClientRequest { command }));
            let delay = self.retry_delay(ctx.node(), seq, attempt);
            ctx.set_timer(delay, seq);
        }
    }

    fn handle_reply(&mut self, reply: crate::command::ClientReply, ctx: &mut Context<Envelope<P>>) {
        if !self.outstanding.contains_key(&reply.id.seq) {
            return; // stale reply (e.g. after a retry raced the original)
        }
        if !reply.ok {
            // Redirected: re-send to the hinted node (or re-pick).
            self.resend(reply.id.seq, reply.redirect, ctx);
            return;
        }
        let out = self.outstanding.remove(&reply.id.seq).expect("checked");
        self.recorder.record(Sample {
            issued: out.issued,
            completed: ctx.now(),
            is_read: out.is_read,
        });
        self.issue_next(ctx);
    }
}

impl<P: ProtoMessage> Actor<Envelope<P>> for ClosedLoopClient<P> {
    fn on_start(&mut self, ctx: &mut Context<Envelope<P>>) {
        for _ in 0..self.pipeline {
            self.issue_next(ctx);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: Envelope<P>, ctx: &mut Context<Envelope<P>>) {
        match msg {
            Envelope::Reply(r) => self.handle_reply(r, ctx),
            Envelope::ReplyBatch(rs) => {
                for r in rs {
                    self.handle_reply(r, ctx);
                }
            }
            // Clients ignore anything that is not a reply.
            _ => {}
        }
    }

    fn on_timer(&mut self, _id: TimerId, kind: u64, ctx: &mut Context<Envelope<P>>) {
        // Retry only if the timed-out request is still outstanding. Each
        // timeout bumps the attempt count so the next delay backs off;
        // redirect-driven resends (handle_reply) intentionally do not.
        if let Some(out) = self.outstanding.get_mut(&kind) {
            out.attempts += 1;
            self.resend(kind, None, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::ClientReply;
    use crate::replica::{Ctx, Replica, ReplicaActor, ReplicaCtx};
    use simnet::{CpuCostModel, Simulation, Topology};

    #[derive(Debug, Clone)]
    struct NoProto;
    impl ProtoMessage for NoProto {
        fn wire_size(&self) -> usize {
            0
        }
    }

    /// Acks everything instantly.
    struct InstantServer;
    impl Replica<NoProto> for InstantServer {
        fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<NoProto>) {
            ctx.reply(client, ClientReply::ok(req.command.id, None));
        }
        fn on_proto(&mut self, _f: NodeId, _m: NoProto, _c: &mut Ctx<NoProto>) {}
    }

    /// Silently drops the first `drop_n` requests (to exercise retries).
    struct FlakyServer {
        drop_n: u64,
        seen: u64,
    }
    impl Replica<NoProto> for FlakyServer {
        fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<NoProto>) {
            self.seen += 1;
            if self.seen > self.drop_n {
                ctx.reply(client, ClientReply::ok(req.command.id, None));
            }
        }
        fn on_proto(&mut self, _f: NodeId, _m: NoProto, _c: &mut Ctx<NoProto>) {}
    }

    /// Always redirects to another node.
    struct RedirectServer {
        to: NodeId,
    }
    impl Replica<NoProto> for RedirectServer {
        fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<NoProto>) {
            ctx.reply(client, ClientReply::redirect(req.command.id, Some(self.to)));
        }
        fn on_proto(&mut self, _f: NodeId, _m: NoProto, _c: &mut Ctx<NoProto>) {}
    }

    fn client(target: TargetPolicy, rec: &ClientRecorder) -> Box<ClosedLoopClient<NoProto>> {
        Box::new(ClosedLoopClient::new(
            target,
            Workload::paper_default(),
            rec.clone(),
            SimDuration::from_millis(100),
        ))
    }

    #[test]
    fn closed_loop_issues_back_to_back() {
        let mut sim: Simulation<Envelope<NoProto>> =
            Simulation::new(Topology::lan(2), CpuCostModel::free(), 3);
        sim.add_actor(Box::new(ReplicaActor(InstantServer)));
        let rec = ClientRecorder::new();
        sim.add_actor(client(TargetPolicy::Fixed(NodeId(0)), &rec));
        sim.run_until(SimTime::from_millis(100));
        // RTT ≈ 0.4ms -> ≈250 completions in 100ms.
        let n = rec.len();
        assert!(
            (150..400).contains(&n),
            "expected ~250 completions, got {n}"
        );
        // Latencies are positive and ~RTT.
        for s in rec.samples() {
            assert!(s.latency() > SimDuration::ZERO);
            assert!(s.latency() < SimDuration::from_millis(5));
        }
    }

    #[test]
    fn retry_after_timeout() {
        let mut sim: Simulation<Envelope<NoProto>> =
            Simulation::new(Topology::lan(2), CpuCostModel::free(), 3);
        sim.add_actor(Box::new(ReplicaActor(FlakyServer { drop_n: 2, seen: 0 })));
        let rec = ClientRecorder::new();
        sim.add_actor(client(TargetPolicy::Fixed(NodeId(0)), &rec));
        sim.run_until(SimTime::from_secs(1));
        assert!(!rec.is_empty(), "client must eventually get through");
        let first = rec.samples()[0];
        assert!(
            first.latency() >= SimDuration::from_millis(200),
            "first completion needed 2 retries at 100ms timeout, latency {}",
            first.latency()
        );
    }

    #[test]
    fn redirect_is_followed() {
        let mut sim: Simulation<Envelope<NoProto>> =
            Simulation::new(Topology::lan(3), CpuCostModel::free(), 3);
        sim.add_actor(Box::new(ReplicaActor(RedirectServer { to: NodeId(1) })));
        sim.add_actor(Box::new(ReplicaActor(InstantServer)));
        let rec = ClientRecorder::new();
        sim.add_actor(client(TargetPolicy::Fixed(NodeId(0)), &rec));
        sim.run_until(SimTime::from_millis(50));
        assert!(!rec.is_empty(), "redirected requests must still complete");
    }

    #[test]
    fn random_target_spreads_load() {
        let mut sim: Simulation<Envelope<NoProto>> =
            Simulation::new(Topology::lan(3), CpuCostModel::free(), 3);
        sim.add_actor(Box::new(ReplicaActor(InstantServer)));
        sim.add_actor(Box::new(ReplicaActor(InstantServer)));
        let rec = ClientRecorder::new();
        sim.add_actor(client(
            TargetPolicy::Random(vec![NodeId(0), NodeId(1)]),
            &rec,
        ));
        sim.run_until(SimTime::from_millis(200));
        let a = sim.stats().nodes[0].msgs_received;
        let b = sim.stats().nodes[1].msgs_received;
        assert!(
            a > 0 && b > 0,
            "both replicas should see traffic: {a} vs {b}"
        );
    }

    #[test]
    fn pipelined_client_multiplies_in_flight_load() {
        let run_with = |pipeline: usize| {
            let mut sim: Simulation<Envelope<NoProto>> =
                Simulation::new(Topology::lan(2), CpuCostModel::free(), 3);
            sim.add_actor(Box::new(ReplicaActor(InstantServer)));
            let rec = ClientRecorder::new();
            sim.add_actor(Box::new(
                ClosedLoopClient::<NoProto>::new(
                    TargetPolicy::Fixed(NodeId(0)),
                    Workload::paper_default(),
                    rec.clone(),
                    SimDuration::from_millis(100),
                )
                .with_pipeline(pipeline),
            ));
            sim.run_until(SimTime::from_millis(100));
            rec.len()
        };
        let one = run_with(1);
        let four = run_with(4);
        assert!(
            four as f64 > one as f64 * 3.0,
            "pipeline 4 should complete ~4x the ops: {four} vs {one}"
        );
    }

    /// Buffers replies and ships them two at a time in one envelope.
    struct BatchingServer {
        held: Vec<(NodeId, ClientReply)>,
    }
    impl Replica<NoProto> for BatchingServer {
        fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<NoProto>) {
            self.held
                .push((client, ClientReply::ok(req.command.id, None)));
            if self.held.len() >= 2 {
                let held = std::mem::take(&mut self.held);
                let client = held[0].0;
                ctx.reply_many(client, held.into_iter().map(|(_, r)| r).collect());
            }
        }
        fn on_proto(&mut self, _f: NodeId, _m: NoProto, _c: &mut Ctx<NoProto>) {}
    }

    #[test]
    fn reply_batches_unpack_and_complete_requests() {
        let mut sim: Simulation<Envelope<NoProto>> =
            Simulation::new(Topology::lan(2), CpuCostModel::free(), 3);
        sim.add_actor(Box::new(ReplicaActor(BatchingServer { held: Vec::new() })));
        let rec = ClientRecorder::new();
        sim.add_actor(Box::new(
            ClosedLoopClient::<NoProto>::new(
                TargetPolicy::Fixed(NodeId(0)),
                Workload::paper_default(),
                rec.clone(),
                SimDuration::from_millis(100),
            )
            .with_pipeline(2),
        ));
        sim.run_until(SimTime::from_millis(50));
        assert!(
            rec.len() > 20,
            "coalesced replies must keep the pipeline moving, got {}",
            rec.len()
        );
    }

    /// Never replies: every request times out.
    struct BlackholeServer;
    impl Replica<NoProto> for BlackholeServer {
        fn on_request(&mut self, _c: NodeId, _r: ClientRequest, _ctx: &mut Ctx<NoProto>) {}
        fn on_proto(&mut self, _f: NodeId, _m: NoProto, _c: &mut Ctx<NoProto>) {}
    }

    #[test]
    fn retry_delay_schedule_backs_off_and_caps() {
        let c = ClosedLoopClient::<NoProto>::new(
            TargetPolicy::Fixed(NodeId(0)),
            Workload::paper_default(),
            ClientRecorder::new(),
            SimDuration::from_millis(100),
        );
        let base = SimDuration::from_millis(100).as_nanos();
        // First retry is at exactly the configured timeout — no jitter —
        // so fault-free runs keep the seed-for-seed baseline schedule.
        assert_eq!(
            c.retry_delay(NodeId(7), 1, 0),
            SimDuration::from_millis(100)
        );
        for attempt in 1..8u32 {
            let d = c.retry_delay(NodeId(7), 1, attempt).as_nanos();
            let nominal = base << attempt.min(MAX_BACKOFF_SHIFT);
            assert!(
                d >= nominal && d <= nominal + nominal / 2,
                "attempt {attempt}: delay {d} outside [{nominal}, 1.5x]"
            );
        }
        // Cap: attempts beyond the shift limit stay at 16x base.
        let capped = c.retry_delay(NodeId(7), 1, 20).as_nanos();
        assert!(capped <= base * 16 + base * 8);
        // Deterministic: same (node, seq, attempt) -> same delay; different
        // clients de-synchronize.
        assert_eq!(
            c.retry_delay(NodeId(7), 1, 3),
            c.retry_delay(NodeId(7), 1, 3)
        );
        assert_ne!(
            c.retry_delay(NodeId(7), 1, 3),
            c.retry_delay(NodeId(8), 1, 3)
        );
    }

    #[test]
    fn backoff_suppresses_retry_storm_against_dead_server() {
        let run = || {
            let mut sim: Simulation<Envelope<NoProto>> =
                Simulation::new(Topology::lan(2), CpuCostModel::free(), 3);
            sim.add_actor(Box::new(ReplicaActor(BlackholeServer)));
            let rec = ClientRecorder::new();
            sim.add_actor(client(TargetPolicy::Fixed(NodeId(0)), &rec));
            sim.run_until(SimTime::from_secs(2));
            rec.retries()
        };
        let retries = run();
        // Fixed 100ms interval would re-send ~19 times in 2s. Exponential
        // backoff (100, 200+j, 400+j, 800+j...) sends at most ~6.
        assert!(retries >= 3, "client must keep retrying, got {retries}");
        assert!(
            retries <= 9,
            "backoff must cut the 2s retry storm to <= half of the \
             fixed-interval ~19, got {retries}"
        );
        // And the whole schedule is deterministic.
        assert_eq!(retries, run());
    }

    #[test]
    fn sample_latency_math() {
        let s = Sample {
            issued: SimTime::from_millis(10),
            completed: SimTime::from_millis(12),
            is_read: false,
        };
        assert_eq!(s.latency(), SimDuration::from_millis(2));
    }

    use simnet::SimTime;
}
