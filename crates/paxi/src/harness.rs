//! The measurement engine behind [`crate::Experiment`]: builds a
//! cluster + clients on the simulator, runs warmup and a measurement
//! window, and reports the metrics the paper's figures plot
//! (throughput, latency percentiles, per-node message loads, WAN
//! traffic, and optional per-second timelines).
//!
//! The types here ([`RunSpec`], [`RunResult`], [`LoadPoint`]) are the
//! engine's vocabulary; callers should not assemble a [`RunSpec`] by
//! hand — use [`crate::Experiment`], which owns one internally and
//! exposes every knob as a typed builder method. (The PR-3 free-function
//! shims `run`/`run_spec`/`load_sweep`/`max_throughput` are gone; the
//! `Experiment` methods of the same names are the only entry points.)

use crate::client::{ClientRecorder, ClosedLoopClient, Sample, TargetPolicy};
use crate::cluster::ClusterConfig;
use crate::envelope::{Envelope, ProtoMessage};
use crate::metrics::{mean, percentile};
use crate::workload::Workload;
use simnet::{Actor, CpuCostModel, NodeId, RegionId, SimDuration, SimTime, Simulation, Topology};
use std::collections::BTreeMap;

/// Everything needed to run one experiment point.
///
/// Owned and populated by [`crate::Experiment`]; kept public so the
/// deprecated free-function shims still compile, and because
/// [`RunResult`] docs refer to its fields.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Number of consensus replicas (nodes 0..n).
    pub n_replicas: usize,
    /// Number of closed-loop clients (offered load control).
    pub n_clients: usize,
    /// Requests each client keeps in flight (1 = classic closed loop;
    /// higher values model one connection multiplexing several user
    /// sessions, the workload reply coalescing amortizes).
    pub client_pipeline: usize,
    /// Extra client-side topology nodes *without* harness-spawned
    /// closed-loop clients. A fault-injection / setup hook may populate
    /// these slots with custom client actors (sequential checkers,
    /// read-your-writes probes); they are appended after the
    /// closed-loop clients, in `client_region`.
    pub extra_client_nodes: usize,
    /// Topology covering the replicas (clients are appended).
    pub topology: Topology,
    /// Region clients attach to (0 for LAN; the leader's region for WAN,
    /// matching the paper's setup with clients near the leader).
    pub client_region: RegionId,
    /// CPU cost model for every node.
    pub cost: CpuCostModel,
    /// Master seed; every source of randomness in the run derives from it.
    pub seed: u64,
    /// Workload specification.
    pub workload: Workload,
    /// Ramp-up time excluded from measurement.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub measure: SimDuration,
    /// Client retry timeout.
    pub retry_timeout: SimDuration,
    /// If set, also produce a per-bucket throughput timeline (Fig. 13).
    pub timeline_bucket: Option<SimDuration>,
    /// Quiescence phase after the measurement window: all client nodes
    /// are crashed and the simulation runs for this long with only
    /// replica-to-replica traffic, letting in-flight commits and
    /// heartbeat-driven watermark propagation finish before
    /// [`RunResult::replica_digests`] is collected. `ZERO` (the
    /// default) skips the phase entirely, keeping the event schedule
    /// byte-identical to pre-drain harness versions.
    pub drain: SimDuration,
    /// Capture a full message trace: populates
    /// [`RunResult::trace_fingerprint`] (determinism regressions),
    /// [`RunResult::leader_proto_sent_per_op`] (message-amortization
    /// accounting), and [`RunResult::label_counts`]. Off by default —
    /// high-throughput runs generate millions of entries.
    pub capture_trace: bool,
}

impl RunSpec {
    /// A LAN cluster with the paper-default workload.
    pub fn lan(n_replicas: usize, n_clients: usize) -> Self {
        RunSpec {
            n_replicas,
            n_clients,
            client_pipeline: 1,
            extra_client_nodes: 0,
            topology: Topology::lan(n_replicas),
            client_region: 0,
            cost: CpuCostModel::calibrated(),
            seed: DEFAULT_SEED,
            workload: Workload::paper_default(),
            warmup: SimDuration::from_secs(1),
            measure: SimDuration::from_secs(4),
            retry_timeout: SimDuration::from_millis(100),
            timeline_bucket: None,
            drain: SimDuration::ZERO,
            capture_trace: false,
        }
    }

    /// The paper's Fig. 9 WAN: replicas over Virginia/California/Oregon,
    /// clients co-located with the leader in Virginia.
    pub fn wan(n_replicas: usize, n_clients: usize) -> Self {
        RunSpec {
            topology: Topology::wan_virginia_california_oregon(n_replicas),
            client_region: 0,
            retry_timeout: SimDuration::from_secs(2),
            ..RunSpec::lan(n_replicas, n_clients)
        }
    }
}

/// Default master seed used by [`RunSpec`] constructors and
/// [`crate::Experiment`] call sites that have no better choice.
pub const DEFAULT_SEED: u64 = 0x9199_7a05;

/// Metrics from one run, identical in shape for both execution
/// substrates (simulator and thread runtime). Fields the thread
/// substrate cannot measure are documented on
/// [`crate::Experiment::run_threads`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Completed operations per second in the measurement window.
    pub throughput: f64,
    /// Mean end-to-end latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Median latency (ms).
    pub p50_latency_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_latency_ms: f64,
    /// Number of samples in the window.
    pub samples: usize,
    /// Distinct slots decided across the run.
    pub decided: u64,
    /// Safety violations detected (must be empty).
    pub violations: Vec<String>,
    /// Per-node messages handled (sent + received) in the window,
    /// indexed by node id; replicas first, then clients.
    pub node_msgs: Vec<u64>,
    /// Messages handled by the leader per completed operation — the
    /// empirical `Ml` of the paper's §6.
    pub leader_msgs_per_op: f64,
    /// Mean messages handled per non-leader replica per operation — the
    /// empirical `Mf`.
    pub follower_msgs_per_op: f64,
    /// Cross-region messages per operation (paper §6.4).
    pub cross_region_msgs_per_op: f64,
    /// Per-bucket throughput timeline `(bucket_end_secs, ops_per_sec)`,
    /// present when [`RunSpec::timeline_bucket`] was set.
    pub timeline: Vec<(f64, f64)>,
    /// Client retries observed (an indicator of failures during the run).
    pub client_retries: u64,
    /// Largest retained log length (slots, or EPaxos instances) any
    /// replica reported across the whole run — the memory-boundedness
    /// quantity log compaction gates on. 0 when no replica reported
    /// (e.g. a protocol without compaction instrumentation).
    pub max_log_len: u64,
    /// Snapshots taken (log compactions) across all replicas. 0 when
    /// `SnapshotConfig` is disabled (the default).
    pub snapshots_taken: u64,
    /// Snapshots installed *from a peer* (the catch-up path a lagging
    /// follower or newly elected leader takes when its missing prefix
    /// was truncated everywhere).
    pub snapshots_installed: u64,
    /// FNV fingerprint of the full message trace, present when
    /// [`RunSpec::capture_trace`] was set. Identical seeds + configs
    /// must produce identical fingerprints.
    pub trace_fingerprint: Option<u64>,
    /// Leader-sent *protocol* messages (everything except client
    /// replies) per completed operation in the window, present when
    /// [`RunSpec::capture_trace`] was set — the precise measure of what
    /// relay trees and batching amortize.
    pub leader_proto_sent_per_op: Option<f64>,
    /// Leader-sent client-reply envelopes (`reply` + `reply_batch`) per
    /// completed operation — what reply coalescing amortizes. Present
    /// when [`RunSpec::capture_trace`] was set.
    pub leader_replies_per_op: Option<f64>,
    /// All leader-sent messages (protocol + replies) per completed
    /// operation — the end-to-end outbound leader load the batching
    /// pipeline attacks. Present when [`RunSpec::capture_trace`] was
    /// set.
    pub leader_sent_per_op: Option<f64>,
    /// Protocol messages *received* by the leader per completed
    /// operation (the relay→leader uplink hop that multi-round
    /// aggregate coalescing amortizes). Present when
    /// [`RunSpec::capture_trace`] was set.
    pub leader_proto_recv_per_op: Option<f64>,
    /// Delivered (non-dropped) messages in the measurement window by
    /// wire label (`"p2a"`, `"qr_read"`, `"reply_batch"`, …). Present
    /// when [`RunSpec::capture_trace`] was set. The typed handle on
    /// message-shape questions — e.g. "how many quorum-read probes did
    /// PQR send per operation?" — without hand-rolling a simulation.
    pub label_counts: Option<BTreeMap<&'static str, u64>>,
    /// Quorum reads opened at proxies across the whole run (0 for
    /// non-PQR configurations).
    pub pqr_reads_started: u64,
    /// Quorum reads still pending at some proxy when the run ended.
    /// A quiesced run must end at 0; a workload-driven run may end with
    /// at most the number of in-flight client operations — anything
    /// larger is a `PendingReads` leak.
    pub pqr_reads_inflight: u64,
    /// Per-replica state digests collected after the drain phase,
    /// indexed by replica id. `None` entries are replicas that do not
    /// report a digest (or were crashed when sampled). Empty unless
    /// [`RunSpec::drain`] was non-zero. The thread substrate cannot
    /// sample digests and always leaves this empty.
    pub replica_digests: Vec<Option<u64>>,
}

impl RunResult {
    /// Delivered messages with `label` per completed operation in the
    /// window. Returns `None` unless the run captured a trace.
    pub fn label_per_op(&self, label: &str) -> Option<f64> {
        let ops = self.samples.max(1) as f64;
        self.label_counts
            .as_ref()
            .map(|c| c.get(label).copied().unwrap_or(0) as f64 / ops)
    }

    /// Sum of [`RunResult::label_per_op`] over several labels — the
    /// handle on message families that batch under a different label
    /// (e.g. PQR probe cost = `qr_read` + `qr_vote` + `qr_read_batch` +
    /// `qr_vote_batch`). Returns `None` unless the run captured a
    /// trace.
    pub fn labels_per_op(&self, labels: &[&str]) -> Option<f64> {
        let ops = self.samples.max(1) as f64;
        self.label_counts.as_ref().map(|c| {
            labels
                .iter()
                .map(|l| c.get(l).copied().unwrap_or(0))
                .sum::<u64>() as f64
                / ops
        })
    }

    /// Whether every digest-reporting replica converged to the same
    /// state after the drain phase. `None` when no digests were
    /// collected (drain disabled, thread substrate, or no replica
    /// reports one); `Some(true)` requires at least two reporting
    /// replicas agreeing.
    pub fn converged(&self) -> Option<bool> {
        let digests: Vec<u64> = self.replica_digests.iter().flatten().copied().collect();
        if digests.len() < 2 {
            return None;
        }
        Some(digests.windows(2).all(|w| w[0] == w[1]))
    }
}

/// The engine: everything [`crate::Experiment::run_sim`] ultimately
/// executes. Kept monolithic so the event schedule is byte-identical to
/// the pre-`Experiment` harness (the perf gate's determinism contract).
pub(crate) fn execute<P, B, H>(spec: &RunSpec, build: B, target: TargetPolicy, hook: H) -> RunResult
where
    P: ProtoMessage,
    B: Fn(NodeId, &ClusterConfig) -> Box<dyn Actor<Envelope<P>>>,
    H: FnOnce(&mut Simulation<Envelope<P>>, &ClusterConfig),
{
    let mut topology = spec.topology.clone();
    assert_eq!(
        topology.num_nodes(),
        spec.n_replicas,
        "spec topology must cover exactly the replicas"
    );
    topology.add_nodes(spec.n_clients + spec.extra_client_nodes, spec.client_region);

    let mut sim: Simulation<Envelope<P>> = Simulation::new(topology, spec.cost.clone(), spec.seed);
    if spec.capture_trace {
        sim.enable_trace();
    }
    let cluster = ClusterConfig::new(spec.n_replicas);

    for i in 0..spec.n_replicas {
        sim.add_actor(build(NodeId::from(i), &cluster));
    }

    let recorder = ClientRecorder::new();
    for _ in 0..spec.n_clients {
        sim.add_actor(Box::new(
            ClosedLoopClient::<P>::new(
                target.clone(),
                spec.workload.clone(),
                recorder.clone(),
                spec.retry_timeout,
            )
            .with_pipeline(spec.client_pipeline),
        ));
    }

    hook(&mut sim, &cluster);

    // Warmup.
    sim.run_for(spec.warmup);
    let warmup_end = sim.now();
    let stats_before = sim.stats().clone();

    // Measurement window.
    sim.run_for(spec.measure);
    let window_end = sim.now();
    let stats_after = sim.stats().clone();

    // Optional drain: silence all client traffic and let the replica
    // group quiesce, then snapshot per-replica state digests for
    // convergence checks. Skipped entirely (no extra events, schedule
    // unchanged) when `drain` is zero.
    let mut replica_digests = Vec::new();
    if spec.drain > SimDuration::ZERO {
        let total_nodes = spec.n_replicas + spec.n_clients + spec.extra_client_nodes;
        for i in spec.n_replicas..total_nodes {
            sim.crash(NodeId::from(i));
        }
        sim.run_for(spec.drain);
        replica_digests = (0..spec.n_replicas)
            .map(|i| sim.actor(NodeId::from(i)).state_digest())
            .collect();
    }

    let all_samples = recorder.samples();
    let window: Vec<&Sample> = all_samples
        .iter()
        .filter(|s| s.completed > warmup_end && s.completed <= window_end)
        .collect();

    let secs = spec.measure.as_secs_f64();
    let throughput = window.len() as f64 / secs;
    let lat_ms: Vec<f64> = window.iter().map(|s| s.latency().as_millis_f64()).collect();

    let node_msgs: Vec<u64> = stats_after
        .nodes
        .iter()
        .zip(stats_before.nodes.iter())
        .map(|(a, b)| a.msgs_total() - b.msgs_total())
        .collect();

    let ops = window.len().max(1) as f64;
    let leader = cluster.leader.index();
    let leader_msgs_per_op = node_msgs.get(leader).copied().unwrap_or(0) as f64 / ops;
    let followers: Vec<f64> = (0..spec.n_replicas)
        .filter(|&i| i != leader)
        .map(|i| node_msgs[i] as f64 / ops)
        .collect();
    let follower_msgs_per_op = mean(&followers);
    let cross_region_msgs_per_op =
        (stats_after.cross_region_msgs - stats_before.cross_region_msgs) as f64 / ops;

    let timeline = match spec.timeline_bucket {
        None => Vec::new(),
        Some(bucket) => bucket_timeline(&all_samples, bucket, window_end),
    };

    let mut trace_fingerprint = None;
    let mut leader_proto_sent_per_op = None;
    let mut leader_replies_per_op = None;
    let mut leader_sent_per_op = None;
    let mut leader_proto_recv_per_op = None;
    let mut label_counts = None;
    if let Some(trace) = sim.trace() {
        let leader_node = NodeId::from(leader);
        let is_reply = |label: &str| label == "reply" || label == "reply_batch";
        let mut proto_sent = 0usize;
        let mut replies_sent = 0usize;
        let mut proto_recv = 0usize;
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        for e in trace.entries() {
            if e.at <= warmup_end || e.at > window_end {
                continue;
            }
            if !e.dropped {
                *counts.entry(e.label).or_insert(0) += 1;
            }
            if e.from == leader_node {
                if is_reply(e.label) {
                    replies_sent += 1;
                } else {
                    proto_sent += 1;
                }
            } else if e.to == leader_node && e.label != "request" && !is_reply(e.label) {
                proto_recv += 1;
            }
        }
        trace_fingerprint = Some(trace.fingerprint());
        leader_proto_sent_per_op = Some(proto_sent as f64 / ops);
        leader_replies_per_op = Some(replies_sent as f64 / ops);
        leader_sent_per_op = Some((proto_sent + replies_sent) as f64 / ops);
        leader_proto_recv_per_op = Some(proto_recv as f64 / ops);
        label_counts = Some(counts);
    }

    RunResult {
        throughput,
        mean_latency_ms: mean(&lat_ms),
        p50_latency_ms: percentile(&lat_ms, 50.0),
        p99_latency_ms: percentile(&lat_ms, 99.0),
        samples: window.len(),
        decided: cluster.safety.decided_count(),
        violations: cluster.safety.violations(),
        node_msgs,
        leader_msgs_per_op,
        follower_msgs_per_op,
        cross_region_msgs_per_op,
        timeline,
        client_retries: recorder.retries(),
        max_log_len: cluster.stats.max_log_len(),
        snapshots_taken: cluster.stats.snapshots_taken(),
        snapshots_installed: cluster.stats.snapshots_installed(),
        trace_fingerprint,
        leader_proto_sent_per_op,
        leader_replies_per_op,
        leader_sent_per_op,
        leader_proto_recv_per_op,
        label_counts,
        pqr_reads_started: cluster.stats.pqr_started(),
        pqr_reads_inflight: cluster.stats.pqr_inflight(),
        replica_digests,
    }
}

pub(crate) fn bucket_timeline(
    samples: &[Sample],
    bucket: SimDuration,
    end: SimTime,
) -> Vec<(f64, f64)> {
    let nb = (end.as_nanos() / bucket.as_nanos().max(1)) as usize;
    let mut counts = vec![0u64; nb + 1];
    for s in samples {
        let idx = (s.completed.as_nanos() / bucket.as_nanos()) as usize;
        if idx < counts.len() {
            counts[idx] += 1;
        }
    }
    let bsecs = bucket.as_secs_f64();
    counts
        .iter()
        .enumerate()
        .take(nb)
        .map(|(i, &c)| ((i as f64 + 1.0) * bsecs, c as f64 / bsecs))
        .collect()
}

/// One point of a latency/throughput sweep.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Number of closed-loop clients for this point.
    pub clients: usize,
    /// The full run metrics.
    pub result: RunResult,
}

pub(crate) fn sweep_seed(base_seed: u64, clients: usize) -> u64 {
    base_seed.wrapping_add(clients as u64)
}

/// The default client-count ladder for max-throughput searches.
pub const DEFAULT_CLIENT_SWEEP: &[usize] = &[1, 2, 5, 10, 20, 40, 80, 160, 320];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{ClientReply, ClientRequest};
    use crate::replica::{Ctx, Replica, ReplicaActor, ReplicaCtx};

    #[derive(Debug, Clone)]
    struct NoProto;
    impl ProtoMessage for NoProto {
        fn wire_size(&self) -> usize {
            0
        }
    }

    /// A fake "consensus" replica that acks immediately (1 node).
    struct Instant {
        slot: u64,
        cluster: ClusterConfig,
    }
    impl Replica<NoProto> for Instant {
        fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<NoProto>) {
            self.cluster.safety.record(0, self.slot, req.command.id);
            self.slot += 1;
            ctx.reply(client, ClientReply::ok(req.command.id, None));
        }
        fn on_proto(&mut self, _f: NodeId, _m: NoProto, _c: &mut Ctx<NoProto>) {}
    }

    fn build_instant(_: NodeId, cluster: &ClusterConfig) -> Box<dyn Actor<Envelope<NoProto>>> {
        Box::new(ReplicaActor(Instant {
            slot: 0,
            cluster: cluster.clone(),
        }))
    }

    fn small_spec(clients: usize) -> RunSpec {
        RunSpec {
            warmup: SimDuration::from_millis(200),
            measure: SimDuration::from_millis(800),
            ..RunSpec::lan(1, clients)
        }
    }

    /// The engine entry point with no hook, as `Experiment::run_sim`
    /// invokes it.
    fn exec(spec: &RunSpec) -> RunResult {
        execute(
            spec,
            build_instant,
            TargetPolicy::Fixed(NodeId(0)),
            |_, _| {},
        )
    }

    #[test]
    fn run_produces_throughput_and_latency() {
        let r = exec(&small_spec(4));
        assert!(r.throughput > 100.0, "throughput {}", r.throughput);
        assert!(r.mean_latency_ms > 0.0);
        assert!(r.p99_latency_ms >= r.p50_latency_ms);
        assert!(r.violations.is_empty());
        assert!(r.decided > 0);
    }

    #[test]
    fn more_clients_more_throughput_until_saturation() {
        let lo = exec(&small_spec(1));
        let hi = exec(&small_spec(8));
        assert!(
            hi.throughput > lo.throughput * 2.0,
            "8 clients ({}) should beat 1 client ({}) substantially",
            hi.throughput,
            lo.throughput
        );
    }

    #[test]
    fn timeline_buckets_cover_run() {
        let spec = RunSpec {
            timeline_bucket: Some(SimDuration::from_millis(250)),
            ..small_spec(4)
        };
        let r = exec(&spec);
        assert!(!r.timeline.is_empty());
        // Total run is 1s -> 4 buckets.
        assert_eq!(r.timeline.len(), 4);
        // Steady load: later buckets should show similar throughput.
        let t: Vec<f64> = r.timeline.iter().map(|&(_, v)| v).collect();
        assert!(t[3] > 0.0);
    }

    #[test]
    fn leader_msgs_per_op_counted() {
        let r = exec(&small_spec(2));
        // The instant server handles exactly 1 recv + 1 send per op.
        assert!(
            (r.leader_msgs_per_op - 2.0).abs() < 0.2,
            "got {}",
            r.leader_msgs_per_op
        );
    }

    #[test]
    fn label_counts_present_only_with_trace() {
        let no_trace = exec(&small_spec(2));
        assert!(no_trace.label_counts.is_none());
        assert!(no_trace.label_per_op("request").is_none());

        let spec = RunSpec {
            capture_trace: true,
            ..small_spec(2)
        };
        let traced = exec(&spec);
        let counts = traced.label_counts.as_ref().expect("trace captured");
        assert!(counts.get("request").copied().unwrap_or(0) > 100);
        assert!(counts.get("reply").copied().unwrap_or(0) > 100);
        // One request and one reply per completed op (instant server).
        let per_op = traced.label_per_op("request").expect("traced");
        assert!((per_op - 1.0).abs() < 0.1, "got {per_op}");
    }
}
