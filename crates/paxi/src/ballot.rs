//! Ballot numbers.
//!
//! A ballot is a totally ordered pair `(round, node)`: comparing rounds
//! first and breaking ties by node id. Packing both into one `u64` keeps
//! ballots `Copy` and makes comparisons a single integer compare, the same
//! trick the Paxi framework uses.

use simnet::NodeId;
use std::fmt;

/// A Paxos ballot number: `(round, proposer-node)` packed into a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ballot(u64);

impl Ballot {
    /// The zero ballot, smaller than any real ballot.
    pub const ZERO: Ballot = Ballot(0);

    /// Create a ballot from a round number and the proposing node.
    pub fn new(round: u32, node: NodeId) -> Self {
        Ballot(((round as u64) << 32) | node.0 as u64)
    }

    /// The round component.
    pub fn round(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The proposing node component.
    pub fn node(self) -> NodeId {
        NodeId(self.0 as u32)
    }

    /// The next-higher ballot owned by `node`: bumps the round past this
    /// ballot's round regardless of owner.
    pub fn next(self, node: NodeId) -> Ballot {
        Ballot::new(self.round() + 1, node)
    }

    /// True for any ballot other than [`Ballot::ZERO`].
    pub fn is_set(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round(), self.node().0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trip() {
        let b = Ballot::new(7, NodeId(3));
        assert_eq!(b.round(), 7);
        assert_eq!(b.node(), NodeId(3));
    }

    #[test]
    fn ordering_round_dominates() {
        let low = Ballot::new(1, NodeId(100));
        let high = Ballot::new(2, NodeId(0));
        assert!(high > low);
    }

    #[test]
    fn ordering_ties_broken_by_node() {
        let a = Ballot::new(1, NodeId(1));
        let b = Ballot::new(1, NodeId(2));
        assert!(b > a);
    }

    #[test]
    fn next_strictly_increases() {
        let b = Ballot::new(5, NodeId(9));
        let n = b.next(NodeId(2));
        assert!(n > b);
        assert_eq!(n.round(), 6);
        assert_eq!(n.node(), NodeId(2));
    }

    #[test]
    fn zero_is_smallest_and_unset() {
        assert!(!Ballot::ZERO.is_set());
        assert!(Ballot::new(0, NodeId(1)) > Ballot::ZERO);
        assert!(Ballot::new(1, NodeId(0)).is_set());
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Ballot::new(3, NodeId(2))), "b3.2");
    }
}
