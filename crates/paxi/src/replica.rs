//! Adapter between protocol replicas and the simulator's [`Actor`] trait.
//!
//! A protocol implements [`Replica`]; [`ReplicaActor`] turns it into a
//! `simnet::Actor<Envelope<P>>`, demultiplexing client requests from
//! protocol messages. Replica contexts get convenience helpers
//! ([`ReplicaCtx`]) for sending protocol messages and client replies.

use crate::command::{ClientReply, ClientRequest};
use crate::envelope::{Envelope, ProtoMessage};
use simnet::{Actor, Context, NodeId, TimerId};

/// The context type replicas operate on.
pub type Ctx<'a, P> = Context<'a, Envelope<P>>;

/// Helper methods on the replica context.
pub trait ReplicaCtx<P> {
    /// Send a protocol message to a peer replica.
    fn send_proto(&mut self, to: NodeId, msg: P);
    /// Send a reply to a client.
    fn reply(&mut self, client: NodeId, reply: ClientReply);
    /// Send coalesced replies to a client in one envelope (a singleton
    /// degrades to a plain `Reply`).
    fn reply_many(&mut self, client: NodeId, replies: Vec<ClientReply>);
}

impl<P: ProtoMessage> ReplicaCtx<P> for Ctx<'_, P> {
    fn send_proto(&mut self, to: NodeId, msg: P) {
        self.send(to, Envelope::Proto(msg));
    }
    fn reply(&mut self, client: NodeId, reply: ClientReply) {
        self.send(client, Envelope::Reply(reply));
    }
    fn reply_many(&mut self, client: NodeId, mut replies: Vec<ClientReply>) {
        match replies.len() {
            0 => {}
            1 => self.reply(client, replies.pop().expect("len checked")),
            _ => self.send(client, Envelope::ReplyBatch(replies)),
        }
    }
}

/// A consensus replica: handles client requests and protocol messages.
pub trait Replica<P: ProtoMessage>: 'static {
    /// Called once at start.
    fn on_start(&mut self, _ctx: &mut Ctx<P>) {}
    /// A client request arrived.
    fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<P>);
    /// A protocol message arrived from a peer replica.
    fn on_proto(&mut self, from: NodeId, msg: P, ctx: &mut Ctx<P>);
    /// A timer fired.
    fn on_timer(&mut self, _id: TimerId, _kind: u64, _ctx: &mut Ctx<P>) {}
    /// A stable digest of this replica's applied state (e.g. a KV-store
    /// fingerprint). Convergence checks compare digests across replicas
    /// after faults heal and traffic drains; the default `None` opts
    /// out. See [`simnet::Actor::state_digest`].
    fn state_digest(&self) -> Option<u64> {
        None
    }
}

/// Wraps a [`Replica`] as a simulator actor.
pub struct ReplicaActor<R>(pub R);

impl<P: ProtoMessage, R: Replica<P>> Actor<Envelope<P>> for ReplicaActor<R> {
    fn on_start(&mut self, ctx: &mut Context<Envelope<P>>) {
        self.0.on_start(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: Envelope<P>, ctx: &mut Context<Envelope<P>>) {
        match msg {
            Envelope::Request(req) => self.0.on_request(from, req, ctx),
            Envelope::Proto(p) => self.0.on_proto(from, p, ctx),
            // Replicas do not receive client replies; a stray one (e.g.
            // a redirect bouncing off a misconfigured client) is dropped.
            // Shard-control traffic is handled by the gate decorator in
            // sharded deployments; a bare replica drops it too.
            Envelope::Reply(_) | Envelope::ReplyBatch(_) | Envelope::Shard(_) => {}
        }
    }

    fn on_timer(&mut self, id: TimerId, kind: u64, ctx: &mut Context<Envelope<P>>) {
        self.0.on_timer(id, kind, ctx);
    }

    fn state_digest(&self) -> Option<u64> {
        self.0.state_digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Command, Operation, RequestId};
    use simnet::{CpuCostModel, SimTime, Simulation, Topology};

    #[derive(Debug, Clone)]
    struct Echo;
    impl ProtoMessage for Echo {
        fn wire_size(&self) -> usize {
            8
        }
    }

    /// Replica that immediately acks every request.
    struct AckAll {
        requests_seen: u64,
    }

    impl Replica<Echo> for AckAll {
        fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<Echo>) {
            self.requests_seen += 1;
            ctx.reply(client, ClientReply::ok(req.command.id, None));
        }
        fn on_proto(&mut self, _from: NodeId, _msg: Echo, _ctx: &mut Ctx<Echo>) {}
    }

    /// Minimal client: sends one request on start.
    struct OneShot {
        replica: NodeId,
        replies: u64,
    }

    impl Actor<Envelope<Echo>> for OneShot {
        fn on_start(&mut self, ctx: &mut Context<Envelope<Echo>>) {
            let id = RequestId {
                client: ctx.node(),
                seq: 1,
            };
            ctx.send(
                self.replica,
                Envelope::Request(ClientRequest {
                    command: Command {
                        id,
                        op: Operation::Get(1),
                    },
                }),
            );
        }
        fn on_message(
            &mut self,
            _f: NodeId,
            msg: Envelope<Echo>,
            _ctx: &mut Context<Envelope<Echo>>,
        ) {
            if matches!(msg, Envelope::Reply(r) if r.ok) {
                self.replies += 1;
            }
        }
        fn on_timer(&mut self, _i: TimerId, _k: u64, _c: &mut Context<Envelope<Echo>>) {}
    }

    #[test]
    fn request_reply_through_adapter() {
        let mut sim: Simulation<Envelope<Echo>> =
            Simulation::new(Topology::lan(2), CpuCostModel::free(), 1);
        sim.add_actor(Box::new(ReplicaActor(AckAll { requests_seen: 0 })));
        sim.add_actor(Box::new(OneShot {
            replica: NodeId(0),
            replies: 0,
        }));
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.stats().nodes[0].msgs_received, 1);
        assert_eq!(
            sim.stats().nodes[1].msgs_received,
            1,
            "client got its reply"
        );
    }
}
