//! The unified experiment API: one protocol-generic, substrate-generic
//! entry point for clusters, workloads, and measurements.
//!
//! The paper's whole argument is comparative — PigPaxos vs. Paxos vs.
//! EPaxos across node counts, relay-group counts, and workloads — so
//! the framework makes the four experimental axes orthogonal builder
//! parameters:
//!
//! * **protocol** — any [`ProtocolSpec`] (a protocol crate's config
//!   type: `PaxosConfig`, `PigConfig`, `EpaxosConfig`);
//! * **topology** — a [`simnet::Topology`] (LAN, multi-region WAN);
//! * **workload & clients** — [`Workload`], client count, pipeline
//!   depth, target policy;
//! * **substrate** — the deterministic simulator
//!   ([`Experiment::run_sim`]), real OS threads with in-process
//!   channels ([`Experiment::run_threads`]), or real TCP sockets over
//!   loopback with full wire encoding ([`Experiment::run_net`]).
//!
//! All substrates drive the *same unmodified replica actors* and yield
//! the same [`RunResult`] shape — substrate parity is a first-class API
//! property, not a demo.
//!
//! ```
//! use paxi::Experiment;
//! # use paxi::{ClusterConfig, Envelope, ProtocolSpec, TargetPolicy};
//! # use paxi::{ClientReply, ClientRequest};
//! # use paxi::{Ctx, Replica, ReplicaActor, ReplicaCtx};
//! # use simnet::{Actor, NodeId, SimDuration};
//! # #[derive(Debug, Clone)]
//! # struct NoMsg;
//! # impl paxi::ProtoMessage for NoMsg { fn wire_size(&self) -> usize { 0 } }
//! # struct Ack(ClusterConfig, u64);
//! # impl Replica<NoMsg> for Ack {
//! #     fn on_request(&mut self, c: NodeId, req: ClientRequest, ctx: &mut Ctx<NoMsg>) {
//! #         self.0.safety.record(0, self.1, req.command.id);
//! #         self.1 += 1;
//! #         ctx.reply(c, ClientReply::ok(req.command.id, None));
//! #     }
//! #     fn on_proto(&mut self, _f: NodeId, _m: NoMsg, _c: &mut Ctx<NoMsg>) {}
//! # }
//! # #[derive(Clone)]
//! # struct AckSpec;
//! # impl ProtocolSpec for AckSpec {
//! #     type Msg = NoMsg;
//! #     fn protocol_name(&self) -> &'static str { "ack" }
//! #     fn build_replica(
//! #         &self,
//! #         _node: NodeId,
//! #         cluster: &ClusterConfig,
//! #     ) -> Box<dyn Actor<Envelope<NoMsg>> + Send> {
//! #         Box::new(ReplicaActor(Ack(cluster.clone(), 0)))
//! #     }
//! # }
//! // A 1-node "cluster" of instant-ack replicas, 4 closed-loop clients:
//! let result = Experiment::lan(AckSpec, 1)
//!     .clients(4)
//!     .warmup(SimDuration::from_millis(100))
//!     .measure(SimDuration::from_millis(400))
//!     .run_sim(7);
//! assert!(result.violations.is_empty());
//! assert!(result.throughput > 100.0);
//! ```
//!
//! With a real protocol crate in scope the same shape reads:
//!
//! ```text
//! let result = Experiment::lan(PigConfig::lan(3), 25)
//!     .clients(40)
//!     .run_sim(paxi::DEFAULT_SEED);
//! ```
//!
//! and sweeps that used to be copy-pasted binaries become loops:
//!
//! ```text
//! for r in 2..=6 {
//!     let t = Experiment::lan(PigConfig::lan(r), 25)
//!         .max_throughput(paxi::DEFAULT_SEED, &[20, 40, 80, 160]);
//! }
//! ```

use crate::client::{ClientRecorder, ClosedLoopClient, TargetPolicy};
use crate::cluster::ClusterConfig;
use crate::envelope::{Envelope, ProtoMessage};
use crate::harness::{self, LoadPoint, RunResult, RunSpec};
use crate::metrics::{mean, percentile};
use crate::workload::Workload;
use simnet::{Actor, CpuCostModel, NodeId, RegionId, SimDuration, SimTime, Simulation, Topology};
use std::time::Duration;

/// A consensus protocol as seen by the experiment harness: a cheaply
/// clonable configuration value that can stamp out one replica actor
/// per node.
///
/// Protocol crates implement this on their config types (`PaxosConfig`,
/// `PigConfig`, `EpaxosConfig`), which keeps every protocol-specific
/// knob — batching, relay coalescing, PQR mode, quorum shapes — inside
/// the one typed value a caller already constructs, while topology,
/// workload, and substrate stay protocol-agnostic in [`Experiment`].
pub trait ProtocolSpec: Clone + 'static {
    /// The protocol's internal wire message type. `Send` because the
    /// thread substrate moves messages across OS threads.
    type Msg: ProtoMessage + Send;

    /// Short protocol name for reports ("paxos", "pigpaxos", "epaxos").
    fn protocol_name(&self) -> &'static str;

    /// Build the replica actor for `node`. The actor must be `Send` so
    /// the same factory serves both the simulator and the thread
    /// runtime.
    fn build_replica(
        &self,
        node: NodeId,
        cluster: &ClusterConfig,
    ) -> Box<dyn Actor<Envelope<Self::Msg>> + Send>;

    /// The target policy clients use when the experiment does not set
    /// one explicitly. Defaults to the stable leader (replica 0);
    /// leaderless protocols (EPaxos) and proxy-read configurations
    /// (PigPaxos with PQR) override this with a random spread.
    fn default_target(&self, replicas: &[NodeId]) -> TargetPolicy {
        TargetPolicy::Fixed(replicas[0])
    }
}

/// One fully described experiment: protocol × topology × workload ×
/// client population, runnable on either execution substrate.
///
/// Construct with [`Experiment::lan`], [`Experiment::wan`], or
/// [`Experiment::builder`] for a custom [`Topology`]; refine with the
/// fluent setters; execute with [`run_sim`](Experiment::run_sim),
/// [`run_sim_with`](Experiment::run_sim_with) (fault injection),
/// [`run_threads`](Experiment::run_threads),
/// [`run_net`](Experiment::run_net) (TCP sockets),
/// [`load_sweep`](Experiment::load_sweep), or
/// [`max_throughput`](Experiment::max_throughput).
///
/// The value is reusable: run methods take `&self`, so one experiment
/// can be executed under several seeds or on both substrates.
#[derive(Clone)]
pub struct Experiment<P: ProtocolSpec> {
    proto: P,
    spec: RunSpec,
    target: Option<TargetPolicy>,
}

impl<P: ProtocolSpec> Experiment<P> {
    /// Entry point: a protocol on an explicit replica topology, with
    /// the paper-default workload, zero clients, and LAN-grade timing
    /// defaults (1 s warmup, 4 s measurement, 100 ms client retry).
    pub fn builder(proto: P, topology: Topology) -> Self {
        let n = topology.num_nodes();
        let mut spec = RunSpec::lan(n, 0);
        spec.topology = topology;
        Experiment {
            proto,
            spec,
            target: None,
        }
    }

    /// An `n_replicas`-node single-region LAN cluster.
    pub fn lan(proto: P, n_replicas: usize) -> Self {
        Self::builder(proto, Topology::lan(n_replicas))
    }

    /// The paper's WAN: `n_replicas` spread over Virginia, California,
    /// and Oregon; clients co-located with the leader in Virginia; a
    /// WAN-grade 2 s client retry timeout.
    pub fn wan(proto: P, n_replicas: usize) -> Self {
        let mut exp = Self::builder(proto, Topology::wan_virginia_california_oregon(n_replicas));
        exp.spec.retry_timeout = SimDuration::from_secs(2);
        exp
    }

    // ---- fluent settings -------------------------------------------------

    /// Number of closed-loop clients (the offered-load control).
    pub fn clients(mut self, n: usize) -> Self {
        self.spec.n_clients = n;
        self
    }

    /// Requests each client keeps in flight (default 1; higher values
    /// model one connection multiplexing several user sessions).
    pub fn client_pipeline(mut self, depth: usize) -> Self {
        self.spec.client_pipeline = depth;
        self
    }

    /// Extra client-side topology nodes with **no** harness-spawned
    /// clients; a [`run_sim_with`](Experiment::run_sim_with) hook can
    /// populate them with custom client actors (sequential checkers,
    /// linearizability probes).
    pub fn extra_client_nodes(mut self, n: usize) -> Self {
        self.spec.extra_client_nodes = n;
        self
    }

    /// Region the clients attach to (default 0 — the leader's region).
    pub fn client_region(mut self, region: RegionId) -> Self {
        self.spec.client_region = region;
        self
    }

    /// CPU cost model for every node (default
    /// [`CpuCostModel::calibrated`]).
    pub fn cost(mut self, cost: CpuCostModel) -> Self {
        self.spec.cost = cost;
        self
    }

    /// Workload specification (default [`Workload::paper_default`]).
    pub fn workload(mut self, workload: Workload) -> Self {
        self.spec.workload = workload;
        self
    }

    /// Ramp-up time excluded from measurement.
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.spec.warmup = warmup;
        self
    }

    /// Measurement window length.
    pub fn measure(mut self, measure: SimDuration) -> Self {
        self.spec.measure = measure;
        self
    }

    /// Client retry timeout.
    pub fn retry_timeout(mut self, timeout: SimDuration) -> Self {
        self.spec.retry_timeout = timeout;
        self
    }

    /// Also produce a per-bucket throughput timeline (Fig. 13 style).
    pub fn timeline_bucket(mut self, bucket: SimDuration) -> Self {
        self.spec.timeline_bucket = Some(bucket);
        self
    }

    /// Quiesce for `d` after the measurement window (clients crashed,
    /// replicas left running) and collect per-replica state digests
    /// into [`RunResult::replica_digests`] for convergence checks.
    /// Default [`SimDuration::ZERO`] skips the phase — the event
    /// schedule then stays bit-identical to a drain-less run.
    pub fn drain(mut self, d: SimDuration) -> Self {
        self.spec.drain = d;
        self
    }

    /// Capture a full message trace (fingerprint, per-hop leader
    /// message accounting, [`RunResult::label_counts`]). Off by default
    /// — high-throughput runs generate millions of entries.
    pub fn capture_trace(mut self) -> Self {
        self.spec.capture_trace = true;
        self
    }

    /// Override the client target policy. Without this, clients use the
    /// protocol's [`ProtocolSpec::default_target`].
    pub fn target(mut self, target: TargetPolicy) -> Self {
        self.target = Some(target);
        self
    }

    // ---- accessors -------------------------------------------------------

    /// The protocol configuration this experiment runs.
    pub fn protocol(&self) -> &P {
        &self.proto
    }

    /// The replica topology (clients are appended at run time).
    pub fn topology(&self) -> &Topology {
        &self.spec.topology
    }

    /// Number of consensus replicas.
    pub fn n_replicas(&self) -> usize {
        self.spec.n_replicas
    }

    /// The target policy clients will use: the explicit override if
    /// set, otherwise the protocol's default.
    pub fn resolved_target(&self) -> TargetPolicy {
        match &self.target {
            Some(t) => t.clone(),
            None => {
                let replicas: Vec<NodeId> = (0..self.spec.n_replicas).map(NodeId::from).collect();
                self.proto.default_target(&replicas)
            }
        }
    }

    // ---- execution -------------------------------------------------------

    /// Run on the deterministic simulator. The seed fixes every source
    /// of randomness; identical `(experiment, seed)` pairs produce
    /// bit-identical results (the determinism contract the perf gate
    /// relies on).
    pub fn run_sim(&self, seed: u64) -> RunResult {
        self.run_sim_with(seed, |_, _| {})
    }

    /// Run on the simulator with a setup/fault-injection hook. The hook
    /// fires after all actors are registered and before the simulation
    /// starts — schedule crashes, partitions, drop rates, or add custom
    /// client actors into [`extra_client_nodes`](Self::extra_client_nodes)
    /// slots. It also receives the run's [`ClusterConfig`], whose
    /// shared safety monitor can be cloned out for post-run decided-log
    /// inspection.
    pub fn run_sim_with<H>(&self, seed: u64, hook: H) -> RunResult
    where
        H: FnOnce(&mut Simulation<Envelope<P::Msg>>, &ClusterConfig),
    {
        let mut spec = self.spec.clone();
        spec.seed = seed;
        let target = self.resolved_target();
        harness::execute(
            &spec,
            |node, cluster| self.proto.build_replica(node, cluster),
            target,
            hook,
        )
    }

    /// Run the *same* experiment on real OS threads via `pig-runtime`:
    /// one thread per node, crossbeam channels as the network,
    /// wall-clock timers — no simulator anywhere. Per-node RNG seeds
    /// derive from `seed` with the same scheme the simulator uses
    /// ([`simnet::derive_node_seed`]).
    ///
    /// Wall-clock execution is not deterministic, so the whole `wall`
    /// window is measured (the sim-substrate `warmup`/`measure` split
    /// does not apply) and the network-accounting fields of
    /// [`RunResult`] that only the simulator can observe are empty:
    /// `node_msgs`, the `*_msgs_per_op` loads, and every
    /// `capture_trace` metric. Client-observed metrics (throughput,
    /// latency percentiles, samples), the decided-slot count, and the
    /// machine-checked safety violations are fully populated — which is
    /// exactly what substrate-parity assertions need.
    pub fn run_threads(&self, seed: u64, wall: Duration) -> RunResult {
        let n = self.spec.n_replicas;
        let cluster = ClusterConfig::new(n);
        let mut rt: pig_runtime::Runtime<Envelope<P::Msg>> = pig_runtime::Runtime::new(seed);
        for i in 0..n {
            rt.add_actor(self.proto.build_replica(NodeId::from(i), &cluster));
        }
        let recorder = ClientRecorder::new();
        let target = self.resolved_target();
        for _ in 0..self.spec.n_clients {
            rt.add_actor(
                ClosedLoopClient::<P::Msg>::new(
                    target.clone(),
                    self.spec.workload.clone(),
                    recorder.clone(),
                    self.spec.retry_timeout,
                )
                .with_pipeline(self.spec.client_pipeline),
            );
        }
        rt.run_for(wall);

        let samples = recorder.samples();
        let secs = wall.as_secs_f64().max(f64::MIN_POSITIVE);
        let lat_ms: Vec<f64> = samples
            .iter()
            .map(|s| s.latency().as_millis_f64())
            .collect();
        let timeline = match self.spec.timeline_bucket {
            None => Vec::new(),
            Some(bucket) => harness::bucket_timeline(
                &samples,
                bucket,
                SimTime::from_nanos(wall.as_nanos() as u64),
            ),
        };
        RunResult {
            throughput: samples.len() as f64 / secs,
            mean_latency_ms: mean(&lat_ms),
            p50_latency_ms: percentile(&lat_ms, 50.0),
            p99_latency_ms: percentile(&lat_ms, 99.0),
            samples: samples.len(),
            decided: cluster.safety.decided_count(),
            violations: cluster.safety.violations(),
            node_msgs: Vec::new(),
            leader_msgs_per_op: 0.0,
            follower_msgs_per_op: 0.0,
            cross_region_msgs_per_op: 0.0,
            timeline,
            client_retries: recorder.retries(),
            max_log_len: cluster.stats.max_log_len(),
            snapshots_taken: cluster.stats.snapshots_taken(),
            snapshots_installed: cluster.stats.snapshots_installed(),
            trace_fingerprint: None,
            leader_proto_sent_per_op: None,
            leader_replies_per_op: None,
            leader_sent_per_op: None,
            leader_proto_recv_per_op: None,
            label_counts: None,
            pqr_reads_started: cluster.stats.pqr_started(),
            pqr_reads_inflight: cluster.stats.pqr_inflight(),
            replica_digests: Vec::new(),
        }
    }

    /// Run the *same* experiment over real TCP sockets via
    /// `pig_runtime::NetRuntime`: one thread per node, a loopback TCP
    /// connection per communicating pair, every cross-node message
    /// encoded to its [`simnet::Wire`] bytes and decoded on arrival —
    /// the full production I/O path minus geographic distance.
    ///
    /// Requires `P::Msg: Wire` (all three protocol crates implement
    /// it); the [`Envelope`] blanket impl then covers the client
    /// traffic. The encoded size of every message equals its
    /// [`ProtoMessage::wire_size`], so the bytes crossing these sockets
    /// are exactly the bytes the simulator's CPU model charges for.
    ///
    /// Like [`run_threads`](Self::run_threads) this substrate is not
    /// deterministic and measures the whole `wall` window. Unlike
    /// `run_threads`, the transport observes real per-node traffic, so
    /// [`RunResult::node_msgs`] (sent + received per node, replicas
    /// first then clients) and [`RunResult::label_counts`] are
    /// populated — counted over the whole run by the transport, not
    /// over a measurement window by a trace, so compare rates rather
    /// than raw counts against simulator runs.
    pub fn run_net(&self, seed: u64, wall: Duration) -> RunResult
    where
        P::Msg: simnet::Wire,
    {
        let n = self.spec.n_replicas;
        let cluster = ClusterConfig::new(n);
        let mut rt: pig_runtime::NetRuntime<Envelope<P::Msg>> = pig_runtime::NetRuntime::new(seed);
        for i in 0..n {
            rt.add_actor(self.proto.build_replica(NodeId::from(i), &cluster));
        }
        let recorder = ClientRecorder::new();
        let target = self.resolved_target();
        for _ in 0..self.spec.n_clients {
            rt.add_actor(
                ClosedLoopClient::<P::Msg>::new(
                    target.clone(),
                    self.spec.workload.clone(),
                    recorder.clone(),
                    self.spec.retry_timeout,
                )
                .with_pipeline(self.spec.client_pipeline),
            );
        }
        let net = rt.run_for(wall);

        let samples = recorder.samples();
        let secs = wall.as_secs_f64().max(f64::MIN_POSITIVE);
        let lat_ms: Vec<f64> = samples
            .iter()
            .map(|s| s.latency().as_millis_f64())
            .collect();
        let timeline = match self.spec.timeline_bucket {
            None => Vec::new(),
            Some(bucket) => harness::bucket_timeline(
                &samples,
                bucket,
                SimTime::from_nanos(wall.as_nanos() as u64),
            ),
        };
        let node_msgs: Vec<u64> = net
            .per_node_sent
            .iter()
            .zip(net.per_node_received.iter())
            .map(|(s, r)| s + r)
            .collect();
        RunResult {
            throughput: samples.len() as f64 / secs,
            mean_latency_ms: mean(&lat_ms),
            p50_latency_ms: percentile(&lat_ms, 50.0),
            p99_latency_ms: percentile(&lat_ms, 99.0),
            samples: samples.len(),
            decided: cluster.safety.decided_count(),
            violations: cluster.safety.violations(),
            node_msgs,
            leader_msgs_per_op: 0.0,
            follower_msgs_per_op: 0.0,
            cross_region_msgs_per_op: 0.0,
            timeline,
            client_retries: recorder.retries(),
            max_log_len: cluster.stats.max_log_len(),
            snapshots_taken: cluster.stats.snapshots_taken(),
            snapshots_installed: cluster.stats.snapshots_installed(),
            trace_fingerprint: None,
            leader_proto_sent_per_op: None,
            leader_replies_per_op: None,
            leader_sent_per_op: None,
            leader_proto_recv_per_op: None,
            label_counts: Some(net.delivered_by_label),
            pqr_reads_started: cluster.stats.pqr_started(),
            pqr_reads_inflight: cluster.stats.pqr_inflight(),
            replica_digests: Vec::new(),
        }
    }

    /// Sweep offered load (client counts) on the simulator and return
    /// one point per count — the raw material of the paper's
    /// latency/throughput figures (8–11). Each point derives its seed
    /// from `seed` and its client count, matching the historical
    /// harness behaviour.
    pub fn load_sweep(&self, seed: u64, client_counts: &[usize]) -> Vec<LoadPoint> {
        client_counts
            .iter()
            .map(|&clients| {
                let result = self
                    .clone()
                    .clients(clients)
                    .run_sim(harness::sweep_seed(seed, clients));
                LoadPoint { clients, result }
            })
            .collect()
    }

    /// Maximum throughput over a load sweep (the paper's "max
    /// throughput" metric used in Figs. 7, 12, 13).
    pub fn max_throughput(&self, seed: u64, client_counts: &[usize]) -> f64 {
        self.load_sweep(seed, client_counts)
            .iter()
            .map(|p| p.result.throughput)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{ClientReply, ClientRequest};
    use crate::replica::{Ctx, Replica, ReplicaActor, ReplicaCtx};

    #[derive(Debug, Clone)]
    struct NoProto;
    impl ProtoMessage for NoProto {
        fn wire_size(&self) -> usize {
            0
        }
    }
    impl simnet::Wire for NoProto {
        fn encode_into(&self, _out: &mut Vec<u8>) {
            unreachable!("instant-ack replicas never send protocol messages")
        }
        fn decode(_r: &mut simnet::WireReader<'_>) -> Result<Self, simnet::WireError> {
            Err(simnet::WireError::BadTag {
                what: "no_proto",
                got: 0,
            })
        }
    }

    /// Instant-ack replica recording decisions into the safety monitor.
    struct Instant {
        slot: u64,
        cluster: ClusterConfig,
    }
    impl Replica<NoProto> for Instant {
        fn on_request(&mut self, client: NodeId, req: ClientRequest, ctx: &mut Ctx<NoProto>) {
            self.cluster.safety.record(0, self.slot, req.command.id);
            self.slot += 1;
            ctx.reply(client, ClientReply::ok(req.command.id, None));
        }
        fn on_proto(&mut self, _f: NodeId, _m: NoProto, _c: &mut Ctx<NoProto>) {}
    }

    #[derive(Clone)]
    struct InstantSpec;
    impl ProtocolSpec for InstantSpec {
        type Msg = NoProto;
        fn protocol_name(&self) -> &'static str {
            "instant"
        }
        fn build_replica(
            &self,
            _node: NodeId,
            cluster: &ClusterConfig,
        ) -> Box<dyn Actor<Envelope<NoProto>> + Send> {
            Box::new(ReplicaActor(Instant {
                slot: 0,
                cluster: cluster.clone(),
            }))
        }
    }

    fn small() -> Experiment<InstantSpec> {
        Experiment::lan(InstantSpec, 1)
            .warmup(SimDuration::from_millis(200))
            .measure(SimDuration::from_millis(800))
    }

    #[test]
    fn builder_round_trips_settings() {
        let exp = small()
            .clients(4)
            .client_pipeline(2)
            .capture_trace()
            .target(TargetPolicy::Fixed(NodeId(0)));
        assert_eq!(exp.n_replicas(), 1);
        assert_eq!(exp.protocol().protocol_name(), "instant");
        assert!(matches!(
            exp.resolved_target(),
            TargetPolicy::Fixed(NodeId(0))
        ));
    }

    #[test]
    fn default_target_is_protocol_defined() {
        let exp = Experiment::lan(InstantSpec, 3);
        assert!(matches!(
            exp.resolved_target(),
            TargetPolicy::Fixed(NodeId(0))
        ));
    }

    #[test]
    fn run_sim_measures_and_checks_safety() {
        let r = small().clients(4).run_sim(3);
        assert!(r.throughput > 100.0, "throughput {}", r.throughput);
        assert!(r.violations.is_empty());
        assert!(r.decided > 0);
        assert!(r.p99_latency_ms >= r.p50_latency_ms);
    }

    #[test]
    fn run_sim_matches_hand_built_spec_exactly() {
        // The builder is plumbing over the engine, not a behaviour
        // change: the same settings handed straight to the engine must
        // produce a bit-identical run.
        let new = small().clients(4).capture_trace().run_sim(42);
        let spec = RunSpec {
            warmup: SimDuration::from_millis(200),
            measure: SimDuration::from_millis(800),
            seed: 42,
            capture_trace: true,
            ..RunSpec::lan(1, 4)
        };
        let old = harness::execute(
            &spec,
            |_, cluster| {
                Box::new(ReplicaActor(Instant {
                    slot: 0,
                    cluster: cluster.clone(),
                }))
            },
            TargetPolicy::Fixed(NodeId(0)),
            |_, _| {},
        );
        assert_eq!(new.samples, old.samples);
        assert_eq!(new.node_msgs, old.node_msgs);
        assert_eq!(new.trace_fingerprint, old.trace_fingerprint);
        assert_eq!(new.throughput, old.throughput);
    }

    #[test]
    fn run_sim_is_deterministic_per_seed() {
        let a = small().clients(2).run_sim(7);
        let b = small().clients(2).run_sim(7);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.node_msgs, b.node_msgs);
        let c = small().clients(2).run_sim(8);
        assert_ne!(a.node_msgs, c.node_msgs, "seed must matter");
    }

    #[test]
    fn load_sweep_and_max_throughput() {
        let exp = small();
        let pts = exp.load_sweep(0, &[1, 2, 4]);
        assert_eq!(pts.len(), 3);
        assert!(pts[2].result.throughput > pts[0].result.throughput);
        let m = exp.max_throughput(0, &[1, 4]);
        assert!(m >= pts[0].result.throughput);
    }

    #[test]
    fn run_threads_same_experiment_same_result_shape() {
        let exp = small().clients(2);
        let r = exp.run_threads(7, Duration::from_millis(150));
        assert!(r.violations.is_empty());
        assert!(r.samples > 20, "threads made progress: {}", r.samples);
        assert!(r.throughput > 100.0);
        assert!(r.decided > 0);
        // Simulator-only accounting is absent, not garbage.
        assert!(r.node_msgs.is_empty());
        assert!(r.trace_fingerprint.is_none());
    }

    #[test]
    fn run_net_same_experiment_over_tcp() {
        let exp = small().clients(2);
        let r = exp.run_net(7, Duration::from_millis(250));
        assert!(r.violations.is_empty());
        assert!(r.samples > 20, "tcp made progress: {}", r.samples);
        assert!(r.decided > 0);
        // The transport observes real traffic: per-node counts and
        // label counts are populated (unlike `run_threads`).
        assert_eq!(r.node_msgs.len(), 3, "1 replica + 2 clients");
        assert!(r.node_msgs.iter().all(|&m| m > 0));
        let labels = r.label_counts.as_ref().expect("net counts labels");
        assert!(labels.get("request").copied().unwrap_or(0) > 20);
        assert!(labels.get("reply").copied().unwrap_or(0) > 20);
    }

    #[test]
    fn extra_client_nodes_leave_slots_for_custom_actors() {
        use std::cell::RefCell;
        use std::rc::Rc;

        struct OneShot {
            to: NodeId,
            got: Rc<RefCell<u32>>,
        }
        impl Actor<Envelope<NoProto>> for OneShot {
            fn on_start(&mut self, ctx: &mut simnet::Context<Envelope<NoProto>>) {
                let id = crate::command::RequestId {
                    client: ctx.node(),
                    seq: 1,
                };
                ctx.send(
                    self.to,
                    Envelope::Request(ClientRequest {
                        command: crate::command::Command {
                            id,
                            op: crate::command::Operation::Get(1),
                        },
                    }),
                );
            }
            fn on_message(
                &mut self,
                _f: NodeId,
                msg: Envelope<NoProto>,
                _c: &mut simnet::Context<Envelope<NoProto>>,
            ) {
                if matches!(msg, Envelope::Reply(r) if r.ok) {
                    *self.got.borrow_mut() += 1;
                }
            }
            fn on_timer(
                &mut self,
                _i: simnet::TimerId,
                _k: u64,
                _c: &mut simnet::Context<Envelope<NoProto>>,
            ) {
            }
        }

        let got = Rc::new(RefCell::new(0));
        let got2 = got.clone();
        let r = small()
            .extra_client_nodes(1)
            .run_sim_with(5, move |sim, _| {
                sim.add_actor(Box::new(OneShot {
                    to: NodeId(0),
                    got: got2,
                }));
            });
        assert!(r.violations.is_empty());
        assert_eq!(*got.borrow(), 1, "custom client actor got its reply");
    }
}
