//! Cluster configuration shared by all protocol replicas.

use crate::safety::SafetyMonitor;
use crate::snapshot::CompactionStats;
use simnet::NodeId;

/// Static description of the consensus cluster a replica belongs to.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// All replica node ids (dense, starting at 0).
    pub replicas: Vec<NodeId>,
    /// The initially designated (stable) leader.
    pub leader: NodeId,
    /// Shared safety checker for this run.
    pub safety: SafetyMonitor,
    /// Shared compaction/memory counters for this run (replicas report
    /// retained log lengths and snapshot events; the harness reads the
    /// aggregate into `RunResult`).
    pub stats: CompactionStats,
}

impl ClusterConfig {
    /// A cluster of `n` replicas with node 0 as the stable leader.
    pub fn new(n: usize) -> Self {
        ClusterConfig {
            replicas: (0..n).map(NodeId::from).collect(),
            leader: NodeId(0),
            safety: SafetyMonitor::new(),
            stats: CompactionStats::new(),
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Majority quorum size for this cluster.
    pub fn majority(&self) -> usize {
        crate::quorum::majority(self.n())
    }

    /// All replicas except `me`.
    pub fn peers(&self, me: NodeId) -> Vec<NodeId> {
        self.replicas.iter().copied().filter(|&r| r != me).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let c = ClusterConfig::new(5);
        assert_eq!(c.n(), 5);
        assert_eq!(c.leader, NodeId(0));
        assert_eq!(c.majority(), 3);
        let peers = c.peers(NodeId(0));
        assert_eq!(peers.len(), 4);
        assert!(!peers.contains(&NodeId(0)));
    }

    #[test]
    fn safety_handle_is_shared() {
        let c = ClusterConfig::new(3);
        let c2 = c.clone();
        c.safety.record(
            0,
            0,
            crate::command::RequestId {
                client: NodeId(9),
                seq: 1,
            },
        );
        assert_eq!(c2.safety.decided_count(), 1);
    }
}
