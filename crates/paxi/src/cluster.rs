//! Cluster configuration shared by all protocol replicas.

use crate::safety::SafetyMonitor;
use crate::snapshot::CompactionStats;
use simnet::NodeId;

/// Static description of the consensus cluster a replica belongs to.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// All replica node ids (dense, starting at 0).
    pub replicas: Vec<NodeId>,
    /// The initially designated (stable) leader.
    pub leader: NodeId,
    /// Shared safety checker for this run.
    pub safety: SafetyMonitor,
    /// Shared compaction/memory counters for this run (replicas report
    /// retained log lengths and snapshot events; the harness reads the
    /// aggregate into `RunResult`).
    pub stats: CompactionStats,
    /// True when a client's sequence numbers may legitimately skip this
    /// cluster (sharded deployments: each key routes to one group, so
    /// any single group sees a gappy per-client subsequence). Protocols
    /// that enforce per-client issue order in their decided log must
    /// turn that sequencing off when set, or a gap would be held back
    /// forever waiting for commands that went to another group.
    pub client_gaps: bool,
}

impl ClusterConfig {
    /// A cluster of `n` replicas with node 0 as the stable leader.
    pub fn new(n: usize) -> Self {
        ClusterConfig {
            replicas: (0..n).map(NodeId::from).collect(),
            leader: NodeId(0),
            safety: SafetyMonitor::new(),
            stats: CompactionStats::new(),
            client_gaps: false,
        }
    }

    /// A cluster of `n` replicas occupying the contiguous node-id range
    /// `[start, start + n)`, with the first as the stable leader. Shard
    /// groups use this to carve disjoint namespaces out of one node-id
    /// space; each group gets its own safety monitor and compaction
    /// counters (merged at result assembly). Sets `client_gaps`: a
    /// range-carved group only ever sees the slice of each client's
    /// command sequence that routes to it.
    pub fn with_range(start: usize, n: usize) -> Self {
        ClusterConfig {
            replicas: (start..start + n).map(NodeId::from).collect(),
            leader: NodeId::from(start),
            safety: SafetyMonitor::new(),
            stats: CompactionStats::new(),
            client_gaps: true,
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.replicas.len()
    }

    /// Majority quorum size for this cluster.
    pub fn majority(&self) -> usize {
        crate::quorum::majority(self.n())
    }

    /// All replicas except `me`.
    pub fn peers(&self, me: NodeId) -> Vec<NodeId> {
        self.replicas.iter().copied().filter(|&r| r != me).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basics() {
        let c = ClusterConfig::new(5);
        assert_eq!(c.n(), 5);
        assert_eq!(c.leader, NodeId(0));
        assert_eq!(c.majority(), 3);
        let peers = c.peers(NodeId(0));
        assert_eq!(peers.len(), 4);
        assert!(!peers.contains(&NodeId(0)));
    }

    #[test]
    fn range_cluster_offsets_ids_and_leader() {
        let c = ClusterConfig::with_range(6, 3);
        assert_eq!(c.replicas, vec![NodeId(6), NodeId(7), NodeId(8)]);
        assert_eq!(c.leader, NodeId(6));
        assert_eq!(c.majority(), 2);
        assert_eq!(c.peers(NodeId(7)), vec![NodeId(6), NodeId(8)]);
    }

    #[test]
    fn safety_handle_is_shared() {
        let c = ClusterConfig::new(3);
        let c2 = c.clone();
        c.safety.record(
            0,
            0,
            crate::command::RequestId {
                client: NodeId(9),
                seq: 1,
            },
        );
        assert_eq!(c2.safety.decided_count(), 1);
    }
}
