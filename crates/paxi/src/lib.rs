//! # paxi — a level playground for consensus protocols
//!
//! Rust counterpart of the Paxi framework the PigPaxos paper builds on:
//! everything a replication protocol needs *except* the protocol itself.
//!
//! - [`Ballot`], [`Log`], [`KvStore`]: consensus bookkeeping and the
//!   replicated state machine.
//! - [`quorum`]: majority, flexible (Howard et al.), and EPaxos fast
//!   quorums, plus vote tracking.
//! - [`Envelope`] / [`Replica`] / [`ReplicaActor`]: the wire format and
//!   the adapter that runs a protocol replica on the `simnet` simulator.
//! - [`Workload`] / [`ClosedLoopClient`]: the benchmark workload
//!   generator and closed-loop clients.
//! - [`SafetyMonitor`]: machine-checks agreement on every run.
//! - [`harness`]: experiment driver producing the metrics the paper's
//!   evaluation plots.
//!
//! Protocol crates (`paxos`, `pigpaxos`, `epaxos`) implement
//! [`Replica`] on top of these pieces, exactly as the paper's protocols
//! were implemented inside Paxi.

#![warn(missing_docs)]

pub mod ballot;
pub mod batch;
pub mod client;
pub mod cluster;
pub mod command;
pub mod envelope;
pub mod harness;
pub mod kv;
pub mod log;
pub mod metrics;
pub mod quorum;
pub mod replica;
pub mod safety;
pub mod session;
pub mod workload;

pub use ballot::Ballot;
pub use batch::{BatchConfig, BatchPush, Batcher, ReplyBatcher, ReplyCoalesce};
pub use client::{ClientRecorder, ClosedLoopClient, Sample, TargetPolicy};
pub use cluster::ClusterConfig;
pub use command::{
    ClientReply, ClientRequest, Command, Key, Operation, RequestId, Value, HEADER_BYTES,
};
pub use envelope::{Envelope, ProtoMessage};
pub use harness::{
    load_sweep, max_throughput, run, run_spec, LoadPoint, RunResult, RunSpec, DEFAULT_SEED,
};
pub use kv::KvStore;
pub use log::{Log, LogEntry};
pub use quorum::{fast_quorum, majority, FlexibleQuorum, VoteTracker};
pub use replica::{Ctx, Replica, ReplicaActor, ReplicaCtx};
pub use safety::SafetyMonitor;
pub use session::{SessionTable, DEFAULT_SESSION_WINDOW};
pub use workload::{KeyDistribution, Workload};
