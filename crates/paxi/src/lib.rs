//! # paxi — a level playground for consensus protocols
//!
//! Rust counterpart of the Paxi framework the PigPaxos paper builds on:
//! everything a replication protocol needs *except* the protocol itself.
//!
//! ## Running experiments: [`Experiment`]
//!
//! The public entry point is the [`Experiment`] builder, which makes
//! the four experimental axes orthogonal:
//!
//! | axis | type | examples |
//! |---|---|---|
//! | protocol | any [`ProtocolSpec`] | `PaxosConfig`, `PigConfig`, `EpaxosConfig` |
//! | topology | [`simnet::Topology`] | `Topology::lan(25)`, 3-region WAN |
//! | workload & clients | [`Workload`] + builder knobs | read ratio, payload, pipeline |
//! | substrate | a run method | [`Experiment::run_sim`], [`Experiment::run_threads`] |
//!
//! ```text
//! use paxi::Experiment;
//! use pigpaxos::PigConfig;
//!
//! let result = Experiment::lan(PigConfig::lan(3), 25)
//!     .clients(40)
//!     .run_sim(paxi::DEFAULT_SEED);
//! assert!(result.violations.is_empty());
//! ```
//!
//! Sweeps compose as plain loops over the orthogonal axes — one relay
//! group count per iteration, one payload size, one protocol — instead
//! of one hand-wired binary per figure.
//!
//! ## The pieces underneath
//!
//! - [`Ballot`], [`Log`], [`KvStore`]: consensus bookkeeping and the
//!   replicated state machine.
//! - [`SnapshotConfig`] / [`Snapshot`]: log compaction policy and the
//!   state-machine snapshots that bound replica memory and let lagging
//!   peers catch up after the log prefix is truncated (see the
//!   [`snapshot`] module docs).
//! - [`quorum`]: majority, flexible (Howard et al.), and EPaxos fast
//!   quorums, plus vote tracking.
//! - [`Envelope`] / [`Replica`] / [`ReplicaActor`]: the wire format and
//!   the adapter that runs a protocol replica on any [`simnet::Actor`]
//!   substrate (the simulator, or `pig-runtime` threads).
//! - [`Workload`] / [`ClosedLoopClient`]: the benchmark workload
//!   generator and closed-loop clients.
//! - [`SafetyMonitor`]: machine-checks agreement on every run.
//! - [`experiment`]: the unified entry point; [`harness`]: the
//!   measurement engine it drives.
//!
//! Protocol crates (`paxos`, `pigpaxos`, `epaxos`) implement
//! [`Replica`] on top of these pieces — exactly as the paper's
//! protocols were implemented inside Paxi — and expose their config
//! types as [`ProtocolSpec`]s.

#![warn(missing_docs)]

pub mod ballot;
pub mod batch;
pub mod client;
pub mod cluster;
pub mod command;
pub mod envelope;
pub mod experiment;
pub mod harness;
pub mod kv;
pub mod log;
pub mod metrics;
pub mod nemesis;
pub mod quorum;
pub mod replica;
pub mod safety;
pub mod scenario;
pub mod session;
pub mod shard;
pub mod snapshot;
pub mod wire;
pub mod workload;

pub use ballot::Ballot;
pub use batch::{BatchConfig, BatchPush, Batcher, RateEstimator, ReplyBatcher, ReplyCoalesce};
pub use client::{ClientRecorder, ClosedLoopClient, Sample, TargetPolicy};
pub use cluster::ClusterConfig;
pub use command::{
    ClientReply, ClientRequest, Command, Key, Operation, RequestId, Value, HEADER_BYTES,
};
pub use envelope::{Envelope, ProtoMessage};
pub use experiment::{Experiment, ProtocolSpec};
pub use harness::{LoadPoint, RunResult, RunSpec, DEFAULT_SEED};
pub use kv::KvStore;
pub use log::{Log, LogEntry};
pub use nemesis::{Nemesis, NemesisLog};
pub use quorum::{fast_quorum, majority, FlexibleQuorum, VoteTracker};
pub use replica::{Ctx, Replica, ReplicaActor, ReplicaCtx};
pub use safety::SafetyMonitor;
pub use scenario::{Expectations, Fault, FaultEvent, Scenario, ScenarioError, TopologyKind};
pub use session::{SessionTable, DEFAULT_SESSION_WINDOW};
pub use shard::{
    GroupId, KeyRange, ShardCtl, ShardGate, ShardLayout, ShardMap, ShardMove, ShardRouter,
    ShardedExperiment,
};
pub use snapshot::{CompactionStats, Snapshot, SnapshotConfig};
pub use workload::{KeyDistribution, Workload};
