//! Quorum systems and vote tracking.
//!
//! Provides the quorum sizes the paper discusses: classic majorities,
//! flexible quorums (Howard et al. 2016, §2.2 of the paper), and EPaxos
//! fast (super-majority) quorums — plus a small [`VoteTracker`] used by
//! every protocol to tally acks and nacks per ballot.

use crate::ballot::Ballot;
use simnet::NodeId;

/// Size of a majority quorum in a cluster of `n`.
pub fn majority(n: usize) -> usize {
    n / 2 + 1
}

/// EPaxos fast-path quorum size (including the command leader):
/// `F + ⌊(F+1)/2⌋` where `F = ⌊N/2⌋`.
pub fn fast_quorum(n: usize) -> usize {
    let f = n / 2;
    f + f.div_ceil(2)
}

/// A flexible quorum configuration: phase-1 quorums of size `q1` and
/// phase-2 quorums of size `q2`, valid iff `q1 + q2 > n` (they must
/// intersect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlexibleQuorum {
    /// Cluster size.
    pub n: usize,
    /// Phase-1 (leader election) quorum size.
    pub q1: usize,
    /// Phase-2 (replication) quorum size.
    pub q2: usize,
}

impl FlexibleQuorum {
    /// Construct and validate a flexible quorum. Panics if the phase
    /// quorums do not intersect or exceed the cluster size.
    pub fn new(n: usize, q1: usize, q2: usize) -> Self {
        assert!(
            q1 >= 1 && q2 >= 1 && q1 <= n && q2 <= n,
            "quorums must be within [1, n]"
        );
        assert!(q1 + q2 > n, "flexible quorums require q1 + q2 > n");
        FlexibleQuorum { n, q1, q2 }
    }

    /// The classic majority configuration.
    pub fn majority(n: usize) -> Self {
        let m = majority(n);
        FlexibleQuorum { n, q1: m, q2: m }
    }

    /// How many node failures phase-1 can tolerate (`n - q1`).
    pub fn fault_tolerance(&self) -> usize {
        (self.n - self.q1).min(self.n - self.q2)
    }
}

/// Distinct votes fit inline up to this many nodes before spilling to
/// the heap: covers the quorum of every cluster size the experiments
/// run (a majority of n=25 is 13) without a single allocation.
const INLINE_VOTES: usize = 16;

/// A set of node ids optimized for vote tallying: a fixed inline array
/// searched linearly (vote sets are tiny — a quorum's worth of nodes),
/// spilling to a `Vec` only for clusters larger than [`INLINE_VOTES`].
/// Replaces the per-slot `HashSet`s that dominated the leader's
/// allocation profile: a tracker is created for *every proposed slot*,
/// so its first-ack table allocation was a per-command cost.
#[derive(Debug, Clone)]
struct NodeSet {
    inline: [NodeId; INLINE_VOTES],
    len: u8,
    spill: Vec<NodeId>,
}

impl Default for NodeSet {
    fn default() -> Self {
        NodeSet {
            inline: [NodeId(0); INLINE_VOTES],
            len: 0,
            spill: Vec::new(),
        }
    }
}

impl NodeSet {
    fn contains(&self, node: NodeId) -> bool {
        self.inline[..self.len as usize].contains(&node) || self.spill.contains(&node)
    }

    fn insert(&mut self, node: NodeId) {
        if self.contains(node) {
            return;
        }
        if (self.len as usize) < INLINE_VOTES {
            self.inline[self.len as usize] = node;
            self.len += 1;
        } else {
            self.spill.push(node);
        }
    }

    fn len(&self) -> usize {
        self.len as usize + self.spill.len()
    }

    fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    fn iter(&self) -> impl Iterator<Item = &NodeId> {
        self.inline[..self.len as usize].iter().chain(&self.spill)
    }
}

/// Tallies votes for one ballot/round.
#[derive(Debug, Clone)]
pub struct VoteTracker {
    need: usize,
    ballot: Ballot,
    acks: NodeSet,
    nacks: NodeSet,
}

impl VoteTracker {
    /// Track votes toward `need` acks for `ballot`.
    pub fn new(need: usize, ballot: Ballot) -> Self {
        VoteTracker {
            need,
            ballot,
            acks: NodeSet::default(),
            nacks: NodeSet::default(),
        }
    }

    /// Record an ack from `node` for `ballot`. Votes for other ballots
    /// are ignored. Returns `true` if the quorum is now satisfied.
    pub fn ack(&mut self, node: NodeId, ballot: Ballot) -> bool {
        if ballot == self.ballot {
            self.acks.insert(node);
        }
        self.satisfied()
    }

    /// Record a rejection from `node`.
    pub fn nack(&mut self, node: NodeId) {
        self.nacks.insert(node);
    }

    /// True once `need` distinct acks have arrived.
    pub fn satisfied(&self) -> bool {
        self.acks.len() >= self.need
    }

    /// True once so many nacks arrived that the quorum can never be met
    /// in a cluster of `n` nodes.
    pub fn hopeless(&self, n: usize) -> bool {
        n - self.nacks.len() < self.need
    }

    /// Number of acks so far.
    pub fn ack_count(&self) -> usize {
        self.acks.len()
    }

    /// Nodes that have acked.
    pub fn ackers(&self) -> impl Iterator<Item = &NodeId> {
        self.acks.iter()
    }

    /// The ballot being tracked.
    pub fn ballot(&self) -> Ballot {
        self.ballot
    }

    /// Reset for a new ballot (e.g. after a leader retry).
    pub fn reset(&mut self, ballot: Ballot) {
        self.ballot = ballot;
        self.acks.clear();
        self.nacks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_sizes() {
        assert_eq!(majority(1), 1);
        assert_eq!(majority(3), 2);
        assert_eq!(majority(5), 3);
        assert_eq!(majority(9), 5);
        assert_eq!(majority(25), 13);
    }

    #[test]
    fn fast_quorum_sizes() {
        // N=5: F=2, fast = 2 + 1 = 3; N=25: F=12, fast = 12 + 6 = 18.
        assert_eq!(fast_quorum(5), 3);
        assert_eq!(fast_quorum(9), 6);
        assert_eq!(fast_quorum(25), 18);
    }

    #[test]
    fn flexible_quorum_paper_example() {
        // The paper's example: N=10, Q2=3 requires Q1=8.
        let f = FlexibleQuorum::new(10, 8, 3);
        assert_eq!(f.fault_tolerance(), 2);
        let m = FlexibleQuorum::majority(10);
        assert_eq!(m.q1, 6);
        assert_eq!(m.q2, 6);
        assert_eq!(m.fault_tolerance(), 4);
    }

    #[test]
    #[should_panic(expected = "q1 + q2 > n")]
    fn flexible_quorum_must_intersect() {
        FlexibleQuorum::new(10, 5, 5);
    }

    #[test]
    fn vote_tracker_basic() {
        let b = Ballot::new(1, NodeId(0));
        let mut t = VoteTracker::new(2, b);
        assert!(!t.ack(NodeId(1), b));
        assert!(!t.ack(NodeId(1), b), "duplicate ack does not advance");
        assert!(t.ack(NodeId(2), b));
        assert!(t.satisfied());
        assert_eq!(t.ack_count(), 2);
    }

    #[test]
    fn vote_tracker_ignores_other_ballots() {
        let b = Ballot::new(1, NodeId(0));
        let other = Ballot::new(2, NodeId(0));
        let mut t = VoteTracker::new(1, b);
        assert!(!t.ack(NodeId(1), other));
        assert_eq!(t.ack_count(), 0);
    }

    #[test]
    fn vote_tracker_hopeless() {
        let b = Ballot::new(1, NodeId(0));
        let mut t = VoteTracker::new(3, b);
        t.nack(NodeId(1));
        t.nack(NodeId(2));
        assert!(t.hopeless(4), "4 - 2 nacks = 2 possible acks < 3 needed");
    }

    #[test]
    fn vote_tracker_hopeless_exact() {
        let b = Ballot::new(1, NodeId(0));
        let mut t = VoteTracker::new(3, b);
        assert!(!t.hopeless(5));
        t.nack(NodeId(1));
        t.nack(NodeId(2));
        assert!(!t.hopeless(5), "3 nodes left can still ack");
        t.nack(NodeId(3));
        assert!(t.hopeless(5), "only 2 nodes left, need 3");
    }

    #[test]
    fn vote_tracker_reset() {
        let b1 = Ballot::new(1, NodeId(0));
        let b2 = Ballot::new(2, NodeId(0));
        let mut t = VoteTracker::new(1, b1);
        t.ack(NodeId(1), b1);
        assert!(t.satisfied());
        t.reset(b2);
        assert!(!t.satisfied());
        assert_eq!(t.ballot(), b2);
    }
}
