//! Runtime safety checking.
//!
//! Paxos's safety property — no two nodes decide different commands for
//! the same slot — is machine-checked on every run: each replica reports
//! every commit it learns to a shared [`SafetyMonitor`], which records the
//! first decision per `(space, slot)` and flags any later disagreement.
//! Protocols with per-replica instance spaces (EPaxos) use `space` to
//! separate them; Multi-Paxos and PigPaxos use space 0.

use crate::command::RequestId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Default)]
struct Inner {
    decided: HashMap<(u32, u64), RequestId>,
    violations: Vec<String>,
    commits: u64,
}

/// Shared handle to the run's safety checker. Cloning shares state.
/// Thread-safe so the same monitor works under the simulator and the
/// real-thread runtime.
#[derive(Debug, Clone, Default)]
pub struct SafetyMonitor(Arc<Mutex<Inner>>);

impl SafetyMonitor {
    /// Fresh monitor.
    pub fn new() -> Self {
        SafetyMonitor::default()
    }

    /// Report that a node learned `(space, slot) = id`. Counts one commit
    /// observation and records a violation on disagreement.
    pub fn record(&self, space: u32, slot: u64, id: RequestId) {
        let mut inner = self.0.lock();
        inner.commits += 1;
        match inner.decided.get(&(space, slot)) {
            None => {
                inner.decided.insert((space, slot), id);
            }
            Some(prev) if *prev == id => {}
            Some(prev) => {
                let msg = format!(
                    "safety violation: space {space} slot {slot} decided as {prev} and {id}"
                );
                inner.violations.push(msg);
            }
        }
    }

    /// Distinct decided slots.
    pub fn decided_count(&self) -> u64 {
        self.0.lock().decided.len() as u64
    }

    /// Snapshot of every decision, sorted by `(space, slot)` — lets
    /// tests assert ordering properties (e.g. per-client FIFO under
    /// batching) on the actual decided log.
    pub fn decisions(&self) -> Vec<((u32, u64), RequestId)> {
        let mut v: Vec<_> = self
            .0
            .lock()
            .decided
            .iter()
            .map(|(&k, &id)| (k, id))
            .collect();
        v.sort();
        v
    }

    /// Total commit observations (each replica's learn counts once).
    pub fn commit_observations(&self) -> u64 {
        self.0.lock().commits
    }

    /// All recorded violations.
    pub fn violations(&self) -> Vec<String> {
        self.0.lock().violations.clone()
    }

    /// Panic if any violation was recorded (used by tests and the
    /// harness).
    pub fn assert_safe(&self) {
        let v = self.violations();
        assert!(v.is_empty(), "consensus safety violated: {v:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    fn id(seq: u64) -> RequestId {
        RequestId {
            client: NodeId(9),
            seq,
        }
    }

    #[test]
    fn agreement_is_fine() {
        let m = SafetyMonitor::new();
        m.record(0, 0, id(1));
        m.record(0, 0, id(1));
        m.record(0, 1, id(2));
        assert!(m.violations().is_empty());
        assert_eq!(m.decided_count(), 2);
        assert_eq!(m.commit_observations(), 3);
        m.assert_safe();
    }

    #[test]
    fn disagreement_detected() {
        let m = SafetyMonitor::new();
        m.record(0, 0, id(1));
        m.record(0, 0, id(2));
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].contains("slot 0"));
    }

    #[test]
    fn spaces_are_independent() {
        let m = SafetyMonitor::new();
        m.record(0, 0, id(1));
        m.record(1, 0, id(2)); // same slot, different space: fine
        assert!(m.violations().is_empty());
    }

    #[test]
    #[should_panic(expected = "safety violated")]
    fn assert_safe_panics_on_violation() {
        let m = SafetyMonitor::new();
        m.record(0, 0, id(1));
        m.record(0, 0, id(2));
        m.assert_safe();
    }

    #[test]
    fn clones_share_state() {
        let m = SafetyMonitor::new();
        let m2 = m.clone();
        m.record(0, 0, id(1));
        m2.record(0, 0, id(2));
        assert_eq!(m.violations().len(), 1);
    }
}
