//! Small statistics helpers for the measurement harness.

/// Arithmetic mean; 0.0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// The `p`-th percentile (0.0–100.0) using nearest-rank on a copy of the
/// data; 0.0 for empty input.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Population standard deviation; 0.0 for fewer than two points.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_and_simple() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn percentile_boundaries() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "percentile must be")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn std_dev_basics() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }
}
