//! Per-client session tracking for exactly-once request execution.
//!
//! Clients issue strictly increasing sequence numbers and keep at most a
//! small pipeline of requests outstanding. A replica therefore only
//! needs the *last few* executed replies per client to answer any retry:
//!
//! - retry of a recently executed command → replay the cached reply
//!   (without re-proposing, so a lost reply costs one round trip, not a
//!   whole new consensus round);
//! - anything older than the retained window → the client has already
//!   moved on; drop it.
//!
//! The retained window must cover the client's pipeline depth: with `k`
//! requests outstanding, a retry can lag at most `k` executions behind
//! the newest reply, so any window `>= k` keeps replay exact. Every
//! replica updates its table at execution time, so after a leader change
//! the new leader can still answer retries for commands the old leader
//! executed cluster-wide.

use crate::command::{ClientReply, RequestId, Value};
use simnet::{NodeId, Wire, WireError, WirePut, WireReader};
use std::collections::{BTreeMap, HashMap};

/// Replies retained per client by [`SessionTable::new`]. Covers any
/// client pipeline depth up to this many in-flight requests.
pub const DEFAULT_SESSION_WINDOW: usize = 16;

#[derive(Debug, Clone)]
struct Session {
    /// Highest executed sequence number.
    latest: u64,
    /// The `window` highest executed replies by seq. Kept as a map (not
    /// a contiguous ring) because protocols that execute in dependency
    /// order (EPaxos) can execute a pipelined client's commands out of
    /// sequence order.
    replies: BTreeMap<u64, ClientReply>,
}

/// Recently executed replies per client. `Clone` copies the table —
/// state-machine snapshots carry one so a replica that catches up from
/// a snapshot still answers retries of prefix commands exactly once.
#[derive(Debug, Clone)]
pub struct SessionTable {
    window: usize,
    sessions: HashMap<NodeId, Session>,
}

impl Default for SessionTable {
    fn default() -> Self {
        SessionTable::with_window(DEFAULT_SESSION_WINDOW)
    }
}

impl SessionTable {
    /// Table retaining [`DEFAULT_SESSION_WINDOW`] replies per client.
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// Table retaining the last `window` replies per client (must cover
    /// the deepest client pipeline in use).
    pub fn with_window(window: usize) -> Self {
        assert!(window >= 1, "session window must retain at least 1 reply");
        SessionTable {
            window,
            sessions: HashMap::new(),
        }
    }

    /// Number of clients tracked.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when no client has executed anything yet.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Highest executed sequence number for `client`, if any.
    pub fn latest_seq(&self, client: NodeId) -> Option<u64> {
        self.sessions.get(&client).map(|s| s.latest)
    }

    /// Record the reply for an executed command. No-op sentinel commands
    /// (hole fillers) and already-recorded replies are ignored. Replies
    /// may arrive out of sequence order (dependency-ordered execution);
    /// each is retained as long as it is within the window of the
    /// highest seen.
    pub fn record(&mut self, reply: &ClientReply) {
        let id = reply.id;
        if id.client == NodeId(u32::MAX) {
            return; // noop filler, no client session
        }
        let s = self.sessions.entry(id.client).or_insert(Session {
            latest: 0,
            replies: BTreeMap::new(),
        });
        s.latest = s.latest.max(id.seq);
        s.replies.entry(id.seq).or_insert_with(|| reply.clone());
        while s.replies.len() > self.window {
            s.replies.pop_first();
        }
    }

    /// Cached reply if `id` is one of the client's recently executed
    /// requests (the retry-of-lost-reply case).
    pub fn replay(&self, id: RequestId) -> Option<&ClientReply> {
        self.sessions.get(&id.client)?.replies.get(&id.seq)
    }

    /// Fold another table's retained replies into this one (snapshot
    /// installation): every reply the donor retained is recorded here,
    /// subject to this table's own window. Existing newer replies win
    /// ([`SessionTable::record`] keeps the first reply per seq and the
    /// highest `latest`).
    pub fn merge_from(&mut self, other: &SessionTable) {
        for session in other.sessions.values() {
            for reply in session.replies.values() {
                self.record(reply);
            }
        }
    }

    /// Exact serialized size of the table under [`Wire`] (wire
    /// accounting for snapshots that carry it): table header (8) + per
    /// session client + latest + reply count (16) + per reply seq +
    /// meta (10) + value bytes + redirect (4 when present).
    pub fn approx_bytes(&self) -> usize {
        8 + self
            .sessions
            .values()
            .map(|s| {
                16 + s
                    .replies
                    .values()
                    .map(|r| {
                        10 + r.value.as_ref().map_or(0, |v| v.len())
                            + if r.redirect.is_some() { 4 } else { 0 }
                    })
                    .sum::<usize>()
            })
            .sum::<usize>()
    }

    /// True if `id` fell off the *full* retained reply window — a stale
    /// duplicate that must not be re-proposed (the client has already
    /// received a newer reply and moved on). A sparse window (fewer
    /// than `window` replies recorded) never classifies anything stale:
    /// with out-of-order execution a below-oldest seq could simply not
    /// have executed yet, and dropping its retry would strand the
    /// client.
    pub fn is_stale(&self, id: RequestId) -> bool {
        match self.sessions.get(&id.client) {
            Some(s) => {
                id.seq < s.latest
                    && s.replies.len() >= self.window
                    && s.replies
                        .first_key_value()
                        .is_some_and(|(oldest, _)| id.seq < *oldest)
            }
            None => false,
        }
    }
}

const SMETA_VALUE: u16 = 1 << 15;
const SMETA_OK: u16 = 1 << 14;
const SMETA_REDIRECT: u16 = 1 << 13;
const SMETA_LEN: u16 = (1 << 13) - 1;

impl Wire for SessionTable {
    const KIND: &'static str = "SessionTable";

    /// `window: u32`, `session count: u32`, then sessions sorted by
    /// client id: `client: u32`, `latest: u64`, `reply count: u32`,
    /// then replies in seq order: `seq: u64`, `meta: u16` (bit 15 value
    /// present, bit 14 ok, bit 13 redirect present, low 13 bits the
    /// value length — capped at 8191 bytes), value bytes, and a
    /// `redirect: u32` when present.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.window as u32);
        out.put_u32(self.sessions.len() as u32);
        let mut clients: Vec<NodeId> = self.sessions.keys().copied().collect();
        clients.sort_unstable();
        for client in clients {
            let s = &self.sessions[&client];
            out.put_u32(client.0);
            out.put_u64(s.latest);
            out.put_u32(s.replies.len() as u32);
            for (seq, reply) in &s.replies {
                let vlen = reply.value.as_ref().map_or(0, |v| v.len());
                assert!(
                    vlen <= SMETA_LEN as usize,
                    "session reply value of {vlen}B overflows the 13-bit length field"
                );
                let mut meta = vlen as u16;
                if reply.value.is_some() {
                    meta |= SMETA_VALUE;
                }
                if reply.ok {
                    meta |= SMETA_OK;
                }
                if reply.redirect.is_some() {
                    meta |= SMETA_REDIRECT;
                }
                out.put_u64(*seq);
                out.put_u16(meta);
                if let Some(v) = &reply.value {
                    out.extend_from_slice(&v.0);
                }
                if let Some(n) = reply.redirect {
                    out.put_u32(n.0);
                }
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let window = r.u32("sessions.window")? as usize;
        if window == 0 {
            return Err(WireError::BadTag {
                what: "sessions.window",
                got: 0,
            });
        }
        let n_sessions = r.u32("sessions.count")?;
        // 4 client + 8 latest + 4 count per session.
        let mut sessions = HashMap::with_capacity(r.capacity_for(n_sessions as usize, 16));
        for _ in 0..n_sessions {
            let client = NodeId(r.u32("session.client")?);
            let latest = r.u64("session.latest")?;
            let n_replies = r.u32("session.reply_count")?;
            let mut replies = BTreeMap::new();
            for _ in 0..n_replies {
                let seq = r.u64("session.seq")?;
                let meta = r.u16("session.meta")?;
                let value = if meta & SMETA_VALUE != 0 {
                    let len = (meta & SMETA_LEN) as usize;
                    Some(Value(r.read_value(len, "session.value")?))
                } else {
                    None
                };
                let redirect = if meta & SMETA_REDIRECT != 0 {
                    Some(NodeId(r.u32("session.redirect")?))
                } else {
                    None
                };
                replies.insert(
                    seq,
                    ClientReply {
                        id: RequestId { client, seq },
                        value,
                        ok: meta & SMETA_OK != 0,
                        redirect,
                    },
                );
            }
            sessions.insert(client, Session { latest, replies });
        }
        Ok(SessionTable { window, sessions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(client: u32, seq: u64) -> RequestId {
        RequestId {
            client: NodeId(client),
            seq,
        }
    }

    #[test]
    fn replay_exact_seq_only() {
        let mut t = SessionTable::new();
        t.record(&ClientReply::ok(id(1, 3), None));
        assert!(t.replay(id(1, 3)).is_some());
        assert!(t.replay(id(1, 2)).is_none());
        assert!(t.replay(id(1, 4)).is_none());
        assert!(t.replay(id(2, 3)).is_none());
    }

    #[test]
    fn staleness_beyond_window() {
        let mut t = SessionTable::with_window(2);
        for seq in 1..=4 {
            t.record(&ClientReply::ok(id(1, seq), None));
        }
        // Window 2 retains seqs 3 and 4.
        assert!(t.replay(id(1, 4)).is_some());
        assert!(t.replay(id(1, 3)).is_some());
        assert!(t.replay(id(1, 2)).is_none());
        assert!(t.is_stale(id(1, 2)));
        assert!(t.is_stale(id(1, 1)));
        assert!(!t.is_stale(id(1, 3)), "retained replies replay, not drop");
        assert!(!t.is_stale(id(1, 5)));
        assert!(!t.is_stale(id(9, 1)), "unknown clients are never stale");
    }

    #[test]
    fn window_covers_pipelined_retries() {
        // A pipeline-4 client may retry any of its last 4 executed
        // requests; a window >= 4 must replay all of them.
        let mut t = SessionTable::with_window(4);
        for seq in 1..=10 {
            t.record(&ClientReply::ok(id(1, seq), None));
        }
        for seq in 7..=10 {
            assert!(t.replay(id(1, seq)).is_some(), "seq {seq} in window");
        }
        assert!(t.replay(id(1, 6)).is_none());
        assert_eq!(t.latest_seq(NodeId(1)), Some(10));
        assert_eq!(t.latest_seq(NodeId(2)), None);
    }

    #[test]
    fn out_of_order_execution_still_replays_both() {
        // EPaxos executes in dependency order: a pipelined client's
        // seq 5 can execute before seq 4. Both replies must be
        // retained for retry replay.
        let mut t = SessionTable::new();
        t.record(&ClientReply::ok(id(1, 5), None));
        t.record(&ClientReply::ok(id(1, 4), None));
        assert!(t.replay(id(1, 5)).is_some());
        assert!(
            t.replay(id(1, 4)).is_some(),
            "late out-of-order execution must still be cached"
        );
        assert!(!t.is_stale(id(1, 4)));
        assert_eq!(t.latest_seq(NodeId(1)), Some(5));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_record_keeps_first_reply() {
        let mut t = SessionTable::new();
        t.record(&ClientReply::ok(id(1, 3), Some(crate::Value::zeros(4))));
        t.record(&ClientReply::ok(id(1, 3), None));
        assert!(
            t.replay(id(1, 3)).expect("cached").value.is_some(),
            "re-execution must not clobber the original reply"
        );
    }

    #[test]
    fn merge_from_replays_donor_replies() {
        let mut donor = SessionTable::new();
        donor.record(&ClientReply::ok(id(1, 3), Some(crate::Value::zeros(2))));
        donor.record(&ClientReply::ok(id(2, 7), None));
        let mut t = SessionTable::new();
        t.record(&ClientReply::ok(id(1, 4), None));
        t.merge_from(&donor);
        assert!(t.replay(id(1, 3)).is_some(), "donor reply merged");
        assert!(t.replay(id(1, 4)).is_some(), "own reply kept");
        assert!(t.replay(id(2, 7)).is_some());
        assert_eq!(t.latest_seq(NodeId(1)), Some(4), "highest latest wins");
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn wire_roundtrip_exact_size() {
        let mut t = SessionTable::with_window(4);
        t.record(&ClientReply::ok(id(1, 3), Some(crate::Value::zeros(9))));
        t.record(&ClientReply::ok(id(1, 4), None));
        t.record(&ClientReply::redirect(id(2, 1), Some(NodeId(0))));
        let bytes = t.encode();
        assert_eq!(bytes.len(), t.approx_bytes(), "approx_bytes is exact");
        let back = SessionTable::decode_frame(&bytes.clone().into()).expect("decodes");
        assert_eq!(back.replay(id(1, 3)), t.replay(id(1, 3)));
        assert_eq!(back.replay(id(2, 1)), t.replay(id(2, 1)));
        assert_eq!(back.latest_seq(NodeId(1)), Some(4));
        assert_eq!(back.encode(), bytes, "deterministic re-encode");
    }

    #[test]
    fn noop_sentinel_ignored() {
        let mut t = SessionTable::new();
        t.record(&ClientReply::ok(id(u32::MAX, 0), None));
        assert!(t.is_empty());
    }
}
