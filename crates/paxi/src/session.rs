//! Per-client session tracking for exactly-once request execution.
//!
//! Clients are closed-loop: each has at most one request outstanding and
//! issues strictly increasing sequence numbers. A replica therefore only
//! needs the *latest* executed reply per client to answer any retry:
//!
//! - retry of the last executed command → replay the cached reply
//!   (without re-proposing, so a lost reply costs one round trip, not a
//!   whole new consensus round);
//! - anything older → the client has already moved on; drop it.
//!
//! Every replica updates its table at execution time, so after a leader
//! change the new leader can still answer retries for commands the old
//! leader executed cluster-wide.

use crate::command::{ClientReply, RequestId};
use simnet::NodeId;
use std::collections::HashMap;

/// Latest executed reply per client.
#[derive(Debug, Default)]
pub struct SessionTable {
    last: HashMap<NodeId, (u64, ClientReply)>,
}

impl SessionTable {
    /// Empty table.
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// Number of clients tracked.
    pub fn len(&self) -> usize {
        self.last.len()
    }

    /// True when no client has executed anything yet.
    pub fn is_empty(&self) -> bool {
        self.last.is_empty()
    }

    /// Record the reply for an executed command. No-op sentinel commands
    /// (hole fillers) and out-of-date replies are ignored.
    pub fn record(&mut self, reply: &ClientReply) {
        let id = reply.id;
        if id.client == NodeId(u32::MAX) {
            return; // noop filler, no client session
        }
        match self.last.get(&id.client) {
            Some((seq, _)) if *seq >= id.seq => {}
            _ => {
                self.last.insert(id.client, (id.seq, reply.clone()));
            }
        }
    }

    /// Cached reply if `id` is exactly the client's last executed
    /// request (the retry-of-lost-reply case).
    pub fn replay(&self, id: RequestId) -> Option<&ClientReply> {
        match self.last.get(&id.client) {
            Some((seq, reply)) if *seq == id.seq => Some(reply),
            _ => None,
        }
    }

    /// True if `id` is older than the client's last executed request —
    /// a stale duplicate that must not be re-proposed (the client has
    /// already received a newer reply and moved on).
    pub fn is_stale(&self, id: RequestId) -> bool {
        matches!(self.last.get(&id.client), Some((seq, _)) if *seq > id.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(client: u32, seq: u64) -> RequestId {
        RequestId {
            client: NodeId(client),
            seq,
        }
    }

    #[test]
    fn replay_exact_seq_only() {
        let mut t = SessionTable::new();
        t.record(&ClientReply::ok(id(1, 3), None));
        assert!(t.replay(id(1, 3)).is_some());
        assert!(t.replay(id(1, 2)).is_none());
        assert!(t.replay(id(1, 4)).is_none());
        assert!(t.replay(id(2, 3)).is_none());
    }

    #[test]
    fn staleness() {
        let mut t = SessionTable::new();
        t.record(&ClientReply::ok(id(1, 3), None));
        assert!(t.is_stale(id(1, 2)));
        assert!(!t.is_stale(id(1, 3)), "exact match is a replay, not stale");
        assert!(!t.is_stale(id(1, 4)));
        assert!(!t.is_stale(id(9, 1)), "unknown clients are never stale");
    }

    #[test]
    fn newer_reply_overwrites_older_kept() {
        let mut t = SessionTable::new();
        t.record(&ClientReply::ok(id(1, 5), None));
        t.record(&ClientReply::ok(id(1, 4), None));
        assert!(
            t.replay(id(1, 5)).is_some(),
            "older record must not clobber newer"
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn noop_sentinel_ignored() {
        let mut t = SessionTable::new();
        t.record(&ClientReply::ok(id(u32::MAX, 0), None));
        assert!(t.is_empty());
    }
}
