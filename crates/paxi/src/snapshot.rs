//! Log compaction policy and state-machine snapshots.
//!
//! Every protocol in this reproduction keeps its replicated log in
//! memory, so steady-state runs of paper scale (hours of traffic) need
//! the executed prefix to be *compacted*: once a slot is executed its
//! command can be folded into a state-machine snapshot and dropped from
//! the log. A [`SnapshotConfig`] on a protocol's config decides when
//! that happens (by executed-operation count and/or retained log
//! bytes); the [`Snapshot`] value is what a replica keeps after
//! truncating — and what it ships to a lagging peer (or a newly elected
//! leader) whose missing prefix is gone from every log.
//!
//! Compaction never touches undecided or unexecuted slots: the
//! truncation point is always the executed frontier (`Log::execute_cursor`),
//! below which every slot is committed *and* applied. That invariant is
//! what makes dropping the entries safe — their effect is fully captured
//! by the snapshot.
//!
//! [`CompactionStats`] is the shared (cloneable, thread-safe) counter
//! hub replicas report into, so `RunResult::max_log_len` /
//! `snapshots_taken` make memory-boundedness a measurable, gateable
//! quantity on both execution substrates.

use crate::command::Key;
use crate::kv::KvStore;
use crate::session::SessionTable;
use simnet::{Wire, WireError, WirePut, WireReader};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// When a replica snapshots its state machine and truncates the
/// executed log prefix. Disabled by default: benchmarks and the perf
/// gate run with the exact pre-compaction behaviour unless a config
/// opts in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotConfig {
    /// Snapshot once this many operations have executed since the last
    /// snapshot (the executed frontier advanced this far past the
    /// compaction floor).
    pub interval_ops: Option<u64>,
    /// Snapshot once the retained log holds at least this many payload
    /// bytes (approximate, counted from command payloads). Protocols
    /// without a slot log (EPaxos) ignore this and compact by
    /// `interval_ops` only.
    pub interval_bytes: Option<usize>,
}

impl SnapshotConfig {
    /// Compaction off (the default): the log grows without bound.
    pub fn disabled() -> Self {
        SnapshotConfig::default()
    }

    /// Snapshot every `ops` executed operations.
    pub fn every_ops(ops: u64) -> Self {
        assert!(ops >= 1, "snapshot interval must be at least 1 op");
        SnapshotConfig {
            interval_ops: Some(ops),
            interval_bytes: None,
        }
    }

    /// Snapshot whenever the retained log reaches `bytes` payload bytes.
    pub fn every_bytes(bytes: usize) -> Self {
        assert!(bytes >= 1, "snapshot byte threshold must be positive");
        SnapshotConfig {
            interval_ops: None,
            interval_bytes: Some(bytes),
        }
    }

    /// Also snapshot every `ops` executed operations (combines with an
    /// existing byte threshold; whichever fires first wins).
    pub fn with_ops(mut self, ops: u64) -> Self {
        assert!(ops >= 1, "snapshot interval must be at least 1 op");
        self.interval_ops = Some(ops);
        self
    }

    /// True when any trigger is configured.
    pub fn is_enabled(&self) -> bool {
        self.interval_ops.is_some() || self.interval_bytes.is_some()
    }
}

/// A state-machine snapshot: everything a replica needs to serve (and
/// keep serving) from slot `up_to` onward without any log entry below
/// it.
///
/// Carried by `SnapshotTransfer` messages and phase-1b promises when a
/// peer's missing prefix has been compacted away, so catch-up installs
/// state instead of replaying slots.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Every slot `< up_to` is committed, executed, and folded into
    /// `kv`. Equals the snapshotting replica's executed frontier at
    /// capture time.
    pub up_to: u64,
    /// The state machine with all of the prefix applied.
    pub kv: KvStore,
    /// Slot of the last executed write per key (sorted by key for
    /// determinism) — restores the quorum-read freshness index.
    pub last_write_slots: Vec<(Key, u64)>,
    /// The windowed per-client reply cache at capture time, so an
    /// installing replica still answers retries of prefix commands
    /// exactly once instead of re-proposing them.
    pub sessions: SessionTable,
}

impl PartialEq for Snapshot {
    fn eq(&self, other: &Self) -> bool {
        // Session windows are auxiliary (retry replay only); two
        // snapshots are "the same state" when the durable parts agree.
        self.up_to == other.up_to
            && self.kv.fingerprint() == other.kv.fingerprint()
            && self.last_write_slots == other.last_write_slots
    }
}

impl Snapshot {
    /// Capture a snapshot restricted to keys in `[start, end)`
    /// (`end = None` means unbounded). The state machine and the
    /// freshness index are filtered to the range; `sessions` travels
    /// whole, because retry replay is per-client, not per-key. The
    /// full-map capture path is the unbounded range `(0, None)`, which
    /// filters nothing and is therefore identical to the historical
    /// clone-everything capture. Shard moves capture only the moving
    /// range — the point of this path: the departing slice ships
    /// without paying for (or leaking) the keys that stay behind.
    pub fn for_range(
        up_to: u64,
        kv: &KvStore,
        last_write_slot: &HashMap<Key, u64>,
        sessions: &SessionTable,
        start: Key,
        end: Option<Key>,
    ) -> Self {
        let mut last_write_slots: Vec<(Key, u64)> = last_write_slot
            .iter()
            .filter(|(&k, _)| k >= start && end.map_or(true, |e| k < e))
            .map(|(&k, &s)| (k, s))
            .collect();
        last_write_slots.sort_unstable();
        Snapshot {
            up_to,
            kv: kv.filtered(start, end),
            last_write_slots,
            sessions: sessions.clone(),
        }
    }

    /// Exact serialized size under [`Wire`]: `up_to` (8) + the encoded
    /// key-value state + freshness-index count (4) + 16 bytes per
    /// `(key, slot)` pair + the encoded session table.
    pub fn wire_bytes(&self) -> usize {
        8 + self.kv.encoded_bytes()
            + 4
            + self.last_write_slots.len() * 16
            + self.sessions.approx_bytes()
    }
}

impl Wire for Snapshot {
    const KIND: &'static str = "Snapshot";

    /// `up_to: u64`, the [`KvStore`] encoding, `index count: u32` +
    /// `(key: u64, slot: u64)` pairs, then the [`SessionTable`]
    /// encoding. Always exactly [`Snapshot::wire_bytes`] bytes.
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u64(self.up_to);
        self.kv.encode_into(out);
        out.put_u32(self.last_write_slots.len() as u32);
        for (key, slot) in &self.last_write_slots {
            out.put_u64(*key);
            out.put_u64(*slot);
        }
        self.sessions.encode_into(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let up_to = r.u64("snapshot.up_to")?;
        let kv = KvStore::decode(r)?;
        let n = r.u32("snapshot.index_count")?;
        let mut last_write_slots = Vec::with_capacity(r.capacity_for(n as usize, 16));
        for _ in 0..n {
            let key = r.u64("snapshot.index_key")?;
            let slot = r.u64("snapshot.index_slot")?;
            last_write_slots.push((key, slot));
        }
        Ok(Snapshot {
            up_to,
            kv,
            last_write_slots,
            sessions: SessionTable::decode(r)?,
        })
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    max_log_len: AtomicU64,
    snapshots_taken: AtomicU64,
    snapshots_installed: AtomicU64,
    pqr_started: AtomicU64,
    pqr_finished: AtomicU64,
}

/// Shared compaction/memory counters for one run. Cloning shares state
/// (like [`crate::SafetyMonitor`]); thread-safe so the same hub works
/// under the simulator and the real-thread runtime.
#[derive(Debug, Clone, Default)]
pub struct CompactionStats(Arc<StatsInner>);

impl CompactionStats {
    /// Fresh counters (all zero).
    pub fn new() -> Self {
        CompactionStats::default()
    }

    /// Report a replica's current retained log length (slots for the
    /// Paxos log, instances for EPaxos). The hub keeps the maximum —
    /// the run's peak per-replica memory footprint in log entries.
    pub fn observe_log_len(&self, len: u64) {
        self.0.max_log_len.fetch_max(len, Ordering::Relaxed);
    }

    /// Report one snapshot + truncation performed by a replica.
    pub fn note_snapshot(&self) {
        self.0.snapshots_taken.fetch_add(1, Ordering::Relaxed);
    }

    /// Report one snapshot *installed* from a peer (the catch-up path).
    pub fn note_install(&self) {
        self.0.snapshots_installed.fetch_add(1, Ordering::Relaxed);
    }

    /// Largest retained log length any replica reported.
    pub fn max_log_len(&self) -> u64 {
        self.0.max_log_len.load(Ordering::Relaxed)
    }

    /// Snapshots taken (compactions) across all replicas.
    pub fn snapshots_taken(&self) -> u64 {
        self.0.snapshots_taken.load(Ordering::Relaxed)
    }

    /// Snapshots installed from peers across all replicas.
    pub fn snapshots_installed(&self) -> u64 {
        self.0.snapshots_installed.load(Ordering::Relaxed)
    }

    /// Report a quorum read opened at a proxy (`PendingReads::start`).
    pub fn note_pqr_started(&self) {
        self.0.pqr_started.fetch_add(1, Ordering::Relaxed);
    }

    /// Report quorum reads that left the proxy's pending table —
    /// completed, aborted to a leader redirect, expired, or superseded
    /// by a retry of the same request. `n` at once so a replica can
    /// report a whole expiry sweep in one call.
    pub fn note_pqr_finished(&self, n: u64) {
        self.0.pqr_finished.fetch_add(n, Ordering::Relaxed);
    }

    /// Quorum reads opened across all proxies.
    pub fn pqr_started(&self) -> u64 {
        self.0.pqr_started.load(Ordering::Relaxed)
    }

    /// Quorum reads still in some proxy's pending table (started −
    /// finished). A quiesced run must end at 0 — anything else is a
    /// `PendingReads` leak.
    pub fn pqr_inflight(&self) -> u64 {
        self.0
            .pqr_started
            .load(Ordering::Relaxed)
            .saturating_sub(self.0.pqr_finished.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{Operation, Value};

    #[test]
    fn config_triggers() {
        assert!(!SnapshotConfig::disabled().is_enabled());
        assert!(SnapshotConfig::every_ops(10).is_enabled());
        assert!(SnapshotConfig::every_bytes(1024).is_enabled());
        let both = SnapshotConfig::every_bytes(1024).with_ops(5);
        assert_eq!(both.interval_ops, Some(5));
        assert_eq!(both.interval_bytes, Some(1024));
    }

    #[test]
    #[should_panic(expected = "at least 1 op")]
    fn zero_interval_rejected() {
        SnapshotConfig::every_ops(0);
    }

    fn snap(up_to: u64, writes: u64) -> Snapshot {
        let mut kv = KvStore::new();
        for k in 0..writes {
            kv.apply(&Operation::Put(k, Value::zeros(8)));
        }
        Snapshot {
            up_to,
            kv,
            last_write_slots: (0..writes).map(|k| (k, k)).collect(),
            sessions: SessionTable::new(),
        }
    }

    #[test]
    fn snapshot_equality_ignores_sessions() {
        let a = snap(5, 3);
        let mut b = snap(5, 3);
        b.sessions.record(&crate::command::ClientReply::ok(
            crate::command::RequestId {
                client: simnet::NodeId(9),
                seq: 1,
            },
            None,
        ));
        assert_eq!(a, b, "session window is not part of state identity");
        assert_ne!(a, snap(6, 3));
        assert_ne!(a, snap(5, 4));
    }

    #[test]
    fn for_range_filters_state_and_index_and_full_range_matches_clone() {
        let mut kv = KvStore::new();
        let mut idx = std::collections::HashMap::new();
        for k in 0..8u64 {
            kv.apply(&Operation::Put(k, Value::zeros(4)));
            idx.insert(k, k);
        }
        let sessions = SessionTable::new();
        let part = Snapshot::for_range(8, &kv, &idx, &sessions, 2, Some(5));
        assert_eq!(part.kv.len(), 3);
        assert_eq!(part.last_write_slots, vec![(2, 2), (3, 3), (4, 4)]);
        let full = Snapshot::for_range(8, &kv, &idx, &sessions, 0, None);
        assert_eq!(full.kv.fingerprint(), kv.fingerprint());
        assert_eq!(full.last_write_slots.len(), 8);
        assert_eq!(full.kv.encode(), kv.encode(), "unbounded range == clone");
    }

    #[test]
    fn snapshot_wire_bytes_scale_with_state() {
        assert!(snap(5, 10).wire_bytes() > snap(5, 2).wire_bytes());
    }

    #[test]
    fn snapshot_wire_roundtrip_exact_size() {
        let mut s = snap(5, 3);
        s.sessions.record(&crate::command::ClientReply::ok(
            crate::command::RequestId {
                client: simnet::NodeId(9),
                seq: 1,
            },
            Some(Value::zeros(12)),
        ));
        let bytes = s.encode();
        assert_eq!(bytes.len(), s.wire_bytes(), "wire_bytes is exact");
        let back = Snapshot::decode_frame(&bytes.into()).expect("decodes");
        assert_eq!(back, s);
        assert_eq!(back.sessions.approx_bytes(), s.sessions.approx_bytes());
    }

    #[test]
    fn stats_are_shared_and_track_max() {
        let s = CompactionStats::new();
        let s2 = s.clone();
        s.observe_log_len(10);
        s2.observe_log_len(4);
        s.note_snapshot();
        s2.note_snapshot();
        s2.note_install();
        assert_eq!(s.max_log_len(), 10, "max wins over later smaller values");
        assert_eq!(s.snapshots_taken(), 2);
        assert_eq!(s.snapshots_installed(), 1);
    }
}
