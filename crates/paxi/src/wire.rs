//! Wire codecs for the client domain and shared building blocks.
//!
//! This module implements [`simnet::Wire`] (see its docs for the framing
//! format) for everything paxi owns on the wire: [`Ballot`],
//! [`RequestId`], [`ClientRequest`], [`ClientReply`], and the
//! [`Envelope`] that multiplexes client traffic with protocol messages.
//! It also exports the command-body helpers protocol crates use to
//! embed [`Command`]s in their own messages, so the byte layout of a
//! command is identical wherever it appears.
//!
//! Every encoding length equals the corresponding `wire_size()` — the
//! simulator's byte accounting is the socket substrate's byte
//! accounting. See `tests/wire_roundtrip.rs` for the property tests
//! asserting both directions.

use crate::ballot::Ballot;
use crate::command::{ClientReply, ClientRequest, Command, Operation, RequestId, Value};
use crate::envelope::{Envelope, ProtoMessage};
use simnet::wire::DOMAIN_CLIENT;
use simnet::{NodeId, Wire, WireError, WireHeader, WirePut, WireReader};

/// Envelope kind tag: [`Envelope::Request`].
pub const KIND_REQUEST: u8 = 0;
/// Envelope kind tag: [`Envelope::Reply`].
pub const KIND_REPLY: u8 = 1;
/// Envelope kind tag: [`Envelope::ReplyBatch`].
pub const KIND_REPLY_BATCH: u8 = 2;

/// Operation tag: `Get`.
pub const OP_GET: u8 = 0;
/// Operation tag: `Put`.
pub const OP_PUT: u8 = 1;
/// Operation tag: `Noop`.
pub const OP_NOOP: u8 = 2;

/// The 2-bit operation tag of an [`Operation`] (fits the packed
/// per-entry metadata fields protocol messages use).
pub fn op_tag(op: &Operation) -> u8 {
    match op {
        Operation::Get(_) => OP_GET,
        Operation::Put(..) => OP_PUT,
        Operation::Noop => OP_NOOP,
    }
}

/// The value-payload length of a command: the bytes its trailing/sized
/// value field occupies (`0` for `Get`/`Noop`).
pub fn command_value_len(cmd: &Command) -> usize {
    match &cmd.op {
        Operation::Put(_, v) => v.len(),
        _ => 0,
    }
}

/// Encode a command body: request id (12 bytes), key (8 bytes, absent
/// for `Noop`), then the raw value bytes (`Put` only, no length — the
/// caller's metadata or the frame end delimits it). Together with the
/// caller-encoded operation tag this is exactly
/// [`Command::payload_bytes`] bytes.
pub fn encode_command_body(cmd: &Command, out: &mut Vec<u8>) {
    cmd.id.encode_into(out);
    match &cmd.op {
        Operation::Get(k) => out.put_u64(*k),
        Operation::Put(k, v) => {
            out.put_u64(*k);
            out.extend_from_slice(&v.0);
        }
        Operation::Noop => {}
    }
}

/// Decode a command body written by [`encode_command_body`]. `tag` is
/// the operation tag the caller carried; `value_len` is the value's
/// byte count for sized embeddings, or `None` for a trailing value
/// (consumes the rest of the frame). The value is taken as a zero-copy
/// slice of the frame buffer — the decoded command shares the received
/// allocation instead of re-materializing its payload.
pub fn decode_command_body(
    tag: u8,
    value_len: Option<usize>,
    r: &mut WireReader<'_>,
) -> Result<Command, WireError> {
    let id = RequestId::decode(r)?;
    let op = match tag {
        OP_GET => Operation::Get(r.u64("command.key")?),
        OP_PUT => {
            let key = r.u64("command.key")?;
            let bytes = match value_len {
                Some(n) => r.read_value(n, "command.value")?,
                None => r.rest_value(),
            };
            Operation::Put(key, Value(bytes))
        }
        OP_NOOP => Operation::Noop,
        other => {
            return Err(WireError::BadTag {
                what: "op",
                got: other,
            })
        }
    };
    Ok(Command { id, op })
}

impl Wire for Ballot {
    const KIND: &'static str = "Ballot";

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u64(((self.round() as u64) << 32) | self.node().0 as u64);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let packed = r.u64("ballot")?;
        Ok(Ballot::new((packed >> 32) as u32, NodeId(packed as u32)))
    }
}

impl Wire for RequestId {
    const KIND: &'static str = "RequestId";

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_u32(self.client.0);
        out.put_u64(self.seq);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(RequestId {
            client: NodeId(r.u32("id.client")?),
            seq: r.u64("id.seq")?,
        })
    }
}

impl Wire for ClientRequest {
    const KIND: &'static str = "ClientRequest";

    fn encode_into(&self, out: &mut Vec<u8>) {
        WireHeader::new(DOMAIN_CLIENT, KIND_REQUEST)
            .flags(op_tag(&self.command.op))
            .encode_into(out);
        encode_command_body(&self.command, out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let h = WireHeader::decode(r)?;
        Ok(ClientRequest {
            command: decode_command_body(h.flags, None, r)?,
        })
    }
}

/// [`ClientReply`] flag bits (single-reply header).
const REPLY_OK: u8 = 1 << 0;
const REPLY_VALUE: u8 = 1 << 1;
const REPLY_REDIRECT: u8 = 1 << 2;

impl Wire for ClientReply {
    const KIND: &'static str = "ClientReply";

    fn encode_into(&self, out: &mut Vec<u8>) {
        let mut flags = 0u8;
        if self.ok {
            flags |= REPLY_OK;
        }
        if self.value.is_some() {
            flags |= REPLY_VALUE;
        }
        if self.redirect.is_some() {
            flags |= REPLY_REDIRECT;
        }
        WireHeader::new(DOMAIN_CLIENT, KIND_REPLY)
            .flags(flags)
            .aux0(self.redirect.map_or(0, |n| n.0))
            .encode_into(out);
        self.id.encode_into(out);
        if let Some(v) = &self.value {
            out.extend_from_slice(&v.0);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let h = WireHeader::decode(r)?;
        let id = RequestId::decode(r)?;
        let value = if h.flags & REPLY_VALUE != 0 {
            Some(Value(r.rest_value()))
        } else {
            None
        };
        Ok(ClientReply {
            id,
            value,
            ok: h.flags & REPLY_OK != 0,
            redirect: if h.flags & REPLY_REDIRECT != 0 {
                Some(NodeId(h.aux0))
            } else {
                None
            },
        })
    }
}

/// Per-reply metadata word inside a [`Envelope::ReplyBatch`]: the 2
/// extra bytes the batch `wire_size()` charges per coalesced reply.
/// Bit 15 = value present, bit 14 = ok, bit 13 = redirect present; the
/// low 13 bits hold the value length (value replies, max 8191 bytes)
/// or the redirect node id (redirect replies — which never carry a
/// value, so the field is free).
const BMETA_VALUE: u16 = 1 << 15;
const BMETA_OK: u16 = 1 << 14;
const BMETA_REDIRECT: u16 = 1 << 13;
const BMETA_PAYLOAD: u16 = (1 << 13) - 1;

fn encode_batched_reply(reply: &ClientReply, out: &mut Vec<u8>) {
    let mut meta = 0u16;
    if reply.ok {
        meta |= BMETA_OK;
    }
    match (&reply.value, reply.redirect) {
        (Some(v), None) => {
            assert!(
                v.len() <= BMETA_PAYLOAD as usize,
                "batched reply value of {}B overflows the 13-bit length field",
                v.len()
            );
            meta |= BMETA_VALUE | v.len() as u16;
        }
        (None, Some(n)) => {
            assert!(
                n.0 <= BMETA_PAYLOAD as u32,
                "redirect node id {} overflows the 13-bit field",
                n.0
            );
            meta |= BMETA_REDIRECT | n.0 as u16;
        }
        (None, None) => {}
        (Some(_), Some(_)) => {
            unreachable!("a reply never carries both a value and a redirect")
        }
    }
    out.put_u16(meta);
    reply.id.encode_into(out);
    if let Some(v) = &reply.value {
        out.extend_from_slice(&v.0);
    }
}

fn decode_batched_reply(r: &mut WireReader<'_>) -> Result<ClientReply, WireError> {
    let meta = r.u16("reply_batch.meta")?;
    let id = RequestId::decode(r)?;
    let payload = (meta & BMETA_PAYLOAD) as usize;
    let value = if meta & BMETA_VALUE != 0 {
        Some(Value(r.read_value(payload, "reply_batch.value")?))
    } else {
        None
    };
    Ok(ClientReply {
        id,
        value,
        ok: meta & BMETA_OK != 0,
        redirect: if meta & BMETA_REDIRECT != 0 {
            Some(NodeId(payload as u32))
        } else {
            None
        },
    })
}

impl<P: ProtoMessage + Wire> Wire for Envelope<P> {
    const KIND: &'static str = "Envelope";

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Envelope::Request(req) => req.encode_into(out),
            Envelope::Reply(rep) => rep.encode_into(out),
            Envelope::ReplyBatch(reps) => {
                WireHeader::new(DOMAIN_CLIENT, KIND_REPLY_BATCH)
                    .aux0(reps.len() as u32)
                    .encode_into(out);
                for rep in reps {
                    encode_batched_reply(rep, out);
                }
            }
            Envelope::Shard(c) => c.encode_into(out),
            Envelope::Proto(p) => p.encode_into(out),
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        // Byte 1 of the header is the domain; protocol messages carry
        // their own full header, so dispatch without consuming. Shard
        // control rides its own domain so the protocol decoder never
        // sees it.
        if r.peek(1)? == simnet::wire::DOMAIN_SHARD {
            return Ok(Envelope::Shard(crate::shard::ShardCtl::decode(r)?));
        }
        if r.peek(1)? != DOMAIN_CLIENT {
            return Ok(Envelope::Proto(P::decode(r)?));
        }
        match r.peek(2)? {
            KIND_REQUEST => Ok(Envelope::Request(ClientRequest::decode(r)?)),
            KIND_REPLY => Ok(Envelope::Reply(ClientReply::decode(r)?)),
            KIND_REPLY_BATCH => {
                let h = WireHeader::decode(r)?;
                // 12 request id + 2 meta per batched reply.
                let mut reps = Vec::with_capacity(r.capacity_for(h.aux0 as usize, 14));
                for _ in 0..h.aux0 {
                    reps.push(decode_batched_reply(r)?);
                }
                Ok(Envelope::ReplyBatch(reps))
            }
            other => Err(WireError::BadTag {
                what: "envelope kind",
                got: other,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::wire::WIRE_HEADER_BYTES;
    use simnet::{Bytes, Message};

    fn rid(client: u32, seq: u64) -> RequestId {
        RequestId {
            client: NodeId(client),
            seq,
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Nul;
    impl ProtoMessage for Nul {
        fn wire_size(&self) -> usize {
            WIRE_HEADER_BYTES
        }
    }
    impl Wire for Nul {
        fn encode_into(&self, out: &mut Vec<u8>) {
            WireHeader::new(9, 0).encode_into(out);
        }
        fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
            WireHeader::decode(r)?;
            Ok(Nul)
        }
    }

    fn roundtrip(env: &Envelope<Nul>) {
        let bytes = env.encode();
        assert_eq!(bytes.len(), env.wire_size(), "encoded len == wire_size");
        let frame = Bytes::from(bytes);
        assert_eq!(&Envelope::<Nul>::decode_frame(&frame).unwrap(), env);
    }

    #[test]
    fn request_roundtrip_all_ops() {
        for op in [
            Operation::Get(7),
            Operation::Put(9, Value::zeros(100)),
            Operation::Put(9, Value::zeros(0)),
            Operation::Noop,
        ] {
            roundtrip(&Envelope::Request(ClientRequest {
                command: Command { id: rid(3, 11), op },
            }));
        }
    }

    #[test]
    fn reply_roundtrip_variants() {
        roundtrip(&Envelope::Reply(ClientReply::ok(rid(1, 2), None)));
        roundtrip(&Envelope::Reply(ClientReply::ok(
            rid(1, 2),
            Some(Value::zeros(64)),
        )));
        roundtrip(&Envelope::Reply(ClientReply::ok(
            rid(1, 2),
            Some(Value::zeros(0)),
        )));
        roundtrip(&Envelope::Reply(ClientReply::redirect(
            rid(1, 2),
            Some(NodeId(4)),
        )));
        roundtrip(&Envelope::Reply(ClientReply::redirect(rid(1, 2), None)));
    }

    #[test]
    fn reply_batch_roundtrip() {
        roundtrip(&Envelope::ReplyBatch(vec![]));
        roundtrip(&Envelope::ReplyBatch(vec![
            ClientReply::ok(rid(1, 2), Some(Value::zeros(33))),
            ClientReply::ok(rid(1, 3), None),
            ClientReply::redirect(rid(2, 9), Some(NodeId(0))),
            ClientReply::redirect(rid(2, 10), None),
        ]));
    }

    #[test]
    fn proto_dispatches_on_domain() {
        roundtrip(&Envelope::Proto(Nul));
    }

    #[test]
    fn ballot_roundtrip() {
        for b in [
            Ballot::ZERO,
            Ballot::new(7, NodeId(3)),
            Ballot::new(u32::MAX, NodeId(u32::MAX)),
        ] {
            let frame = Bytes::from(b.encode());
            let mut r = WireReader::new(&frame);
            assert_eq!(Ballot::decode(&mut r).unwrap(), b);
        }
    }

    #[test]
    fn bad_tags_rejected() {
        let mut bytes = Envelope::<Nul>::Reply(ClientReply::ok(rid(1, 1), None)).encode();
        bytes[2] = 77; // corrupt the kind tag
        assert!(matches!(
            Envelope::<Nul>::decode_frame(&Bytes::from(bytes)),
            Err(WireError::BadTag { .. })
        ));
    }
}
