//! # analytical — the paper's closed-form message-load model (§6)
//!
//! The PigPaxos paper models per-node load as the number of messages a
//! node handles per consensus round:
//!
//! - Leader (Eq. 1): `Ml = 2r + 2` — one round trip with each of `r`
//!   relay groups plus the client request/reply pair.
//! - Follower (Eq. 2–3): `Mf = 2(N − r − 1)/(N − 1) + 2` — with
//!   probability `r/(N−1)` a follower serves as relay and handles a
//!   round trip with each of its `(N − r − 1)/r` group peers, amortized
//!   by relay rotation, plus its own round trip.
//!
//! Direct Multi-Paxos is the degenerate case `r = N − 1`:
//! `Ml = 2(N−1) + 2`, `Mf = 2`.
//!
//! These formulas regenerate Tables 1 and 2, the §6.3 asymptote
//! (`lim N→∞ Mf = 4` at `r = 1`, so the leader can never shed its
//! bottleneck entirely), and the §6.4 WAN traffic accounting.

#![warn(missing_docs)]

pub mod model;
pub mod tables;
pub mod wan;

pub use model::{
    follower_load, leader_load, leader_overhead, paxos_follower_load, paxos_leader_load,
};
pub use tables::{table1, table2, LoadRow};
pub use wan::{paxos_wan_msgs_per_op, pigpaxos_wan_msgs_per_op};
