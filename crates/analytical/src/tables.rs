//! Regeneration of the paper's Tables 1 and 2.

use crate::model::{follower_load, leader_load, leader_overhead, paxos_leader_load};

/// One row of a message-load table.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadRow {
    /// Number of relay groups, or `None` for the direct-Paxos row.
    pub relay_groups: Option<usize>,
    /// Messages at the leader per round (`Ml`).
    pub leader_msgs: f64,
    /// Messages at an average follower per round (`Mf`).
    pub follower_msgs: f64,
    /// Leader overhead vs. followers, as a fraction.
    pub leader_overhead: f64,
}

impl LoadRow {
    /// Human-readable label for the row.
    pub fn label(&self) -> String {
        match self.relay_groups {
            Some(r) => r.to_string(),
            None => "Paxos".to_string(),
        }
    }
}

fn table(n: usize, rs: &[usize]) -> Vec<LoadRow> {
    let mut rows: Vec<LoadRow> = rs
        .iter()
        .map(|&r| LoadRow {
            relay_groups: Some(r),
            leader_msgs: leader_load(r),
            follower_msgs: follower_load(n, r),
            leader_overhead: leader_overhead(n, r),
        })
        .collect();
    rows.push(LoadRow {
        relay_groups: None,
        leader_msgs: paxos_leader_load(n),
        follower_msgs: 2.0,
        leader_overhead: paxos_leader_load(n) / 2.0 - 1.0,
    });
    rows
}

/// Paper Table 1: message load in a 25-node cluster, `r ∈ {2..6}` plus
/// the direct-Paxos row (`r = 24`).
pub fn table1() -> Vec<LoadRow> {
    table(25, &[2, 3, 4, 5, 6])
}

/// Paper Table 2: message load in a 9-node cluster, `r ∈ {2, 3, 4}`
/// plus the direct-Paxos row (`r = 8`).
pub fn table2() -> Vec<LoadRow> {
    table(9, &[2, 3, 4])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = table1();
        assert_eq!(t.len(), 6);
        // (r, Ml, Mf, overhead%) from the paper's Table 1.
        let expect = [
            (2, 6.0, 3.83, 56.0),
            (3, 8.0, 3.75, 113.0),
            (4, 10.0, 3.67, 172.0),
            (5, 12.0, 3.58, 234.0),
            (6, 14.0, 3.50, 300.0),
        ];
        for (row, (r, ml, mf, ov)) in t.iter().zip(expect) {
            assert_eq!(row.relay_groups, Some(r));
            assert_eq!(row.leader_msgs, ml);
            assert!((row.follower_msgs - mf).abs() < 0.01, "Mf for r={r}");
            assert!(
                (row.leader_overhead * 100.0 - ov).abs() < 2.0,
                "overhead for r={r}: {} vs {ov}",
                row.leader_overhead * 100.0
            );
        }
        let paxos = &t[5];
        assert_eq!(paxos.relay_groups, None);
        assert_eq!(paxos.leader_msgs, 50.0);
        assert_eq!(paxos.follower_msgs, 2.0);
        assert!((paxos.leader_overhead - 24.0).abs() < 1e-9, "paper: 2400%");
        assert_eq!(paxos.label(), "Paxos");
    }

    #[test]
    fn table2_matches_paper() {
        let t = table2();
        assert_eq!(t.len(), 4);
        let expect = [
            (2, 6.0, 3.5, 71.0),
            (3, 8.0, 3.25, 146.0),
            (4, 10.0, 3.0, 233.0),
        ];
        for (row, (r, ml, mf, ov)) in t.iter().zip(expect) {
            assert_eq!(row.relay_groups, Some(r));
            assert_eq!(row.leader_msgs, ml);
            assert!((row.follower_msgs - mf).abs() < 0.01);
            assert!((row.leader_overhead * 100.0 - ov).abs() < 2.0);
        }
        assert_eq!(t[3].leader_msgs, 18.0);
        assert!((t[3].leader_overhead - 8.0).abs() < 1e-9, "paper: 800%");
    }
}
