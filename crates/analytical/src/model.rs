//! Message-load formulas (paper §6.1, Eqs. 1–3).

/// Leader messages per round with `r` relay groups (Eq. 1): `2r + 2`.
pub fn leader_load(r: usize) -> f64 {
    2.0 * r as f64 + 2.0
}

/// Average follower messages per round in a cluster of `n` with `r`
/// relay groups (Eq. 3): `2(n − r − 1)/(n − 1) + 2`.
pub fn follower_load(n: usize, r: usize) -> f64 {
    assert!(n >= 2, "need at least one follower");
    assert!(r >= 1 && r < n, "relay groups must be in [1, n-1]");
    2.0 * (n as f64 - r as f64 - 1.0) / (n as f64 - 1.0) + 2.0
}

/// Direct Multi-Paxos leader load: `2(n − 1) + 2`.
pub fn paxos_leader_load(n: usize) -> f64 {
    2.0 * (n as f64 - 1.0) + 2.0
}

/// Direct Multi-Paxos follower load: one round trip.
pub fn paxos_follower_load() -> f64 {
    2.0
}

/// Leader overhead relative to the average follower, as a fraction
/// (`0.56` = the leader handles 56% more messages than a follower).
pub fn leader_overhead(n: usize, r: usize) -> f64 {
    leader_load(r) / follower_load(n, r) - 1.0
}

/// The §6.3 asymptote: with `r = 1` and `n → ∞`, follower load tends to
/// `4`, equal to the leader's minimum `Ml = 4` — the leader never stops
/// being the bottleneck (it also does the vote tallying).
pub fn follower_load_asymptote() -> f64 {
    4.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_load_is_linear_in_groups() {
        assert_eq!(leader_load(1), 4.0);
        assert_eq!(leader_load(2), 6.0);
        assert_eq!(leader_load(6), 14.0);
    }

    #[test]
    fn paper_table1_values() {
        // N = 25 (paper Table 1).
        assert!((follower_load(25, 2) - 3.83).abs() < 0.01);
        assert!((follower_load(25, 3) - 3.75).abs() < 0.01);
        assert!((follower_load(25, 4) - 3.67).abs() < 0.01);
        assert!((follower_load(25, 5) - 3.58).abs() < 0.01);
        assert!((follower_load(25, 6) - 3.50).abs() < 0.01);
        assert_eq!(paxos_leader_load(25), 50.0);
    }

    #[test]
    fn paper_table1_overheads() {
        assert!((leader_overhead(25, 2) - 0.565).abs() < 0.01, "paper: 56%");
        assert!((leader_overhead(25, 3) - 1.13).abs() < 0.01, "paper: 113%");
        assert!((leader_overhead(25, 6) - 3.00).abs() < 0.01, "paper: 300%");
        // Paxos row: 50 / 2 - 1 = 2400%.
        assert!((paxos_leader_load(25) / paxos_follower_load() - 1.0 - 24.0).abs() < 1e-9);
    }

    #[test]
    fn paper_table2_values() {
        // N = 9 (paper Table 2).
        assert!((follower_load(9, 2) - 3.5).abs() < 1e-9);
        assert!((follower_load(9, 3) - 3.25).abs() < 1e-9);
        assert!((follower_load(9, 4) - 3.0).abs() < 1e-9);
        assert!((leader_overhead(9, 2) - 0.714).abs() < 0.01, "paper: 71%");
        assert!((leader_overhead(9, 3) - 1.46).abs() < 0.01, "paper: 146%");
        assert!((leader_overhead(9, 4) - 2.33).abs() < 0.01, "paper: 233%");
        assert_eq!(paxos_leader_load(9), 18.0);
    }

    #[test]
    fn follower_load_approaches_asymptote() {
        // r = 1, growing N: Mf -> 4 from below.
        let mut prev = follower_load(10, 1);
        for n in [100, 1000, 10_000] {
            let f = follower_load(n, 1);
            assert!(f > prev);
            assert!(f < follower_load_asymptote());
            prev = f;
        }
        assert!((follower_load(1_000_000, 1) - 4.0).abs() < 0.001);
    }

    #[test]
    fn leader_always_at_least_follower_load() {
        // §6.3: the leader remains the bottleneck for every (n, r).
        for n in [5, 9, 25, 101] {
            for r in 1..n.min(20) {
                assert!(
                    leader_load(r) >= follower_load(n, r) - 1e-9,
                    "n={n} r={r}: leader {} < follower {}",
                    leader_load(r),
                    follower_load(n, r)
                );
            }
        }
    }

    #[test]
    fn fewer_groups_less_leader_load_more_follower_load() {
        assert!(leader_load(2) < leader_load(5));
        assert!(follower_load(25, 2) > follower_load(25, 5));
    }

    #[test]
    #[should_panic(expected = "relay groups")]
    fn too_many_groups_rejected() {
        follower_load(5, 5);
    }
}
