//! WAN traffic accounting (paper §6.4).
//!
//! With one relay group per region and the leader in one of the regions,
//! PigPaxos sends exactly one message into each remote region per write;
//! direct Paxos sends one message to every remote follower. The paper's
//! example — 3 regions × 3 nodes — yields 2 vs. 6 cross-WAN messages per
//! operation, a 3× saving in paid cross-region traffic.

/// Cross-region messages per write for PigPaxos with region-aligned
/// relay groups (leader-side sends; responses double both protocols
/// equally).
pub fn pigpaxos_wan_msgs_per_op(regions: usize) -> usize {
    assert!(regions >= 1);
    regions - 1
}

/// Cross-region messages per write for direct Paxos: one per remote
/// follower.
pub fn paxos_wan_msgs_per_op(regions: usize, nodes_per_region: usize) -> usize {
    assert!(regions >= 1 && nodes_per_region >= 1);
    (regions - 1) * nodes_per_region
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_three_regions_three_nodes() {
        assert_eq!(pigpaxos_wan_msgs_per_op(3), 2);
        assert_eq!(paxos_wan_msgs_per_op(3, 3), 6);
    }

    #[test]
    fn savings_grow_with_region_size() {
        let regions = 3;
        for npr in [1, 3, 10] {
            let ratio = paxos_wan_msgs_per_op(regions, npr) as f64
                / pigpaxos_wan_msgs_per_op(regions) as f64;
            assert!(
                (ratio - npr as f64).abs() < 1e-9,
                "saving factor equals region size"
            );
        }
    }

    #[test]
    fn single_region_no_wan_traffic() {
        assert_eq!(pigpaxos_wan_msgs_per_op(1), 0);
        assert_eq!(paxos_wan_msgs_per_op(1, 5), 0);
    }
}
